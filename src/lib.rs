//! # SlimSell
//!
//! A vectorizable graph representation for breadth-first search —
//! a from-scratch Rust reproduction of Besta, Marending, Solomonik &
//! Hoefler, *SlimSell: A Vectorizable Graph Representation for
//! Breadth-First Search*, IEEE IPDPS 2017.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | CSR/adjacency-list substrate, permutations, statistics, reference BFS |
//! | [`gen`] | Kronecker (R-MAT), Erdős–Rényi, and real-world stand-in generators |
//! | [`simd`] | the Listing-1 vector primitives (`C`-lane f32/i32 vectors) |
//! | [`core`] | Sell-C-σ, SlimSell, the four BFS semirings, SlimWork, SlimChunk, DP |
//! | [`baseline`] | Graph500-style Trad-BFS, direction-optimizing BFS, SpMSpV BFS |
//! | [`simt`] | the software GPU (SIMT warp) simulator |
//! | [`analysis`] | Table II/III work & storage models, Eq. (1)/(2) bounds |
//! | [`serve`] | graph-as-a-service: concurrent batched BFS query engine |
//!
//! ## Quickstart
//!
//! ```
//! use slimsell::prelude::*;
//!
//! // An undirected graph: 0-1-2 path plus a 2-3 edge.
//! let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
//!
//! // Build the SlimSell representation (C = 8 lanes, full sorting) and
//! // run algebraic BFS over the tropical semiring.
//! let matrix = SlimSellMatrix::<8>::build(&g, g.num_vertices());
//! let out = BfsEngine::run::<_, TropicalSemiring, 8>(&matrix, 0, &BfsOptions::default());
//! assert_eq!(out.dist, vec![0, 1, 2, 3]);
//! ```
//!
//! Or use the one-call convenience wrapper:
//!
//! ```
//! let g = slimsell::graph::GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
//! let dist = slimsell::bfs_distances(&g, 0);
//! assert_eq!(dist, vec![0, 1, 2]);
//! ```

pub use slimsell_analysis as analysis;
pub use slimsell_baseline as baseline;
pub use slimsell_core as core;
pub use slimsell_gen as gen;
pub use slimsell_graph as graph;
pub use slimsell_serve as serve;
pub use slimsell_simd as simd;
pub use slimsell_simt as simt;

/// The most common imports in one place.
pub mod prelude {
    pub use slimsell_core::dirop::{run_diropt, DirOptOptions};
    pub use slimsell_core::matrix::{ChunkMatrix, SellCSigma, SlimSellMatrix};
    pub use slimsell_core::{
        betweenness_exact, betweenness_from_sources, dp_transform, graph500_validate, multi_bfs,
        pagerank, run_descriptor, sssp, sssp_with, BfsEngine, BfsOptions, BooleanSemiring,
        Descriptor, DirectionPolicy, ExecutedSweep, PageRankOptions, RealSemiring, Schedule,
        SelMaxSemiring, Semiring, SsspOptions, SweepConfig, SweepMode, TropicalSemiring,
        VertexMask, WeightedSellCSigma,
    };
    pub use slimsell_gen::{erdos_renyi_gnp, kronecker, standin, KroneckerParams};
    pub use slimsell_graph::{
        largest_component, serial_bfs, validate_parents, AdjacencyList, CsrGraph, GraphBuilder,
        GraphStats, VertexId, WeightedCsrGraph, UNREACHABLE,
    };
    pub use slimsell_serve::{
        BfsServer, FaultKind, FaultPlan, QueryError, QueryHandle, QuerySpec, ServeOptions,
        ServerStats, ShutdownReport,
    };
    pub use slimsell_simt::{run_simt_bfs, SimtConfig, SimtOptions};
}

use graph::{CsrGraph, VertexId};

/// One-call BFS: SlimSell representation (C = 8, full sorting), tropical
/// semiring, SlimWork on. Returns hop distances with
/// [`graph::UNREACHABLE`] for unreached vertices.
///
/// For repeated traversals of the same graph, build the
/// [`core::matrix::SlimSellMatrix`] once and call
/// [`core::BfsEngine::run`] directly — construction is the dominant cost
/// (§IV-D of the paper).
pub fn bfs_distances(g: &CsrGraph, root: VertexId) -> Vec<u32> {
    let m = core::matrix::SlimSellMatrix::<8>::build(g, g.num_vertices());
    core::BfsEngine::run::<_, core::TropicalSemiring, 8>(&m, root, &core::BfsOptions::default())
        .dist
}

/// One-call BFS returning both distances and parents: SlimSell + sel-max
/// (parents come from the semiring, no DP pass).
pub fn bfs_tree(g: &CsrGraph, root: VertexId) -> (Vec<u32>, Vec<VertexId>) {
    let m = core::matrix::SlimSellMatrix::<8>::build(g, g.num_vertices());
    let out =
        core::BfsEngine::run::<_, core::SelMaxSemiring, 8>(&m, root, &core::BfsOptions::default());
    let parent = out.parent.expect("sel-max computes parents");
    (out.dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::GraphBuilder;

    #[test]
    fn bfs_distances_convenience() {
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (3, 4)]).build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, graph::UNREACHABLE, graph::UNREACHABLE]);
    }

    #[test]
    fn bfs_tree_convenience() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let (d, p) = bfs_tree(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
        graph::validate_parents(&g, 0, &d, &p).unwrap();
    }
}
