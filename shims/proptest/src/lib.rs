//! Minimal API-compatible stand-in for the subset of `proptest` this
//! workspace uses. The build environment has no crates.io access, so this
//! shim supplies deterministic random-value generation behind the real
//! proptest surface (`proptest!`, `prop_oneof!`, strategies, `prop_assert*`).
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case panics with the sampled inputs burned
//!   into the deterministic RNG stream (re-runs reproduce it exactly);
//! * `prop_assert*` map directly onto `assert*`.
//!
//! Swapping in the real `proptest` is a one-line `Cargo.toml` change and
//! requires no source edits.

pub mod test_runner {
    /// Deterministic xorshift-style RNG (splitmix64 core) seeded from the
    /// test's fully qualified name, so every run of a test sees the same
    /// case stream.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in [0, bound); bound = 0 returns 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }

    /// Run configuration. Only `cases` is honoured by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// The combinators mirror proptest's; `sample` replaces the
    /// `ValueTree` machinery (no shrinking).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f, reason }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe sampling core, so heterogeneous strategies (e.g. the
    /// arms of `prop_oneof!`) can share a `Box`.
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 consecutive samples", self.reason)
        }
    }

    /// Uniform choice between boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let f = rng.next_f64() as $t;
                    self.start + f * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (S0.0)
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),* $(,)?) => {$(
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )*};
    }

    uniform_fns! {
        uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform8 => 8,
        uniform16 => 16, uniform32 => 32,
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`fn@vec`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive.saturating_sub(self.size.lo).max(1);
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::` paths (`prop::array::uniform4`, `prop::collection::vec`, …).
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// The shim's `proptest!`: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that samples `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = f32> {
        prop_oneof![Just(0.0f32), (0u32..10).prop_map(|x| x as f32)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1usize..=4, z in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn arrays_and_vecs(a in prop::array::uniform4(small()), v in prop::collection::vec(0u32..9, 0..6)) {
            prop_assert_eq!(a.len(), 4);
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 9));
        }

        #[test]
        fn tuples_and_flat_map(p in (1usize..4).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, i) = p;
            prop_assert!(i < n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0u32..1000;
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
