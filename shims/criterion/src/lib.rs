//! Minimal API-compatible stand-in for the subset of `criterion` this
//! workspace uses. The build environment has no crates.io access, so the
//! bench targets link against this shim: it times each benchmark with a
//! fixed warmup + `sample_size` measured runs and prints a one-line
//! mean/min summary. Swapping in the real `criterion` is a one-line
//! `Cargo.toml` change and requires no source edits.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Real criterion parses CLI flags here; the shim accepts and ignores
    /// them (notably the `--bench` / test-harness flags cargo passes).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _c: self, name, sample_size }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.default_sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1 };
    // Warmup sample, then the measured samples.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        eprintln!("  {id:<48} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    eprintln!("  {id:<48} mean {mean:>12.3?}  min {min:>12.3?}  ({} samples)", b.samples.len());
}

pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(t0.elapsed() / self.iters_per_sample);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warmup sample + 3 measured samples.
        assert_eq!(runs, 4);
    }
}
