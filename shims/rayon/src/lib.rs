//! Sequential, API-compatible stand-in for the subset of `rayon` this
//! workspace uses. The build environment has no crates.io access, so the
//! workspace vendors this shim; swapping in the real `rayon` is a one-line
//! `Cargo.toml` change and requires no source edits.
//!
//! Everything runs on the calling thread. `Par<I>` wraps a standard
//! iterator and exposes rayon's method names (including the
//! identity-closure `fold`/`reduce` pair and `with_min_len`) as inherent
//! methods, so they shadow the `Iterator` methods of the same name.

use std::iter;

/// A "parallel" iterator: a thin wrapper over a sequential iterator.
pub struct Par<I>(pub I);

impl<I: Iterator> Par<I> {
    pub fn enumerate(self) -> Par<iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<iter::Zip<I, J>> {
        Par(self.0.zip(other.0))
    }

    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    pub fn flat_map_iter<J, F>(self, f: F) -> Par<iter::FlatMap<I, J, F>>
    where
        J: IntoIterator,
        F: FnMut(I::Item) -> J,
    {
        Par(self.0.flat_map(f))
    }

    /// Scheduling hint; a no-op in the sequential shim.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Scheduling hint; a no-op in the sequential shim.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Rayon-style fold: one accumulator per "thread" (here: exactly one).
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Par<iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        Par(iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon-style reduce with an identity closure.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn sum<S: iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn collect<B: FromIterator<I::Item>>(self) -> B {
        self.0.collect()
    }
}

pub mod iter_traits {
    use super::Par;

    /// `par_iter()` / `par_chunks*` / `par_iter_mut()` over slices.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
        fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
        fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>>;
        fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
            Par(self.iter())
        }
        fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
            Par(self.iter_mut())
        }
        fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
            Par(self.chunks(size))
        }
        fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
            Par(self.chunks_mut(size))
        }
    }

    /// `into_par_iter()` over anything that sequentially iterates
    /// (ranges, `Vec`, …).
    pub trait IntoParallelIterator {
        type Iter: Iterator;
        fn into_par_iter(self) -> Par<Self::Iter>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }
}

pub mod prelude {
    pub use super::iter_traits::{IntoParallelIterator, ParallelSlice};
    pub use super::Par;
}

/// Number of "worker threads". The shim executes sequentially, but task
/// granularity heuristics still key off the machine's parallelism.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Stand-in for `rayon::ThreadPoolBuilder`; `install` simply runs the
/// closure on the calling thread.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self._num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool)
    }
}

pub struct ThreadPool;

impl ThreadPool {
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_chain_matches_sequential() {
        let data: Vec<u32> = (0..100).collect();
        let (evens, count): (Vec<u32>, u64) = data
            .par_iter()
            .fold(
                || (Vec::new(), 0u64),
                |(mut acc, cnt), &v| {
                    if v % 2 == 0 {
                        acc.push(v);
                    }
                    (acc, cnt + 1)
                },
            )
            .reduce(
                || (Vec::new(), 0),
                |(mut a, ca), (b, cb)| {
                    a.extend_from_slice(&b);
                    (a, ca + cb)
                },
            );
        assert_eq!(count, 100);
        assert_eq!(evens.len(), 50);
    }

    #[test]
    fn chunks_zip_enumerate() {
        let mut out = vec![0usize; 8];
        let tags = [10usize, 20];
        out.par_chunks_mut(4).zip(tags.par_iter()).enumerate().for_each(|(i, (chunk, &t))| {
            for c in chunk.iter_mut() {
                *c = t + i;
            }
        });
        assert_eq!(out, vec![10, 10, 10, 10, 21, 21, 21, 21]);
    }

    #[test]
    fn range_into_par_iter_collects() {
        let v: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }
}
