//! Multithreaded, API-compatible stand-in for the subset of `rayon` this
//! workspace uses. The build environment has no crates.io access, so the
//! workspace vendors this shim; swapping in the real `rayon` is a
//! one-line `Cargo.toml` change and requires no source edits.
//!
//! # Threading model
//!
//! Parallel iterators execute on a real global thread pool ([`pool`]): a
//! lazily-initialized set of detached worker threads sized from
//! [`std::thread::available_parallelism`], overridable with the
//! `SLIMSELL_THREADS` environment variable (a positive integer;
//! `SLIMSELL_THREADS=1` forces fully sequential execution with zero pool
//! interaction, which is the reference oracle used by the determinism
//! tests). [`ThreadPoolBuilder`]`::num_threads(n).build()?.install(f)`
//! scopes an override to `f` on the calling thread, exactly how the
//! `scaling` experiment sweeps thread counts in one process.
//!
//! # Execution of a terminal operation
//!
//! A terminal operation (`for_each`, `fold`, `reduce`, `sum`, `collect`,
//! …) partitions the *base* into contiguous index ranges and lets the
//! calling thread plus the pool workers claim ranges with an atomic
//! counter (dynamic self-scheduling / work stealing). The *mapped* work —
//! every closure added with [`map`], [`flat_map_iter`], or passed to a
//! terminal — runs on the claiming thread, so the expensive per-item
//! work is what actually parallelizes.
//!
//! How the base is partitioned depends on its [`BaseIter::SPLITTABLE`]
//! capability:
//!
//! * **Index-split fast path** — slice, chunk, mutable-chunk, and
//!   integer-range bases (and `zip`/`enumerate` stacks of them) are
//!   random-access, so the base is split into per-range sub-bases with
//!   `split_at` in O(ranges) time and **no per-item buffering**: items
//!   are produced lazily on the claiming worker. This keeps the
//!   slice/range-driven kernels (the baseline queue-BFS folds,
//!   connected components' chunk sweeps, `dp_transform`'s range map)
//!   allocation-free in the steady state.
//! * **Materializing slow path** — bases without O(1) splitting (e.g. a
//!   `Vec`'s draining iterator) are drained into an item buffer first,
//!   and workers claim ranges of that buffer. Cheap for the short
//!   task-list iterators it is actually used for.
//!
//! [`map`]: Par::map
//! [`flat_map_iter`]: Par::flat_map_iter
//!
//! # Honest semantics
//!
//! * `fold(identity, op)` produces **one accumulator per claimed range**
//!   (rayon's "one per split"), and the follow-up `reduce` merges them
//!   in range order — so `fold`-into-`Vec` pipelines preserve item
//!   order, like rayon's ordered reductions.
//! * `reduce(identity, op)` computes per-range partials in parallel and
//!   merges them left-to-right on the calling thread; with associative
//!   `op` the result is independent of the thread count.
//! * [`with_min_len`]/[`with_max_len`] are real scheduling hints: range
//!   sizes are clamped to `[min_len, max_len]` around a default of
//!   `ceil(n / (threads · OVERSPLIT))`.
//! * Closures must be `Fn + Sync` and items `Send` — the same bounds
//!   real rayon imposes.
//!
//! [`with_min_len`]: Par::with_min_len
//! [`with_max_len`]: Par::with_max_len

pub mod base;
pub mod pool;

pub use base::BaseIter;
use base::{Enumerate, Zip};

/// Number of worker threads the *next* parallel region on this thread
/// would use (respects `SLIMSELL_THREADS` and `ThreadPool::install`).
pub fn current_num_threads() -> usize {
    pool::current_threads()
}

// ---------------------------------------------------------------------
// Per-item operation pipeline (the part that runs on workers).
// ---------------------------------------------------------------------

/// A composed per-item operation, applied on the claiming thread.
pub trait ItemOp<In>: Sync {
    /// Output item type.
    type Out;
    /// Applies the pipeline to one item.
    fn apply(&self, x: In) -> Self::Out;
}

/// The identity pipeline (base iterators start here).
#[derive(Clone, Copy, Debug, Default)]
pub struct Id;

impl<T> ItemOp<T> for Id {
    type Out = T;
    #[inline(always)]
    fn apply(&self, x: T) -> T {
        x
    }
}

/// Pipeline composition: `inner` then `g`.
pub struct OpThen<F, G> {
    inner: F,
    g: G,
}

impl<In, O, F, G> ItemOp<In> for OpThen<F, G>
where
    F: ItemOp<In>,
    G: Fn(F::Out) -> O + Sync,
{
    type Out = O;
    #[inline(always)]
    fn apply(&self, x: In) -> O {
        (self.g)(self.inner.apply(x))
    }
}

// ---------------------------------------------------------------------
// Range execution engine.
// ---------------------------------------------------------------------

/// Raw pointer wrapper for disjoint-by-construction parallel writes.
/// Access goes through [`SendPtr::at`] so closures capture the (Sync)
/// wrapper rather than the raw pointer field itself.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to element `i`; caller guarantees disjoint use.
    fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

/// Picks the range (chunk) size and count for `n` items under the
/// current effective parallelism and the user's min/max hints.
fn plan(n: usize, min_len: usize, max_len: usize) -> (usize, usize) {
    let threads = pool::current_threads().max(1);
    let target = n.div_ceil(threads * pool::OVERSPLIT).max(1);
    let lo = min_len.max(1);
    let hi = max_len.max(lo);
    let chunk = target.clamp(lo, hi).min(n.max(1));
    (chunk, n.div_ceil(chunk))
}

/// Materializing slow path: runs `per_range` over contiguous index
/// ranges of `slots`, in parallel, returning the per-range results **in
/// range order**. Each item is consumed exactly once by exactly one
/// range. Only used for bases without O(1) splitting — see
/// [`run_regions`] for the dispatch.
fn run_ranges<Item, P, R>(
    mut slots: Vec<Option<Item>>,
    min_len: usize,
    max_len: usize,
    per_range: R,
) -> Vec<P>
where
    Item: Send,
    P: Send,
    R: Fn(&mut dyn Iterator<Item = Item>) -> P + Sync,
{
    let n = slots.len();
    if n == 0 {
        return Vec::new();
    }
    let (chunk, n_chunks) = plan(n, min_len, max_len);
    if pool::current_threads() <= 1 || n_chunks <= 1 {
        let mut out = Vec::with_capacity(n_chunks);
        let mut it = slots.into_iter().map(|s| s.expect("slot already taken"));
        for k in 0..n_chunks {
            let len = chunk.min(n - k * chunk);
            let mut sub = (&mut it).take(len);
            out.push(per_range(&mut sub));
            // Drain whatever per_range left so the next window aligns.
            for _ in &mut sub {}
        }
        return out;
    }
    let mut out: Vec<Option<P>> = (0..n_chunks).map(|_| None).collect();
    let slots_ptr = SendPtr(slots.as_mut_ptr());
    let out_ptr = SendPtr(out.as_mut_ptr());
    pool::run(n_chunks, &|k| {
        let start = k * chunk;
        let end = (start + chunk).min(n);
        // SAFETY: task indices are claimed exactly once, so the ranges
        // [start, end) are disjoint across invocations; each slot is
        // taken once and out[k] is written only by task k. The borrows
        // end before `run` returns (pool quiescence guarantee).
        let mut items =
            (start..end).map(|i| unsafe { (*slots_ptr.at(i)).take().expect("slot taken twice") });
        let p = per_range(&mut items);
        unsafe { *out_ptr.at(k) = Some(p) };
    });
    out.into_iter().map(|p| p.expect("range not executed")).collect()
}

/// Runs `per_range` over contiguous regions of `base`, in parallel,
/// returning the per-region results **in region order**.
///
/// Dispatches on [`BaseIter::SPLITTABLE`]: splittable bases take the
/// index-split fast path (per-region sub-bases carved with `split_at`,
/// zero per-item buffering); everything else is drained into a slot
/// buffer first ([`run_ranges`]).
fn run_regions<B, P, R>(base: B, min_len: usize, max_len: usize, per_range: R) -> Vec<P>
where
    B: BaseIter + Send,
    B::Item: Send,
    P: Send,
    R: Fn(&mut dyn Iterator<Item = B::Item>) -> P + Sync,
{
    if !B::SPLITTABLE {
        let slots: Vec<Option<B::Item>> = base.map(Some).collect();
        return run_ranges(slots, min_len, max_len, per_range);
    }
    let n = base.split_len();
    if n == 0 {
        return Vec::new();
    }
    let (chunk, n_chunks) = plan(n, min_len, max_len);
    if pool::current_threads() <= 1 || n_chunks <= 1 {
        let mut out = Vec::with_capacity(n_chunks);
        let mut it = base;
        for k in 0..n_chunks {
            let len = chunk.min(n - k * chunk);
            let mut sub = (&mut it).take(len);
            out.push(per_range(&mut sub));
            for _ in &mut sub {}
        }
        return out;
    }
    // Index-split fast path: carve the base into per-region sub-bases up
    // front (O(n_chunks), no per-item work), then let workers claim them.
    let mut parts: Vec<Option<B>> = Vec::with_capacity(n_chunks);
    let mut rest = base;
    for _ in 0..n_chunks - 1 {
        let at = chunk.min(rest.split_len());
        let (head, tail) = rest.split_at(at);
        parts.push(Some(head));
        rest = tail;
    }
    parts.push(Some(rest));
    let mut out: Vec<Option<P>> = (0..n_chunks).map(|_| None).collect();
    let parts_ptr = SendPtr(parts.as_mut_ptr());
    let out_ptr = SendPtr(out.as_mut_ptr());
    pool::run(n_chunks, &|k| {
        // SAFETY: task k is claimed exactly once, so part k is taken
        // once and out[k] written once; the borrows end before `run`
        // returns (pool quiescence guarantee).
        let mut part = unsafe { (*parts_ptr.at(k)).take().expect("part taken twice") };
        let p = per_range(&mut part);
        unsafe { *out_ptr.at(k) = Some(p) };
    });
    out.into_iter().map(|p| p.expect("region not executed")).collect()
}

// ---------------------------------------------------------------------
// The parallel iterator type.
// ---------------------------------------------------------------------

/// A parallel iterator: a cheap *base* iterator (split or driven on the
/// calling thread) plus a composed per-item pipeline (run on the
/// claiming worker). See the module docs for the execution model.
pub struct Par<I, F = Id> {
    base: I,
    op: F,
    min_len: usize,
    max_len: usize,
}

impl<I: BaseIter> Par<I, Id> {
    /// Wraps a base iterator.
    pub fn new(base: I) -> Self {
        Par { base, op: Id, min_len: 1, max_len: usize::MAX }
    }

    /// Indexes base items (before any mapping).
    pub fn enumerate(self) -> Par<Enumerate<I>, Id> {
        Par {
            base: Enumerate::new(self.base),
            op: Id,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Zips two base iterators.
    pub fn zip<J: BaseIter>(self, other: Par<J, Id>) -> Par<Zip<I, J>, Id> {
        Par {
            base: Zip::new(self.base, other.base),
            op: Id,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Filters base items; the predicate runs on the claiming thread.
    pub fn filter<P: Fn(&I::Item) -> bool + Sync>(self, pred: P) -> ParFilter<I, P> {
        ParFilter { base: self.base, pred, min_len: self.min_len, max_len: self.max_len }
    }
}

impl<I, F> Par<I, F>
where
    I: BaseIter + Send,
    F: ItemOp<I::Item>,
{
    /// Minimum items per claimed range (scheduling hint, honored).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Maximum items per claimed range (scheduling hint, honored).
    pub fn with_max_len(mut self, max: usize) -> Self {
        self.max_len = max.max(1);
        self
    }

    /// Appends `g` to the per-item pipeline (runs on workers).
    pub fn map<G, O>(self, g: G) -> Par<I, OpThen<F, G>>
    where
        G: Fn(F::Out) -> O + Sync,
    {
        Par {
            base: self.base,
            op: OpThen { inner: self.op, g },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Maps each item to an iterator and flattens, preserving order.
    pub fn flat_map_iter<G, J>(self, g: G) -> ParFlatMap<I, F, G>
    where
        G: Fn(F::Out) -> J + Sync,
        J: IntoIterator,
    {
        ParFlatMap { base: self.base, op: self.op, g, min_len: self.min_len, max_len: self.max_len }
    }

    /// Consumes every item in parallel.
    pub fn for_each<G>(self, g: G)
    where
        I::Item: Send,
        G: Fn(F::Out) + Sync,
    {
        let op = self.op;
        if pool::current_threads() <= 1 {
            self.base.for_each(|x| g(op.apply(x)));
            return;
        }
        run_regions(self.base, self.min_len, self.max_len, |it| {
            for x in it {
                g(op.apply(x));
            }
        });
    }

    /// Rayon-style fold: one accumulator **per claimed range**, returned
    /// as a new parallel iterator in range order.
    pub fn fold<A, ID, FO>(self, identity: ID, fold_op: FO) -> Par<std::vec::IntoIter<A>, Id>
    where
        I::Item: Send,
        A: Send,
        ID: Fn() -> A + Sync,
        FO: Fn(A, F::Out) -> A + Sync,
    {
        let op = self.op;
        let accs: Vec<A> = if pool::current_threads() <= 1 {
            vec![self.base.fold(identity(), |a, x| fold_op(a, op.apply(x)))]
        } else {
            run_regions(self.base, self.min_len, self.max_len, |it| {
                let mut a = identity();
                for x in it {
                    a = fold_op(a, op.apply(x));
                }
                a
            })
        };
        Par::new(accs.into_iter())
    }

    /// Rayon-style reduce with an identity closure: per-range partials
    /// merged left-to-right (deterministic for associative `op`).
    pub fn reduce<ID, RO>(self, identity: ID, rop: RO) -> F::Out
    where
        I::Item: Send,
        F::Out: Send,
        ID: Fn() -> F::Out + Sync,
        RO: Fn(F::Out, F::Out) -> F::Out + Sync,
    {
        let op = self.op;
        if pool::current_threads() <= 1 {
            return self.base.fold(identity(), |a, x| rop(a, op.apply(x)));
        }
        let parts = run_regions(self.base, self.min_len, self.max_len, |it| {
            let mut a = identity();
            for x in it {
                a = rop(a, op.apply(x));
            }
            a
        });
        parts.into_iter().fold(identity(), rop)
    }

    /// Parallel sum.
    pub fn sum<S>(self) -> S
    where
        I::Item: Send,
        S: std::iter::Sum<F::Out> + std::iter::Sum<S> + Send,
    {
        let op = self.op;
        if pool::current_threads() <= 1 {
            return self.base.map(|x| op.apply(x)).sum();
        }
        let parts: Vec<S> =
            run_regions(self.base, self.min_len, self.max_len, |it| it.map(|x| op.apply(x)).sum());
        parts.into_iter().sum()
    }

    /// Item count. The pipeline is still applied (rayon's `count`
    /// executes mapped closures, so side effects must not be skipped).
    pub fn count(self) -> usize
    where
        I::Item: Send,
    {
        let op = self.op;
        if pool::current_threads() <= 1 {
            return self.base.fold(0usize, |c, x| {
                op.apply(x);
                c + 1
            });
        }
        let parts: Vec<usize> = run_regions(self.base, self.min_len, self.max_len, |it| {
            it.fold(0usize, |c, x| {
                op.apply(x);
                c + 1
            })
        });
        parts.into_iter().sum()
    }

    /// Parallel max.
    pub fn max(self) -> Option<F::Out>
    where
        I::Item: Send,
        F::Out: Ord + Send,
    {
        let op = self.op;
        if pool::current_threads() <= 1 {
            return self.base.map(|x| op.apply(x)).max();
        }
        let parts =
            run_regions(self.base, self.min_len, self.max_len, |it| it.map(|x| op.apply(x)).max());
        parts.into_iter().flatten().max()
    }

    /// Parallel ordered collect.
    pub fn collect<B>(self) -> B
    where
        I::Item: Send,
        F::Out: Send,
        B: FromIterator<F::Out>,
    {
        let op = self.op;
        if pool::current_threads() <= 1 {
            return self.base.map(|x| op.apply(x)).collect();
        }
        let parts: Vec<Vec<F::Out>> = run_regions(self.base, self.min_len, self.max_len, |it| {
            it.map(|x| op.apply(x)).collect()
        });
        parts.into_iter().flatten().collect()
    }
}

/// A filtered parallel iterator (predicate runs on workers).
pub struct ParFilter<I, P> {
    base: I,
    pred: P,
    min_len: usize,
    max_len: usize,
}

impl<I, P> ParFilter<I, P>
where
    I: BaseIter + Send,
    P: Fn(&I::Item) -> bool + Sync,
{
    /// Counts items passing the predicate, in parallel.
    pub fn count(self) -> usize
    where
        I::Item: Send,
    {
        let pred = self.pred;
        if pool::current_threads() <= 1 {
            return self.base.filter(|x| pred(x)).count();
        }
        let parts: Vec<usize> =
            run_regions(self.base, self.min_len, self.max_len, |it| it.filter(|x| pred(x)).count());
        parts.into_iter().sum()
    }

    /// Ordered parallel collect of items passing the predicate.
    pub fn collect<B>(self) -> B
    where
        I::Item: Send,
        B: FromIterator<I::Item>,
    {
        let pred = self.pred;
        if pool::current_threads() <= 1 {
            return self.base.filter(|x| pred(x)).collect();
        }
        let parts: Vec<Vec<I::Item>> = run_regions(self.base, self.min_len, self.max_len, |it| {
            it.filter(|x| pred(x)).collect()
        });
        parts.into_iter().flatten().collect()
    }
}

/// A flat-mapped parallel iterator; `g` runs on workers, and the
/// per-item sequences are concatenated in item order.
pub struct ParFlatMap<I, F, G> {
    base: I,
    op: F,
    g: G,
    min_len: usize,
    max_len: usize,
}

impl<I, F, G, J> ParFlatMap<I, F, G>
where
    I: BaseIter + Send,
    F: ItemOp<I::Item>,
    G: Fn(F::Out) -> J + Sync,
    J: IntoIterator,
{
    /// Ordered parallel collect of the flattened sequences.
    pub fn collect<B>(self) -> B
    where
        I::Item: Send,
        J::Item: Send,
        B: FromIterator<J::Item>,
    {
        let (op, g) = (self.op, self.g);
        if pool::current_threads() <= 1 {
            return self.base.flat_map(|x| g(op.apply(x))).collect();
        }
        let parts: Vec<Vec<J::Item>> = run_regions(self.base, self.min_len, self.max_len, |it| {
            it.flat_map(|x| g(op.apply(x))).collect()
        });
        parts.into_iter().flatten().collect()
    }
}

pub mod iter_traits {
    use super::base::{BaseIter, SliceChunks, SliceChunksMut, SliceIter, SliceIterMut};
    use super::{Id, Par};

    /// `par_iter()` / `par_chunks*` / `par_iter_mut()` over slices. All
    /// four return index-splittable bases (the fast path — no item
    /// buffering in terminal operations).
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> Par<SliceIter<'_, T>, Id>;
        fn par_iter_mut(&mut self) -> Par<SliceIterMut<'_, T>, Id>;
        fn par_chunks(&self, size: usize) -> Par<SliceChunks<'_, T>, Id>;
        fn par_chunks_mut(&mut self, size: usize) -> Par<SliceChunksMut<'_, T>, Id>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> Par<SliceIter<'_, T>, Id> {
            Par::new(SliceIter::new(self))
        }
        fn par_iter_mut(&mut self) -> Par<SliceIterMut<'_, T>, Id> {
            Par::new(SliceIterMut::new(self))
        }
        fn par_chunks(&self, size: usize) -> Par<SliceChunks<'_, T>, Id> {
            Par::new(SliceChunks::new(self, size))
        }
        fn par_chunks_mut(&mut self, size: usize) -> Par<SliceChunksMut<'_, T>, Id> {
            Par::new(SliceChunksMut::new(self, size))
        }
    }

    /// `into_par_iter()` over anything that sequentially iterates and
    /// whose iterator the shim knows how to drive (integer ranges split
    /// in O(1); `Vec` and other exact-size draining iterators take the
    /// materializing path).
    pub trait IntoParallelIterator {
        type Iter: BaseIter;
        fn into_par_iter(self) -> Par<Self::Iter, Id>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::IntoIter: BaseIter,
    {
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Par<Self::Iter, Id> {
            Par::new(self.into_iter())
        }
    }
}

pub mod prelude {
    pub use super::iter_traits::{IntoParallelIterator, ParallelSlice};
    pub use super::Par;
}

/// Builder mirroring `rayon::ThreadPoolBuilder`: selects the thread
/// count that [`ThreadPool::install`] pins for its closure.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` threads (0 = the default budget).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        let threads = if self.num_threads == 0 {
            pool::default_threads()
        } else {
            self.num_threads.min(pool::MAX_WORKERS)
        };
        Ok(ThreadPool { threads })
    }
}

/// A handle pinning an effective thread count (the shim shares one
/// global worker set; `install` scopes the parallelism override).
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count as the effective
    /// parallelism on the calling thread.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        pool::with_threads(self.threads, f)
    }

    /// The thread count `install` pins.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{pool, ThreadPoolBuilder};

    #[test]
    fn fold_reduce_chain_matches_sequential() {
        let data: Vec<u32> = (0..100).collect();
        let (evens, count): (Vec<u32>, u64) = data
            .par_iter()
            .fold(
                || (Vec::new(), 0u64),
                |(mut acc, cnt), &v| {
                    if v % 2 == 0 {
                        acc.push(v);
                    }
                    (acc, cnt + 1)
                },
            )
            .reduce(
                || (Vec::new(), 0),
                |(mut a, ca), (b, cb)| {
                    a.extend_from_slice(&b);
                    (a, ca + cb)
                },
            );
        assert_eq!(count, 100);
        assert_eq!(evens.len(), 50);
        // Ordered merge: the evens come out sorted like the input.
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn chunks_zip_enumerate() {
        let mut out = vec![0usize; 8];
        let tags = [10usize, 20];
        out.par_chunks_mut(4).zip(tags.par_iter()).enumerate().for_each(|(i, (chunk, &t))| {
            for c in chunk.iter_mut() {
                *c = t + i;
            }
        });
        assert_eq!(out, vec![10, 10, 10, 10, 21, 21, 21, 21]);
    }

    #[test]
    fn range_into_par_iter_collects() {
        let v: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let n = 10_000u64;
        let seq: u64 = (0..n).map(|x| x * x % 1007).sum();
        for threads in [1, 2, 4, 8] {
            let par: u64 =
                pool::with_threads(threads, || (0..n).into_par_iter().map(|x| x * x % 1007).sum());
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn with_max_len_bounds_range_sizes() {
        pool::with_threads(4, || {
            let counts: Vec<usize> =
                (0..100u32).into_par_iter().with_max_len(5).fold(|| 0usize, |a, _| a + 1).collect();
            assert!(counts.iter().all(|&c| c <= 5), "oversized range: {counts:?}");
            assert_eq!(counts.iter().sum::<usize>(), 100);
            assert!(counts.len() >= 20);
        });
    }

    #[test]
    fn with_min_len_coalesces_ranges() {
        pool::with_threads(4, || {
            let counts: Vec<usize> = (0..100u32)
                .into_par_iter()
                .with_min_len(40)
                .fold(|| 0usize, |a, _| a + 1)
                .collect();
            // ceil(100 / 40) = 3 ranges: 40, 40, 20.
            assert_eq!(counts, vec![40, 40, 20]);
        });
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool4 = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inside = pool4.install(super::current_num_threads);
        assert_eq!(inside, 4);
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool1.install(super::current_num_threads), 1);
    }

    #[test]
    fn disjoint_mut_chunks_write_in_parallel() {
        pool::with_threads(4, || {
            let mut data = vec![0u32; 4096];
            data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
                for (j, c) in chunk.iter_mut().enumerate() {
                    *c = (i * 64 + j) as u32;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v as usize == i));
        });
    }

    #[test]
    fn filter_count_and_flat_map_collect() {
        pool::with_threads(4, || {
            let evens = (0..1000u32).into_par_iter().filter(|&v| v % 2 == 0).count();
            assert_eq!(evens, 500);
            let expanded: Vec<u32> =
                (0..10u32).into_par_iter().flat_map_iter(|v| vec![v; v as usize]).collect();
            assert_eq!(expanded.len(), 45);
            // Order preserved: non-decreasing.
            assert!(expanded.windows(2).all(|w| w[0] <= w[1]));
        });
    }

    #[test]
    fn uneven_chunks_split_correctly() {
        // 10 elements in chunks of 3 -> 4 chunks, last short; the
        // index-split fast path must hand every chunk to exactly one
        // region regardless of where region boundaries fall.
        pool::with_threads(4, || {
            let data: Vec<u32> = (0..10).collect();
            let sums: Vec<u32> =
                data.par_chunks(3).with_max_len(1).map(|c| c.iter().sum()).collect();
            assert_eq!(sums, vec![3, 12, 21, 9]);
        });
    }

    #[test]
    fn mut_iter_zip_writes_every_element() {
        pool::with_threads(4, || {
            let src: Vec<u64> = (0..4096).collect();
            let mut dst = vec![0u64; 4096];
            dst.par_iter_mut().zip(src.par_iter()).for_each(|(d, &s)| *d = s * 2);
            assert!(dst.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
        });
    }

    #[test]
    fn reduce_is_deterministic_across_thread_counts() {
        let data: Vec<f32> = (0..5000).map(|i| (i as f32) * 0.25).collect();
        let reference: Vec<f32> = pool::with_threads(1, || {
            data.par_iter()
                .fold(Vec::new, |mut a, &x| {
                    a.push(x);
                    a
                })
                .reduce(Vec::new, |mut a, b| {
                    a.extend_from_slice(&b);
                    a
                })
        });
        for threads in [2, 4, 8] {
            let got: Vec<f32> = pool::with_threads(threads, || {
                data.par_iter()
                    .fold(Vec::new, |mut a, &x| {
                        a.push(x);
                        a
                    })
                    .reduce(Vec::new, |mut a, b| {
                        a.extend_from_slice(&b);
                        a
                    })
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }
}
