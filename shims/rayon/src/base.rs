//! Base iterators for the parallel-iterator layer.
//!
//! A *base* is what a parallel pipeline starts from: a slice view, a
//! chunked slice view, an integer range, or a `zip`/`enumerate` stack of
//! those. Every base implements [`BaseIter`], which extends `Iterator`
//! with an optional O(1) index-split capability:
//!
//! * [`BaseIter::SPLITTABLE`]` == true` bases support
//!   [`split_at`](BaseIter::split_at), so a terminal operation carves
//!   the base into per-region sub-bases without buffering a single item
//!   — the index-split fast path. Items (including `&mut` slice
//!   references) are produced lazily on the worker that claims the
//!   region, which keeps steady-state kernels allocation-free.
//! * `SPLITTABLE == false` bases (e.g. `Vec`'s draining iterator) are
//!   drained into a slot buffer by the calling thread first — correct
//!   for any iterator, at the cost of one buffer per region run.
//!
//! The custom slice types exist because the standard library's
//! `slice::IterMut`/`ChunksMut` cannot give back their underlying slice
//! on stable Rust; holding the slice directly makes `split_at_mut`-based
//! splitting trivial and safe (no `unsafe` in this module).

/// An exact-length base iterator that may support O(1) index splitting.
///
/// `split_len`/`split_at` are only called when [`SPLITTABLE`] is `true`;
/// the defaults panic so non-splittable implementations are one line.
///
/// [`SPLITTABLE`]: BaseIter::SPLITTABLE
pub trait BaseIter: Iterator + Sized {
    /// Whether [`split_at`](BaseIter::split_at) is available in O(1).
    const SPLITTABLE: bool = false;

    /// Remaining items (exact). Only called when `SPLITTABLE`.
    fn split_len(&self) -> usize {
        unreachable!("split_len on a non-splittable base")
    }

    /// Splits into (first `n` items, rest) without iterating; `n` must
    /// not exceed [`split_len`](BaseIter::split_len). Only called when
    /// `SPLITTABLE`.
    fn split_at(self, _n: usize) -> (Self, Self) {
        unreachable!("split_at on a non-splittable base")
    }
}

// ---------------------------------------------------------------------
// Slice bases.
// ---------------------------------------------------------------------

/// Shared-slice base (`par_iter`).
pub struct SliceIter<'a, T> {
    s: &'a [T],
}

impl<'a, T> SliceIter<'a, T> {
    pub(crate) fn new(s: &'a [T]) -> Self {
        Self { s }
    }
}

impl<'a, T> Iterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        let (first, rest) = self.s.split_first()?;
        self.s = rest;
        Some(first)
    }
}

impl<T> BaseIter for SliceIter<'_, T> {
    const SPLITTABLE: bool = true;
    fn split_len(&self) -> usize {
        self.s.len()
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        let (a, b) = self.s.split_at(n);
        (Self { s: a }, Self { s: b })
    }
}

/// Mutable-slice base (`par_iter_mut`).
pub struct SliceIterMut<'a, T> {
    s: &'a mut [T],
}

impl<'a, T> SliceIterMut<'a, T> {
    pub(crate) fn new(s: &'a mut [T]) -> Self {
        Self { s }
    }
}

impl<'a, T> Iterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    fn next(&mut self) -> Option<&'a mut T> {
        let (first, rest) = std::mem::take(&mut self.s).split_first_mut()?;
        self.s = rest;
        Some(first)
    }
}

impl<T> BaseIter for SliceIterMut<'_, T> {
    const SPLITTABLE: bool = true;
    fn split_len(&self) -> usize {
        self.s.len()
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        let (a, b) = self.s.split_at_mut(n);
        (Self { s: a }, Self { s: b })
    }
}

/// Shared-chunks base (`par_chunks`); the last chunk may be short.
pub struct SliceChunks<'a, T> {
    s: &'a [T],
    size: usize,
}

impl<'a, T> SliceChunks<'a, T> {
    pub(crate) fn new(s: &'a [T], size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        Self { s, size }
    }
}

impl<'a, T> Iterator for SliceChunks<'a, T> {
    type Item = &'a [T];
    fn next(&mut self) -> Option<&'a [T]> {
        if self.s.is_empty() {
            return None;
        }
        let (head, rest) = self.s.split_at(self.size.min(self.s.len()));
        self.s = rest;
        Some(head)
    }
}

impl<T> BaseIter for SliceChunks<'_, T> {
    const SPLITTABLE: bool = true;
    fn split_len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        let at = (n * self.size).min(self.s.len());
        let (a, b) = self.s.split_at(at);
        (Self { s: a, size: self.size }, Self { s: b, size: self.size })
    }
}

/// Mutable-chunks base (`par_chunks_mut`); the last chunk may be short.
pub struct SliceChunksMut<'a, T> {
    s: &'a mut [T],
    size: usize,
}

impl<'a, T> SliceChunksMut<'a, T> {
    pub(crate) fn new(s: &'a mut [T], size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        Self { s, size }
    }
}

impl<'a, T> Iterator for SliceChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn next(&mut self) -> Option<&'a mut [T]> {
        if self.s.is_empty() {
            return None;
        }
        let s = std::mem::take(&mut self.s);
        let at = self.size.min(s.len());
        let (head, rest) = s.split_at_mut(at);
        self.s = rest;
        Some(head)
    }
}

impl<T> BaseIter for SliceChunksMut<'_, T> {
    const SPLITTABLE: bool = true;
    fn split_len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        let at = (n * self.size).min(self.s.len());
        let (a, b) = self.s.split_at_mut(at);
        (Self { s: a, size: self.size }, Self { s: b, size: self.size })
    }
}

// ---------------------------------------------------------------------
// Integer-range bases.
// ---------------------------------------------------------------------

macro_rules! range_base {
    ($($t:ty),*) => {$(
        impl BaseIter for std::ops::Range<$t> {
            const SPLITTABLE: bool = true;
            fn split_len(&self) -> usize {
                if self.end > self.start { (self.end - self.start) as usize } else { 0 }
            }
            fn split_at(self, n: usize) -> (Self, Self) {
                let mid = self.start + n as $t;
                (self.start..mid, mid..self.end)
            }
        }
    )*};
}

range_base!(u32, u64, usize);

// ---------------------------------------------------------------------
// Combinator bases.
// ---------------------------------------------------------------------

/// Enumerating base (`Par::enumerate`); splitting preserves indices.
pub struct Enumerate<B> {
    base: B,
    idx: usize,
}

impl<B> Enumerate<B> {
    pub(crate) fn new(base: B) -> Self {
        Self { base, idx: 0 }
    }
}

impl<B: Iterator> Iterator for Enumerate<B> {
    type Item = (usize, B::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let x = self.base.next()?;
        let i = self.idx;
        self.idx += 1;
        Some((i, x))
    }
}

impl<B: BaseIter> BaseIter for Enumerate<B> {
    const SPLITTABLE: bool = B::SPLITTABLE;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(n);
        (Self { base: a, idx: self.idx }, Self { base: b, idx: self.idx + n })
    }
}

/// Zipping base (`Par::zip`); stops at the shorter side, like `std`.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> Zip<A, B> {
    pub(crate) fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: Iterator, B: Iterator> Iterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn next(&mut self) -> Option<Self::Item> {
        Some((self.a.next()?, self.b.next()?))
    }
}

impl<A: BaseIter, B: BaseIter> BaseIter for Zip<A, B> {
    const SPLITTABLE: bool = A::SPLITTABLE && B::SPLITTABLE;
    fn split_len(&self) -> usize {
        self.a.split_len().min(self.b.split_len())
    }
    fn split_at(self, n: usize) -> (Self, Self) {
        // Both sides split at min(n, len): n never exceeds split_len,
        // but the longer side keeps its surplus in the tail (dropped
        // unread, exactly like the sequential zip).
        let (a0, a1) = self.a.split_at(n);
        let (b0, b1) = self.b.split_at(n);
        (Self { a: a0, b: b0 }, Self { a: a1, b: b1 })
    }
}

// ---------------------------------------------------------------------
// Fallback (materializing) bases.
// ---------------------------------------------------------------------

/// `Vec`'s draining iterator: exact-size but not O(1)-splittable
/// (ownership of the buffer cannot be divided without allocating), so it
/// takes the materializing path. Used for short task lists (tile spans,
/// per-range fold accumulators), where buffering is trivial.
impl<T> BaseIter for std::vec::IntoIter<T> {}

/// Array draining iterator: same story as `Vec`'s.
impl<T, const N: usize> BaseIter for std::array::IntoIter<T, N> {}
