//! The global work-stealing thread pool behind the `rayon` shim.
//!
//! # Threading model
//!
//! A single process-wide registry owns a set of detached worker threads,
//! spawned lazily the first time a parallel region actually needs them
//! and parked on a condvar between regions. A parallel region ("job") is
//! a broadcast of `tasks` indexed units of work: the calling thread and
//! up to `limit` workers repeatedly claim the next unclaimed index with
//! an atomic `fetch_add` — classic dynamic self-scheduling, which is
//! work stealing in its simplest contiguous-range form. The caller
//! always participates, so a region completes even if every worker is
//! busy elsewhere; workers that arrive after the range is exhausted
//! leave immediately.
//!
//! The default worker budget is `SLIMSELL_THREADS` (if set to a positive
//! integer) or [`std::thread::available_parallelism`]. A scoped override
//! — [`with_threads`], used by `ThreadPool::install` — temporarily
//! changes the *effective* parallelism on the calling thread; the pool
//! grows on demand (up to [`MAX_WORKERS`]) when an override requests
//! more threads than have been spawned so far.
//!
//! Known limitation: the registry broadcasts through a single job slot,
//! so when several user threads open top-level regions *concurrently*
//! the newest job displaces older ones from the slot and an earlier
//! caller may end up executing its tasks alone (correct, just less
//! parallel — the caller always participates). Nested regions behave
//! the same way by design. The workspace's hot paths are single-caller,
//! so this trade keeps the broadcast path trivial; revisit with
//! per-caller injection queues if multi-caller throughput ever matters.
//!
//! # Safety argument
//!
//! Jobs borrow the caller's stack (the work closure and the data it
//! captures are not `'static`), so the job pointer handed to workers is
//! lifetime-erased. Soundness rests on a strict quiescence protocol:
//!
//! 1. Workers may only obtain the job pointer from the registry slot,
//!    and they register (`entered`) under the registry lock.
//! 2. Before waiting, the caller retracts the job from the slot under
//!    the same lock and snapshots `entered`; after that point no new
//!    worker can observe the job.
//! 3. Each registered worker bumps the `exited` latch as its very last
//!    use of the job; the latch lives in an `Arc` cloned at entry, so
//!    even the final wake-up touches only memory the worker co-owns.
//! 4. The caller returns (invalidating the job) only once
//!    `exited == entered`, i.e. after every registered worker has
//!    finished with the job, and propagates the first captured panic.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on spawned workers, far above any sane `SLIMSELL_THREADS`.
pub const MAX_WORKERS: usize = 256;

/// How many claimable ranges each participating thread gets on average;
/// over-partitioning is what lets fast threads steal from slow ones.
pub const OVERSPLIT: usize = 4;

/// Default thread budget: `SLIMSELL_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism (min 1).
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("SLIMSELL_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .map(|n| n.min(MAX_WORKERS))
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Effective parallelism for regions started on this thread.
pub fn current_threads() -> usize {
    THREAD_OVERRIDE.with(|o| o.get()).unwrap_or_else(default_threads)
}

/// Runs `f` with the effective parallelism pinned to `n` on the calling
/// thread (the mechanism behind `ThreadPool::install`).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n.clamp(1, MAX_WORKERS))));
    let _restore = Restore(prev);
    f()
}

/// Executes `f(0) ..= f(tasks - 1)`, distributing task indices over the
/// calling thread plus up to `current_threads() - 1` pool workers.
/// Returns after every task has run; panics from any participant are
/// propagated (first one wins).
pub fn run(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    let threads = current_threads().min(tasks);
    if threads <= 1 || tasks <= 1 {
        for k in 0..tasks {
            f(k);
        }
        return;
    }
    registry().run_job(threads - 1, tasks, f);
}

struct Registry {
    state: Mutex<RegState>,
    work_cv: Condvar,
}

struct RegState {
    /// Monotonic job id; workers use it to avoid re-entering a job.
    seq: u64,
    /// The currently broadcast job, if any.
    job: Option<JobRef>,
    /// Number of worker threads spawned so far.
    workers: usize,
}

/// Lifetime-erased shared reference to a stack-allocated [`Job`].
#[derive(Clone, Copy)]
struct JobRef(*const Job);
// SAFETY: JobRef is only dereferenced while the quiescence protocol
// (module docs) guarantees the Job is alive; Job itself is Sync.
unsafe impl Send for JobRef {}

type PanicPayload = Box<dyn Any + Send>;

struct Job {
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Total number of tasks.
    tasks: usize,
    /// Maximum number of workers allowed to participate.
    limit: usize,
    /// Workers that registered for this job (only grows under the
    /// registry lock; stable once the job is retracted from the slot).
    entered: AtomicUsize,
    /// Exit latch: count of workers done with the job, plus its condvar.
    done: Arc<(Mutex<usize>, Condvar)>,
    /// First panic raised by any participant.
    panic: Mutex<Option<PanicPayload>>,
    /// The work closure, lifetime-erased (see module safety argument).
    func: *const (dyn Fn(usize) + Sync),
}

// SAFETY: `func` is only called through `&Job` while the job is alive;
// the pointer itself is never mutated. All other fields are Sync.
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs tasks until the range is exhausted, funneling
    /// panics into the job's panic slot.
    fn work(&self) {
        let func = unsafe { &*self.func };
        let result = catch_unwind(AssertUnwindSafe(|| loop {
            let k = self.next.fetch_add(1, Ordering::Relaxed);
            if k >= self.tasks {
                break;
            }
            func(k);
        }));
        if let Err(payload) = result {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        state: Mutex::new(RegState { seq: 0, job: None, workers: 0 }),
        work_cv: Condvar::new(),
    })
}

impl Registry {
    fn run_job(&'static self, limit: usize, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the job outlives every access — see the quiescence
        // protocol below and in the module docs.
        let func: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let job = Job {
            next: AtomicUsize::new(0),
            tasks,
            limit,
            entered: AtomicUsize::new(0),
            done: Arc::new((Mutex::new(0), Condvar::new())),
            panic: Mutex::new(None),
            func,
        };

        // Publish and make sure enough workers exist to serve `limit`.
        let my_seq = {
            let mut st = self.state.lock().unwrap();
            st.seq += 1;
            st.job = Some(JobRef(&job));
            let want = limit.min(MAX_WORKERS);
            while st.workers < want {
                let idx = st.workers;
                std::thread::Builder::new()
                    .name(format!("slimsell-pool-{idx}"))
                    .spawn(move || worker_main(registry()))
                    .expect("failed to spawn pool worker");
                st.workers += 1;
            }
            st.seq
        };
        self.work_cv.notify_all();

        // Participate until the task range is exhausted.
        job.work();

        // Retract the job so no new worker can register, then snapshot
        // the registration count (stable from here on).
        let entered = {
            let mut st = self.state.lock().unwrap();
            if st.seq == my_seq {
                st.job = None;
            }
            job.entered.load(Ordering::Acquire)
        };

        // Quiescence: wait until every registered worker has exited.
        let (lock, cv) = &*job.done;
        let mut exited = lock.lock().unwrap();
        while *exited < entered {
            exited = cv.wait(exited).unwrap();
        }
        drop(exited);

        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

fn worker_main(reg: &'static Registry) {
    let mut last_seq = 0u64;
    loop {
        // Wait for a job this worker has not seen and may still join.
        let (job_ref, done) = {
            let mut st = reg.state.lock().unwrap();
            loop {
                if let Some(jr) = st.job {
                    if st.seq != last_seq {
                        last_seq = st.seq;
                        let job = unsafe { &*jr.0 };
                        let accepted = job
                            .entered
                            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |e| {
                                (e < job.limit).then_some(e + 1)
                            })
                            .is_ok();
                        if accepted {
                            break (jr, Arc::clone(&job.done));
                        }
                        continue; // over limit: skip this job
                    }
                }
                st = reg.work_cv.wait(st).unwrap();
            }
        };

        let job = unsafe { &*job_ref.0 };
        job.work();

        // Last touch of the job is through the co-owned latch.
        let (lock, cv) = &*done;
        *lock.lock().unwrap() += 1;
        cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        with_threads(4, || {
            run(hits.len(), &|k| {
                hits[k].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_when_one_thread() {
        // No pool interaction at all: a non-Sync-friendly check via
        // thread id equality inside the task body.
        let main = std::thread::current().id();
        with_threads(1, || {
            run(64, &|_| assert_eq!(std::thread::current().id(), main));
        });
    }

    #[test]
    fn nested_regions_complete() {
        let total = AtomicUsize::new(0);
        with_threads(4, || {
            run(8, &|_| {
                run(8, &|_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn override_is_scoped() {
        let before = current_threads();
        with_threads(3, || assert_eq!(current_threads(), 3));
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn blocking_tasks_overlap_in_wall_clock() {
        // Proof of real concurrency independent of the host's core
        // count: sleeping tasks overlap even on a 1-CPU machine, so 8
        // sleeps of 50 ms across 8 threads finish well under the
        // sequential 400 ms (expected ~50-100 ms). Timing noise on a
        // loaded CI runner can stretch one attempt, so require only one
        // success in three tries before declaring the pool serial.
        let mut best = std::time::Duration::MAX;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            with_threads(8, || {
                run(8, &|_| std::thread::sleep(std::time::Duration::from_millis(50)));
            });
            best = best.min(t0.elapsed());
            if best.as_millis() < 250 {
                return;
            }
        }
        panic!("no overlap across 3 attempts: best {best:?} vs 400 ms sequential");
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                run(100, &|k| {
                    if k == 37 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(caught.is_err());
    }
}
