//! Parallel determinism: every kernel's outputs must be *byte-equal* —
//! not merely "same reachable set" — across thread counts. Covered: the
//! BFS engine (every semiring, with and without SlimChunk tiling, under
//! both schedules), direction-optimized BFS, and the four secondary
//! kernels riding the shared tiling module — PageRank, SSSP,
//! multi-source BFS and betweenness centrality.
//!
//! This holds by construction: every chunk's math is independent, tiles
//! write disjoint positional slabs, and the iteration-level reduce uses
//! commutative-associative merges — so scheduling can never reorder a
//! result. Ordered floating-point reductions (the PageRank residual,
//! the betweenness dependency accumulation) are computed per chunk and
//! merged in chunk order, never across tile boundaries. The 1-thread
//! run takes each kernel's sequential fallback path (no pool
//! interaction at all), which makes it the reference.
//!
//! Thread counts are pinned with `ThreadPoolBuilder::install`, the
//! in-process equivalent of running under `SLIMSELL_THREADS=1/2/8`
//! (which CI also exercises across the whole suite).

use slimsell::core::dirop::{run_diropt, DirOptOptions};
use slimsell::core::{
    betweenness_from_sources_with, multi_bfs_with, BetweennessOptions, MsBfsOptions,
};
use slimsell::prelude::*;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
}

fn graph() -> (CsrGraph, VertexId) {
    let g = kronecker(10, 16.0, KroneckerParams::GRAPH500, 7);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    (g, root)
}

/// Runs one configuration at every thread count and asserts the full
/// output (distances, parents, and per-iteration work counters) is
/// identical to the 1-thread sequential oracle.
fn check_engine<S: Semiring>(g: &CsrGraph, root: VertexId, opts: &BfsOptions, label: &str) {
    let slim = SlimSellMatrix::<8>::build(g, g.num_vertices());
    let reference = with_threads(1, || BfsEngine::run::<_, S, 8>(&slim, root, opts));
    // Sanity: the oracle itself is correct.
    assert_eq!(reference.dist, serial_bfs(g, root).dist, "{label}: oracle wrong");
    for threads in THREAD_COUNTS {
        let out = with_threads(threads, || BfsEngine::run::<_, S, 8>(&slim, root, opts));
        assert_eq!(out.dist, reference.dist, "{label}: dist diverged at {threads} threads");
        assert_eq!(out.parent, reference.parent, "{label}: parents diverged at {threads} threads");
        assert_eq!(
            out.stats.total_cells(),
            reference.stats.total_cells(),
            "{label}: work counters diverged at {threads} threads"
        );
        assert_eq!(
            out.stats.total_skipped(),
            reference.stats.total_skipped(),
            "{label}: skip counters diverged at {threads} threads"
        );
        assert_eq!(
            out.stats.total_col_steps(),
            reference.stats.total_col_steps(),
            "{label}: column-step counters diverged at {threads} threads"
        );
        assert_eq!(
            out.stats.total_not_on_worklist(),
            reference.stats.total_not_on_worklist(),
            "{label}: worklist exclusion counters diverged at {threads} threads"
        );
        assert_eq!(
            out.stats.total_activations(),
            reference.stats.total_activations(),
            "{label}: activation counters diverged at {threads} threads"
        );
        assert_eq!(
            out.stats.iters.iter().map(|i| i.sweep_mode).collect::<Vec<_>>(),
            reference.stats.iters.iter().map(|i| i.sweep_mode).collect::<Vec<_>>(),
            "{label}: sweep-mode trace diverged at {threads} threads"
        );
    }
}

#[test]
fn all_semirings_bit_identical_across_thread_counts() {
    let (g, root) = graph();
    let opts = BfsOptions::default();
    check_engine::<TropicalSemiring>(&g, root, &opts, "tropical");
    check_engine::<BooleanSemiring>(&g, root, &opts, "boolean");
    check_engine::<RealSemiring>(&g, root, &opts, "real");
    check_engine::<SelMaxSemiring>(&g, root, &opts, "sel-max");
}

#[test]
fn schedules_and_slimchunk_bit_identical() {
    let (g, root) = graph();
    for schedule in [Schedule::Static, Schedule::Dynamic] {
        for slimchunk in [None, Some(4)] {
            let opts = BfsOptions { slimchunk, ..Default::default() }.schedule(schedule);
            check_engine::<TropicalSemiring>(
                &g,
                root,
                &opts,
                &format!("{schedule:?}/{slimchunk:?}"),
            );
            check_engine::<SelMaxSemiring>(&g, root, &opts, &format!("{schedule:?}/{slimchunk:?}"));
        }
    }
}

#[test]
fn worklist_all_semirings_bit_identical_across_thread_counts() {
    // The worklist engine's seeding, tile partition and changed-chunk
    // harvest are position-deterministic; outputs and every work
    // counter (worklist sizes, activations, exclusions) must be
    // byte-equal at any thread count.
    let (g, root) = graph();
    let opts = BfsOptions::default().sweep(SweepMode::Worklist);
    check_engine::<TropicalSemiring>(&g, root, &opts, "tropical+worklist");
    check_engine::<BooleanSemiring>(&g, root, &opts, "boolean+worklist");
    check_engine::<RealSemiring>(&g, root, &opts, "real+worklist");
    check_engine::<SelMaxSemiring>(&g, root, &opts, "sel-max+worklist");
}

#[test]
fn worklist_schedules_and_slimchunk_bit_identical() {
    let (g, root) = graph();
    for schedule in [Schedule::Static, Schedule::Dynamic] {
        for slimchunk in [None, Some(4)] {
            let opts = BfsOptions { slimchunk, ..Default::default() }
                .sweep(SweepMode::Worklist)
                .schedule(schedule);
            let label = format!("worklist/{schedule:?}/{slimchunk:?}");
            check_engine::<TropicalSemiring>(&g, root, &opts, &label);
            check_engine::<SelMaxSemiring>(&g, root, &opts, &label);
        }
    }
}

#[test]
fn adaptive_all_semirings_bit_identical_across_thread_counts() {
    // The adaptive controller's decisions depend only on deterministic
    // counters (pending sizes, worklist lengths), so the full decision
    // trace — which iterations ran full vs worklist, checked via the
    // sweep_mode assertions in check_engine — and every output must be
    // byte-equal at any thread count.
    let (g, root) = graph();
    let opts = BfsOptions::default().sweep(SweepMode::Adaptive);
    check_engine::<TropicalSemiring>(&g, root, &opts, "tropical+adaptive");
    check_engine::<BooleanSemiring>(&g, root, &opts, "boolean+adaptive");
    check_engine::<RealSemiring>(&g, root, &opts, "real+adaptive");
    check_engine::<SelMaxSemiring>(&g, root, &opts, "sel-max+adaptive");
}

#[test]
fn adaptive_schedules_and_slimchunk_bit_identical() {
    let (g, root) = graph();
    for schedule in [Schedule::Static, Schedule::Dynamic] {
        for slimchunk in [None, Some(4)] {
            let opts = BfsOptions { slimchunk, ..Default::default() }
                .sweep(SweepMode::Adaptive)
                .schedule(schedule);
            let label = format!("adaptive/{schedule:?}/{slimchunk:?}");
            check_engine::<TropicalSemiring>(&g, root, &opts, &label);
            check_engine::<SelMaxSemiring>(&g, root, &opts, &label);
        }
    }
}

#[test]
fn adaptive_direction_optimized_bit_identical() {
    let (g, root) = graph();
    let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let opts = DirOptOptions {
        spmv: BfsOptions::default().sweep(SweepMode::Adaptive),
        ..Default::default()
    };
    let reference = with_threads(1, || run_diropt(&slim, root, &opts));
    let full_opts =
        DirOptOptions { spmv: BfsOptions::default().sweep(SweepMode::Full), ..Default::default() };
    let full = with_threads(1, || run_diropt(&slim, root, &full_opts));
    assert_eq!(reference.bfs.dist, full.bfs.dist, "adaptive diropt distances diverged");
    assert_eq!(reference.modes, full.modes, "adaptive diropt mode sequence diverged");
    for threads in THREAD_COUNTS {
        let out = with_threads(threads, || run_diropt(&slim, root, &opts));
        assert_eq!(out.bfs.dist, reference.bfs.dist, "adaptive diropt dist at {threads} threads");
        assert_eq!(out.modes, reference.modes, "adaptive diropt modes at {threads} threads");
    }
}

#[test]
fn worklist_direction_optimized_bit_identical() {
    let (g, root) = graph();
    let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let opts = DirOptOptions {
        spmv: BfsOptions::default().sweep(SweepMode::Worklist),
        ..Default::default()
    };
    let reference = with_threads(1, || run_diropt(&slim, root, &opts));
    // The worklist must not perturb the heuristic: same distances and
    // mode sequence as the full-sweep diropt. Pin the sweep mode
    // explicitly — under the SLIMSELL_SWEEP=worklist CI leg the
    // default would silently be worklist mode and the comparison
    // vacuous.
    let full_opts =
        DirOptOptions { spmv: BfsOptions::default().sweep(SweepMode::Full), ..Default::default() };
    let full = with_threads(1, || run_diropt(&slim, root, &full_opts));
    assert_eq!(reference.bfs.dist, full.bfs.dist, "worklist diropt distances diverged");
    assert_eq!(reference.modes, full.modes, "worklist diropt mode sequence diverged");
    for threads in THREAD_COUNTS {
        let out = with_threads(threads, || run_diropt(&slim, root, &opts));
        assert_eq!(out.bfs.dist, reference.bfs.dist, "wl diropt dist at {threads} threads");
        assert_eq!(out.modes, reference.modes, "wl diropt modes at {threads} threads");
    }
}

#[test]
fn direction_optimized_bit_identical() {
    let (g, root) = graph();
    let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let reference = with_threads(1, || run_diropt(&slim, root, &DirOptOptions::default()));
    for threads in THREAD_COUNTS {
        let out = with_threads(threads, || run_diropt(&slim, root, &DirOptOptions::default()));
        assert_eq!(out.bfs.dist, reference.bfs.dist, "diropt dist at {threads} threads");
        assert_eq!(out.modes, reference.modes, "diropt mode sequence at {threads} threads");
    }
}

#[test]
fn masked_engine_bit_identical_across_thread_counts() {
    // Masked sweeps ride the same positional-write machinery: a vertex
    // mask must not introduce any thread-count dependence, in any sweep
    // mode — distances, skip accounting and activation counts included.
    let (g, root) = graph();
    let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let mut keep: Vec<VertexId> = (0..g.num_vertices() as VertexId / 2).collect();
    keep.push(root);
    let mask = Arc::new(VertexMask::from_original(slim.structure(), keep));
    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
        let opts = BfsOptions::default().sweep(sweep).mask(Some(Arc::clone(&mask)));
        let reference =
            with_threads(1, || BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &opts));
        for threads in THREAD_COUNTS {
            let out = with_threads(threads, || {
                BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &opts)
            });
            assert_eq!(out.dist, reference.dist, "masked {sweep:?} dist at {threads} threads");
            assert_eq!(
                out.stats.total_col_steps(),
                reference.stats.total_col_steps(),
                "masked {sweep:?} column steps at {threads} threads"
            );
            assert_eq!(
                out.stats.total_skipped(),
                reference.stats.total_skipped(),
                "masked {sweep:?} skip counters at {threads} threads"
            );
            assert_eq!(
                out.stats.total_activations(),
                reference.stats.total_activations(),
                "masked {sweep:?} activations at {threads} threads"
            );
        }
    }
}

#[test]
fn masked_descriptor_bit_identical_across_thread_counts() {
    // The descriptor driver's shrinking visited-complement mask is
    // recomputed from deterministic per-iteration change masks, so its
    // whole trace (distances, push/pull modes, work counters) must be
    // byte-equal at any thread count.
    let (g, root) = graph();
    let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let mut keep: Vec<VertexId> = (0..g.num_vertices() as VertexId / 2).collect();
    keep.push(root);
    let mask = Arc::new(VertexMask::from_original(slim.structure(), keep));
    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
        let desc = Descriptor::default().mask(Arc::clone(&mask)).sweep(sweep);
        let reference = with_threads(1, || run_descriptor(&slim, root, &desc));
        for threads in THREAD_COUNTS {
            let out = with_threads(threads, || run_descriptor(&slim, root, &desc));
            assert_eq!(
                out.bfs.dist, reference.bfs.dist,
                "masked descriptor {sweep:?} dist at {threads} threads"
            );
            assert_eq!(
                out.modes, reference.modes,
                "masked descriptor {sweep:?} modes at {threads} threads"
            );
            assert_eq!(
                out.bfs.stats.total_col_steps(),
                reference.bfs.stats.total_col_steps(),
                "masked descriptor {sweep:?} column steps at {threads} threads"
            );
            assert_eq!(
                out.bfs.stats.total_frontier_probes(),
                reference.bfs.stats.total_frontier_probes(),
                "masked descriptor {sweep:?} frontier probes at {threads} threads"
            );
        }
    }
}

/// f32 slice -> bit patterns, so `-0.0 != 0.0` and comparisons are
/// byte-exact rather than merely numerically equal.
fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// f64 slice -> bit patterns.
fn bits64(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn pagerank_bit_identical_across_thread_counts() {
    let (g, _) = graph();
    let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let opts = PageRankOptions::default();
    let reference = with_threads(1, || slimsell::core::pagerank::pagerank(&m, &opts));
    assert!(reference.iterations > 1, "graph converged trivially; test is vacuous");
    for threads in THREAD_COUNTS {
        let out = with_threads(threads, || slimsell::core::pagerank::pagerank(&m, &opts));
        assert_eq!(
            bits32(&out.scores),
            bits32(&reference.scores),
            "pagerank scores diverged at {threads} threads"
        );
        assert_eq!(
            out.residual.to_bits(),
            reference.residual.to_bits(),
            "pagerank residual diverged at {threads} threads"
        );
        assert_eq!(
            out.iterations, reference.iterations,
            "pagerank iteration count diverged at {threads} threads"
        );
    }
}

#[test]
fn sssp_bit_identical_across_thread_counts() {
    // Deterministic weights derived from the endpoints of a Kronecker
    // graph's edges; every thread count sees the same weighted graph
    // (the same twin the scaling bench measures).
    let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 11);
    let wg = slimsell::graph::weighted::synthetic_weighted_twin(&g);
    let m = WeightedSellCSigma::<8>::build(&wg, wg.num_vertices());
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    // The 1-thread full-sweep run is the oracle for every sweep mode:
    // worklist and adaptive SSSP must reproduce its labels to the bit
    // at every thread count (and their own counters must be
    // thread-count-invariant too).
    let full_opts = SsspOptions::default().sweep(SweepMode::Full);
    let oracle = with_threads(1, || sssp_with(&m, root, &full_opts));
    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
        let opts = SsspOptions::default().sweep(sweep);
        let reference = with_threads(1, || sssp_with(&m, root, &opts));
        assert_eq!(
            bits32(&reference.dist),
            bits32(&oracle.dist),
            "sssp {sweep:?} labels diverged from the full-sweep oracle"
        );
        assert_eq!(reference.iterations, oracle.iterations, "sssp {sweep:?} sweep count");
        for threads in THREAD_COUNTS {
            let out = with_threads(threads, || sssp_with(&m, root, &opts));
            assert_eq!(
                bits32(&out.dist),
                bits32(&reference.dist),
                "sssp {sweep:?} distances diverged at {threads} threads"
            );
            assert_eq!(
                out.iterations, reference.iterations,
                "sssp {sweep:?} sweep count diverged at {threads} threads"
            );
            assert_eq!(
                out.stats.total_col_steps(),
                reference.stats.total_col_steps(),
                "sssp {sweep:?} column steps diverged at {threads} threads"
            );
            assert_eq!(
                out.stats.iters.iter().map(|i| i.sweep_mode).collect::<Vec<_>>(),
                reference.stats.iters.iter().map(|i| i.sweep_mode).collect::<Vec<_>>(),
                "sssp {sweep:?} mode trace diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn msbfs_bit_identical_across_thread_counts() {
    // Multi-source BFS across every sweep mode: distances must match
    // the 1-thread full-sweep oracle, and within each mode every work
    // counter must be invariant to the thread count.
    let (g, _) = graph();
    let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let r = slimsell::graph::stats::sample_roots(&g, 4);
    let roots: [VertexId; 4] = [r[0], r[1 % r.len()], r[2 % r.len()], r[3 % r.len()]];
    let full_opts = MsBfsOptions::default().sweep(SweepMode::Full);
    let oracle = with_threads(1, || multi_bfs_with::<_, 8, 4>(&m, &roots, &full_opts));
    assert!(oracle.completed, "msbfs oracle hit its iteration cap");
    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
        let opts = MsBfsOptions::default().sweep(sweep);
        let reference = with_threads(1, || multi_bfs_with::<_, 8, 4>(&m, &roots, &opts));
        assert_eq!(
            reference.dist, oracle.dist,
            "msbfs {sweep:?} distances diverged from the full-sweep oracle"
        );
        assert_eq!(reference.iterations, oracle.iterations, "msbfs {sweep:?} sweep count");
        for threads in THREAD_COUNTS {
            let out = with_threads(threads, || multi_bfs_with::<_, 8, 4>(&m, &roots, &opts));
            assert_eq!(
                out.dist, reference.dist,
                "msbfs {sweep:?} distances diverged at {threads} threads"
            );
            assert_eq!(
                out.iterations, reference.iterations,
                "msbfs {sweep:?} iteration count diverged at {threads} threads"
            );
            assert_eq!(
                out.stats.total_cells(),
                reference.stats.total_cells(),
                "msbfs {sweep:?} cell counters diverged at {threads} threads"
            );
            assert_eq!(
                out.stats.total_col_steps(),
                reference.stats.total_col_steps(),
                "msbfs {sweep:?} column steps diverged at {threads} threads"
            );
            assert_eq!(
                out.stats.total_activations(),
                reference.stats.total_activations(),
                "msbfs {sweep:?} activation counters diverged at {threads} threads"
            );
            assert_eq!(
                out.stats.iters.iter().map(|i| i.sweep_mode).collect::<Vec<_>>(),
                reference.stats.iters.iter().map(|i| i.sweep_mode).collect::<Vec<_>>(),
                "msbfs {sweep:?} mode trace diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn betweenness_bit_identical_across_thread_counts() {
    // Sampled betweenness: forward sweeps are tiled, the backward
    // accumulation is sequential by design — f64 outputs must still be
    // byte-equal at every thread count.
    let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 5);
    let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let r = slimsell::graph::stats::sample_roots(&g, 4);
    let oracle = with_threads(1, || {
        betweenness_from_sources_with(&m, &r, &BetweennessOptions::default().sweep(SweepMode::Full))
    });
    assert!(oracle.iter().any(|&b| b > 0.0), "all-zero centralities; test is vacuous");
    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
        let opts = BetweennessOptions::default().sweep(sweep);
        let reference = with_threads(1, || betweenness_from_sources_with(&m, &r, &opts));
        assert_eq!(
            bits64(&reference),
            bits64(&oracle),
            "betweenness {sweep:?} diverged from the full-sweep oracle"
        );
        for threads in THREAD_COUNTS {
            let out = with_threads(threads, || betweenness_from_sources_with(&m, &r, &opts));
            assert_eq!(
                bits64(&out),
                bits64(&reference),
                "betweenness {sweep:?} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn serve_concurrent_clients_bit_identical() {
    // The serving layer must not trade determinism for throughput: the
    // same root always yields the same distances no matter how many
    // client threads race to submit, how the admission queue slices the
    // stream into batches, or which lanes a query lands on. The kernel
    // thread-count axis is exercised by running this whole suite under
    // the SLIMSELL_THREADS CI matrix.
    let (g, _) = graph();
    let n = g.num_vertices();
    let m = Arc::new(SlimSellMatrix::<8>::build(&g, n));
    let roots: Vec<VertexId> =
        slimsell::graph::stats::sample_roots(&g, 8).into_iter().cycle().take(32).collect();
    // Standalone single-source oracle per distinct root.
    let oracle: Vec<Vec<u32>> = roots
        .iter()
        .map(|&r| BfsEngine::run::<_, TropicalSemiring, 8>(&*m, r, &BfsOptions::default()).dist)
        .collect();
    for clients in [2usize, 8] {
        let server = BfsServer::<_, 8, 4>::start(Arc::clone(&m), ServeOptions::default());
        let mut results: Vec<(usize, Vec<u32>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let server = &server;
                    let roots = &roots;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        for k in (c..roots.len()).step_by(clients) {
                            let out = server.submit(roots[k]).wait().expect("query failed");
                            got.push((k, out.dist));
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let stats = server.shutdown().stats;
        results.sort_by_key(|(k, _)| *k);
        assert_eq!(results.len(), roots.len(), "{clients} clients: lost queries");
        for (k, dist) in &results {
            assert_eq!(
                dist, &oracle[*k],
                "{clients} clients: query {k} (root {}) diverged from standalone BFS",
                roots[*k]
            );
        }
        assert_eq!(stats.submitted, roots.len() as u64, "{clients} clients: submitted");
        assert_eq!(stats.served, roots.len() as u64, "{clients} clients: served");
        assert_eq!(stats.submitted, stats.resolved(), "{clients} clients: stats incoherent");
        assert_eq!(stats.coalesced, stats.submitted, "{clients} clients: coalesced");
        assert!(stats.batches >= roots.len() as u64 / 4, "{clients} clients: batch count");
    }
}

#[test]
fn generated_graphs_identical_across_thread_counts() {
    // Kronecker generation itself must not depend on the thread count
    // (fixed block seeding), or no cross-thread comparison makes sense.
    let reference = with_threads(1, || kronecker(9, 8.0, KroneckerParams::GRAPH500, 3));
    for threads in [2, 8] {
        let g = with_threads(threads, || kronecker(9, 8.0, KroneckerParams::GRAPH500, 3));
        assert_eq!(g, reference, "kronecker generation diverged at {threads} threads");
    }
}
