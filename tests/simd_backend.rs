//! SIMD backend and lane-mask invariants at the kernel level.
//!
//! The explicit backends in `crates/simd` are required to be
//! *bit-identical* to the portable scalar path, so every kernel output
//! must be byte-for-byte equal across `SLIMSELL_SIMD` backends, thread
//! counts, and sweep dispatchers. The lane-granular change masks must
//! agree with a per-lane replay of the chunk-granular change test, and
//! filtering worklist activation probes through them must never pay
//! more than the chunk-granular fan-out — and must pay strictly less on
//! a high-diameter graph, where partial-chunk frontiers dominate.
//!
//! The backend selection is process-global, so every test that toggles
//! it serializes on one lock and restores the previous backend.

use std::sync::Mutex;

use slimsell::prelude::*;
use slimsell::simd::{backend_supported, set_backend, Backend};
use slimsell_bench::dispatch::{prepare, RepKind, SemiringKind};
use slimsell_core::semiring::StateVecs;
use slimsell_gen::geometric::road_network;
use slimsell_gen::rng::Xoshiro256pp;

static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn backends_under_test() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    for b in [Backend::Avx2, Backend::Avx512] {
        if backend_supported(b) {
            v.push(b);
        }
    }
    v
}

fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(f)
}

/// Every kernel configuration must produce the same distances (and
/// parents, where computed) under every backend × sweep × thread-count
/// combination — the scalar/full/1-thread run is the reference.
#[test]
fn kernels_bit_identical_across_backends() {
    let _guard = BACKEND_LOCK.lock().unwrap();
    let prev = set_backend(Backend::Scalar);
    let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 21);
    let n = g.num_vertices();
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let reference = serial_bfs(&g, root);
    let sweeps = [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive];
    for c in [4usize, 8, 16, 32] {
        for sem in SemiringKind::ALL {
            let p = prepare(&g, c, n, RepKind::SlimSell, sem);
            let mut baseline: Option<(Vec<u32>, Option<Vec<VertexId>>)> = None;
            for &backend in &backends_under_test() {
                set_backend(backend);
                for sweep in sweeps {
                    for threads in [1usize, 2, 8] {
                        let opts = BfsOptions::default().sweep(sweep);
                        let out = with_threads(threads, || p.run(root, &opts));
                        assert_eq!(
                            out.dist,
                            reference.dist,
                            "C={c} {} {backend:?} {sweep:?} {threads}T",
                            sem.name()
                        );
                        let got = (out.dist, out.parent);
                        match &baseline {
                            None => baseline = Some(got),
                            Some(b) => assert_eq!(
                                *b,
                                got,
                                "C={c} {} {backend:?} {sweep:?} {threads}T differs from \
                                 scalar/full/1T",
                                sem.name()
                            ),
                        }
                    }
                }
            }
        }
    }
    set_backend(prev);
}

/// `state_changed_mask` must equal a per-lane replay of the
/// chunk-granular `state_changed` test (and be non-zero exactly when it
/// fires), for every semiring and lane count, over randomized state
/// windows that include the engines' sentinel values.
#[test]
fn change_mask_equals_per_lane_replay() {
    fn check<S: Semiring, const C: usize>(rng: &mut Xoshiro256pp) {
        // Values the engines actually store: identities, depths, ±0,
        // and a NaN bit pattern (bit-wise comparison must see through
        // all of them).
        const VALS: [f32; 6] = [0.0, -0.0, 1.0, 2.5, f32::INFINITY, f32::NAN];
        let pick = |r: &mut Xoshiro256pp| VALS[(r.next_u32() as usize) % VALS.len()];
        for _ in 0..200 {
            let mut cur = StateVecs::new(2 * C);
            let (mut nx, mut ng, mut np) = (vec![0.0f32; C], vec![0.0f32; C], vec![0.0f32; C]);
            let base = if rng.next_u32().is_multiple_of(2) { 0 } else { C };
            for l in 0..C {
                cur.x[base + l] = pick(rng);
                cur.g[base + l] = pick(rng);
                cur.p[base + l] = pick(rng);
                // Bias toward equality so unchanged lanes are common.
                nx[l] = if rng.next_u32().is_multiple_of(2) { cur.x[base + l] } else { pick(rng) };
                ng[l] = if rng.next_u32().is_multiple_of(2) { cur.g[base + l] } else { pick(rng) };
                np[l] = if rng.next_u32().is_multiple_of(2) { cur.p[base + l] } else { pick(rng) };
            }
            let mask = S::state_changed_mask::<C>(&cur, base, &nx, &ng, &np);
            assert_eq!(mask & !slimsell_core::worklist::full_lane_mask(C), 0, "stray bits");
            for l in 0..C {
                let lane =
                    S::state_changed(&cur, base + l, &nx[l..l + 1], &ng[l..l + 1], &np[l..l + 1]);
                assert_eq!(
                    mask >> l & 1 == 1,
                    lane,
                    "{} C={C} lane {l}: mask {mask:#x} vs replay {lane}",
                    S::NAME
                );
            }
            assert_eq!(mask != 0, S::state_changed(&cur, base, &nx, &ng, &np), "{}", S::NAME);
        }
    }
    let mut rng = Xoshiro256pp::seed_from_u64(0xC0FFEE);
    macro_rules! all_c {
        ($sem:ty) => {
            check::<$sem, 4>(&mut rng);
            check::<$sem, 8>(&mut rng);
            check::<$sem, 16>(&mut rng);
            check::<$sem, 32>(&mut rng);
        };
    }
    all_c!(TropicalSemiring);
    all_c!(BooleanSemiring);
    all_c!(RealSemiring);
    all_c!(SelMaxSemiring);
}

/// Replays a tropical worklist run's seed stream against the dependency
/// graph and returns (lane-filtered, chunk-granular) activation totals.
/// The iteration-`k` seeds are exactly the lanes finalized at depth `k`
/// (tropical `x` goes ∞ → k there and never changes again), so the
/// whole stream is recoverable from the reference distances.
fn activation_totals<const C: usize>(g: &CsrGraph, root: VertexId) -> (u64, u64, u64) {
    let n = g.num_vertices();
    let m = SlimSellMatrix::<C>::build(g, n);
    let s = m.structure();
    let dep = s.dep_graph();
    let perm = s.perm();
    let reference = serial_bfs(g, root);
    let max_depth = reference.dist.iter().filter(|&&d| d != UNREACHABLE).max().copied().unwrap();
    let nc = s.num_chunks();
    let (mut filtered, mut granular) = (0u64, 0u64);
    for depth in 0..=max_depth {
        // Per-chunk merged lane masks of this depth layer — what
        // collect_changed_into hands the next worklist build.
        let mut masks = vec![0u32; nc];
        for old in 0..n {
            if reference.dist[old] == depth {
                let v = perm.to_new(old as VertexId) as usize;
                masks[v / C] |= 1u32 << (v % C);
            }
        }
        for (j, &mask) in masks.iter().enumerate() {
            if mask == 0 {
                continue;
            }
            granular += dep.dependents(j).len() as u64;
            filtered += dep.edge_masks(j).iter().filter(|&&em| em & mask != 0).count() as u64;
        }
    }
    // The engine's own total for cross-checking the replay.
    let opts = BfsOptions::default().sweep(SweepMode::Worklist);
    let out = BfsEngine::run::<_, TropicalSemiring, C>(&m, root, &opts);
    assert_eq!(out.dist, reference.dist);
    (filtered, granular, out.stats.total_activations())
}

/// Lane-filtered activation probes are never more than the
/// chunk-granular fan-out, the engine's counter matches an independent
/// replay of its seed stream, and a high-diameter (road-network) graph
/// at scale 13 saves strictly.
#[test]
fn lane_masks_cut_worklist_activations() {
    let g = road_network(1 << 13, 3.0, 7);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let (filtered, granular, engine) = activation_totals::<8>(&g, root);
    assert_eq!(engine, filtered, "engine counter disagrees with seed-stream replay");
    assert!(
        filtered < granular,
        "lane masks saved nothing on a high-diameter graph: {filtered} vs {granular}"
    );
    // Low-diameter sanity: still never more.
    let g = kronecker(10, 16.0, KroneckerParams::GRAPH500, 3);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let (filtered, granular, engine) = activation_totals::<8>(&g, root);
    assert_eq!(engine, filtered);
    assert!(filtered <= granular);
}
