//! Serving-layer equivalence: batching is an *implementation detail*.
//!
//! Property: for arbitrary graphs and arbitrary interleavings of
//! 1..=4·B submitted roots, every query answered by the batched
//! multi-source engine ([`BfsServer`]) returns distances bit-identical
//! to a standalone single-source [`BfsEngine`] run — no matter how the
//! admission queue slices the stream into batches (window 0 ≈ singleton
//! batches, a long window ≈ full B-lane batches), which lanes a query
//! lands on, or what its batch-mates do (cancel, expire).

use proptest::prelude::*;
use slimsell::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const C: usize = 4;
const B: usize = 4;

/// Strategy: a random undirected simple graph with 1..=60 vertices.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (1usize..=60).prop_flat_map(|n| {
        let max_edges = (n * n).min(400);
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges)
            .prop_map(move |edges| GraphBuilder::new(n).edges(edges).build())
    })
}

/// The three batching regimes: immediate dispatch (window 0, mostly
/// singleton batches), the default window, and a window long enough to
/// always fill all B lanes when the queue has backlog.
fn window(sel: usize) -> Duration {
    Duration::from_micros([0, 200, 5_000][sel % 3])
}

fn standalone(m: &SlimSellMatrix<C>, root: VertexId) -> Vec<u32> {
    BfsEngine::run::<_, TropicalSemiring, C>(m, root, &BfsOptions::default()).dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Submit-all-then-wait: the queue backlog produces multi-root
    /// batches (window permitting); every answer must equal the
    /// standalone run for its root.
    #[test]
    fn served_equals_standalone_bulk(
        g in arb_graph(),
        root_sels in proptest::collection::vec(0usize..60, 1..=4 * B),
        window_sel in 0usize..3,
    ) {
        let n = g.num_vertices();
        let m = Arc::new(SlimSellMatrix::<C>::build(&g, n));
        let opts = ServeOptions { batch_window: window(window_sel), ..Default::default() };
        let server = BfsServer::<_, C, B>::start(Arc::clone(&m), opts);
        let roots: Vec<VertexId> = root_sels.iter().map(|&r| (r % n) as VertexId).collect();
        let handles: Vec<_> = roots.iter().map(|&r| server.submit(r)).collect();
        for (h, &root) in handles.into_iter().zip(&roots) {
            let out = h.wait().expect("unbudgeted query failed");
            prop_assert_eq!(&out.dist, &standalone(&m, root), "root {}", root);
            prop_assert!(out.batch.batch_size >= 1 && out.batch.batch_size <= B);
        }
        let report = server.shutdown();
        let stats = report.stats;
        prop_assert_eq!(report.unclean_joins, 0);
        prop_assert_eq!(stats.submitted, roots.len() as u64);
        prop_assert_eq!(stats.served, roots.len() as u64);
        prop_assert_eq!(stats.submitted, stats.resolved());
    }

    /// Lock-step submission (wait for each answer before submitting the
    /// next) — the degenerate all-singleton-batch interleaving.
    #[test]
    fn served_equals_standalone_lockstep(
        g in arb_graph(),
        root_sels in proptest::collection::vec(0usize..60, 1..=B),
        window_sel in 0usize..3,
    ) {
        let n = g.num_vertices();
        let m = Arc::new(SlimSellMatrix::<C>::build(&g, n));
        let opts = ServeOptions { batch_window: window(window_sel), ..Default::default() };
        let server = BfsServer::<_, C, B>::start(Arc::clone(&m), opts);
        for &sel in &root_sels {
            let root = (sel % n) as VertexId;
            let out = server.submit(root).wait().expect("unbudgeted query failed");
            prop_assert_eq!(&out.dist, &standalone(&m, root), "root {}", root);
        }
        let stats = server.shutdown().stats;
        prop_assert_eq!(stats.served, root_sels.len() as u64);
        prop_assert_eq!(stats.submitted, stats.resolved());
    }

    /// Cancellation and budgets never poison batch-mates: queries that
    /// survive must still be bit-identical to standalone BFS; a
    /// cancelled handle either lost the race (exact answer) or reports
    /// `Cancelled`; `BudgetExhausted` only ever hits budgeted queries.
    #[test]
    fn mates_unaffected_by_cancellation_and_budgets(
        g in arb_graph(),
        plan in proptest::collection::vec((0usize..60, 0usize..4, 0usize..2), 1..=4 * B),
        window_sel in 0usize..3,
    ) {
        let n = g.num_vertices();
        let m = Arc::new(SlimSellMatrix::<C>::build(&g, n));
        let opts = ServeOptions { batch_window: window(window_sel), ..Default::default() };
        let server = BfsServer::<_, C, B>::start(Arc::clone(&m), opts);
        // budget_sel: 0 => unbudgeted, 1 => generous (n + 2, can never
        // expire), 2..=3 => tight (may expire, must never be wrong).
        let queries: Vec<(VertexId, Option<usize>, bool)> = plan
            .iter()
            .map(|&(r, b, cancel)| {
                let budget = match b {
                    0 => None,
                    1 => Some(n + 2),
                    tight => Some(tight - 1), // 1 or 2 sweeps
                };
                ((r % n) as VertexId, budget, cancel == 1)
            })
            .collect();
        let handles: Vec<_> = queries
            .iter()
            .map(|&(root, budget, cancel)| {
                let h = server.submit_with(root, budget);
                if cancel {
                    h.cancel();
                }
                h
            })
            .collect();
        for (h, &(root, budget, cancel)) in handles.into_iter().zip(&queries) {
            match h.wait() {
                Ok(out) => prop_assert_eq!(&out.dist, &standalone(&m, root), "root {}", root),
                Err(QueryError::Cancelled) => prop_assert!(cancel, "spurious cancel"),
                Err(QueryError::BudgetExhausted) => {
                    prop_assert!(budget.is_some(), "unbudgeted query expired");
                    prop_assert!(budget.unwrap() < n + 2, "generous budget expired");
                }
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }
        let stats = server.shutdown().stats;
        prop_assert_eq!(stats.submitted, queries.len() as u64);
        prop_assert_eq!(stats.submitted, stats.resolved());
    }
}
