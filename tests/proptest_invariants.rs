//! Property-based invariants over random graphs.

use proptest::prelude::*;
use slimsell::core::storage::StorageComparison;
use slimsell::prelude::*;

/// Strategy: a random undirected simple graph with 1..=60 vertices.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (1usize..=60).prop_flat_map(|n| {
        let max_edges = (n * n).min(400);
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges)
            .prop_map(move |edges| GraphBuilder::new(n).edges(edges).build())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every semiring × representation matches the serial reference on
    /// arbitrary graphs from an arbitrary root.
    #[test]
    fn bfs_matches_reference(g in arb_graph(), root_sel in 0usize..60, sigma_sel in 0usize..3) {
        let n = g.num_vertices();
        let root = (root_sel % n) as VertexId;
        let sigma = [1, 8, n][sigma_sel].max(1);
        let reference = serial_bfs(&g, root);
        let slim = SlimSellMatrix::<4>::build(&g, sigma);
        macro_rules! check {
            ($sem:ty) => {{
                let out = BfsEngine::run::<_, $sem, 4>(&slim, root, &BfsOptions::default());
                prop_assert_eq!(&out.dist, &reference.dist, "{}", <$sem>::NAME);
                if let Some(p) = &out.parent {
                    prop_assert!(validate_parents(&g, root, &out.dist, p).is_ok());
                }
            }};
        }
        check!(TropicalSemiring);
        check!(BooleanSemiring);
        check!(RealSemiring);
        check!(SelMaxSemiring);
    }

    /// SlimWork and SlimChunk never change the output.
    #[test]
    fn slimwork_slimchunk_output_invariant(g in arb_graph(), root_sel in 0usize..60) {
        let n = g.num_vertices();
        let root = (root_sel % n) as VertexId;
        let slim = SlimSellMatrix::<8>::build(&g, n);
        let base = BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &BfsOptions::plain());
        for opts in [
            BfsOptions::default(),
            BfsOptions { slimchunk: Some(2), ..BfsOptions::default() },
            BfsOptions { slimchunk: Some(3), slimwork: false, ..BfsOptions::default() },
        ] {
            let out = BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &opts);
            prop_assert_eq!(&out.dist, &base.dist);
        }
    }

    /// Worklist BFS equals full-sweep BFS exactly on arbitrary graphs:
    /// same distances, parents, and iteration count for every semiring,
    /// with never more column steps, and the same again under
    /// SlimChunk. The worklist engine must be a pure work-avoidance
    /// transformation.
    #[test]
    fn worklist_equals_full_sweep(g in arb_graph(), root_sel in 0usize..60, sigma_sel in 0usize..3) {
        let n = g.num_vertices();
        let root = (root_sel % n) as VertexId;
        let sigma = [1, 8, n][sigma_sel].max(1);
        let slim = SlimSellMatrix::<4>::build(&g, sigma);
        let full_opts = BfsOptions::default().sweep(SweepMode::Full);
        let wl_opts = BfsOptions::default().sweep(SweepMode::Worklist);
        macro_rules! check {
            ($sem:ty) => {{
                let full = BfsEngine::run::<_, $sem, 4>(&slim, root, &full_opts);
                let wl = BfsEngine::run::<_, $sem, 4>(&slim, root, &wl_opts);
                prop_assert_eq!(&wl.dist, &full.dist, "{} dist", <$sem>::NAME);
                prop_assert_eq!(&wl.parent, &full.parent, "{} parents", <$sem>::NAME);
                prop_assert_eq!(wl.stats.num_iterations(), full.stats.num_iterations(),
                    "{} iterations", <$sem>::NAME);
                prop_assert!(wl.stats.total_col_steps() <= full.stats.total_col_steps(),
                    "{} did more work on the worklist", <$sem>::NAME);
            }};
        }
        check!(TropicalSemiring);
        check!(BooleanSemiring);
        check!(RealSemiring);
        check!(SelMaxSemiring);
        // SlimChunk + worklist composes the same way.
        let sc_full = BfsEngine::run::<_, TropicalSemiring, 4>(
            &slim, root, &BfsOptions { slimchunk: Some(2), ..full_opts });
        let sc_wl = BfsEngine::run::<_, TropicalSemiring, 4>(
            &slim, root, &BfsOptions { slimchunk: Some(2), ..wl_opts });
        prop_assert_eq!(&sc_wl.dist, &sc_full.dist, "slimchunk+worklist dist");
        prop_assert_eq!(sc_wl.stats.num_iterations(), sc_full.stats.num_iterations());
        prop_assert!(sc_wl.stats.total_col_steps() <= sc_full.stats.total_col_steps());
    }

    /// Adaptive BFS is bit-identical to the 1-thread full-sweep oracle
    /// on arbitrary graphs: same distances, parents, and iteration
    /// count for every semiring, with column steps bounded by the
    /// worse pure mode — the switching policy must be invisible in the
    /// outputs whatever the frontier shape does around the crossover.
    #[test]
    fn adaptive_equals_one_thread_full_sweep_oracle(
        g in arb_graph(), root_sel in 0usize..60, sigma_sel in 0usize..3
    ) {
        let n = g.num_vertices();
        let root = (root_sel % n) as VertexId;
        let sigma = [1, 8, n][sigma_sel].max(1);
        let slim = SlimSellMatrix::<4>::build(&g, sigma);
        let pin1 = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let full_opts = BfsOptions::default().sweep(SweepMode::Full);
        let wl_opts = BfsOptions::default().sweep(SweepMode::Worklist);
        let ad_opts = BfsOptions::default().sweep(SweepMode::Adaptive);
        macro_rules! check {
            ($sem:ty) => {{
                let oracle = pin1.install(||
                    BfsEngine::run::<_, $sem, 4>(&slim, root, &full_opts));
                let wl = BfsEngine::run::<_, $sem, 4>(&slim, root, &wl_opts);
                let ad = BfsEngine::run::<_, $sem, 4>(&slim, root, &ad_opts);
                prop_assert_eq!(&ad.dist, &oracle.dist, "{} dist", <$sem>::NAME);
                prop_assert_eq!(&ad.parent, &oracle.parent, "{} parents", <$sem>::NAME);
                prop_assert_eq!(ad.stats.num_iterations(), oracle.stats.num_iterations(),
                    "{} iterations", <$sem>::NAME);
                prop_assert!(
                    ad.stats.total_col_steps()
                        <= oracle.stats.total_col_steps().max(wl.stats.total_col_steps()),
                    "{} adaptive exceeded the worse pure mode", <$sem>::NAME);
            }};
        }
        check!(TropicalSemiring);
        check!(BooleanSemiring);
        check!(RealSemiring);
        check!(SelMaxSemiring);
        // SlimChunk + adaptive composes the same way.
        let sc_oracle = pin1.install(|| BfsEngine::run::<_, TropicalSemiring, 4>(
            &slim, root, &BfsOptions { slimchunk: Some(2), ..full_opts }));
        let sc_ad = BfsEngine::run::<_, TropicalSemiring, 4>(
            &slim, root, &BfsOptions { slimchunk: Some(2), ..ad_opts });
        prop_assert_eq!(&sc_ad.dist, &sc_oracle.dist, "slimchunk+adaptive dist");
        prop_assert_eq!(sc_ad.stats.num_iterations(), sc_oracle.stats.num_iterations());
    }

    /// Worklist and adaptive SSSP reproduce the 1-thread full-sweep
    /// oracle's potentials *to the f32 bit* on arbitrary weighted
    /// graphs, in the same number of relaxation sweeps and never with
    /// more relaxation work — label-correcting convergence (labels
    /// improving after first becoming finite) must keep chunks listed
    /// until they truly settle.
    #[test]
    fn sssp_sweep_modes_equal_one_thread_full_oracle(
        g in arb_graph(), root_sel in 0usize..60, sigma_sel in 0usize..3
    ) {
        let n = g.num_vertices();
        let root = (root_sel % n) as VertexId;
        let sigma = [1, 8, n][sigma_sel].max(1);
        let wg = slimsell::graph::weighted::synthetic_weighted_twin(&g);
        let m = WeightedSellCSigma::<4>::build(&wg, sigma);
        let pin1 = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let full = SsspOptions::default().sweep(SweepMode::Full);
        let oracle = pin1.install(|| sssp_with(&m, root, &full));
        let oracle_bits: Vec<u32> = oracle.dist.iter().map(|x| x.to_bits()).collect();
        for sweep in [SweepMode::Worklist, SweepMode::Adaptive] {
            let out = sssp_with(&m, root, &SsspOptions::default().sweep(sweep));
            let bits: Vec<u32> = out.dist.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(&bits, &oracle_bits, "{:?} potentials diverged", sweep);
            prop_assert_eq!(out.iterations, oracle.iterations, "{:?} sweep count", sweep);
            prop_assert!(out.stats.total_col_steps() <= oracle.stats.total_col_steps(),
                "{:?} did more relaxation work than the full sweep", sweep);
        }
    }

    /// The Sell structure stores exactly the graph's adjacency under any
    /// sorting scope (representation round-trip).
    #[test]
    fn structure_roundtrip(g in arb_graph(), sigma in 1usize..70) {
        let s = slimsell::core::SellStructure::<4>::build(&g, sigma);
        prop_assert!(s.verify_against(&g).is_ok());
    }

    /// Storage formulas of Table III match measured cells, and SlimSell
    /// is always at most half of Sell-C-σ plus the index arrays.
    #[test]
    fn storage_formulas(g in arb_graph(), sigma in 1usize..70) {
        let c = StorageComparison::measure::<8>(&g, sigma);
        let nc = g.num_vertices().div_ceil(8);
        prop_assert_eq!(c.slimsell, 2 * c.m + c.padding + 2 * nc);
        prop_assert_eq!(c.sell_c_sigma, 2 * (2 * c.m + c.padding) + 2 * nc);
        prop_assert_eq!(c.al, 2 * c.m + c.n);
        prop_assert_eq!(c.csr, 4 * c.m + c.n);
        // SlimSell saves exactly the val array (2m + P cells).
        prop_assert_eq!(c.sell_c_sigma - c.slimsell, 2 * c.m + c.padding);
    }

    /// Sorting (larger σ) never increases padding.
    #[test]
    fn sorting_monotone_padding(g in arb_graph()) {
        let n = g.num_vertices();
        let p1 = SlimSellMatrix::<4>::build(&g, 1).structure().padding_cells();
        let pn = SlimSellMatrix::<4>::build(&g, n).structure().padding_cells();
        prop_assert!(pn <= p1, "full sort increased padding: {} > {}", pn, p1);
    }

    /// DP produces a valid parent array from engine distances.
    #[test]
    fn dp_valid(g in arb_graph(), root_sel in 0usize..60) {
        let n = g.num_vertices();
        let root = (root_sel % n) as VertexId;
        let slim = SlimSellMatrix::<4>::build(&g, n);
        let out = BfsEngine::run::<_, BooleanSemiring, 4>(&slim, root, &BfsOptions::default());
        let p = dp_transform(&g, &out.dist, root);
        prop_assert!(validate_parents(&g, root, &out.dist, &p).is_ok());
    }

    /// Work accounting: measured cells equal C × column-steps, and the
    /// no-SlimWork engine touches every cell of the structure each
    /// iteration.
    #[test]
    fn work_accounting(g in arb_graph(), root_sel in 0usize..60) {
        let n = g.num_vertices();
        let root = (root_sel % n) as VertexId;
        let slim = SlimSellMatrix::<4>::build(&g, n);
        let out = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, root, &BfsOptions::plain());
        let per_iter = slim.structure().total_cells() as u64;
        for it in &out.stats.iters {
            prop_assert_eq!(it.cells, per_iter);
            prop_assert_eq!(it.cells, it.col_steps * 4);
        }
    }

    /// The SIMT engine is output-equivalent to the CPU engine.
    #[test]
    fn simt_equiv(g in arb_graph(), root_sel in 0usize..60) {
        let n = g.num_vertices();
        let root = (root_sel % n) as VertexId;
        let slim = SlimSellMatrix::<32>::build(&g, n);
        let cpu = BfsEngine::run::<_, SelMaxSemiring, 32>(&slim, root, &BfsOptions::default());
        let sim = run_simt_bfs::<_, SelMaxSemiring, 32>(&slim, root, &SimtConfig::default(), &SimtOptions::default());
        prop_assert_eq!(cpu.dist, sim.dist);
        prop_assert_eq!(cpu.parent, sim.parent);
    }

    /// The tiled (multithreaded) PageRank is bit-identical to the
    /// sequential fallback on arbitrary graphs: scores, the L1
    /// residual trajectory's final value, and the iteration count.
    /// The residual guards convergence, so any tile-boundary
    /// dependence would change `iterations` first.
    #[test]
    fn pagerank_tiled_matches_sequential(g in arb_graph()) {
        let m = SlimSellMatrix::<4>::build(&g, g.num_vertices());
        let opts = PageRankOptions::default();
        let pin = |n: usize| rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap();
        let seq = pin(1).install(|| pagerank(&m, &opts));
        for threads in [2usize, 4, 8] {
            let par = pin(threads).install(|| pagerank(&m, &opts));
            let seq_bits: Vec<u32> = seq.scores.iter().map(|x| x.to_bits()).collect();
            let par_bits: Vec<u32> = par.scores.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(seq_bits, par_bits, "scores diverged at {} threads", threads);
            prop_assert_eq!(seq.residual.to_bits(), par.residual.to_bits(),
                "residual diverged at {} threads", threads);
            prop_assert_eq!(seq.iterations, par.iterations,
                "iteration count diverged at {} threads", threads);
        }
    }
}
