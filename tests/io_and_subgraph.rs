//! I/O round-trips and subgraph extraction on realistic stand-ins.

use slimsell::graph::io::{
    read_edge_list, read_matrix_market, write_edge_list, write_matrix_market,
};
use slimsell::prelude::*;

#[test]
fn edge_list_roundtrip_on_standins() {
    for id in ["epi", "amz"] {
        let g = standin(id, 8, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(g.num_vertices())).unwrap();
        assert_eq!(g, g2, "{id}");
    }
}

#[test]
fn matrix_market_roundtrip_on_kronecker() {
    let g = kronecker(9, 4.0, KroneckerParams::GRAPH500, 17);
    let mut buf = Vec::new();
    write_matrix_market(&g, &mut buf).unwrap();
    let g2 = read_matrix_market(&buf[..]).unwrap();
    assert_eq!(g, g2);
}

#[test]
fn bfs_equal_after_io_roundtrip() {
    let g = kronecker(9, 6.0, KroneckerParams::GRAPH500, 18);
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    let g2 = read_edge_list(&buf[..], Some(g.num_vertices())).unwrap();
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    assert_eq!(slimsell::bfs_distances(&g, root), slimsell::bfs_distances(&g2, root));
}

#[test]
fn largest_component_bfs_reaches_everything() {
    // Road stand-ins are slightly fragmented; inside the giant component
    // every vertex must be reachable — the precondition Graph500-style
    // benchmarking relies on.
    let g = standin("rca", 8, 9);
    let (lc, map) = largest_component(&g);
    assert!(lc.num_vertices() * 10 > g.num_vertices() * 9, "giant component too small");
    let dist = slimsell::bfs_distances(&lc, 0);
    assert!(dist.iter().all(|&d| d != UNREACHABLE), "unreached vertex inside the component");
    // Mapping points back into the original graph.
    assert!(map.iter().all(|&old| (old as usize) < g.num_vertices()));
}

#[test]
fn induced_subgraph_preserves_local_distances() {
    use slimsell::graph::induced_subgraph;
    let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 19);
    // Take the 2-hop ball around a root; distances ≤ 2 must be preserved
    // exactly (all shortest paths of length ≤ 2 stay inside the ball...
    // only guaranteed for distance ≤ 1 in general, so check level 1).
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let r = serial_bfs(&g, root);
    let ball: Vec<u32> =
        (0..g.num_vertices() as u32).filter(|&v| r.dist[v as usize] <= 2).collect();
    let (sub, map) = induced_subgraph(&g, &ball);
    let new_root = map.iter().position(|&old| old == root).unwrap() as u32;
    let sub_dist = slimsell::bfs_distances(&sub, new_root);
    for (new, &old) in map.iter().enumerate() {
        if r.dist[old as usize] <= 1 {
            assert_eq!(sub_dist[new], r.dist[old as usize], "vertex {old}");
        }
    }
}
