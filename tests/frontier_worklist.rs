//! Frontier-proportional worklist acceptance: on high-diameter graphs
//! (the road-network / ring-lattice regime where the paper found
//! SlimWork gives "small or no improvement", §IV-A5) the worklist
//! engine must execute strictly fewer total column steps than the full
//! sweep with SlimWork, while staying bit-identical to the sequential
//! oracle in every mode. Counters are exact and host-independent, so
//! the inequalities here are deterministic, not timing-based.

use slimsell::gen::geometric::road_network;
use slimsell::gen::smallworld::watts_strogatz;
use slimsell::prelude::*;

/// Scale-log2 of the acceptance graphs (the criterion requires >= 12).
const SCALE: u32 = 12;

fn full_opts() -> BfsOptions {
    BfsOptions::default().sweep(SweepMode::Full)
}

fn wl_opts() -> BfsOptions {
    BfsOptions::default().sweep(SweepMode::Worklist)
}

fn ad_opts() -> BfsOptions {
    BfsOptions::default().sweep(SweepMode::Adaptive)
}

fn high_diameter_graphs() -> Vec<(&'static str, CsrGraph)> {
    let n = 1usize << SCALE;
    vec![("geometric", road_network(n, 2.8, 42)), ("smallworld", watts_strogatz(n, 4, 0.02, 42))]
}

#[test]
fn worklist_executes_strictly_fewer_column_steps_on_high_diameter_graphs() {
    for (name, g) in high_diameter_graphs() {
        let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let reference = serial_bfs(&g, root);
        let full = BfsEngine::run::<_, TropicalSemiring, 8>(&m, root, &full_opts());
        let wl = BfsEngine::run::<_, TropicalSemiring, 8>(&m, root, &wl_opts());
        assert_eq!(full.dist, reference.dist, "{name}: full sweep wrong");
        assert_eq!(wl.dist, reference.dist, "{name}: worklist wrong");
        assert_eq!(
            wl.stats.num_iterations(),
            full.stats.num_iterations(),
            "{name}: iteration counts diverged"
        );
        // A high-diameter BFS actually exercises the wavefront regime.
        assert!(
            wl.stats.num_iterations() > 50,
            "{name}: diameter too small ({} iterations) for the acceptance regime",
            wl.stats.num_iterations()
        );
        assert!(
            wl.stats.total_col_steps() < full.stats.total_col_steps(),
            "{name}: worklist col steps {} !< full-sweep-with-SlimWork col steps {}",
            wl.stats.total_col_steps(),
            full.stats.total_col_steps()
        );
        assert!(wl.stats.total_not_on_worklist() > 0, "{name}: worklist never excluded a chunk");
    }
}

#[test]
fn worklist_outputs_bit_identical_to_sequential_oracle_in_all_modes() {
    let (_, g) = &high_diameter_graphs()[0];
    let root = slimsell::graph::stats::sample_roots(g, 1)[0];
    let m = SlimSellMatrix::<8>::build(g, g.num_vertices());
    let oracle = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| BfsEngine::run::<_, SelMaxSemiring, 8>(&m, root, &full_opts()));
    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
        for slimchunk in [None, Some(4)] {
            for schedule in [Schedule::Static, Schedule::Dynamic] {
                let opts =
                    BfsOptions { slimchunk, ..Default::default() }.sweep(sweep).schedule(schedule);
                let out = BfsEngine::run::<_, SelMaxSemiring, 8>(&m, root, &opts);
                assert_eq!(out.dist, oracle.dist, "dist: {sweep:?} sc={slimchunk:?}");
                assert_eq!(out.parent, oracle.parent, "parents: {sweep:?} sc={slimchunk:?}");
            }
        }
    }
}

#[test]
fn worklist_counters_are_coherent_per_iteration() {
    let (_, g) = &high_diameter_graphs()[0];
    let root = slimsell::graph::stats::sample_roots(g, 1)[0];
    let m = SlimSellMatrix::<8>::build(g, g.num_vertices());
    let nc = m.structure().num_chunks();
    let wl = BfsEngine::run::<_, BooleanSemiring, 8>(&m, root, &wl_opts());
    for (k, it) in wl.stats.iters.iter().enumerate() {
        assert_eq!(
            it.chunks_processed + it.chunks_skipped,
            it.worklist_len,
            "iter {k}: visit accounting broken"
        );
        assert_eq!(
            it.chunks_not_on_worklist,
            nc - it.worklist_len,
            "iter {k}: exclusion accounting broken"
        );
        assert_eq!(it.cells, it.col_steps * 8, "iter {k}: cells != C * col_steps");
        assert!(it.changed_chunks <= it.worklist_len, "iter {k}: more changes than visits");
    }
    // The wavefront never floods a high-diameter graph: some iteration
    // must leave most chunks off the worklist.
    let min_wl = wl.stats.iters.iter().map(|i| i.worklist_len).min().unwrap();
    assert!(min_wl < nc / 2, "worklist never shrank below half the chunk range");
}

#[test]
fn adaptive_tracks_the_better_pure_mode_on_every_regime() {
    // The acceptance shape of the adaptive controller: on the
    // high-diameter generators it must stay in the worklist regime and
    // match the worklist engine's column steps (within 5%); everywhere
    // it is hard-bounded by the worse pure mode. Counters are exact,
    // so the inequalities are deterministic.
    for (name, g) in high_diameter_graphs() {
        let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let full = BfsEngine::run::<_, TropicalSemiring, 8>(&m, root, &full_opts());
        let wl = BfsEngine::run::<_, TropicalSemiring, 8>(&m, root, &wl_opts());
        let ad = BfsEngine::run::<_, TropicalSemiring, 8>(&m, root, &ad_opts());
        assert_eq!(ad.dist, full.dist, "{name}: adaptive distances wrong");
        assert_eq!(ad.stats.num_iterations(), full.stats.num_iterations());
        let (f, w, a) =
            (full.stats.total_col_steps(), wl.stats.total_col_steps(), ad.stats.total_col_steps());
        assert!(a <= f.max(w), "{name}: adaptive {a} exceeds max(full {f}, worklist {w})");
        let best = f.min(w) as f64;
        assert!(
            (a as f64) <= best * 1.05,
            "{name}: adaptive {a} not within 5% of the better pure mode {best}"
        );
        // High-diameter wavefronts never flood: the controller should
        // never pay a full sweep after the start-up transient.
        assert!(
            ad.stats.worklist_sweep_iterations() * 10 >= ad.stats.num_iterations() * 9,
            "{name}: adaptive ran mostly full sweeps on a wavefront regime ({} of {})",
            ad.stats.worklist_sweep_iterations(),
            ad.stats.num_iterations()
        );
    }
}

#[test]
fn adaptive_mode_trace_is_recorded_per_iteration() {
    let (_, g) = &high_diameter_graphs()[0];
    let root = slimsell::graph::stats::sample_roots(g, 1)[0];
    let m = SlimSellMatrix::<8>::build(g, g.num_vertices());
    let ad = BfsEngine::run::<_, BooleanSemiring, 8>(&m, root, &ad_opts());
    let nc = m.structure().num_chunks();
    for (k, it) in ad.stats.iters.iter().enumerate() {
        match it.sweep_mode {
            ExecutedSweep::Full => {
                assert_eq!(it.worklist_len, nc, "iter {k}: full sweep must visit every chunk");
                assert_eq!(it.chunks_not_on_worklist, 0, "iter {k}");
            }
            ExecutedSweep::Worklist => {
                assert_eq!(it.chunks_not_on_worklist, nc - it.worklist_len, "iter {k}");
            }
        }
    }
    // The switch count derived from the trace matches the aggregate.
    let switches = ad.stats.iters.windows(2).filter(|w| w[0].sweep_mode != w[1].sweep_mode).count();
    assert_eq!(switches, ad.stats.mode_switches());
}

#[test]
fn worklist_direction_optimized_matches_on_high_diameter_graphs() {
    for (name, g) in high_diameter_graphs() {
        let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let reference = serial_bfs(&g, root);
        // Force bottom-up so the worklist path actually runs.
        let mk = |sweep| DirOptOptions {
            alpha: f64::INFINITY,
            beta: f64::INFINITY,
            spmv: BfsOptions::default().sweep(sweep),
        };
        let full = run_diropt(&m, root, &mk(SweepMode::Full));
        let wl = run_diropt(&m, root, &mk(SweepMode::Worklist));
        assert_eq!(full.bfs.dist, reference.dist, "{name}: full diropt wrong");
        assert_eq!(wl.bfs.dist, reference.dist, "{name}: worklist diropt wrong");
        assert_eq!(wl.modes, full.modes, "{name}: mode sequences diverged");
        assert!(
            wl.bfs.stats.total_col_steps() < full.bfs.stats.total_col_steps(),
            "{name}: worklist diropt did not reduce column steps"
        );
    }
}
