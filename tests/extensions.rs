//! Cross-validation of the §VI extension algorithms against their
//! serial references, across graph families.

use slimsell::core::betweenness::{betweenness_exact, brandes_reference};
use slimsell::core::components::connected_components;
use slimsell::core::msbfs::multi_bfs;
use slimsell::core::pagerank::{pagerank, PageRankOptions};
use slimsell::core::sssp::{sssp, WeightedSellCSigma};
use slimsell::graph::weighted::{dijkstra, WeightedCsrGraph};
use slimsell::prelude::*;

fn families() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("kronecker", kronecker(9, 4.0, KroneckerParams::GRAPH500, 11)),
        ("erdos-renyi", erdos_renyi_gnp(300, 8.0 / 300.0, 12)),
        ("road", standin("rca", 9, 13)),
        ("two-cliques", {
            let mut b = GraphBuilder::new(16);
            for u in 0..8u32 {
                for v in (u + 1)..8 {
                    b.edge(u, v);
                    b.edge(u + 8, v + 8);
                }
            }
            b.edge(0, 8);
            b.build()
        }),
    ]
}

#[test]
fn betweenness_matches_brandes_everywhere() {
    for (name, g) in families() {
        if g.num_vertices() > 600 {
            continue; // exact BC is O(nm); keep tests quick
        }
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let ours = betweenness_exact(&m);
        let reference = brandes_reference(&g);
        for (v, (a, b)) in ours.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{name} vertex {v}: {a} vs {b}");
        }
    }
}

#[test]
fn components_match_union_find_everywhere() {
    for (name, g) in families() {
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let out = connected_components(&m);
        assert_eq!(out.count, slimsell::graph::stats::connected_components(&g), "{name}");
        for (u, v) in g.edges() {
            assert_eq!(out.label[u as usize], out.label[v as usize], "{name} edge ({u},{v})");
        }
    }
}

#[test]
fn multi_bfs_matches_serial_everywhere() {
    for (name, g) in families() {
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let r = slimsell::graph::stats::sample_roots(&g, 4);
        let roots: [u32; 4] = std::array::from_fn(|i| r[i % r.len()]);
        let out = multi_bfs::<_, 8, 4>(&m, &roots);
        for (b, &root) in roots.iter().enumerate() {
            assert_eq!(out.dist[b], serial_bfs(&g, root).dist, "{name} source {b}");
        }
    }
}

#[test]
fn pagerank_mass_conserved_everywhere() {
    for (name, g) in families() {
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let out = pagerank(&m, &PageRankOptions::default());
        let sum: f32 = out.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "{name}: mass {sum}");
        assert!(out.scores.iter().all(|&s| s >= 0.0), "{name}: negative score");
    }
}

#[test]
fn sssp_unit_weights_degenerate_to_bfs() {
    // With all weights 1, min-plus SSSP must equal BFS hop distances.
    let g = kronecker(8, 4.0, KroneckerParams::GRAPH500, 21);
    let wg = WeightedCsrGraph::from_edges(g.num_vertices(), g.edges().map(|(u, v)| (u, v, 1.0f32)));
    let m = WeightedSellCSigma::<8>::build(&wg, g.num_vertices());
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let out = sssp(&m, root);
    let bfs = serial_bfs(&g, root);
    for v in 0..g.num_vertices() {
        match bfs.dist[v] {
            UNREACHABLE => assert!(out.dist[v].is_infinite(), "vertex {v}"),
            d => assert_eq!(out.dist[v], d as f32, "vertex {v}"),
        }
    }
}

#[test]
fn sssp_matches_dijkstra_on_random_weights() {
    let g = kronecker(8, 4.0, KroneckerParams::GRAPH500, 22);
    let mut seedgen = slimsell::gen::Xoshiro256pp::seed_from_u64(5);
    let wg = WeightedCsrGraph::from_edges(
        g.num_vertices(),
        g.edges().map(|(u, v)| (u, v, (seedgen.next_f64() * 5.0 + 0.1) as f32)),
    );
    let m = WeightedSellCSigma::<8>::build(&wg, g.num_vertices());
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let out = sssp(&m, root);
    let reference = dijkstra(&wg, root);
    for (v, (a, b)) in out.dist.iter().zip(&reference).enumerate() {
        if b.is_finite() {
            assert!((a - b).abs() < 1e-3 * (1.0 + b), "vertex {v}: {a} vs {b}");
        } else {
            assert!(a.is_infinite(), "vertex {v}");
        }
    }
}

#[test]
fn graph500_validator_accepts_every_engine() {
    let g = kronecker(9, 6.0, KroneckerParams::GRAPH500, 30);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let spmv = BfsEngine::run::<_, SelMaxSemiring, 8>(&m, root, &BfsOptions::default());
    graph500_validate(&g, root, &spmv.dist, spmv.parent.as_deref()).unwrap();
    let trad = slimsell::baseline::trad_bfs(&g, root);
    graph500_validate(&g, root, &trad.dist, Some(&trad.parent)).unwrap();
    let dense = slimsell::baseline::DenseBfs::new(&g).run(root);
    graph500_validate(&g, root, &dense.dist, None).unwrap();
}
