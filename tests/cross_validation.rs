//! Cross-validation: every BFS implementation in the workspace must
//! agree with the serial textbook reference on every graph family.

use slimsell::baseline::{dirop_bfs, spmspv_bfs, trad_bfs, Dedup, DirOptBfsOptions};
use slimsell::core::dirop::{run_diropt, DirOptOptions};
use slimsell::prelude::*;

/// Debug builds run the identical configuration matrix on smaller
/// graphs (unoptimized matrix builds dominate the suite's runtime);
/// release builds keep the full sizes.
const DEBUG_SCALE: bool = cfg!(debug_assertions);

fn families() -> Vec<(&'static str, CsrGraph)> {
    let (kron_scale, shift, er_n) = if DEBUG_SCALE { (9, 10, 400) } else { (10, 8, 800) };
    vec![
        ("kronecker", kronecker(kron_scale, 8.0, KroneckerParams::GRAPH500, 1)),
        ("erdos-renyi", erdos_renyi_gnp(er_n, 10.0 / er_n as f64, 2)),
        ("road", standin("rca", shift, 3)),
        ("web-chain", standin("ndm", shift, 4)),
        ("social", standin("epi", shift - 1, 5)),
        ("path", GraphBuilder::new(100).edges((0..99u32).map(|v| (v, v + 1))).build()),
        ("star", GraphBuilder::new(65).edges((1..65u32).map(|v| (0, v))).build()),
    ]
}

fn root_of(g: &CsrGraph) -> VertexId {
    slimsell::graph::stats::sample_roots(g, 1)[0]
}

#[test]
fn engine_matrix_all_semirings_reps_lanes() {
    for (name, g) in families() {
        let root = root_of(&g);
        let reference = serial_bfs(&g, root);
        let n = g.num_vertices();
        macro_rules! check {
            ($sem:ty, $c:literal, $sigma:expr) => {{
                let slim = SlimSellMatrix::<$c>::build(&g, $sigma);
                let out = BfsEngine::run::<_, $sem, $c>(&slim, root, &BfsOptions::default());
                assert_eq!(
                    out.dist,
                    reference.dist,
                    "{name} slimsell {} C={} sigma={}",
                    <$sem>::NAME,
                    $c,
                    $sigma
                );
                if let Some(p) = &out.parent {
                    validate_parents(&g, root, &out.dist, p).unwrap();
                }
                let sell = SellCSigma::<$c>::build(&g, $sigma, <$sem>::PAD);
                let out = BfsEngine::run::<_, $sem, $c>(&sell, root, &BfsOptions::default());
                assert_eq!(out.dist, reference.dist, "{name} sellcs {} C={}", <$sem>::NAME, $c);
            }};
        }
        for sigma in [1usize, 32, n] {
            check!(TropicalSemiring, 4, sigma);
            check!(BooleanSemiring, 8, sigma);
            check!(RealSemiring, 16, sigma);
            check!(SelMaxSemiring, 32, sigma);
        }
        // Rotate semirings over lane widths for coverage.
        check!(TropicalSemiring, 32, n);
        check!(SelMaxSemiring, 4, n);
        check!(BooleanSemiring, 16, 32);
        check!(RealSemiring, 8, 1);
    }
}

#[test]
fn engine_option_combinations() {
    for (name, g) in families() {
        let root = root_of(&g);
        let reference = serial_bfs(&g, root);
        let n = g.num_vertices();
        let slim = SlimSellMatrix::<8>::build(&g, n);
        for slimwork in [false, true] {
            for slimchunk in [None, Some(1), Some(4)] {
                for schedule in [Schedule::Static, Schedule::Dynamic] {
                    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
                        let opts = BfsOptions {
                            slimwork,
                            slimchunk,
                            schedule,
                            max_iterations: None,
                            sweep,
                        };
                        let out = BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &opts);
                        assert_eq!(
                            out.dist, reference.dist,
                            "{name} slimwork={slimwork} slimchunk={slimchunk:?} {schedule:?} \
                             sweep={sweep:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn baselines_agree() {
    for (name, g) in families() {
        let root = root_of(&g);
        let reference = serial_bfs(&g, root);
        let trad = trad_bfs(&g, root);
        assert_eq!(trad.dist, reference.dist, "{name} trad");
        validate_parents(&g, root, &trad.dist, &trad.parent).unwrap();
        let dir = dirop_bfs(&g, root, &DirOptBfsOptions::default());
        assert_eq!(dir.dist, reference.dist, "{name} dirop");
        validate_parents(&g, root, &dir.dist, &dir.parent).unwrap();
        for dedup in [Dedup::NoSort, Dedup::MergeSort, Dedup::RadixSort] {
            assert_eq!(spmspv_bfs(&g, root, dedup).dist, reference.dist, "{name} spmspv {dedup:?}");
        }
    }
}

#[test]
fn algebraic_diropt_agrees() {
    for (name, g) in families() {
        let root = root_of(&g);
        let reference = serial_bfs(&g, root);
        let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let out = run_diropt(&slim, root, &DirOptOptions::default());
        assert_eq!(out.bfs.dist, reference.dist, "{name} algebraic dirop");
    }
}

#[test]
fn dp_transform_valid_on_all_families() {
    for (name, g) in families() {
        let root = root_of(&g);
        let r = serial_bfs(&g, root);
        let p = dp_transform(&g, &r.dist, root);
        validate_parents(&g, root, &r.dist, &p).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn multiple_roots_per_graph() {
    let g = kronecker(if DEBUG_SCALE { 10 } else { 11 }, 8.0, KroneckerParams::GRAPH500, 9);
    let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    for root in slimsell::graph::stats::sample_roots(&g, 8) {
        let reference = serial_bfs(&g, root);
        let out = BfsEngine::run::<_, BooleanSemiring, 8>(&slim, root, &BfsOptions::default());
        assert_eq!(out.dist, reference.dist, "root {root}");
    }
}
