//! Cross-validation: every BFS implementation in the workspace must
//! agree with the serial textbook reference on every graph family.

use slimsell::baseline::{dirop_bfs, spmspv_bfs, trad_bfs, Dedup, DirOptBfsOptions};
use slimsell::core::dirop::{run_diropt, DirOptOptions};
use slimsell::prelude::*;

/// Debug builds run the identical configuration matrix on smaller
/// graphs (unoptimized matrix builds dominate the suite's runtime);
/// release builds keep the full sizes.
const DEBUG_SCALE: bool = cfg!(debug_assertions);

fn families() -> Vec<(&'static str, CsrGraph)> {
    let (kron_scale, shift, er_n) = if DEBUG_SCALE { (9, 10, 400) } else { (10, 8, 800) };
    vec![
        ("kronecker", kronecker(kron_scale, 8.0, KroneckerParams::GRAPH500, 1)),
        ("erdos-renyi", erdos_renyi_gnp(er_n, 10.0 / er_n as f64, 2)),
        ("road", standin("rca", shift, 3)),
        ("web-chain", standin("ndm", shift, 4)),
        ("social", standin("epi", shift - 1, 5)),
        ("path", GraphBuilder::new(100).edges((0..99u32).map(|v| (v, v + 1))).build()),
        ("star", GraphBuilder::new(65).edges((1..65u32).map(|v| (0, v))).build()),
    ]
}

fn root_of(g: &CsrGraph) -> VertexId {
    slimsell::graph::stats::sample_roots(g, 1)[0]
}

#[test]
fn engine_matrix_all_semirings_reps_lanes() {
    for (name, g) in families() {
        let root = root_of(&g);
        let reference = serial_bfs(&g, root);
        let n = g.num_vertices();
        macro_rules! check {
            ($sem:ty, $c:literal, $sigma:expr) => {{
                let slim = SlimSellMatrix::<$c>::build(&g, $sigma);
                let out = BfsEngine::run::<_, $sem, $c>(&slim, root, &BfsOptions::default());
                assert_eq!(
                    out.dist,
                    reference.dist,
                    "{name} slimsell {} C={} sigma={}",
                    <$sem>::NAME,
                    $c,
                    $sigma
                );
                if let Some(p) = &out.parent {
                    validate_parents(&g, root, &out.dist, p).unwrap();
                }
                let sell = SellCSigma::<$c>::build(&g, $sigma, <$sem>::PAD);
                let out = BfsEngine::run::<_, $sem, $c>(&sell, root, &BfsOptions::default());
                assert_eq!(out.dist, reference.dist, "{name} sellcs {} C={}", <$sem>::NAME, $c);
            }};
        }
        for sigma in [1usize, 32, n] {
            check!(TropicalSemiring, 4, sigma);
            check!(BooleanSemiring, 8, sigma);
            check!(RealSemiring, 16, sigma);
            check!(SelMaxSemiring, 32, sigma);
        }
        // Rotate semirings over lane widths for coverage.
        check!(TropicalSemiring, 32, n);
        check!(SelMaxSemiring, 4, n);
        check!(BooleanSemiring, 16, 32);
        check!(RealSemiring, 8, 1);
    }
}

#[test]
fn engine_option_combinations() {
    for (name, g) in families() {
        let root = root_of(&g);
        let reference = serial_bfs(&g, root);
        let n = g.num_vertices();
        let slim = SlimSellMatrix::<8>::build(&g, n);
        for slimwork in [false, true] {
            for slimchunk in [None, Some(1), Some(4)] {
                for schedule in [Schedule::Static, Schedule::Dynamic] {
                    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
                        let opts = BfsOptions { slimwork, slimchunk, ..Default::default() }
                            .sweep(sweep)
                            .schedule(schedule);
                        let out = BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &opts);
                        assert_eq!(
                            out.dist, reference.dist,
                            "{name} slimwork={slimwork} slimchunk={slimchunk:?} {schedule:?} \
                             sweep={sweep:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn baselines_agree() {
    for (name, g) in families() {
        let root = root_of(&g);
        let reference = serial_bfs(&g, root);
        let trad = trad_bfs(&g, root);
        assert_eq!(trad.dist, reference.dist, "{name} trad");
        validate_parents(&g, root, &trad.dist, &trad.parent).unwrap();
        let dir = dirop_bfs(&g, root, &DirOptBfsOptions::default());
        assert_eq!(dir.dist, reference.dist, "{name} dirop");
        validate_parents(&g, root, &dir.dist, &dir.parent).unwrap();
        for dedup in [Dedup::NoSort, Dedup::MergeSort, Dedup::RadixSort] {
            assert_eq!(spmspv_bfs(&g, root, dedup).dist, reference.dist, "{name} spmspv {dedup:?}");
        }
    }
}

#[test]
fn algebraic_diropt_agrees() {
    for (name, g) in families() {
        let root = root_of(&g);
        let reference = serial_bfs(&g, root);
        let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let out = run_diropt(&slim, root, &DirOptOptions::default());
        assert_eq!(out.bfs.dist, reference.dist, "{name} algebraic dirop");
    }
}

#[test]
fn descriptor_reproduces_diropt_counters() {
    // The descriptor driver with no user mask is the generalized form
    // of the hand-rolled direction optimization: distances, the
    // push/pull mode sequence, iteration count and the per-iteration
    // work counters (col_steps, cells) must be bit-identical on every
    // family. Worklist bookkeeping (activations) may only *drop*,
    // because the visited-complement mask filters settled chunks out
    // of the worklist instead of probing and SlimWork-skipping them.
    for (name, g) in families() {
        let root = root_of(&g);
        let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
            let oracle = run_diropt(&slim, root, &DirOptOptions::default().sweep(sweep));
            let desc = Descriptor::default().sweep(sweep);
            let out = run_descriptor(&slim, root, &desc);
            assert_eq!(out.bfs.dist, oracle.bfs.dist, "{name} {sweep:?} dist");
            assert_eq!(out.modes, oracle.modes, "{name} {sweep:?} mode sequence");
            assert_eq!(
                out.bfs.stats.num_iterations(),
                oracle.bfs.stats.num_iterations(),
                "{name} {sweep:?} iterations"
            );
            for (k, (a, b)) in out.bfs.stats.iters.iter().zip(&oracle.bfs.stats.iters).enumerate() {
                assert_eq!(a.col_steps, b.col_steps, "{name} {sweep:?} iter {k} col_steps");
                assert_eq!(a.cells, b.cells, "{name} {sweep:?} iter {k} cells");
            }
            assert!(
                out.bfs.stats.total_activations() <= oracle.bfs.stats.total_activations(),
                "{name} {sweep:?}: descriptor paid {} activations, dirop {}",
                out.bfs.stats.total_activations(),
                oracle.bfs.stats.total_activations()
            );
        }
    }
}

#[test]
fn dp_transform_valid_on_all_families() {
    for (name, g) in families() {
        let root = root_of(&g);
        let r = serial_bfs(&g, root);
        let p = dp_transform(&g, &r.dist, root);
        validate_parents(&g, root, &r.dist, &p).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn msbfs_all_sweep_modes_agree() {
    // The batched multi-source kernel under every sweep strategy: each
    // lane must match the serial single-source reference for its root,
    // on every graph family.
    use slimsell::core::{multi_bfs_with, MsBfsOptions};
    for (name, g) in families() {
        let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let r = slimsell::graph::stats::sample_roots(&g, 4);
        let roots: [VertexId; 4] = [r[0], r[1 % r.len()], r[2 % r.len()], r[3 % r.len()]];
        for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
            let opts = MsBfsOptions::default().sweep(sweep);
            let out = multi_bfs_with::<_, 8, 4>(&slim, &roots, &opts);
            assert!(out.completed, "{name} msbfs {sweep:?} hit its iteration cap");
            for (lane, &root) in roots.iter().enumerate() {
                assert_eq!(
                    out.dist[lane],
                    serial_bfs(&g, root).dist,
                    "{name} msbfs {sweep:?} lane {lane} root {root}"
                );
            }
        }
    }
}

#[test]
fn betweenness_all_sweep_modes_agree() {
    // Betweenness forward sweeps ride the same sweep substrate; the
    // sampled centralities must be bit-identical across modes.
    use slimsell::core::{betweenness_from_sources_with, BetweennessOptions};
    let mut covered = 0usize;
    for (name, g) in families() {
        let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let sources = slimsell::graph::stats::sample_roots(&g, 4);
        // Families whose walk counts overflow the f32 exact-integer
        // range are rejected by the kernel (by design, for *every*
        // sweep mode equally); skip those and compare the rest.
        let Ok(full) = std::panic::catch_unwind(|| {
            betweenness_from_sources_with(
                &slim,
                &sources,
                &BetweennessOptions::default().sweep(SweepMode::Full),
            )
        }) else {
            continue;
        };
        covered += 1;
        for sweep in [SweepMode::Worklist, SweepMode::Adaptive] {
            let out = betweenness_from_sources_with(
                &slim,
                &sources,
                &BetweennessOptions::default().sweep(sweep),
            );
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&full), "{name} betweenness {sweep:?}");
        }
    }
    assert!(covered >= 3, "only {covered} families fit exact BC; test is vacuous");
}

#[test]
fn served_queries_agree_with_serial_reference() {
    // The serving layer on every graph family: batched answers must
    // equal the serial reference, under both sweep strategies the
    // server can be configured with.
    use std::sync::Arc;
    for (name, g) in families() {
        let slim = Arc::new(SlimSellMatrix::<8>::build(&g, g.num_vertices()));
        for sweep in [SweepMode::Full, SweepMode::Adaptive] {
            let opts = ServeOptions::default().sweep(sweep);
            let server = BfsServer::<_, 8, 4>::start(Arc::clone(&slim), opts);
            let roots = slimsell::graph::stats::sample_roots(&g, 6);
            let handles: Vec<_> = roots.iter().map(|&r| server.submit(r)).collect();
            for (h, &root) in handles.into_iter().zip(&roots) {
                let out = h.wait().expect("serve query failed");
                assert_eq!(
                    out.dist,
                    serial_bfs(&g, root).dist,
                    "{name} serve {sweep:?} root {root}"
                );
            }
            let stats = server.shutdown().stats;
            assert_eq!(stats.served, roots.len() as u64, "{name} serve {sweep:?}");
            assert_eq!(stats.submitted, stats.resolved(), "{name} serve {sweep:?}");
        }
    }
}

#[test]
fn multiple_roots_per_graph() {
    let g = kronecker(if DEBUG_SCALE { 10 } else { 11 }, 8.0, KroneckerParams::GRAPH500, 9);
    let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    for root in slimsell::graph::stats::sample_roots(&g, 8) {
        let reference = serial_bfs(&g, root);
        let out = BfsEngine::run::<_, BooleanSemiring, 8>(&slim, root, &BfsOptions::default());
        assert_eq!(out.dist, reference.dist, "root {root}");
    }
}
