//! Fast deterministic end-to-end regression gate for the hot path:
//! a Kronecker (R-MAT) graph at scale 10 → SlimSell BFS under all four
//! semirings, cross-checked against the serial reference from several
//! roots. Runs in well under a second so hot-path regressions are caught
//! on every `cargo test`.

use slimsell::prelude::*;

#[test]
fn kronecker_scale10_all_semirings_match_serial() {
    let g = kronecker(10, 16.0, KroneckerParams::GRAPH500, 7);
    let n = g.num_vertices();
    assert_eq!(n, 1 << 10);
    let slim = SlimSellMatrix::<8>::build(&g, n);

    // A high-degree root, a handful of sampled roots, and vertex 0.
    let mut roots = slimsell::graph::stats::sample_roots(&g, 3);
    roots.push(0);
    let hub = (0..n as VertexId).max_by_key(|&v| g.degree(v)).unwrap();
    roots.push(hub);

    for &root in &roots {
        let reference = serial_bfs(&g, root);
        macro_rules! check {
            ($sem:ty) => {{
                let out = BfsEngine::run::<_, $sem, 8>(&slim, root, &BfsOptions::default());
                assert_eq!(
                    out.dist,
                    reference.dist,
                    "{} diverged from serial BFS at root {root}",
                    <$sem>::NAME
                );
                if let Some(p) = &out.parent {
                    validate_parents(&g, root, &out.dist, p).unwrap();
                }
            }};
        }
        check!(TropicalSemiring);
        check!(BooleanSemiring);
        check!(RealSemiring);
        check!(SelMaxSemiring);
    }
}

#[test]
fn kronecker_scale10_generation_is_deterministic() {
    let a = kronecker(10, 16.0, KroneckerParams::GRAPH500, 7);
    let b = kronecker(10, 16.0, KroneckerParams::GRAPH500, 7);
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.num_edges(), b.num_edges());
    for v in 0..a.num_vertices() as VertexId {
        assert_eq!(a.neighbors(v), b.neighbors(v), "adjacency of {v} differs between runs");
    }
}
