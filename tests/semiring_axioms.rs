//! Property tests of the semiring laws §III-A relies on: `op1` must be
//! associative and commutative with the declared identity (this is what
//! makes SlimChunk's tile-split sound), padding must annihilate `op2`,
//! and the fused `combine` must decompose as `op1(acc, op2(vals, rhs))`.

use proptest::prelude::*;
use slimsell::prelude::*;
use slimsell::simd::SimdF32;

const C: usize = 4;

/// Lane values each semiring actually encounters.
fn tropical_vals() -> impl Strategy<Value = f32> {
    prop_oneof![Just(f32::INFINITY), (0u32..1000).prop_map(|x| x as f32)]
}

fn boolean_vals() -> impl Strategy<Value = f32> {
    prop_oneof![Just(0.0f32), Just(1.0f32)]
}

fn counts_vals() -> impl Strategy<Value = f32> {
    (0u32..10_000).prop_map(|x| x as f32)
}

fn index_vals() -> impl Strategy<Value = f32> {
    (0u32..1_000_000).prop_map(|x| x as f32)
}

macro_rules! axiom_tests {
    ($modname:ident, $sem:ty, $vals:ident) => {
        mod $modname {
            use super::*;

            fn v(x: [f32; C]) -> SimdF32<C> {
                SimdF32(x)
            }

            proptest! {
                #[test]
                fn op1_commutative(a in prop::array::uniform4($vals()), b in prop::array::uniform4($vals())) {
                    let ab = <$sem>::op1(v(a), v(b));
                    let ba = <$sem>::op1(v(b), v(a));
                    prop_assert_eq!(ab.0.map(f32::to_bits), ba.0.map(f32::to_bits));
                }

                #[test]
                fn op1_associative(
                    a in prop::array::uniform4($vals()),
                    b in prop::array::uniform4($vals()),
                    c in prop::array::uniform4($vals()),
                ) {
                    let l = <$sem>::op1(<$sem>::op1(v(a), v(b)), v(c));
                    let r = <$sem>::op1(v(a), <$sem>::op1(v(b), v(c)));
                    for i in 0..C {
                        if !l.0[i].is_finite() || !r.0[i].is_finite() {
                            // ∞ lanes (tropical identity) must agree exactly.
                            prop_assert_eq!(l.0[i].to_bits(), r.0[i].to_bits(), "lane {}", i);
                        } else {
                            // Real-semiring op1 is float addition: allow ulp slack.
                            prop_assert!((l.0[i] - r.0[i]).abs() <= 1e-3 * (1.0 + l.0[i].abs()),
                                "lane {}: {} vs {}", i, l.0[i], r.0[i]);
                        }
                    }
                }

                #[test]
                fn op1_identity(a in prop::array::uniform4($vals())) {
                    let id = SimdF32::<C>::splat(<$sem>::OP1_IDENTITY);
                    let out = <$sem>::op1(v(a), id);
                    prop_assert_eq!(out.0.map(f32::to_bits), a.map(f32::to_bits));
                }

                #[test]
                fn padding_annihilates(acc in prop::array::uniform4($vals()), rhs in prop::array::uniform4($vals())) {
                    // combine(acc, PAD, rhs) must leave acc unchanged: that is
                    // exactly what makes padded cells (and the SlimSell blend)
                    // semantically invisible.
                    let out = <$sem>::combine(v(acc), SimdF32::splat(<$sem>::PAD), v(rhs));
                    prop_assert_eq!(out.0.map(f32::to_bits), acc.map(f32::to_bits));
                }

                #[test]
                fn combine_decomposes(
                    acc in prop::array::uniform4($vals()),
                    vals in prop::array::uniform4($vals()),
                    rhs in prop::array::uniform4($vals()),
                ) {
                    // op2 alone = combine starting from the op1 identity.
                    let op2 = <$sem>::combine(SimdF32::<C>::splat(<$sem>::OP1_IDENTITY), v(vals), v(rhs));
                    let fused = <$sem>::combine(v(acc), v(vals), v(rhs));
                    let recomposed = <$sem>::op1(v(acc), op2);
                    prop_assert_eq!(fused.0.map(f32::to_bits), recomposed.0.map(f32::to_bits));
                }
            }
        }
    };
}

axiom_tests!(tropical, TropicalSemiring, tropical_vals);
axiom_tests!(boolean, BooleanSemiring, boolean_vals);
axiom_tests!(real, RealSemiring, counts_vals);
axiom_tests!(selmax, SelMaxSemiring, index_vals);
