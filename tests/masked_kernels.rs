//! Masked-kernel suite: mask-algebra laws, the full-mask ≡ unmasked
//! bit-identity (counters included), masked traversals checked against
//! filtered-subgraph references, and the frontier-probe accounting of
//! the direction-optimized drivers.

use proptest::prelude::*;
use slimsell::core::dirop::{run_diropt, DirOptOptions, StepMode};
use slimsell::prelude::*;
use std::sync::Arc;

/// The filtered-subgraph reference: same vertex count, only edges with
/// both endpoints inside `keep`. Masked traversals must behave exactly
/// as if they ran on this graph.
fn filtered(g: &CsrGraph, keep: &[bool]) -> CsrGraph {
    GraphBuilder::new(g.num_vertices())
        .edges(g.edges().filter(|&(u, v)| keep[u as usize] && keep[v as usize]))
        .build()
}

fn half_mask(g: &CsrGraph, root: VertexId) -> (Vec<bool>, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut keep = vec![false; n];
    keep[..n / 2].fill(true);
    keep[root as usize] = true;
    let ids = (0..n as VertexId).filter(|&v| keep[v as usize]).collect();
    (keep, ids)
}

// ---------------------------------------------------------------- algebra

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mask algebra over arbitrary vertex sets: complement involution,
    /// De Morgan duality, and/or/and_not agreeing with the per-vertex
    /// booleans, padding lanes always allowed, `allowed_real` exactly
    /// the real-lane restriction of `allowed`.
    #[test]
    fn mask_algebra_laws(
        n in 1usize..=90,
        lanes_sel in 0usize..3,
        a_raw in proptest::collection::vec(0u32..2, 90),
        b_raw in proptest::collection::vec(0u32..2, 90),
    ) {
        let lanes = [4usize, 8, 32][lanes_sel];
        let a_bits: Vec<bool> = a_raw.iter().map(|&x| x != 0).collect();
        let b_bits: Vec<bool> = b_raw.iter().map(|&x| x != 0).collect();
        let build = |bits: &[bool]| {
            let mut m = VertexMask::empty(n, lanes);
            for (v, &b) in bits.iter().enumerate().take(n) {
                if b {
                    m.insert(v);
                }
            }
            m
        };
        let a = build(&a_bits);
        let b = build(&b_bits);
        let words = |m: &VertexMask| (0..m.num_chunks()).map(|i| m.allowed(i)).collect::<Vec<_>>();

        // Involution: ¬¬a = a.
        prop_assert_eq!(words(&a.complement().complement()), words(&a));
        // Set operations agree with the per-vertex booleans.
        for v in 0..n {
            prop_assert_eq!(a.contains(v), a_bits[v]);
            prop_assert_eq!(a.and(&b).contains(v), a_bits[v] && b_bits[v]);
            prop_assert_eq!(a.or(&b).contains(v), a_bits[v] || b_bits[v]);
            prop_assert_eq!(a.and_not(&b).contains(v), a_bits[v] && !b_bits[v]);
            prop_assert_eq!(a.complement().contains(v), !a_bits[v]);
        }
        // De Morgan: ¬(a ∪ b) = ¬a ∩ ¬b, and_not via complement.
        prop_assert_eq!(
            words(&a.or(&b).complement()),
            words(&a.complement().and(&b.complement()))
        );
        prop_assert_eq!(words(&a.and_not(&b)), words(&a.and(&b.complement())));
        // Cardinality tracks membership; empty/full fixpoints.
        prop_assert_eq!(a.len(), a_bits[..n].iter().filter(|&&x| x).count());
        prop_assert!(a.or(&a.complement()).is_full());
        prop_assert!(a.and(&a.complement()).is_empty());
        // Padding lanes (beyond n in the last chunk) stay allowed under
        // every operation, and allowed_real strips exactly them.
        let nc = a.num_chunks();
        for m in [&a, &b, &a.complement(), &a.and(&b), &a.or(&b), &a.and_not(&b)] {
            for i in 0..nc {
                let mut real = 0u32;
                for l in 0..lanes {
                    if i * lanes + l < n {
                        real |= 1 << l;
                    }
                }
                let padding = full_pad(lanes) & !real;
                prop_assert_eq!(m.allowed(i) & padding, padding, "padding lane cleared");
                prop_assert_eq!(m.allowed_real(i), m.allowed(i) & real);
            }
        }
    }
}

/// All `lanes` low bits set — the full per-chunk word.
fn full_pad(lanes: usize) -> u32 {
    if lanes >= 32 {
        u32::MAX
    } else {
        (1u32 << lanes) - 1
    }
}

#[test]
fn insert_remove_round_trip() {
    let mut m = VertexMask::empty(23, 4);
    assert!(m.insert(7));
    assert!(!m.insert(7), "double insert must report no-op");
    assert!(m.contains(7));
    assert!(m.remove(7));
    assert!(!m.remove(7), "double remove must report no-op");
    assert!(!m.contains(7));
    assert!(m.is_empty());
    let full = VertexMask::full(23, 4);
    assert!(full.is_full());
    assert_eq!(full.len(), 23);
    assert_eq!(full.iter().count(), 23);
}

// ------------------------------------------------- full mask ≡ no mask

#[test]
fn full_mask_is_bit_identical_to_unmasked() {
    // A full mask must reproduce the unmasked run bit-for-bit — outputs
    // AND every per-iteration work counter, in every sweep mode. This
    // is the contract that makes masking safe to thread through every
    // kernel unconditionally.
    let g = kronecker(9, 12.0, KroneckerParams::GRAPH500, 21);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let slim = SlimSellMatrix::<8>::build(&g, 64);
    let full = Arc::new(VertexMask::full(g.num_vertices(), 8));
    let trace = |o: &slimsell::core::BfsOutput| {
        o.stats
            .iters
            .iter()
            .map(|i| {
                (
                    i.sweep_mode,
                    i.chunks_processed,
                    i.chunks_skipped,
                    i.chunks_not_on_worklist,
                    i.worklist_len,
                    i.activations,
                    i.changed_chunks,
                    i.col_steps,
                    i.cells,
                    i.active_cells,
                    i.changed,
                )
            })
            .collect::<Vec<_>>()
    };
    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
        let base = BfsOptions::default().sweep(sweep);
        let unmasked = BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &base);
        let masked = BfsEngine::run::<_, TropicalSemiring, 8>(
            &slim,
            root,
            &base.clone().mask(Some(Arc::clone(&full))),
        );
        assert_eq!(masked.dist, unmasked.dist, "{sweep:?} dist");
        assert_eq!(masked.parent, unmasked.parent, "{sweep:?} parent");
        assert_eq!(trace(&masked), trace(&unmasked), "{sweep:?} counter trace");
    }
}

// ------------------------------------------- filtered-subgraph oracles

#[test]
fn masked_bfs_matches_filtered_subgraph() {
    for (name, g) in [
        ("kronecker", kronecker(9, 8.0, KroneckerParams::GRAPH500, 13)),
        ("erdos-renyi", erdos_renyi_gnp(500, 8.0 / 500.0, 14)),
        ("path", GraphBuilder::new(120).edges((0..119u32).map(|v| (v, v + 1))).build()),
    ] {
        let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
        let (keep, ids) = half_mask(&g, root);
        let reference = serial_bfs(&filtered(&g, &keep), root);
        let slim = SlimSellMatrix::<8>::build(&g, 32);
        let mask = Arc::new(VertexMask::from_original(slim.structure(), ids));
        for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
            let opts = BfsOptions::default().sweep(sweep).mask(Some(Arc::clone(&mask)));
            let out = BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &opts);
            assert_eq!(out.dist, reference.dist, "{name} engine {sweep:?}");
            // The descriptor front door must agree on the same subgraph,
            // in both forced directions.
            for dir in [DirectionPolicy::Push, DirectionPolicy::Pull] {
                let desc =
                    Descriptor::default().mask(Arc::clone(&mask)).direction(dir).sweep(sweep);
                let out = run_descriptor(&slim, root, &desc);
                assert_eq!(out.bfs.dist, reference.dist, "{name} descriptor {dir:?} {sweep:?}");
            }
        }
    }
}

#[test]
fn masked_sssp_matches_filtered_subgraph() {
    // The min-plus relaxation under a mask must converge to the exact
    // shortest distances of the filtered subgraph. The synthetic weight
    // of an edge depends only on its endpoints, so the filtered twin
    // carries identical weights on the surviving edges.
    let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 17);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let (keep, ids) = half_mask(&g, root);
    let sub = filtered(&g, &keep);
    let wg = slimsell::graph::weighted::synthetic_weighted_twin(&g);
    let wsub = slimsell::graph::weighted::synthetic_weighted_twin(&sub);
    let m = WeightedSellCSigma::<8>::build(&wg, wg.num_vertices());
    let msub = WeightedSellCSigma::<8>::build(&wsub, wsub.num_vertices());
    let mask = Arc::new(m.mask_from_original(ids));
    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
        let reference = sssp_with(&msub, root, &SsspOptions::default().sweep(sweep));
        let opts = SsspOptions::default().sweep(sweep).mask(Some(Arc::clone(&mask)));
        let out = sssp_with(&m, root, &opts);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out.dist), bits(&reference.dist), "sssp {sweep:?}");
    }
}

#[test]
fn root_only_mask_converges_immediately() {
    // A mask containing only the root: no edge survives, the run must
    // terminate after the empty-frontier detection with every other
    // vertex unreachable — in every sweep mode and both directions.
    let g = kronecker(8, 8.0, KroneckerParams::GRAPH500, 19);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let slim = SlimSellMatrix::<8>::build(&g, 32);
    let mask = Arc::new(VertexMask::from_original(slim.structure(), [root]));
    for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
        let opts = BfsOptions::default().sweep(sweep).mask(Some(Arc::clone(&mask)));
        let out = BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &opts);
        for (v, &d) in out.dist.iter().enumerate() {
            let expect = if v as VertexId == root { 0 } else { UNREACHABLE };
            assert_eq!(d, expect, "{sweep:?} vertex {v}");
        }
        for dir in [DirectionPolicy::Push, DirectionPolicy::Pull] {
            let desc = Descriptor::default().mask(Arc::clone(&mask)).direction(dir).sweep(sweep);
            let out = run_descriptor(&slim, root, &desc);
            assert!(
                out.bfs.dist.iter().enumerate().all(|(v, &d)| if v as VertexId == root {
                    d == 0
                } else {
                    d == UNREACHABLE
                }),
                "descriptor {dir:?} {sweep:?}"
            );
        }
    }
}

// -------------------------------------------------- frontier recovery

#[test]
fn bottom_up_frontier_probes_drop_on_road_network() {
    // The change-mask frontier recovery: on a high-diameter geometric
    // graph forced into pure bottom-up mode, worklist sweeps recover
    // each iteration's frontier from the harvested change masks
    // (O(|changed|) probes) where full sweeps scan all n vertices per
    // iteration. The probe counters must show the gap — for the
    // hand-rolled diropt driver and the descriptor front door alike.
    let n = 1usize << 13;
    let g = slimsell::gen::geometric::road_network(n, 2.8, 77);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let slim = SlimSellMatrix::<8>::build(&g, 32);
    // alpha = ∞ flips to bottom-up after the first hop; beta = ∞ never
    // goes back.
    let probe = |sweep: SweepMode| {
        let opts = DirOptOptions {
            alpha: f64::INFINITY,
            beta: f64::INFINITY,
            spmv: BfsOptions::default().sweep(sweep),
        };
        let out = run_diropt(&slim, root, &opts);
        assert!(
            out.modes[1..].iter().all(|&m| m == StepMode::BottomUp),
            "{sweep:?}: driver did not stay bottom-up"
        );
        (out.bfs.dist.clone(), out.bfs.stats.total_frontier_probes())
    };
    let (full_dist, full_probes) = probe(SweepMode::Full);
    let (wl_dist, wl_probes) = probe(SweepMode::Worklist);
    assert_eq!(wl_dist, full_dist);
    assert!(wl_probes > 0, "worklist recovery probed nothing");
    assert!(
        wl_probes * 4 < full_probes,
        "change-mask recovery did not pay off: worklist {wl_probes} vs full {full_probes} probes"
    );
    // Descriptor drivers inherit the same recovery path.
    let desc_probe = |sweep: SweepMode| {
        let desc = Descriptor::default().direction(DirectionPolicy::Pull).sweep(sweep);
        let out = run_descriptor(&slim, root, &desc);
        (out.bfs.dist.clone(), out.bfs.stats.total_frontier_probes())
    };
    let (dfull_dist, dfull_probes) = desc_probe(SweepMode::Full);
    let (dwl_dist, dwl_probes) = desc_probe(SweepMode::Worklist);
    assert_eq!(dwl_dist, dfull_dist);
    assert_eq!(dwl_dist, full_dist);
    assert!(
        dwl_probes * 4 < dfull_probes,
        "descriptor recovery did not pay off: worklist {dwl_probes} vs full {dfull_probes} probes"
    );
}

// ----------------------------------------------------- migration shims

#[test]
#[allow(deprecated)]
fn deprecated_sweep_shims_still_configure() {
    // The pre-PR-10 `set_sweep`/`set_schedule` mutators must keep
    // working (they forward into the shared SweepConfig) until callers
    // finish migrating to the builders.
    let mut opts = BfsOptions::default();
    opts.set_sweep(SweepMode::Worklist);
    opts.set_schedule(Schedule::Static);
    assert_eq!(opts.config.sweep, SweepMode::Worklist);
    assert_eq!(opts.config.schedule, Schedule::Static);
    let mut opts = SsspOptions::default();
    opts.set_sweep(SweepMode::Full);
    opts.set_schedule(Schedule::Static);
    assert_eq!(opts.config, SweepConfig::new(SweepMode::Full, Schedule::Static));
    let mut opts = PageRankOptions::default();
    opts.set_sweep(SweepMode::Worklist);
    assert_eq!(opts.config.sweep, SweepMode::Worklist);
    let mut opts = slimsell::core::MsBfsOptions::default();
    opts.set_schedule(Schedule::Static);
    assert_eq!(opts.config.schedule, Schedule::Static);
    let mut opts = slimsell::core::BetweennessOptions::default();
    opts.set_sweep(SweepMode::Adaptive);
    assert_eq!(opts.config.sweep, SweepMode::Adaptive);
    let mut opts = ServeOptions::default();
    opts.set_sweep(SweepMode::Full);
    assert_eq!(opts.config.sweep, SweepMode::Full);
}
