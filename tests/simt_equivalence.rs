//! The SIMT (GPU-model) engine must be output-equivalent to the CPU
//! engine and the serial reference in every configuration, and its cost
//! accounting must behave monotonically.

use slimsell::prelude::*;
use slimsell::simt::CostModel;

fn graphs() -> Vec<CsrGraph> {
    vec![
        kronecker(10, 8.0, KroneckerParams::GRAPH500, 1),
        erdos_renyi_gnp(700, 12.0 / 700.0, 2),
        standin("amz", 8, 3),
        GraphBuilder::new(70).edges((0..69u32).map(|v| (v, v + 1))).build(),
    ]
}

#[test]
fn all_semirings_all_options_match() {
    for g in graphs() {
        let n = g.num_vertices();
        let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
        let reference = serial_bfs(&g, root);
        let slim = SlimSellMatrix::<32>::build(&g, n);
        let cfg = SimtConfig::default();
        for slimwork in [false, true] {
            for slimchunk in [None, Some(2), Some(16)] {
                let opts = SimtOptions { slimwork, slimchunk };
                macro_rules! check {
                    ($sem:ty) => {{
                        let r = run_simt_bfs::<_, $sem, 32>(&slim, root, &cfg, &opts);
                        assert_eq!(
                            r.dist,
                            reference.dist,
                            "{} sw={slimwork} sc={slimchunk:?}",
                            <$sem>::NAME
                        );
                    }};
                }
                check!(TropicalSemiring);
                check!(BooleanSemiring);
                check!(RealSemiring);
                check!(SelMaxSemiring);
            }
        }
    }
}

#[test]
fn more_slots_never_slower() {
    let g = kronecker(10, 16.0, KroneckerParams::GRAPH500, 7);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let slim = SlimSellMatrix::<32>::build(&g, g.num_vertices());
    let mut prev = u64::MAX;
    for slots in [1usize, 4, 16, 64, 256] {
        let cfg = SimtConfig { warp_slots: slots, ..Default::default() };
        let r = run_simt_bfs::<_, TropicalSemiring, 32>(&slim, root, &cfg, &SimtOptions::default());
        let total = r.total_cycles();
        assert!(total <= prev, "slots {slots}: {total} > {prev}");
        prev = total;
    }
}

#[test]
fn busy_cycles_independent_of_slots() {
    let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 5);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let slim = SlimSellMatrix::<32>::build(&g, g.num_vertices());
    let busy = |slots| {
        let cfg = SimtConfig { warp_slots: slots, ..Default::default() };
        run_simt_bfs::<_, TropicalSemiring, 32>(&slim, root, &cfg, &SimtOptions::default())
            .iters
            .iter()
            .map(|i| i.busy_cycles)
            .sum::<u64>()
    };
    assert_eq!(busy(1), busy(64));
}

#[test]
fn cpu_counters_reproduce_simt_cost_model() {
    // The CPU engine's measured counters (chunks processed/skipped,
    // column steps, active cells) must plug into the warp cost model and
    // reproduce the simulator's busy-cycle and lane-efficiency numbers
    // exactly, iteration for iteration — the two layers account for the
    // same schedule, so any drift is a bug in one of them.
    let g = kronecker(10, 16.0, KroneckerParams::GRAPH500, 9);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let slim = SlimSellMatrix::<32>::build(&g, g.num_vertices());
    let cfg = SimtConfig::default();
    let rep = slim.representation();
    for slimwork in [false, true] {
        macro_rules! check {
            ($sem:ty) => {{
                let cpu_opts = BfsOptions { slimwork, ..Default::default() }.sweep(SweepMode::Full);
                let cpu = BfsEngine::run::<_, $sem, 32>(&slim, root, &cpu_opts);
                let sim = run_simt_bfs::<_, $sem, 32>(
                    &slim,
                    root,
                    &cfg,
                    &SimtOptions { slimwork, slimchunk: None },
                );
                assert_eq!(cpu.dist, sim.dist);
                assert_eq!(
                    cpu.stats.iters.len(),
                    sim.iters.len(),
                    "{} sw={slimwork}: iteration counts differ",
                    <$sem>::NAME
                );
                for (k, (c, s)) in cpu.stats.iters.iter().zip(&sim.iters).enumerate() {
                    assert_eq!(c.chunks_processed, s.chunks_processed, "iter {k}");
                    assert_eq!(c.chunks_skipped, s.chunks_skipped, "iter {k}");
                    assert_eq!(
                        cfg.cost.predicted_busy_cycles(c, rep, <$sem>::NAME),
                        s.busy_cycles,
                        "{} sw={slimwork} iter {k}: predicted busy cycles drift",
                        <$sem>::NAME
                    );
                    let measured =
                        if c.cells == 0 { 1.0 } else { c.active_cells as f64 / c.cells as f64 };
                    assert_eq!(
                        measured,
                        s.simd_efficiency,
                        "{} sw={slimwork} iter {k}: lane utilization drift",
                        <$sem>::NAME
                    );
                }
            }};
        }
        check!(TropicalSemiring);
        check!(BooleanSemiring);
    }
}

#[test]
fn pricier_gathers_hurt_sellcs_more() {
    // Raising the gather price hits both reps equally, but raising the
    // *load* price hits Sell-C-σ (which streams val) harder than
    // SlimSell — the §IV-A3 bandwidth argument.
    let g = kronecker(9, 16.0, KroneckerParams::GRAPH500, 11);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let n = g.num_vertices();
    let slim = SlimSellMatrix::<32>::build(&g, n);
    let sell = SellCSigma::<32>::build(&g, n, TropicalSemiring::PAD);
    let run = |cost: CostModel| {
        let cfg = SimtConfig { cost, ..Default::default() };
        let a = run_simt_bfs::<_, TropicalSemiring, 32>(&slim, root, &cfg, &SimtOptions::default());
        let b = run_simt_bfs::<_, TropicalSemiring, 32>(&sell, root, &cfg, &SimtOptions::default());
        (a.total_cycles(), b.total_cycles())
    };
    let cheap_loads = CostModel { load: 1, ..CostModel::DEFAULT };
    let dear_loads = CostModel { load: 16, ..CostModel::DEFAULT };
    let (slim_cheap, sell_cheap) = run(cheap_loads);
    let (slim_dear, sell_dear) = run(dear_loads);
    let adv_cheap = sell_cheap as f64 / slim_cheap as f64;
    let adv_dear = sell_dear as f64 / slim_dear as f64;
    assert!(
        adv_dear > adv_cheap,
        "SlimSell advantage {adv_dear} !> {adv_cheap} when loads get dearer"
    );
}
