//! Failure injection and edge cases: malformed inputs, degenerate
//! graphs, extreme parameters, and serving-layer faults (cancellation,
//! exhausted budgets, shutdown races).

use slimsell::prelude::*;

#[test]
fn disconnected_components_unreachable() {
    // Three components; BFS from each must mark the others unreachable.
    let g = GraphBuilder::new(9).edges([(0, 1), (1, 2), (3, 4), (6, 7), (7, 8)]).build();
    let slim = SlimSellMatrix::<4>::build(&g, 9);
    for root in [0u32, 3, 6] {
        let out = BfsEngine::run::<_, SelMaxSemiring, 4>(&slim, root, &BfsOptions::default());
        let reference = serial_bfs(&g, root);
        assert_eq!(out.dist, reference.dist);
        let p = out.parent.unwrap();
        for (v, (&pv, &dv)) in p.iter().zip(&out.dist).enumerate() {
            assert_eq!(pv == UNREACHABLE, dv == UNREACHABLE, "vertex {v}");
        }
    }
}

#[test]
fn isolated_root_terminates_immediately() {
    let g = GraphBuilder::new(8).edges([(1, 2), (2, 3)]).build();
    let slim = SlimSellMatrix::<4>::build(&g, 8);
    let out = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &BfsOptions::default());
    assert_eq!(out.dist[0], 0);
    assert!(out.dist[1..].iter().all(|&d| d == UNREACHABLE));
    assert!(out.stats.num_iterations() <= 2, "took {} iterations", out.stats.num_iterations());
}

#[test]
fn duplicate_and_reversed_edges_normalized() {
    let a = GraphBuilder::new(4).edges([(0, 1), (1, 0), (0, 1), (2, 3), (3, 2)]).build();
    let b = GraphBuilder::new(4).edges([(0, 1), (2, 3)]).build();
    assert_eq!(a, b);
}

#[test]
fn self_loops_dropped_everywhere() {
    let g = GraphBuilder::new(3).edges([(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]).build();
    assert_eq!(g.num_edges(), 2);
    let d = slimsell::bfs_distances(&g, 0);
    assert_eq!(d, vec![0, 1, 2]);
}

#[test]
fn sigma_edge_cases() {
    let g = GraphBuilder::new(10).edges((0..9u32).map(|v| (v, v + 1))).build();
    let reference = serial_bfs(&g, 0);
    // σ = 0 clamps to 1; σ > n clamps to n; σ not a multiple of C works.
    for sigma in [0usize, 1, 3, 7, 10, 1000] {
        let slim = SlimSellMatrix::<4>::build(&g, sigma);
        let out = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &BfsOptions::default());
        assert_eq!(out.dist, reference.dist, "sigma {sigma}");
    }
}

#[test]
fn single_vertex_graph() {
    let g = GraphBuilder::new(1).build();
    let slim = SlimSellMatrix::<8>::build(&g, 1);
    for opts in [BfsOptions::default(), BfsOptions::plain()] {
        let out = BfsEngine::run::<_, BooleanSemiring, 8>(&slim, 0, &opts);
        assert_eq!(out.dist, vec![0]);
    }
}

#[test]
fn complete_graph_two_iterations() {
    let n = 17u32;
    let mut b = GraphBuilder::new(n as usize);
    for u in 0..n {
        for v in (u + 1)..n {
            b.edge(u, v);
        }
    }
    let g = b.build();
    let slim = SlimSellMatrix::<8>::build(&g, n as usize);
    let out = BfsEngine::run::<_, TropicalSemiring, 8>(&slim, 5, &BfsOptions::default());
    assert!(out.dist.iter().enumerate().all(|(v, &d)| d == u32::from(v != 5)));
    // One productive iteration + one convergence check.
    assert_eq!(out.stats.num_iterations(), 2);
}

#[test]
fn max_iterations_cap_respected() {
    let g = GraphBuilder::new(50).edges((0..49u32).map(|v| (v, v + 1))).build();
    let slim = SlimSellMatrix::<4>::build(&g, 50);
    let opts = BfsOptions { max_iterations: Some(5), ..Default::default() };
    let out = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &opts);
    assert_eq!(out.stats.num_iterations(), 5);
    // Distances beyond the cap remain unreached.
    assert_eq!(out.dist[5], 5);
    assert_eq!(out.dist[49], UNREACHABLE);
}

#[test]
fn real_semiring_survives_path_count_blowup() {
    // Dense Kronecker graphs make walk counts overflow f32 quickly; the
    // real semiring must stay correct (counts saturate to +inf, which is
    // still "non-zero").
    let g = kronecker(9, 32.0, KroneckerParams::GRAPH500, 13);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let out = BfsEngine::run::<_, RealSemiring, 8>(&slim, root, &BfsOptions::default());
    assert_eq!(out.dist, serial_bfs(&g, root).dist);
}

#[test]
fn zero_degree_tail_rows() {
    // n % C != 0 plus trailing isolated vertices: the padded tail chunk
    // must neither crash nor emit phantom distances.
    let g = GraphBuilder::new(13).edges([(0, 1), (1, 2)]).build();
    let slim = SlimSellMatrix::<8>::build(&g, 13);
    let out = BfsEngine::run::<_, SelMaxSemiring, 8>(&slim, 0, &BfsOptions::default());
    assert_eq!(&out.dist[..3], &[0, 1, 2]);
    assert!(out.dist[3..].iter().all(|&d| d == UNREACHABLE));
}

#[test]
#[should_panic(expected = "out of range")]
fn trad_bfs_bad_root() {
    let g = GraphBuilder::new(2).edges([(0, 1)]).build();
    slimsell::baseline::trad_bfs(&g, 7);
}

#[test]
fn generators_reject_bad_parameters() {
    assert!(std::panic::catch_unwind(|| erdos_renyi_gnp(10, 1.5, 0)).is_err());
    assert!(std::panic::catch_unwind(|| slimsell::gen::erdos_renyi_gnm(3, 100, 0)).is_err());
    assert!(std::panic::catch_unwind(|| standin("does-not-exist", 4, 0)).is_err());
}

// ---- serving layer (crates/serve) failure injection ------------------

use std::sync::Arc;
use std::time::Duration;

fn serve_fixture() -> (Arc<SlimSellMatrix<8>>, ServeOptions) {
    // A long path makes sweeps take many iterations, so budgets and
    // cancellation have something to interrupt; a generous batch window
    // coalesces everything submitted up front into one batch.
    let g = GraphBuilder::new(96).edges((0..95u32).map(|v| (v, v + 1))).build();
    let m = Arc::new(SlimSellMatrix::<8>::build(&g, 96));
    let opts = ServeOptions { batch_window: Duration::from_millis(500), ..Default::default() };
    (m, opts)
}

#[test]
fn serve_cancel_mid_batch_does_not_poison_mates() {
    let (m, opts) = serve_fixture();
    let server = BfsServer::<_, 8, 4>::start(Arc::clone(&m), opts);
    let victim = server.submit(48);
    let mates = [server.submit(0), server.submit(95)];
    victim.cancel();
    // The cancelled query either reports Cancelled or had already won
    // the race to an exact answer; its mates must be exact either way.
    match victim.wait() {
        Err(QueryError::Cancelled) | Ok(_) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
    for (h, root) in mates.into_iter().zip([0u32, 95]) {
        let out = h.wait().expect("mate poisoned by cancellation");
        let want = BfsEngine::run::<_, TropicalSemiring, 8>(&*m, root, &BfsOptions::default()).dist;
        assert_eq!(out.dist, want, "mate {root}");
    }
    let stats = server.shutdown().stats;
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.submitted, stats.resolved());
}

#[test]
fn serve_zero_budget_fails_fast() {
    let (m, opts) = serve_fixture();
    let server = BfsServer::<_, 8, 4>::start(m, opts);
    let h = server.submit_with(0, Some(0));
    // Resolved synchronously: never enters the admission queue.
    assert!(h.is_done(), "zero-budget query entered the queue");
    assert_eq!(h.wait(), Err(QueryError::BudgetExhausted));
    let stats = server.shutdown().stats;
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.batches, 0, "zero-budget query consumed a batch");
    assert_eq!(stats.submitted, stats.resolved());
}

#[test]
fn serve_shutdown_drains_pending_then_rejects() {
    let (m, opts) = serve_fixture();
    let server = BfsServer::<_, 8, 4>::start(Arc::clone(&m), opts);
    let pending: Vec<_> = (0..10u32).map(|r| server.submit(r)).collect();
    let report = server.shutdown();
    assert_eq!(report.unclean_joins, 0);
    let stats = report.stats;
    // Every query admitted before shutdown is answered, not dropped.
    for (r, h) in pending.into_iter().enumerate() {
        let out = h.wait().expect("pending query dropped at shutdown");
        let want =
            BfsEngine::run::<_, TropicalSemiring, 8>(&*m, r as u32, &BfsOptions::default()).dist;
        assert_eq!(out.dist, want, "root {r}");
    }
    assert_eq!(stats.served, 10);
    // Submissions after shutdown are rejected immediately.
    let late = server.submit(0);
    assert!(late.is_done());
    assert_eq!(late.wait(), Err(QueryError::ShutDown));
    let stats = server.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.submitted, stats.resolved());
}
