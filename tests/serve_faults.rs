//! Chaos suite: deterministic fault injection against the serving
//! layer (`crates/serve`).
//!
//! A seeded [`FaultPlan`] panics and stalls workers mid-batch while
//! clients submit arbitrary query mixes. The properties:
//!
//! * **survivor exactness** — every query that is served despite the
//!   chaos returns distances bit-identical to a fault-free standalone
//!   [`BfsEngine`] run; a panic may kill a batch, never corrupt one;
//! * **containment** — only `Failed` (and, for budgeted/cancelled
//!   queries, their own outcomes) ever surface; panics are bounded by
//!   the plan's panic count and every panic is matched by a respawn
//!   while the restart budget lasts;
//! * **liveness** — after the chaos the server still accepts and
//!   serves fresh queries, and a killed pool (or a dropped server)
//!   still resolves every outstanding handle instead of hanging it;
//! * **accounting** — once every handle has resolved, the outcome
//!   counters exactly partition the submissions:
//!   `submitted = served + expired + cancelled + rejected + failed +
//!   shed`.
//!
//! The case count is tunable via `SLIMSELL_CHAOS_CASES` (default 24;
//! CI's chaos leg elevates it).

use proptest::prelude::*;
use slimsell::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const C: usize = 4;
const B: usize = 4;

fn chaos_cases() -> u32 {
    std::env::var("SLIMSELL_CHAOS_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
}

/// Strategy: a random undirected simple graph with 1..=60 vertices.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (1usize..=60).prop_flat_map(|n| {
        let max_edges = (n * n).min(400);
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges)
            .prop_map(move |edges| GraphBuilder::new(n).edges(edges).build())
    })
}

/// The three batching regimes (immediate, default, always-full).
fn window(sel: usize) -> Duration {
    Duration::from_micros([0, 200, 5_000][sel % 3])
}

fn standalone(m: &SlimSellMatrix<C>, root: VertexId) -> Vec<u32> {
    BfsEngine::run::<_, TropicalSemiring, C>(m, root, &BfsOptions::default()).dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// Seeded chaos over two workers: survivors are bit-identical to a
    /// fault-free run, the server stays live, and the books balance.
    /// The restart budget covers every possible panic, so the pool can
    /// never die and `Failed` is the only fault-induced outcome.
    #[test]
    fn chaos_survivors_bit_identical_and_server_stays_live(
        g in arb_graph(),
        root_sels in proptest::collection::vec(0usize..60, 1..=4 * B),
        seed in 0u64..(1u64 << 48),
        window_sel in 0usize..3,
    ) {
        let n = g.num_vertices();
        let m = Arc::new(SlimSellMatrix::<C>::build(&g, n));
        let plan = FaultPlan::seeded(seed, 2, 4, 3);
        let opts = ServeOptions {
            workers: 2,
            batch_window: window(window_sel),
            max_worker_restarts: plan.panic_count(),
            fault_plan: plan.clone(),
            ..Default::default()
        };
        let server = BfsServer::<_, C, B>::start(Arc::clone(&m), opts);
        let roots: Vec<VertexId> = root_sels.iter().map(|&r| (r % n) as VertexId).collect();
        let handles: Vec<_> = roots.iter().map(|&r| server.submit(r)).collect();
        let mut failed = 0u64;
        for (h, &root) in handles.into_iter().zip(&roots) {
            match h.wait() {
                Ok(out) => prop_assert_eq!(
                    &out.dist,
                    &standalone(&m, root),
                    "chaos corrupted a survivor (root {})",
                    root
                ),
                Err(QueryError::Failed { .. }) => failed += 1,
                Err(e) => prop_assert!(false, "unexpected outcome under chaos: {}", e),
            }
        }
        // Liveness: the (possibly respawned) pool still serves. A
        // fresh query may itself hit a not-yet-fired panic trigger, but
        // each trigger fires at most once — so within panic_count()+1
        // attempts one query must come back served.
        let fresh_root = roots[0];
        let mut extra = 0u64;
        let mut served_fresh = false;
        for _ in 0..=plan.panic_count() {
            extra += 1;
            match server.submit(fresh_root).wait() {
                Ok(out) => {
                    prop_assert_eq!(&out.dist, &standalone(&m, fresh_root));
                    served_fresh = true;
                    break;
                }
                Err(QueryError::Failed { .. }) => failed += 1,
                Err(e) => prop_assert!(false, "unexpected post-chaos outcome: {}", e),
            }
        }
        prop_assert!(
            served_fresh,
            "server failed {} consecutive fresh queries — not live after chaos",
            plan.panic_count() + 1
        );
        prop_assert!(!server.degraded(), "budget covers every panic; must not degrade");
        let report = server.shutdown();
        let stats = report.stats;
        prop_assert_eq!(report.unclean_joins, 0, "supervision must trap every panic");
        prop_assert!(
            stats.worker_panics <= plan.panic_count() as u64,
            "more panics ({}) than the plan armed ({})",
            stats.worker_panics,
            plan.panic_count()
        );
        prop_assert_eq!(
            stats.restarts, stats.worker_panics,
            "every in-budget panic must respawn"
        );
        prop_assert_eq!(stats.failed, failed, "Failed handles vs failed counter");
        prop_assert_eq!(stats.submitted, roots.len() as u64 + extra);
        prop_assert_eq!(stats.submitted, stats.resolved(), "partition broken: {:?}", stats);
    }

    /// Chaos composed with client-side budgets and cancellation: every
    /// outcome stays attributable (exact answer, own budget, own
    /// cancel, or the injected fault) and the partition still balances.
    #[test]
    fn chaos_with_budgets_and_cancels_keeps_books_exact(
        g in arb_graph(),
        plan_sel in proptest::collection::vec((0usize..60, 0usize..3, 0usize..4), 1..=4 * B),
        seed in 0u64..(1u64 << 48),
        window_sel in 0usize..3,
    ) {
        let n = g.num_vertices();
        let m = Arc::new(SlimSellMatrix::<C>::build(&g, n));
        let fault_plan = FaultPlan::seeded(seed, 2, 3, 2);
        let opts = ServeOptions {
            workers: 2,
            batch_window: window(window_sel),
            max_worker_restarts: fault_plan.panic_count(),
            fault_plan,
            ..Default::default()
        };
        let server = BfsServer::<_, C, B>::start(Arc::clone(&m), opts);
        // mode: 0 => plain, 1 => tight budget (may expire), 2..=3 => cancel.
        let queries: Vec<(VertexId, Option<usize>, bool)> = plan_sel
            .iter()
            .map(|&(r, budget_sel, mode)| {
                let budget = (budget_sel > 0).then_some(budget_sel);
                ((r % n) as VertexId, budget, mode >= 2)
            })
            .collect();
        let handles: Vec<_> = queries
            .iter()
            .map(|&(root, budget, cancel)| {
                let h = server.submit_with(root, budget);
                if cancel {
                    h.cancel();
                }
                h
            })
            .collect();
        for (h, &(root, budget, cancel)) in handles.into_iter().zip(&queries) {
            match h.wait() {
                Ok(out) => prop_assert_eq!(&out.dist, &standalone(&m, root), "root {}", root),
                Err(QueryError::Cancelled) => prop_assert!(cancel, "spurious cancel"),
                Err(QueryError::BudgetExhausted) => {
                    prop_assert!(budget.is_some(), "unbudgeted query expired")
                }
                Err(QueryError::Failed { .. }) => {} // the injected fault
                Err(e) => prop_assert!(false, "unexpected outcome: {}", e),
            }
        }
        let stats = server.shutdown().stats;
        prop_assert_eq!(stats.submitted, queries.len() as u64);
        prop_assert_eq!(stats.submitted, stats.resolved(), "partition broken: {:?}", stats);
    }
}

/// Regression: a handle being waited on while the server dies (pool
/// killed by an over-budget panic, then the server dropped) must
/// resolve instead of blocking its thread forever.
#[test]
fn wait_resolves_when_server_dies_mid_wait() {
    let g = GraphBuilder::new(16).edges((0..15u32).map(|v| (v, v + 1))).build();
    let m = Arc::new(SlimSellMatrix::<C>::build(&g, 16));
    // One worker, zero restarts: the stall pins batch 1 long enough for
    // us to queue work behind it, then batch 2's panic kills the pool.
    let opts = ServeOptions {
        batch_window: Duration::ZERO,
        max_worker_restarts: 0,
        fault_plan: FaultPlan::new()
            .stall_worker(0, 1, Duration::from_millis(80))
            .panic_worker(0, 2),
        ..Default::default()
    };
    let server = BfsServer::<_, C, 1>::start(m, opts);
    let pinned = server.submit(0);
    std::thread::sleep(Duration::from_millis(20));
    let doomed = server.submit(1);
    let orphan = server.submit(2);
    let (tx, rx) = std::sync::mpsc::channel();
    let waiter = std::thread::spawn(move || {
        let _ = tx.send(orphan.wait());
    });
    assert!(pinned.wait().is_ok(), "stalled batch must still serve");
    assert!(matches!(doomed.wait(), Err(QueryError::Failed { .. })));
    // Drop the server (runs shutdown) while the waiter may still block.
    drop(server);
    let got = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("QueryHandle::wait hung after the server died");
    assert!(
        matches!(got, Err(QueryError::Failed { .. })),
        "orphan behind a dead pool must fail, got {got:?}"
    );
    waiter.join().expect("waiter thread panicked");
}

/// Regression for the old `shutdown` aborting on a panicked worker:
/// shutdown after injected panics must return a report, not propagate
/// the panic, and the report's accounting must match the plan.
#[test]
fn shutdown_is_panic_proof_and_reports_faults() {
    let g = GraphBuilder::new(12).edges((0..11u32).map(|v| (v, v + 1))).build();
    let m = Arc::new(SlimSellMatrix::<C>::build(&g, 12));
    let opts = ServeOptions {
        batch_window: Duration::ZERO,
        fault_plan: FaultPlan::new().panic_worker(0, 1),
        ..Default::default()
    };
    let server = BfsServer::<_, C, 1>::start(m, opts);
    let doomed = server.submit(0);
    assert!(matches!(doomed.wait(), Err(QueryError::Failed { .. })));
    let report = server.shutdown();
    assert_eq!(report.stats.worker_panics, 1);
    assert_eq!(report.stats.restarts, 1);
    assert_eq!(report.unclean_joins, 0, "the panic was supervised, not leaked to join");
    assert!(report.workers_joined >= 1, "the respawned worker must be joined");
    assert!(!report.degraded);
    assert_eq!(report.stats.submitted, report.stats.resolved());
}
