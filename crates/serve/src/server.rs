//! The worker pool, admission queue, and batch lifecycle.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use slimsell_core::{multi_bfs_while, ChunkMatrix, MsBfsOptions, Schedule, SweepMode};
use slimsell_graph::VertexId;

use crate::query::{BatchInfo, QueryError, QueryHandle, QueryOutput, Ticket};
use crate::stats::ServerStats;

/// Default admission window when `SLIMSELL_BATCH_WINDOW_US` is unset.
const DEFAULT_BATCH_WINDOW_US: u64 = 200;

fn env_batch_window() -> Duration {
    static WINDOW: OnceLock<Duration> = OnceLock::new();
    *WINDOW.get_or_init(|| {
        let us = std::env::var("SLIMSELL_BATCH_WINDOW_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_BATCH_WINDOW_US);
        Duration::from_micros(us)
    })
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads pulling batches from the admission queue.
    pub workers: usize,
    /// How long a worker holds a partially filled batch open waiting
    /// for more roots: a batch launches when `B` roots have arrived or
    /// the window expires, whichever comes first. Defaults to
    /// `SLIMSELL_BATCH_WINDOW_US` microseconds (200 µs when unset).
    pub batch_window: Duration,
    /// Iteration budget applied by [`BfsServer::submit`]; `None` =
    /// unbounded. `submit_with` overrides per query.
    pub default_budget: Option<usize>,
    /// Sweep policy for the batch kernel (defaults to `SLIMSELL_SWEEP`).
    pub sweep: SweepMode,
    /// Tile schedule for the batch kernel.
    pub schedule: Schedule,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            batch_window: env_batch_window(),
            default_budget: None,
            sweep: SweepMode::env_default(),
            schedule: Schedule::Dynamic,
        }
    }
}

struct QueueState {
    queue: VecDeque<Arc<Ticket>>,
    shutdown: bool,
}

struct Shared<M> {
    matrix: Arc<M>,
    opts: ServeOptions,
    queue: Mutex<QueueState>,
    cv: Condvar,
    next_id: AtomicU64,
    next_batch: AtomicU64,
    stats: Mutex<ServerStats>,
}

/// A graph-as-a-service BFS query engine.
///
/// An immutable SlimSell snapshot (`Arc<M>`) is shared across a pool of
/// worker threads. Clients submit single-source BFS queries; the
/// admission queue coalesces concurrent queries into multi-source
/// batches of up to `B` roots that ride the `C·B`-wide
/// [`multi_bfs`](slimsell_core::multi_bfs) kernel, and each query's
/// distances are extracted back out of its lane of the batch state.
/// Because each lane computes an exact single-source BFS, served
/// distances are bit-identical to a standalone run no matter how the
/// queue happened to batch them.
pub struct BfsServer<M, const C: usize, const B: usize>
where
    M: ChunkMatrix<C> + 'static,
{
    shared: Arc<Shared<M>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<M, const C: usize, const B: usize> BfsServer<M, C, B>
where
    M: ChunkMatrix<C> + 'static,
{
    /// Starts the worker pool over a shared immutable snapshot.
    pub fn start(matrix: Arc<M>, opts: ServeOptions) -> Self {
        assert!(opts.workers >= 1, "server needs at least one worker");
        assert!(B >= 1, "batch width B must be at least 1");
        let workers = opts.workers;
        let shared = Arc::new(Shared {
            matrix,
            opts,
            queue: Mutex::new(QueueState { queue: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            next_id: AtomicU64::new(0),
            next_batch: AtomicU64::new(0),
            stats: Mutex::new(ServerStats::default()),
        });
        let handles = (0..workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop::<M, C, B>(&sh))
            })
            .collect();
        Self { shared, workers: Mutex::new(handles) }
    }

    /// Source-dimension lanes per batch (`B`).
    pub fn batch_lanes(&self) -> usize {
        B
    }

    /// Submits a single-source BFS query with the server's default
    /// budget. Panics if `root` is out of range for the snapshot.
    pub fn submit(&self, root: VertexId) -> QueryHandle {
        self.submit_with(root, self.shared.opts.default_budget)
    }

    /// Submits a query with an explicit iteration budget (`None` =
    /// unbounded): the query fails with
    /// [`QueryError::BudgetExhausted`] if the batch that carries it
    /// needs more than `budget` sweeps. A `Some(0)` budget fails fast
    /// at submission without entering the queue.
    pub fn submit_with(&self, root: VertexId, budget: Option<usize>) -> QueryHandle {
        let n = self.shared.matrix.structure().n();
        assert!((root as usize) < n, "root {root} out of range for snapshot with {n} vertices");
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let ticket = Arc::new(Ticket::new(id, root, budget));
        let handle = QueryHandle { ticket: Arc::clone(&ticket) };
        self.shared.stats.lock().expect("stats lock").submitted += 1;
        if budget == Some(0) {
            ticket.resolve(Err(QueryError::BudgetExhausted));
            self.shared.stats.lock().expect("stats lock").expired += 1;
            return handle;
        }
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            if q.shutdown {
                drop(q);
                ticket.resolve(Err(QueryError::ShutDown));
                self.shared.stats.lock().expect("stats lock").rejected += 1;
                return handle;
            }
            q.queue.push_back(ticket);
        }
        self.shared.cv.notify_all();
        handle
    }

    /// Snapshot of the server's lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.lock().expect("stats lock").clone()
    }

    /// Stops admission and drains: already-queued queries are still
    /// served (workers exit only once the queue is empty), then the
    /// pool is joined. Queries submitted after this resolve with
    /// [`QueryError::ShutDown`]. Idempotent; returns the final
    /// counters.
    pub fn shutdown(&self) -> ServerStats {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.shutdown = true;
        }
        self.shared.cv.notify_all();
        let handles: Vec<_> = self.workers.lock().expect("workers lock").drain(..).collect();
        for h in handles {
            h.join().expect("serve worker panicked");
        }
        self.stats()
    }
}

impl<M, const C: usize, const B: usize> Drop for BfsServer<M, C, B>
where
    M: ChunkMatrix<C> + 'static,
{
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<M, const C: usize, const B: usize>(shared: &Shared<M>)
where
    M: ChunkMatrix<C>,
{
    while let Some(batch) = next_batch::<M, B>(shared) {
        run_batch::<M, C, B>(shared, batch);
    }
}

/// Blocks for the next admission batch: waits for a first ticket, then
/// holds the batch open until `B` roots arrive, the batch window
/// expires, or shutdown — whichever comes first. Returns `None` when
/// the server is shut down and the queue fully drained.
fn next_batch<M, const B: usize>(shared: &Shared<M>) -> Option<Vec<Arc<Ticket>>> {
    let mut q = shared.queue.lock().expect("queue lock");
    let first = loop {
        if let Some(t) = q.queue.pop_front() {
            break t;
        }
        if q.shutdown {
            return None;
        }
        q = shared.cv.wait(q).expect("queue lock");
    };
    let mut batch = vec![first];
    let deadline = Instant::now() + shared.opts.batch_window;
    loop {
        while batch.len() < B {
            match q.queue.pop_front() {
                Some(t) => batch.push(t),
                None => break,
            }
        }
        if batch.len() >= B || q.shutdown {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, _) = shared.cv.wait_timeout(q, deadline - now).expect("queue lock");
        q = guard;
    }
    drop(q);
    Some(batch)
}

fn run_batch<M, const C: usize, const B: usize>(shared: &Shared<M>, tickets: Vec<Arc<Ticket>>)
where
    M: ChunkMatrix<C>,
{
    // Queries cancelled while queued drop out before the sweep; their
    // handles were already resolved by `cancel()`.
    let mut pre_cancelled = 0u64;
    let live: Vec<Arc<Ticket>> = tickets
        .into_iter()
        .filter(|t| {
            let dead = t.is_cancelled();
            pre_cancelled += dead as u64;
            !dead
        })
        .collect();
    if live.is_empty() {
        shared.stats.lock().expect("stats lock").cancelled += pre_cancelled;
        return;
    }

    // Unused lanes repeat the first live root; `multi_bfs` tolerates
    // duplicates and those lanes are simply never extracted.
    let mut roots = [live[0].root; B];
    for (lane, t) in live.iter().enumerate() {
        roots[lane] = t.root;
    }
    let opts = MsBfsOptions {
        sweep: shared.opts.sweep,
        schedule: shared.opts.schedule,
        max_iterations: None,
    };
    // The iteration-level control hook: keep sweeping only while some
    // lane's query is still live — neither cancelled nor past its
    // budget. When the last live lane drops, the sweep stops
    // gracefully instead of running to convergence.
    let out = multi_bfs_while(&*shared.matrix, &roots, &opts, |iter| {
        live.iter().any(|t| !t.is_cancelled() && t.budget.is_none_or(|b| iter <= b))
    });

    let info = BatchInfo {
        batch_id: shared.next_batch.fetch_add(1, Ordering::Relaxed),
        batch_size: live.len(),
        iterations: out.iterations,
        col_steps: out.stats.total_col_steps(),
        cells: out.stats.total_cells(),
        active_cells: out.stats.total_active_cells(),
    };

    let (mut served, mut expired, mut cancelled) = (0u64, 0u64, pre_cancelled);
    let mut dists = out.dist.into_iter();
    for t in &live {
        let dist = dists.next().expect("one distance vector per lane");
        if t.is_cancelled() {
            // Cancelled mid-batch: the handle already resolved; the
            // query just drops out of extraction without touching its
            // batch-mates.
            cancelled += 1;
            continue;
        }
        let within = t.budget.is_none_or(|b| out.iterations <= b);
        let resolved = if out.completed && within {
            t.resolve(Ok(QueryOutput { dist, batch: info.clone() }))
        } else {
            t.resolve(Err(QueryError::BudgetExhausted))
        };
        match (resolved, out.completed && within) {
            (true, true) => served += 1,
            (true, false) => expired += 1,
            // A concurrent `cancel()` won the resolve race.
            (false, _) => cancelled += 1,
        }
    }

    let mut stats = shared.stats.lock().expect("stats lock");
    stats.served += served;
    stats.expired += expired;
    stats.cancelled += cancelled;
    stats.batches += 1;
    stats.multi_root_batches += (info.batch_size > 1) as u64;
    stats.coalesced += info.batch_size as u64;
    stats.aborted_sweeps += (!out.completed) as u64;
    stats.total_iterations += info.iterations as u64;
    stats.total_col_steps += info.col_steps;
    stats.total_cells += info.cells;
    stats.total_active_cells += info.active_cells;
}
