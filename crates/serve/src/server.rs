//! The worker pool, admission queue, batch lifecycle, and supervision.
//!
//! # Fault domains and unwind safety
//!
//! Each worker's batch processing runs inside `catch_unwind`, making
//! one batch the blast radius of one panic: the panicking worker
//! resolves its in-flight batch's queries as
//! [`QueryError::Failed`] and exits; supervision respawns a
//! replacement while the restart budget
//! ([`ServeOptions::max_worker_restarts`]) lasts, after which the
//! server *degrades* — new submissions are rejected
//! ([`QueryError::Degraded`]) while admitted work keeps draining.
//!
//! The `AssertUnwindSafe` is justified, not assumed:
//!
//! * the matrix snapshot is immutable behind an `Arc` — no sweep ever
//!   writes it;
//! * all kernel scratch (`multi_bfs_while`'s state vectors, the roots
//!   array) is batch-local and dropped by the unwind;
//! * shared mutable state is touched only through the poison-
//!   recovering locks in [`crate::sync`], and every critical section
//!   is a single non-panicking write (a counter bump, a queue
//!   push/pop, a result-slot fill), so a panic can never expose a
//!   torn invariant to the next lock holder;
//! * ticket resolution is first-writer-wins and counts its partition
//!   bucket in the same call, so stats agree with handle outcomes
//!   even when a panic lands between a batch's resolutions.
//!
//! Injected faults ([`FaultPlan`]) panic from the iteration callback —
//! between sweeps, on the worker thread, never inside a parallel
//! region — exercising exactly this path deterministically.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use slimsell_core::{
    multi_bfs_while, ChunkMatrix, MsBfsOptions, Schedule, SweepConfig, SweepMode, VertexMask,
};
use slimsell_graph::VertexId;

use crate::fault::{FaultKind, FaultPlan};
use crate::query::{BatchInfo, QueryError, QueryHandle, QueryOutput, QuerySpec, Ticket};
use crate::stats::{Outcome, ServerStats, ShutdownReport};
use crate::sync;

/// Default admission window when `SLIMSELL_BATCH_WINDOW_US` is unset.
const DEFAULT_BATCH_WINDOW_US: u64 = 200;

/// Default worker-restart budget when `SLIMSELL_MAX_RESTARTS` is unset.
const DEFAULT_MAX_RESTARTS: usize = 8;

fn env_batch_window() -> Duration {
    static WINDOW: OnceLock<Duration> = OnceLock::new();
    *WINDOW.get_or_init(|| {
        let us = std::env::var("SLIMSELL_BATCH_WINDOW_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_BATCH_WINDOW_US);
        Duration::from_micros(us)
    })
}

fn env_max_restarts() -> usize {
    static RESTARTS: OnceLock<usize> = OnceLock::new();
    *RESTARTS.get_or_init(|| {
        std::env::var("SLIMSELL_MAX_RESTARTS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_RESTARTS)
    })
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads pulling batches from the admission queue.
    pub workers: usize,
    /// How long a worker holds a partially filled batch open waiting
    /// for more roots: a batch launches when `B` roots have arrived or
    /// the window expires, whichever comes first. Defaults to
    /// `SLIMSELL_BATCH_WINDOW_US` microseconds (200 µs when unset).
    pub batch_window: Duration,
    /// Iteration budget applied by [`BfsServer::submit`]; `None` =
    /// unbounded. `submit_with`/`submit_spec` override per query.
    pub default_budget: Option<usize>,
    /// Wall-clock deadline applied by [`BfsServer::submit`] and
    /// [`BfsServer::submit_with`], measured from submission; `None` =
    /// no deadline. `submit_spec` overrides per query.
    pub default_deadline: Option<Duration>,
    /// Bound on the admission queue (`None` = unbounded). A submission
    /// against a full queue fast-fails with [`QueryError::QueueFull`]
    /// instead of growing the backlog — the load-shedding fast path.
    pub queue_capacity: Option<usize>,
    /// How many panicked workers supervision may respawn over the
    /// server's lifetime before it degrades to rejecting new
    /// submissions (admitted work still drains). Defaults to
    /// `SLIMSELL_MAX_RESTARTS` (8 when unset).
    pub max_worker_restarts: usize,
    /// Deterministic chaos injection: which workers panic or stall on
    /// which batches. Empty by default (no faults).
    pub fault_plan: FaultPlan,
    /// Sweep policy and tile schedule for the batch kernel (the sweep
    /// defaults to `SLIMSELL_SWEEP`).
    pub config: SweepConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            batch_window: env_batch_window(),
            default_budget: None,
            default_deadline: None,
            queue_capacity: None,
            max_worker_restarts: env_max_restarts(),
            fault_plan: FaultPlan::new(),
            config: SweepConfig::default(),
        }
    }
}

impl ServeOptions {
    /// Sets the sweep policy of the batch kernel (builder).
    #[must_use]
    pub fn sweep(mut self, sweep: SweepMode) -> Self {
        self.config.sweep = sweep;
        self
    }

    /// Sets the tile schedule of the batch kernel (builder).
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Sets the full sweep configuration of the batch kernel (builder).
    #[must_use]
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Migration shim for the pre-PR-10 `sweep` field.
    #[deprecated(note = "set `config.sweep` or use the `.sweep(..)` builder")]
    pub fn set_sweep(&mut self, sweep: SweepMode) {
        self.config.sweep = sweep;
    }

    /// Migration shim for the pre-PR-10 `schedule` field.
    #[deprecated(note = "set `config.schedule` or use the `.schedule(..)` builder")]
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.config.schedule = schedule;
    }
}

struct QueueState {
    queue: VecDeque<Arc<Ticket>>,
    shutdown: bool,
    /// Set when the restart budget is exhausted by a panic: new
    /// submissions are rejected, admitted work still drains.
    degraded: bool,
}

struct Shared<M> {
    matrix: Arc<M>,
    opts: ServeOptions,
    queue: Mutex<QueueState>,
    cv: Condvar,
    next_id: AtomicU64,
    next_batch: AtomicU64,
    stats: Arc<Mutex<ServerStats>>,
    /// Worker join handles; respawned replacements register here so
    /// shutdown can join every incarnation.
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Workers currently alive (spawned minus exited). When a panic
    /// kills the last worker past the restart budget, the queue is
    /// failed out so no admitted handle can block forever.
    live_workers: AtomicUsize,
    /// Respawns consumed from [`ServeOptions::max_worker_restarts`].
    restarts_used: AtomicUsize,
    /// Fresh ids for respawned workers (per-incarnation, so a
    /// [`FaultPlan`] trigger site fires at most once).
    next_worker_id: AtomicUsize,
}

/// A graph-as-a-service BFS query engine.
///
/// An immutable SlimSell snapshot (`Arc<M>`) is shared across a pool of
/// worker threads. Clients submit single-source BFS queries; the
/// admission queue coalesces concurrent queries into multi-source
/// batches of up to `B` roots that ride the `C·B`-wide
/// [`multi_bfs`](slimsell_core::multi_bfs) kernel, and each query's
/// distances are extracted back out of its lane of the batch state.
/// Because each lane computes an exact single-source BFS, served
/// distances are bit-identical to a standalone run no matter how the
/// queue happened to batch them.
///
/// Workers are *supervised*: a panic (real or injected via
/// [`FaultPlan`]) fails only its own batch, and the pool self-heals up
/// to [`ServeOptions::max_worker_restarts`] respawns — see the module
/// docs for the fault-domain contract.
pub struct BfsServer<M, const C: usize, const B: usize>
where
    M: ChunkMatrix<C> + 'static,
{
    shared: Arc<Shared<M>>,
}

impl<M, const C: usize, const B: usize> BfsServer<M, C, B>
where
    M: ChunkMatrix<C> + 'static,
{
    /// Starts the worker pool over a shared immutable snapshot.
    pub fn start(matrix: Arc<M>, opts: ServeOptions) -> Self {
        assert!(opts.workers >= 1, "server needs at least one worker");
        assert!(B >= 1, "batch width B must be at least 1");
        let workers = opts.workers;
        let shared = Arc::new(Shared {
            matrix,
            opts,
            queue: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
                degraded: false,
            }),
            cv: Condvar::new(),
            next_id: AtomicU64::new(0),
            next_batch: AtomicU64::new(0),
            stats: Arc::new(Mutex::new(ServerStats::default())),
            workers: Mutex::new(Vec::with_capacity(workers)),
            live_workers: AtomicUsize::new(workers),
            restarts_used: AtomicUsize::new(0),
            next_worker_id: AtomicUsize::new(workers),
        });
        for id in 0..workers {
            spawn_worker::<M, C, B>(&shared, id);
        }
        Self { shared }
    }

    /// Source-dimension lanes per batch (`B`).
    pub fn batch_lanes(&self) -> usize {
        B
    }

    /// Submits a single-source BFS query with the server's default
    /// budget and deadline. Panics if `root` is out of range for the
    /// snapshot.
    pub fn submit(&self, root: VertexId) -> QueryHandle {
        self.submit_spec(
            root,
            QuerySpec {
                budget: self.shared.opts.default_budget,
                deadline: self.shared.opts.default_deadline,
                mask: None,
            },
        )
    }

    /// Submits a query with an explicit iteration budget (`None` =
    /// unbounded) and the server's default deadline: the query fails
    /// with [`QueryError::BudgetExhausted`] if the batch that carries
    /// it needs more than `budget` sweeps. A `Some(0)` budget fails
    /// fast at submission without entering the queue.
    pub fn submit_with(&self, root: VertexId, budget: Option<usize>) -> QueryHandle {
        self.submit_spec(
            root,
            QuerySpec { budget, deadline: self.shared.opts.default_deadline, mask: None },
        )
    }

    /// Submits a query with explicit per-query controls: iteration
    /// budget and wall-clock deadline (see [`QuerySpec`]). Deadlined
    /// queries are dispatched earliest-deadline-first, shed from the
    /// queue if they expire before claiming a batch lane
    /// ([`QueryError::DeadlineExceeded`], counted as
    /// [`ServerStats::shed`]), and fail the same way if the deadline
    /// passes before extraction (counted as [`ServerStats::expired`]).
    /// Panics if `root` is out of range for the snapshot.
    pub fn submit_spec(&self, root: VertexId, spec: QuerySpec) -> QueryHandle {
        let s = self.shared.matrix.structure();
        let n = s.n();
        assert!((root as usize) < n, "root {root} out of range for snapshot with {n} vertices");
        if let Some(mask) = &spec.mask {
            // Validate at submission, on the client's thread: a bad
            // mask is a caller bug, not a batch fault to supervise.
            mask.check_layout(s);
            assert!(
                mask.contains(s.perm().to_new(root) as usize),
                "root {root} is not in the query's vertex mask"
            );
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline = spec.deadline.map(|d| Instant::now() + d);
        let ticket = Arc::new(Ticket::new(
            id,
            root,
            spec.budget,
            deadline,
            spec.mask,
            Arc::clone(&self.shared.stats),
        ));
        let handle = QueryHandle { ticket: Arc::clone(&ticket) };
        sync::lock(&self.shared.stats).submitted += 1;
        if spec.budget == Some(0) {
            ticket.resolve(Err(QueryError::BudgetExhausted), Outcome::Expired);
            return handle;
        }
        {
            let mut q = sync::lock(&self.shared.queue);
            if q.shutdown {
                drop(q);
                ticket.resolve(Err(QueryError::ShutDown), Outcome::Rejected);
                return handle;
            }
            if q.degraded {
                drop(q);
                ticket.resolve(Err(QueryError::Degraded), Outcome::Rejected);
                return handle;
            }
            if let Some(cap) = self.shared.opts.queue_capacity {
                if q.queue.len() >= cap {
                    drop(q);
                    ticket.resolve(Err(QueryError::QueueFull), Outcome::Rejected);
                    sync::lock(&self.shared.stats).queue_full_rejects += 1;
                    return handle;
                }
            }
            // Deadline-ordered admission: earliest deadline first,
            // deadline-free queries last, FIFO among equals — so under
            // backlog the work most at risk of expiring ships first.
            let pos = q.queue.iter().position(|t| earlier_deadline(deadline, t.deadline));
            match pos {
                Some(i) => q.queue.insert(i, ticket),
                None => q.queue.push_back(ticket),
            }
        }
        self.shared.cv.notify_all();
        handle
    }

    /// Snapshot of the server's lifetime counters.
    pub fn stats(&self) -> ServerStats {
        sync::lock(&self.shared.stats).clone()
    }

    /// Whether the server has degraded: its worker-restart budget was
    /// exhausted by panics, so new submissions are being rejected
    /// while already-admitted work drains.
    pub fn degraded(&self) -> bool {
        sync::lock(&self.shared.queue).degraded
    }

    /// Stops admission and drains: already-queued queries are still
    /// served (workers exit only once the queue is empty), then the
    /// pool is joined. Queries submitted after this resolve with
    /// [`QueryError::ShutDown`]. Never panics — workers that died from
    /// a panic are recorded in the report instead of propagating.
    /// Idempotent; returns the final counters and join tally.
    pub fn shutdown(&self) -> ShutdownReport {
        {
            let mut q = sync::lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.cv.notify_all();
        let (mut joined, mut unclean) = (0usize, 0usize);
        // Respawned workers may register while we join their
        // predecessors; keep draining until the registry stays empty.
        loop {
            let handles: Vec<_> = sync::lock(&self.shared.workers).drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                match h.join() {
                    Ok(()) => joined += 1,
                    Err(_) => {
                        // A panic escaped the supervised region (it
                        // cannot in normal operation): record it, never
                        // propagate it into the caller.
                        unclean += 1;
                        sync::lock(&self.shared.stats).worker_panics += 1;
                    }
                }
            }
        }
        // Safety net: if the pool died past its restart budget with
        // work still queued, resolve the leftovers so no admitted
        // handle blocks forever.
        let (leftovers, degraded) = {
            let mut q = sync::lock(&self.shared.queue);
            (q.queue.drain(..).collect::<Vec<_>>(), q.degraded)
        };
        for t in leftovers {
            t.resolve(
                Err(QueryError::Failed {
                    reason: "server shut down with no live workers".to_string(),
                }),
                Outcome::Failed,
            );
        }
        ShutdownReport {
            stats: self.stats(),
            workers_joined: joined,
            unclean_joins: unclean,
            degraded,
        }
    }
}

impl<M, const C: usize, const B: usize> Drop for BfsServer<M, C, B>
where
    M: ChunkMatrix<C> + 'static,
{
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// `a` strictly precedes `b` under earliest-deadline-first order
/// (`None` = no deadline = last; FIFO among equals because the
/// insertion point is the first *strictly later* queue entry).
fn earlier_deadline(a: Option<Instant>, b: Option<Instant>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => a < b,
        (Some(_), None) => true,
        (None, _) => false,
    }
}

/// Spawns one supervised worker and registers its handle.
fn spawn_worker<M, const C: usize, const B: usize>(shared: &Arc<Shared<M>>, id: usize)
where
    M: ChunkMatrix<C> + 'static,
{
    let sh = Arc::clone(shared);
    let handle = std::thread::spawn(move || worker_loop::<M, C, B>(&sh, id));
    sync::lock(&shared.workers).push(handle);
}

/// The supervised worker loop: batch processing runs inside
/// `catch_unwind` (see the module docs for the unwind-safety
/// argument), so a panic fails one batch, not the pool.
fn worker_loop<M, const C: usize, const B: usize>(shared: &Arc<Shared<M>>, id: usize)
where
    M: ChunkMatrix<C> + 'static,
{
    let mut seq = 0usize;
    loop {
        let Some(batch) = next_batch::<M, B>(shared) else {
            // Clean exit: shutdown requested and the queue is drained.
            shared.live_workers.fetch_sub(1, Ordering::AcqRel);
            return;
        };
        seq += 1;
        let fault = shared.opts.fault_plan.action(id, seq);
        let run = catch_unwind(AssertUnwindSafe(|| run_batch::<M, C, B>(shared, &batch, fault)));
        if let Err(payload) = run {
            supervise_panic::<M, C, B>(shared, id, &batch, payload.as_ref());
            return; // the replacement (if any) was spawned by supervision
        }
    }
}

/// Renders a caught panic payload for [`QueryError::Failed`] reasons.
fn payload_string(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Supervision: runs on a worker's own thread after `catch_unwind`
/// trapped a panic. Fails the in-flight batch, then either respawns a
/// replacement (restart budget permitting) or degrades the server —
/// and if the pool just died entirely, fails out the queue so every
/// admitted handle still resolves.
fn supervise_panic<M, const C: usize, const B: usize>(
    shared: &Arc<Shared<M>>,
    id: usize,
    batch: &[Arc<Ticket>],
    payload: &(dyn std::any::Any + Send),
) where
    M: ChunkMatrix<C> + 'static,
{
    let reason = payload_string(payload);
    // Tickets already resolved before the panic (served mid-extraction,
    // cancelled) keep their outcome: resolve is first-writer-wins and
    // each winner already counted its bucket.
    for t in batch {
        t.resolve(
            Err(QueryError::Failed { reason: format!("worker {id} panicked mid-batch: {reason}") }),
            Outcome::Failed,
        );
    }
    sync::lock(&shared.stats).worker_panics += 1;

    let budget = shared.opts.max_worker_restarts;
    let respawn = shared
        .restarts_used
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
            (used < budget).then_some(used + 1)
        })
        .is_ok();
    if respawn {
        sync::lock(&shared.stats).restarts += 1;
        let new_id = shared.next_worker_id.fetch_add(1, Ordering::Relaxed);
        spawn_worker::<M, C, B>(shared, new_id);
        return;
    }

    // Restart budget exhausted: degrade. New submissions are rejected
    // from now on; surviving workers keep draining. If this was the
    // last worker, fail out the queue — nothing is left to drain it.
    let orphans: Vec<Arc<Ticket>> = {
        let mut q = sync::lock(&shared.queue);
        q.degraded = true;
        if shared.live_workers.fetch_sub(1, Ordering::AcqRel) == 1 {
            q.queue.drain(..).collect()
        } else {
            Vec::new()
        }
    };
    for t in orphans {
        t.resolve(
            Err(QueryError::Failed {
                reason: "worker pool died: restart budget exhausted".to_string(),
            }),
            Outcome::Failed,
        );
    }
}

/// Pops the next query that still deserves a batch lane, shedding
/// expired work on the way: queries whose wall-clock deadline passed
/// while queued resolve [`QueryError::DeadlineExceeded`] here (counted
/// as `shed`) instead of wasting a lane; queries cancelled while
/// queued were already resolved by `cancel()` and just drop out.
fn pop_live(q: &mut QueueState) -> Option<Arc<Ticket>> {
    while let Some(t) = q.queue.pop_front() {
        if t.is_resolved() || t.is_cancelled() {
            continue;
        }
        if t.deadline_passed() {
            t.resolve(Err(QueryError::DeadlineExceeded), Outcome::Shed);
            continue;
        }
        return Some(t);
    }
    None
}

/// Two queries may share a batch only when their masks are identical:
/// the *same* `Arc` (pointer equality — cheap, unambiguous, and the
/// API contract clients are told to rely on) or absent on both sides.
fn masks_match(a: Option<&Arc<VertexMask>>, b: Option<&Arc<VertexMask>>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => Arc::ptr_eq(a, b),
        _ => false,
    }
}

/// Like [`pop_live`], but claims only queries whose vertex mask
/// matches the forming batch's; live mismatched queries stay queued in
/// EDF order for a later batch. Dead work is still pruned and expired
/// work shed along the scan. The returned flag reports whether any
/// live query was passed over for a mask mismatch — the signal behind
/// [`ServerStats::mask_splits`].
fn pop_live_matching(
    q: &mut QueueState,
    mask: Option<&Arc<VertexMask>>,
) -> (Option<Arc<Ticket>>, bool) {
    let mut passed_live = false;
    let mut i = 0;
    while i < q.queue.len() {
        let t = &q.queue[i];
        if t.is_resolved() || t.is_cancelled() {
            q.queue.remove(i);
            continue;
        }
        if t.deadline_passed() {
            let t = q.queue.remove(i).expect("index checked by the loop condition");
            t.resolve(Err(QueryError::DeadlineExceeded), Outcome::Shed);
            continue;
        }
        if masks_match(t.mask.as_ref(), mask) {
            return (q.queue.remove(i), passed_live);
        }
        passed_live = true;
        i += 1;
    }
    (None, passed_live)
}

/// Blocks for the next admission batch: waits for a first live ticket,
/// then holds the batch open until `B` *mask-compatible* roots arrive,
/// the batch window expires, or shutdown — whichever comes first. The
/// first ticket fixes the batch's mask; live queries with a different
/// mask are passed over (they lead a later batch) and the launch is
/// counted as a mask split. Returns `None` when the server is shut
/// down and the queue fully drained.
fn next_batch<M, const B: usize>(shared: &Shared<M>) -> Option<Vec<Arc<Ticket>>> {
    let mut q = sync::lock(&shared.queue);
    let first = loop {
        if let Some(t) = pop_live(&mut q) {
            break t;
        }
        if q.shutdown {
            return None;
        }
        q = sync::wait(&shared.cv, q);
    };
    let mask = first.mask.clone();
    let mut batch = vec![first];
    let mut split = false;
    let deadline = Instant::now() + shared.opts.batch_window;
    loop {
        while batch.len() < B {
            let (t, passed_live) = pop_live_matching(&mut q, mask.as_ref());
            split |= passed_live;
            match t {
                Some(t) => batch.push(t),
                None => break,
            }
        }
        if batch.len() >= B || q.shutdown {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, _) = sync::wait_timeout(&shared.cv, q, deadline - now);
        q = guard;
    }
    drop(q);
    if split {
        sync::lock(&shared.stats).mask_splits += 1;
    }
    Some(batch)
}

fn run_batch<M, const C: usize, const B: usize>(
    shared: &Shared<M>,
    tickets: &[Arc<Ticket>],
    fault: Option<FaultKind>,
) where
    M: ChunkMatrix<C>,
{
    // Queries cancelled while the batch was forming drop out before
    // the sweep; `cancel()` already resolved and accounted them.
    let live: Vec<&Arc<Ticket>> = tickets.iter().filter(|t| !t.is_cancelled()).collect();
    if live.is_empty() {
        return;
    }

    if let Some(FaultKind::Stall(d)) = fault {
        std::thread::sleep(d);
    }
    let inject_panic = matches!(fault, Some(FaultKind::Panic));

    // Unused lanes repeat the first live root; `multi_bfs` tolerates
    // duplicates and those lanes are simply never extracted.
    let mut roots = [live[0].root; B];
    for (lane, t) in live.iter().enumerate() {
        roots[lane] = t.root;
    }
    // Every live ticket in the batch carries the same mask (pointer-
    // identical or absent) by batch-formation contract, so the whole
    // batch rides one masked sweep.
    let opts = MsBfsOptions::default().config(shared.opts.config).mask(live[0].mask.clone());
    // The iteration-level control hook: keep sweeping only while some
    // lane's query is still live — neither cancelled, past its budget,
    // nor past its wall-clock deadline. When the last live lane drops,
    // the sweep stops gracefully instead of running to convergence.
    // An injected panic fires here, after the batch formed and the
    // sweep state was allocated — genuinely mid-batch, but between
    // sweeps and outside any parallel region.
    let out = multi_bfs_while(&*shared.matrix, &roots, &opts, |iter| {
        if inject_panic {
            panic!("injected fault: panic at sweep {iter}");
        }
        live.iter().any(|t| {
            !t.is_cancelled() && t.budget.is_none_or(|b| iter <= b) && !t.deadline_passed()
        })
    });

    let info = BatchInfo {
        batch_id: shared.next_batch.fetch_add(1, Ordering::Relaxed),
        batch_size: live.len(),
        iterations: out.iterations,
        col_steps: out.stats.total_col_steps(),
        cells: out.stats.total_cells(),
        active_cells: out.stats.total_active_cells(),
    };

    let mut dists = out.dist.into_iter();
    for t in &live {
        // One distance vector per lane by construction (live.len() <=
        // B); if this ever breaks, the panic is trapped by supervision
        // and fails this batch alone.
        let dist = dists.next().expect("one distance vector per lane");
        if t.is_cancelled() {
            // Cancelled mid-batch: `cancel()` resolved and accounted
            // it; the query drops out of extraction without touching
            // its batch-mates.
            continue;
        }
        let within = t.budget.is_none_or(|b| out.iterations <= b);
        if t.deadline_passed() {
            t.resolve(Err(QueryError::DeadlineExceeded), Outcome::Expired);
        } else if out.completed && within {
            t.resolve(Ok(QueryOutput { dist, batch: info.clone() }), Outcome::Served);
        } else {
            t.resolve(Err(QueryError::BudgetExhausted), Outcome::Expired);
        }
    }

    let mut stats = sync::lock(&shared.stats);
    stats.batches += 1;
    stats.multi_root_batches += (info.batch_size > 1) as u64;
    stats.coalesced += info.batch_size as u64;
    stats.aborted_sweeps += (!out.completed) as u64;
    stats.total_iterations += info.iterations as u64;
    stats.total_col_steps += info.col_steps;
    stats.total_cells += info.cells;
    stats.total_active_cells += info.active_cells;
}
