//! Graph-as-a-service: a concurrent batched BFS query engine over a
//! shared SlimSell snapshot.
//!
//! The paper's multi-source BFS extension (§VI) vectorizes `B`
//! independent BFS traversals over the source dimension of one
//! `C·B`-wide SpMV sweep. This crate turns that kernel into a serving
//! layer:
//!
//! * an immutable snapshot (`Arc<M: ChunkMatrix<C>>`) shared across a
//!   pool of worker threads;
//! * an admission queue that **coalesces** concurrent single-source
//!   queries into multi-source batches — a batch launches when `B`
//!   roots have arrived or a batch window expires, whichever first;
//! * per-query extraction back out of the `B`-lane batch state; each
//!   lane is an exact single-source BFS, so served distances are
//!   **bit-identical** to a standalone [`BfsEngine`](slimsell_core::BfsEngine)
//!   run regardless of how queries were batched;
//! * per-query **cancellation** and **iteration budgets**: a cancelled
//!   or expired query drops out of result extraction without
//!   perturbing its batch-mates, and once every lane of a batch is
//!   dead the iteration-level control hook stops the sweep gracefully
//!   instead of running to convergence.
//!
//! ```
//! use std::sync::Arc;
//! use slimsell_core::SlimSellMatrix;
//! use slimsell_graph::GraphBuilder;
//! use slimsell_serve::{BfsServer, ServeOptions};
//!
//! let g = GraphBuilder::new(6)
//!     .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
//!     .build();
//! let m = Arc::new(SlimSellMatrix::<4>::build(&g, 6));
//! let server = BfsServer::<_, 4, 2>::start(m, ServeOptions::default());
//! let a = server.submit(0);
//! let b = server.submit(5);
//! assert_eq!(a.wait().unwrap().dist, vec![0, 1, 2, 3, 4, 5]);
//! assert_eq!(b.wait().unwrap().dist, vec![5, 4, 3, 2, 1, 0]);
//! server.shutdown();
//! ```

#![deny(missing_docs)]

mod query;
mod server;
mod stats;

pub use query::{BatchInfo, QueryError, QueryHandle, QueryOutput};
pub use server::{BfsServer, ServeOptions};
pub use stats::ServerStats;

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_core::SlimSellMatrix;
    use slimsell_graph::{serial_bfs, CsrGraph, GraphBuilder};
    use std::sync::Arc;
    use std::time::Duration;

    fn path(n: usize) -> CsrGraph {
        GraphBuilder::new(n).edges((0..n as u32 - 1).map(|v| (v, v + 1))).build()
    }

    fn wide_opts() -> ServeOptions {
        // A generous window so tests control batch composition: every
        // query submitted while the window is open lands in one batch.
        ServeOptions { batch_window: Duration::from_millis(1000), ..ServeOptions::default() }
    }

    #[test]
    fn serves_exact_distances() {
        let g = path(10);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 2>::start(m, ServeOptions::default());
        let handles: Vec<_> = (0..10).map(|r| server.submit(r)).collect();
        for (r, h) in handles.into_iter().enumerate() {
            let out = h.wait().expect("served");
            assert_eq!(out.dist, serial_bfs(&g, r as u32).dist, "root {r}");
            assert!(out.batch.batch_size >= 1);
        }
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.served, 10);
        assert_eq!(stats.coalesced, 10);
    }

    #[test]
    fn coalesces_into_multi_root_batches() {
        let g = path(12);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 4>::start(m, wide_opts());
        let handles: Vec<_> = (0..4).map(|r| server.submit(r)).collect();
        for h in handles {
            h.wait().expect("served");
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 4);
        assert_eq!(stats.batches, 1, "window should coalesce all four roots");
        assert_eq!(stats.multi_root_batches, 1);
        assert!((stats.mean_batch_fill() - 4.0).abs() < 1e-9);
        assert!(stats.total_iterations > 0);
        assert!(stats.total_cells >= stats.total_active_cells);
    }

    #[test]
    fn zero_budget_fails_fast_without_entering_queue() {
        let g = path(8);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 2>::start(m, wide_opts());
        let h = server.submit_with(0, Some(0));
        assert!(h.is_done(), "zero budget must fail at submission");
        assert_eq!(h.wait(), Err(QueryError::BudgetExhausted));
        let stats = server.shutdown();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.batches, 0, "the query never reached a batch");
    }

    #[test]
    fn expired_query_does_not_poison_batch_mates() {
        // A 64-path from root 0 needs 64 sweeps; budget 1 expires while
        // the unbounded batch-mate still converges exactly.
        let g = path(64);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 2>::start(m, wide_opts());
        let ok = server.submit_with(0, None);
        let poor = server.submit_with(0, Some(1));
        assert_eq!(poor.wait(), Err(QueryError::BudgetExhausted));
        let out = ok.wait().expect("unbounded batch-mate served");
        assert_eq!(out.dist, serial_bfs(&g, 0).dist);
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.expired), (1, 1));
        assert_eq!(stats.aborted_sweeps, 0, "a live lane ran to convergence");
    }

    #[test]
    fn all_lanes_over_budget_aborts_the_sweep() {
        let g = path(64);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 2>::start(m, wide_opts());
        let a = server.submit_with(0, Some(3));
        let b = server.submit_with(1, Some(2));
        assert_eq!(a.wait(), Err(QueryError::BudgetExhausted));
        assert_eq!(b.wait(), Err(QueryError::BudgetExhausted));
        let stats = server.shutdown();
        assert_eq!(stats.expired, 2);
        assert_eq!(stats.aborted_sweeps, 1);
        // The sweep stopped right after the longest budget ran out
        // rather than running the path to convergence.
        assert_eq!(stats.total_iterations, 3);
    }

    #[test]
    fn cancelled_query_resolves_immediately() {
        let g = path(16);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 2>::start(m, wide_opts());
        let doomed = server.submit(3);
        doomed.cancel();
        assert!(doomed.is_done());
        assert_eq!(doomed.wait(), Err(QueryError::Cancelled));
        // Batch-mates (and later queries) are unaffected.
        let ok = server.submit(5);
        assert_eq!(ok.wait().expect("served").dist, serial_bfs(&g, 5).dist);
        let stats = server.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn shutdown_drains_queue_then_rejects() {
        let g = path(32);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 4>::start(m, ServeOptions::default());
        let handles: Vec<_> = (0..12).map(|r| server.submit(r)).collect();
        let stats = server.shutdown();
        for (r, h) in handles.into_iter().enumerate() {
            let out = h.wait().expect("in-flight query drained");
            assert_eq!(out.dist, serial_bfs(&g, r as u32).dist);
        }
        assert_eq!(stats.served, 12);
        let late = server.submit(0);
        assert_eq!(late.wait(), Err(QueryError::ShutDown));
        let stats = server.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(
            stats.submitted,
            stats.served + stats.expired + stats.cancelled + stats.rejected
        );
    }
}
