//! Graph-as-a-service: a concurrent batched BFS query engine over a
//! shared SlimSell snapshot.
//!
//! The paper's multi-source BFS extension (§VI) vectorizes `B`
//! independent BFS traversals over the source dimension of one
//! `C·B`-wide SpMV sweep. This crate turns that kernel into a serving
//! layer:
//!
//! * an immutable snapshot (`Arc<M: ChunkMatrix<C>>`) shared across a
//!   pool of worker threads;
//! * an admission queue that **coalesces** concurrent single-source
//!   queries into multi-source batches — a batch launches when `B`
//!   roots have arrived or a batch window expires, whichever first;
//! * per-query extraction back out of the `B`-lane batch state; each
//!   lane is an exact single-source BFS, so served distances are
//!   **bit-identical** to a standalone [`BfsEngine`](slimsell_core::BfsEngine)
//!   run regardless of how queries were batched;
//! * per-query **cancellation** and **iteration budgets**: a cancelled
//!   or expired query drops out of result extraction without
//!   perturbing its batch-mates, and once every lane of a batch is
//!   dead the iteration-level control hook stops the sweep gracefully
//!   instead of running to convergence;
//! * **fault tolerance**: workers are panic-isolated and supervised —
//!   a panic fails only its own batch, supervision respawns the
//!   worker up to [`ServeOptions::max_worker_restarts`], and past the
//!   budget the server degrades to rejecting new work while draining
//!   what it admitted. [`FaultPlan`] injects panics and stalls
//!   deterministically so the whole path is testable;
//! * **masked (subgraph) queries**: a [`QuerySpec::mask`] restricts a
//!   query's BFS to a vertex subset
//!   ([`VertexMask`](slimsell_core::VertexMask)); queries sharing the
//!   *same* `Arc<VertexMask>` still coalesce into one masked batch,
//!   while mismatched masks split batches — observable as
//!   [`ServerStats::mask_splits`];
//! * **overload control**: per-query wall-clock deadlines
//!   ([`QuerySpec`]) with earliest-deadline-first dispatch, shedding
//!   of already-expired queued work, and a bounded admission queue
//!   ([`ServeOptions::queue_capacity`]) that fast-fails
//!   [`QueryError::QueueFull`] instead of building unbounded backlog.
//!
//! Once every submitted handle has resolved, the outcome counters
//! partition the submissions exactly: `submitted = served + expired +
//! cancelled + rejected + failed + shed`
//! (see [`ServerStats::resolved`]).
//!
//! ```
//! use std::sync::Arc;
//! use slimsell_core::SlimSellMatrix;
//! use slimsell_graph::GraphBuilder;
//! use slimsell_serve::{BfsServer, ServeOptions};
//!
//! let g = GraphBuilder::new(6)
//!     .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
//!     .build();
//! let m = Arc::new(SlimSellMatrix::<4>::build(&g, 6));
//! let server = BfsServer::<_, 4, 2>::start(m, ServeOptions::default());
//! let a = server.submit(0);
//! let b = server.submit(5);
//! assert_eq!(a.wait().unwrap().dist, vec![0, 1, 2, 3, 4, 5]);
//! assert_eq!(b.wait().unwrap().dist, vec![5, 4, 3, 2, 1, 0]);
//! let report = server.shutdown();
//! assert_eq!(report.stats.served, 2);
//! assert_eq!(report.unclean_joins, 0);
//! ```

#![deny(missing_docs)]

mod fault;
mod query;
mod server;
mod stats;
mod sync;

pub use fault::{FaultKind, FaultPlan};
pub use query::{BatchInfo, QueryError, QueryHandle, QueryOutput, QuerySpec};
pub use server::{BfsServer, ServeOptions};
pub use stats::{ServerStats, ShutdownReport};

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_core::{ChunkMatrix, SlimSellMatrix, VertexMask};
    use slimsell_graph::{serial_bfs, CsrGraph, GraphBuilder, UNREACHABLE};
    use std::sync::Arc;
    use std::time::Duration;

    fn path(n: usize) -> CsrGraph {
        GraphBuilder::new(n).edges((0..n as u32 - 1).map(|v| (v, v + 1))).build()
    }

    fn wide_opts() -> ServeOptions {
        // A generous window so tests control batch composition: every
        // query submitted while the window is open lands in one batch.
        ServeOptions { batch_window: Duration::from_millis(1000), ..ServeOptions::default() }
    }

    fn assert_partition(stats: &ServerStats) {
        assert_eq!(
            stats.submitted,
            stats.resolved(),
            "outcomes must partition submissions: {stats:?}"
        );
    }

    #[test]
    fn serves_exact_distances() {
        let g = path(10);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 2>::start(m, ServeOptions::default());
        let handles: Vec<_> = (0..10).map(|r| server.submit(r)).collect();
        for (r, h) in handles.into_iter().enumerate() {
            let out = h.wait().expect("served");
            assert_eq!(out.dist, serial_bfs(&g, r as u32).dist, "root {r}");
            assert!(out.batch.batch_size >= 1);
        }
        let report = server.shutdown();
        assert_eq!(report.stats.submitted, 10);
        assert_eq!(report.stats.served, 10);
        assert_eq!(report.stats.coalesced, 10);
        assert_eq!(report.unclean_joins, 0);
        assert!(!report.degraded);
        assert_partition(&report.stats);
    }

    #[test]
    fn coalesces_into_multi_root_batches() {
        let g = path(12);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 4>::start(m, wide_opts());
        let handles: Vec<_> = (0..4).map(|r| server.submit(r)).collect();
        for h in handles {
            h.wait().expect("served");
        }
        let stats = server.shutdown().stats;
        assert_eq!(stats.served, 4);
        assert_eq!(stats.batches, 1, "window should coalesce all four roots");
        assert_eq!(stats.multi_root_batches, 1);
        assert!((stats.mean_batch_fill() - 4.0).abs() < 1e-9);
        assert!(stats.total_iterations > 0);
        assert!(stats.total_cells >= stats.total_active_cells);
        assert_partition(&stats);
    }

    #[test]
    fn zero_budget_fails_fast_without_entering_queue() {
        let g = path(8);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 2>::start(m, wide_opts());
        let h = server.submit_with(0, Some(0));
        assert!(h.is_done(), "zero budget must fail at submission");
        assert_eq!(h.wait(), Err(QueryError::BudgetExhausted));
        let stats = server.shutdown().stats;
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.batches, 0, "the query never reached a batch");
        assert_partition(&stats);
    }

    #[test]
    fn expired_query_does_not_poison_batch_mates() {
        // A 64-path from root 0 needs 64 sweeps; budget 1 expires while
        // the unbounded batch-mate still converges exactly.
        let g = path(64);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 2>::start(m, wide_opts());
        let ok = server.submit_with(0, None);
        let poor = server.submit_with(0, Some(1));
        assert_eq!(poor.wait(), Err(QueryError::BudgetExhausted));
        let out = ok.wait().expect("unbounded batch-mate served");
        assert_eq!(out.dist, serial_bfs(&g, 0).dist);
        let stats = server.shutdown().stats;
        assert_eq!((stats.served, stats.expired), (1, 1));
        assert_eq!(stats.aborted_sweeps, 0, "a live lane ran to convergence");
        assert_partition(&stats);
    }

    #[test]
    fn all_lanes_over_budget_aborts_the_sweep() {
        let g = path(64);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 2>::start(m, wide_opts());
        let a = server.submit_with(0, Some(3));
        let b = server.submit_with(1, Some(2));
        assert_eq!(a.wait(), Err(QueryError::BudgetExhausted));
        assert_eq!(b.wait(), Err(QueryError::BudgetExhausted));
        let stats = server.shutdown().stats;
        assert_eq!(stats.expired, 2);
        assert_eq!(stats.aborted_sweeps, 1);
        // The sweep stopped right after the longest budget ran out
        // rather than running the path to convergence.
        assert_eq!(stats.total_iterations, 3);
        assert_partition(&stats);
    }

    #[test]
    fn cancelled_query_resolves_immediately() {
        let g = path(16);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 2>::start(m, wide_opts());
        let doomed = server.submit(3);
        doomed.cancel();
        assert!(doomed.is_done());
        assert_eq!(doomed.wait(), Err(QueryError::Cancelled));
        // Batch-mates (and later queries) are unaffected.
        let ok = server.submit(5);
        assert_eq!(ok.wait().expect("served").dist, serial_bfs(&g, 5).dist);
        let stats = server.shutdown().stats;
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.served, 1);
        assert_partition(&stats);
    }

    #[test]
    fn shutdown_drains_queue_then_rejects() {
        let g = path(32);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let server = BfsServer::<_, 4, 4>::start(m, ServeOptions::default());
        let handles: Vec<_> = (0..12).map(|r| server.submit(r)).collect();
        let report = server.shutdown();
        for (r, h) in handles.into_iter().enumerate() {
            let out = h.wait().expect("in-flight query drained");
            assert_eq!(out.dist, serial_bfs(&g, r as u32).dist);
        }
        assert_eq!(report.stats.served, 12);
        assert_eq!(report.workers_joined, 1);
        assert_eq!(report.unclean_joins, 0);
        let late = server.submit(0);
        assert_eq!(late.wait(), Err(QueryError::ShutDown));
        let stats = server.stats();
        assert_eq!(stats.rejected, 1);
        assert_partition(&stats);
    }

    #[test]
    fn bounded_queue_fast_fails_when_full() {
        let g = path(16);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        // One worker, B=1, and a long stall on the first batch: the
        // worker is pinned while we overfill the capacity-2 queue.
        let opts = ServeOptions {
            batch_window: Duration::ZERO,
            queue_capacity: Some(2),
            fault_plan: FaultPlan::new().stall_worker(0, 1, Duration::from_millis(150)),
            ..ServeOptions::default()
        };
        let server = BfsServer::<_, 4, 1>::start(m, opts);
        let first = server.submit(0); // claimed by the (stalled) worker
        std::thread::sleep(Duration::from_millis(30));
        let queued: Vec<_> = (1..3).map(|r| server.submit(r)).collect();
        let overflow = server.submit(3);
        assert_eq!(overflow.wait(), Err(QueryError::QueueFull));
        assert_eq!(first.wait().expect("stalled but served").dist, serial_bfs(&g, 0).dist);
        for (i, h) in queued.into_iter().enumerate() {
            assert_eq!(
                h.wait().expect("queued query served").dist,
                serial_bfs(&g, i as u32 + 1).dist
            );
        }
        let stats = server.shutdown().stats;
        assert_eq!(stats.queue_full_rejects, 1);
        assert_eq!(stats.rejected, 1);
        assert_partition(&stats);
    }

    #[test]
    fn expired_queued_work_is_shed() {
        let g = path(16);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        // Pin the single worker with a 150 ms stall, then queue a query
        // whose 20 ms deadline expires long before a lane frees up.
        let opts = ServeOptions {
            batch_window: Duration::ZERO,
            fault_plan: FaultPlan::new().stall_worker(0, 1, Duration::from_millis(150)),
            ..ServeOptions::default()
        };
        let server = BfsServer::<_, 4, 1>::start(m, opts);
        let pinned = server.submit(0);
        std::thread::sleep(Duration::from_millis(30));
        let doomed =
            server.submit_spec(1, QuerySpec::default().deadline(Duration::from_millis(20)));
        assert_eq!(doomed.wait(), Err(QueryError::DeadlineExceeded));
        pinned.wait().expect("stalled batch still serves");
        let stats = server.shutdown().stats;
        assert_eq!(stats.shed, 1, "expired queued work must be shed, not served");
        assert_eq!(stats.served, 1);
        assert_partition(&stats);
    }

    #[test]
    fn deadlines_dispatch_earliest_first() {
        let g = path(16);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        // Pin the worker, then queue: no-deadline, 10 s, 1 s. EDF order
        // must dispatch them 1 s, 10 s, then no-deadline — observable
        // through strictly increasing batch ids (B=1: one batch each).
        let opts = ServeOptions {
            batch_window: Duration::ZERO,
            fault_plan: FaultPlan::new().stall_worker(0, 1, Duration::from_millis(120)),
            ..ServeOptions::default()
        };
        let server = BfsServer::<_, 4, 1>::start(m, opts);
        let pinned = server.submit(0);
        std::thread::sleep(Duration::from_millis(30));
        let relaxed = server.submit(1);
        let lax = server.submit_spec(2, QuerySpec::default().deadline(Duration::from_secs(10)));
        let urgent = server.submit_spec(3, QuerySpec::default().deadline(Duration::from_secs(1)));
        let b_urgent = urgent.wait().expect("urgent served").batch.batch_id;
        let b_lax = lax.wait().expect("lax served").batch.batch_id;
        let b_relaxed = relaxed.wait().expect("relaxed served").batch.batch_id;
        pinned.wait().expect("pinned served");
        assert!(
            b_urgent < b_lax && b_lax < b_relaxed,
            "EDF order violated: urgent={b_urgent} lax={b_lax} relaxed={b_relaxed}"
        );
        let stats = server.shutdown().stats;
        assert_eq!(stats.served, 4);
        assert_partition(&stats);
    }

    #[test]
    fn identical_masks_coalesce_and_serve_subgraph_distances() {
        let g = path(12);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let mask = Arc::new(VertexMask::from_original(m.structure(), 0..6u32));
        let server = BfsServer::<_, 4, 2>::start(Arc::clone(&m), wide_opts());
        let a = server.submit_spec(0, QuerySpec::default().mask(Arc::clone(&mask)));
        let b = server.submit_spec(5, QuerySpec::default().mask(Arc::clone(&mask)));
        let expect = |root: u32| -> Vec<u32> {
            (0..12u32).map(|v| if v < 6 { v.abs_diff(root) } else { UNREACHABLE }).collect()
        };
        assert_eq!(a.wait().expect("served").dist, expect(0));
        assert_eq!(b.wait().expect("served").dist, expect(5));
        let stats = server.shutdown().stats;
        assert_eq!(stats.served, 2);
        assert_eq!(stats.batches, 1, "one shared Arc<VertexMask> must coalesce");
        assert_eq!(stats.multi_root_batches, 1);
        assert_eq!(stats.mask_splits, 0);
        assert_partition(&stats);
    }

    #[test]
    fn mismatched_masks_split_batches() {
        let g = path(12);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let lower = Arc::new(VertexMask::from_original(m.structure(), 0..6u32));
        let upper = Arc::new(VertexMask::from_original(m.structure(), 6..12u32));
        let server = BfsServer::<_, 4, 2>::start(Arc::clone(&m), wide_opts());
        let a = server.submit_spec(0, QuerySpec::default().mask(lower));
        let b = server.submit_spec(6, QuerySpec::default().mask(upper));
        let da = a.wait().expect("served").dist;
        let db = b.wait().expect("served").dist;
        assert_eq!(&da[..6], &[0, 1, 2, 3, 4, 5]);
        assert!(da[6..].iter().all(|&d| d == UNREACHABLE));
        assert_eq!(&db[6..], &[0, 1, 2, 3, 4, 5]);
        assert!(db[..6].iter().all(|&d| d == UNREACHABLE));
        let stats = server.shutdown().stats;
        assert_eq!(stats.batches, 2, "distinct masks must never share a batch");
        assert_eq!(stats.mask_splits, 1, "the split must be counted");
        assert_partition(&stats);
    }

    #[test]
    fn masked_root_outside_mask_is_rejected_at_submission() {
        let g = path(8);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let mask = Arc::new(VertexMask::from_original(m.structure(), 0..4u32));
        let server = BfsServer::<_, 4, 2>::start(m, wide_opts());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            server.submit_spec(7, QuerySpec::default().mask(mask))
        }));
        assert!(err.is_err(), "a root outside the mask must panic at submission");
        server.shutdown();
    }

    #[test]
    fn panicking_worker_fails_batch_and_respawns() {
        let g = path(16);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        let opts = ServeOptions {
            batch_window: Duration::from_millis(300),
            fault_plan: FaultPlan::new().panic_worker(0, 1),
            ..ServeOptions::default()
        };
        let server = BfsServer::<_, 4, 2>::start(m, opts);
        // Both queries coalesce into worker 0's first batch → both fail.
        let a = server.submit(0);
        let b = server.submit(1);
        match a.wait() {
            Err(QueryError::Failed { reason }) => {
                assert!(reason.contains("injected fault"), "reason: {reason}")
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(matches!(b.wait(), Err(QueryError::Failed { .. })));
        // The respawned worker serves fresh work: the server healed.
        let healed = server.submit(2);
        assert_eq!(healed.wait().expect("respawned worker serves").dist, serial_bfs(&g, 2).dist);
        assert!(!server.degraded());
        let report = server.shutdown();
        assert_eq!(report.stats.worker_panics, 1);
        assert_eq!(report.stats.restarts, 1);
        assert_eq!(report.stats.failed, 2);
        assert_eq!(report.stats.served, 1);
        assert_eq!(report.unclean_joins, 0, "supervision must trap the panic before join");
        assert!(!report.degraded);
        assert_partition(&report.stats);
    }

    #[test]
    fn exhausted_restart_budget_degrades_but_still_resolves_everything() {
        let g = path(16);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        // Zero restarts: the first panic kills the only worker for good.
        let opts = ServeOptions {
            batch_window: Duration::ZERO,
            max_worker_restarts: 0,
            fault_plan: FaultPlan::new().panic_worker(0, 1),
            ..ServeOptions::default()
        };
        let server = BfsServer::<_, 4, 1>::start(m, opts);
        let doomed = server.submit(0);
        assert!(matches!(doomed.wait(), Err(QueryError::Failed { .. })));
        // Wait for supervision to flip the degraded flag (it runs on
        // the dying worker's thread after failing the batch).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !server.degraded() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.degraded(), "restart budget 0 must degrade on first panic");
        let rejected = server.submit(1);
        assert_eq!(rejected.wait(), Err(QueryError::Degraded));
        let report = server.shutdown();
        assert_eq!(report.stats.worker_panics, 1);
        assert_eq!(report.stats.restarts, 0);
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.rejected, 1);
        assert!(report.degraded);
        assert_eq!(report.unclean_joins, 0);
        assert_partition(&report.stats);
    }

    #[test]
    fn queued_work_fails_out_when_the_pool_dies() {
        let g = path(16);
        let m = Arc::new(SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        // Single worker, no restarts, stalled then panicking on its
        // first batch; work queued behind the stall must fail out when
        // the pool dies rather than wait forever.
        let opts = ServeOptions {
            batch_window: Duration::ZERO,
            max_worker_restarts: 0,
            fault_plan: FaultPlan::new()
                .stall_worker(0, 1, Duration::from_millis(80))
                .panic_worker(0, 2),
            ..ServeOptions::default()
        };
        let server = BfsServer::<_, 4, 1>::start(m, opts);
        let stalled = server.submit(0); // batch 1: stalls, then serves
        std::thread::sleep(Duration::from_millis(20));
        let doomed = server.submit(1); // batch 2: panics
        let orphan = server.submit(2); // queued behind the panic
        assert_eq!(stalled.wait().expect("stalled batch serves").dist, serial_bfs(&g, 0).dist);
        assert!(matches!(doomed.wait(), Err(QueryError::Failed { .. })));
        assert!(matches!(orphan.wait(), Err(QueryError::Failed { .. })), "orphan must not hang");
        let report = server.shutdown();
        assert_eq!(report.stats.served, 1);
        assert!(report.stats.failed >= 2);
        assert!(report.degraded);
        assert_partition(&report.stats);
    }
}
