//! Whole-server counters aggregated across batches.

/// Lifetime counters for one [`BfsServer`](crate::BfsServer).
///
/// Query outcomes partition: once every handle has resolved,
/// `submitted == served + expired + cancelled + rejected`. Work
/// counters aggregate the per-batch [`RunStats`](slimsell_core::RunStats)
/// slices, so `lane_utilization` is comparable with the standalone
/// kernels' accounting.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Queries accepted by `submit`/`submit_with` (including ones that
    /// fail fast).
    pub submitted: u64,
    /// Queries that resolved with exact distances.
    pub served: u64,
    /// Queries that resolved `BudgetExhausted` (zero-budget fast-fails
    /// included).
    pub expired: u64,
    /// Queries that resolved `Cancelled`.
    pub cancelled: u64,
    /// Queries that resolved `ShutDown` (submitted after shutdown).
    pub rejected: u64,
    /// Batches executed (empty all-cancelled batches are not counted —
    /// their sweep never starts).
    pub batches: u64,
    /// Batches that coalesced more than one live query.
    pub multi_root_batches: u64,
    /// Total live queries over all batches (`Σ batch_size`).
    pub coalesced: u64,
    /// Batches whose sweep the control hook stopped before convergence
    /// (every lane cancelled or over budget).
    pub aborted_sweeps: u64,
    /// Sweeps executed across all batches.
    pub total_iterations: u64,
    /// Column steps across all batches.
    pub total_col_steps: u64,
    /// `C·B` lane-slots touched across all batches.
    pub total_cells: u64,
    /// Touched lane-slots that carried a stored arc.
    pub total_active_cells: u64,
}

impl ServerStats {
    /// Mean live queries per executed batch (0.0 before any batch ran).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.coalesced as f64 / self.batches as f64
        }
    }

    /// Fraction of touched lane-slots that held a stored arc rather
    /// than padding (1.0 when nothing was touched).
    pub fn lane_utilization(&self) -> f64 {
        if self.total_cells == 0 {
            1.0
        } else {
            self.total_active_cells as f64 / self.total_cells as f64
        }
    }
}
