//! Whole-server counters aggregated across batches.

/// The partition bucket a resolved query falls into. Every ticket is
/// resolved exactly once (first writer wins), and the winning resolver
/// names its bucket — so the counters below are incremented exactly
/// once per query, at resolution time, and the partition invariant
/// `submitted = served + expired + cancelled + rejected + failed +
/// shed` holds structurally rather than by careful bookkeeping at
/// every call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// Exact distances delivered.
    Served,
    /// Iteration budget or wall-clock deadline exhausted after the
    /// query had already claimed a batch lane.
    Expired,
    /// Client cancellation won the resolution race.
    Cancelled,
    /// Refused admission: shutdown, degraded mode, or a full queue.
    Rejected,
    /// A worker panic (or worker-pool death) killed the query's batch.
    Failed,
    /// Load shedding: the wall-clock deadline expired while the query
    /// was still queued, so it was dropped before wasting a batch lane.
    Shed,
}

/// Lifetime counters for one [`BfsServer`](crate::BfsServer).
///
/// Query outcomes partition: once every handle has resolved,
/// `submitted == served + expired + cancelled + rejected + failed +
/// shed` (see [`ServerStats::resolved`]). Work counters aggregate the
/// per-batch [`RunStats`](slimsell_core::RunStats) slices, so
/// `lane_utilization` is comparable with the standalone kernels'
/// accounting. Fault counters (`worker_panics`, `restarts`) and the
/// admission-control counters (`shed`, `queue_full_rejects`) make
/// degradation measurable instead of silent.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Queries accepted by `submit`/`submit_with`/`submit_spec`
    /// (including ones that fail fast).
    pub submitted: u64,
    /// Queries that resolved with exact distances.
    pub served: u64,
    /// Queries that resolved `BudgetExhausted` (zero-budget fast-fails
    /// included) or `DeadlineExceeded` after claiming a batch lane.
    pub expired: u64,
    /// Queries that resolved `Cancelled`.
    pub cancelled: u64,
    /// Queries refused admission: submitted after shutdown
    /// (`ShutDown`), while degraded (`Degraded`), or against a full
    /// bounded queue (`QueueFull`).
    pub rejected: u64,
    /// Queries that resolved `Failed`: their batch's worker panicked
    /// mid-batch, or the whole worker pool died with them queued.
    pub failed: u64,
    /// Queries shed from the queue: their wall-clock deadline expired
    /// before they claimed a batch lane.
    pub shed: u64,
    /// Rejections specifically due to the bounded queue being full
    /// (a subset of `rejected`).
    pub queue_full_rejects: u64,
    /// Worker panics caught by supervision (injected faults included).
    pub worker_panics: u64,
    /// Workers respawned by supervision after a panic (bounded by
    /// [`ServeOptions::max_worker_restarts`](crate::ServeOptions)).
    pub restarts: u64,
    /// Batches executed to completion (batches killed by a worker
    /// panic, or whose queries were all cancelled before the sweep,
    /// are not counted).
    pub batches: u64,
    /// Batches that coalesced more than one live query.
    pub multi_root_batches: u64,
    /// Batches that launched while live work stayed queued because its
    /// vertex mask differed from the batch's: masked batching only
    /// coalesces queries whose [`QuerySpec::mask`](crate::QuerySpec)
    /// is the *same* `Arc` (or absent on both sides), so a mask
    /// mismatch splits what the window would otherwise have merged.
    pub mask_splits: u64,
    /// Total live queries over all batches (`Σ batch_size`).
    pub coalesced: u64,
    /// Batches whose sweep the control hook stopped before convergence
    /// (every lane cancelled, over budget, or past deadline).
    pub aborted_sweeps: u64,
    /// Sweeps executed across all batches.
    pub total_iterations: u64,
    /// Column steps across all batches.
    pub total_col_steps: u64,
    /// `C·B` lane-slots touched across all batches.
    pub total_cells: u64,
    /// Touched lane-slots that carried a stored arc.
    pub total_active_cells: u64,
}

impl ServerStats {
    /// Records one resolved query in its partition bucket.
    pub(crate) fn count(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Served => self.served += 1,
            Outcome::Expired => self.expired += 1,
            Outcome::Cancelled => self.cancelled += 1,
            Outcome::Rejected => self.rejected += 1,
            Outcome::Failed => self.failed += 1,
            Outcome::Shed => self.shed += 1,
        }
    }

    /// Sum of all outcome buckets. Once every submitted handle has
    /// resolved, `resolved() == submitted` — the partition invariant
    /// every serve test asserts.
    pub fn resolved(&self) -> u64 {
        self.served + self.expired + self.cancelled + self.rejected + self.failed + self.shed
    }

    /// Mean live queries per executed batch (0.0 before any batch ran).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.coalesced as f64 / self.batches as f64
        }
    }

    /// Fraction of touched lane-slots that held a stored arc rather
    /// than padding (1.0 when nothing was touched).
    pub fn lane_utilization(&self) -> f64 {
        if self.total_cells == 0 {
            1.0
        } else {
            self.total_active_cells as f64 / self.total_cells as f64
        }
    }
}

/// Outcome of a [`BfsServer::shutdown`](crate::BfsServer::shutdown)
/// drain. Shutdown never panics: workers that died from a panic are
/// recorded here (and in [`ServerStats::worker_panics`]) instead of
/// aborting the caller.
#[derive(Clone, Debug)]
pub struct ShutdownReport {
    /// Final lifetime counters.
    pub stats: ServerStats,
    /// Worker threads that exited cleanly and were joined.
    pub workers_joined: usize,
    /// Worker threads whose join returned a panic payload — panics
    /// that escaped the supervised batch region (none in normal
    /// operation; the supervised region converts panics into `Failed`
    /// batches before the thread exits).
    pub unclean_joins: usize,
    /// Whether the server ended degraded: its worker-restart budget
    /// was exhausted by panics and new submissions were being
    /// rejected.
    pub degraded: bool,
}
