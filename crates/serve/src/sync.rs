//! Poison-free synchronization primitives.
//!
//! Every `Mutex`/`Condvar` in this crate is accessed through these
//! helpers instead of `.lock().expect(..)`: a worker that panics while
//! holding a lock poisons it, and an `expect` on the poisoned lock
//! would turn one worker's fault into a process-wide cascade — the
//! admission queue would wedge `submit`/`shutdown` forever. Recovery is
//! sound here because every critical section in this crate restores its
//! invariants before any statement that can panic (counter bumps and
//! queue pushes are single non-panicking writes; see the unwind-safety
//! notes in `server.rs`), so the state behind a poisoned lock is never
//! torn.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with poison recovery on reacquisition.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with poison recovery on reacquisition.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 8);
    }
}
