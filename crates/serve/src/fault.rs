//! Deterministic chaos injection: seeded fault plans for the worker
//! pool.
//!
//! A [`FaultPlan`] is a list of `(worker, batch_seq) → fault` triggers
//! installed via [`ServeOptions::fault_plan`](crate::ServeOptions).
//! When worker `w` takes its `s`-th batch (1-based, counted per worker
//! incarnation) it consults the plan: a [`FaultKind::Panic`] makes the
//! worker panic *mid-batch* — from inside the batch kernel's
//! iteration callback, after the batch has been formed and the sweep
//! state allocated — and a [`FaultKind::Stall`] makes it sleep before
//! the sweep, simulating a hung or slow worker. Both paths exercise
//! exactly the machinery production faults would: supervision,
//! restart budgets, deadline shedding and overload control.
//!
//! Plans are **deterministic**: the same plan against the same
//! submission schedule fires the same faults. Worker ids are
//! per-incarnation (a respawned worker gets a fresh id and a fresh
//! batch count), so each trigger site fires at most once and every
//! chaos run terminates.

use std::time::Duration;

/// What an armed trigger site does to its worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic mid-batch: the worker unwinds from inside the batch
    /// kernel's iteration callback. The supervised worker loop catches
    /// the unwind, fails the in-flight batch, and restarts the worker
    /// if budget remains.
    Panic,
    /// Sleep for the given duration before the batch's sweep,
    /// simulating a stalled worker; the batch still runs afterwards.
    Stall(Duration),
}

/// One armed trigger: fire `kind` when worker `worker` takes its
/// `batch_seq`-th batch (1-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Trigger {
    worker: usize,
    batch_seq: usize,
    kind: FaultKind,
}

/// A deterministic fault-injection plan (empty by default).
///
/// ```
/// use std::time::Duration;
/// use slimsell_serve::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new()
///     .panic_worker(1, 3) // panic worker 1 on its 3rd batch
///     .stall_worker(0, 2, Duration::from_millis(5));
/// assert_eq!(plan.len(), 2);
/// assert_eq!(plan.panic_count(), 1);
/// assert_eq!(plan.action(1, 3), Some(FaultKind::Panic));
/// assert_eq!(plan.action(1, 2), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    triggers: Vec<Trigger>,
}

/// `splitmix64` step — the plan generator's only source of randomness,
/// so seeded plans are reproducible across platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan: no faults ever fire.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a panic for worker `worker`'s `batch_seq`-th batch
    /// (1-based).
    #[must_use]
    pub fn panic_worker(mut self, worker: usize, batch_seq: usize) -> Self {
        self.triggers.push(Trigger { worker, batch_seq, kind: FaultKind::Panic });
        self
    }

    /// Arms a pre-sweep stall of `dur` for worker `worker`'s
    /// `batch_seq`-th batch (1-based).
    #[must_use]
    pub fn stall_worker(mut self, worker: usize, batch_seq: usize, dur: Duration) -> Self {
        self.triggers.push(Trigger { worker, batch_seq, kind: FaultKind::Stall(dur) });
        self
    }

    /// Generates a reproducible random plan: `count` triggers over
    /// worker ids `0..workers` and batch sequences `1..=horizon`, each
    /// a panic or a 1–5 ms stall. The same `(seed, workers, horizon,
    /// count)` always yields the same plan. Duplicate sites may occur;
    /// only the first trigger at a site fires.
    pub fn seeded(seed: u64, workers: usize, horizon: usize, count: usize) -> Self {
        assert!(workers >= 1, "a seeded plan needs at least one worker");
        assert!(horizon >= 1, "a seeded plan needs a batch horizon of at least 1");
        let mut state = seed ^ 0x51ed_2701_89ab_cdef;
        let mut plan = Self::new();
        for _ in 0..count {
            let worker = (splitmix64(&mut state) % workers as u64) as usize;
            let batch_seq = 1 + (splitmix64(&mut state) % horizon as u64) as usize;
            plan = if splitmix64(&mut state).is_multiple_of(2) {
                plan.panic_worker(worker, batch_seq)
            } else {
                let ms = 1 + splitmix64(&mut state) % 5;
                plan.stall_worker(worker, batch_seq, Duration::from_millis(ms))
            };
        }
        plan
    }

    /// Number of armed triggers.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// Whether the plan is empty (no faults ever fire).
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// Number of panic triggers — chaos tests use it to bound
    /// `worker_panics` and size restart budgets.
    pub fn panic_count(&self) -> usize {
        self.triggers.iter().filter(|t| t.kind == FaultKind::Panic).count()
    }

    /// The fault armed for worker `worker`'s `batch_seq`-th batch, if
    /// any (first matching trigger wins).
    pub fn action(&self, worker: usize, batch_seq: usize) -> Option<FaultKind> {
        self.triggers
            .iter()
            .find(|t| t.worker == worker && t.batch_seq == batch_seq)
            .map(|t| t.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        for w in 0..4 {
            for s in 1..10 {
                assert_eq!(p.action(w, s), None);
            }
        }
    }

    #[test]
    fn triggers_match_their_site_only() {
        let p = FaultPlan::new().panic_worker(2, 5).stall_worker(0, 1, Duration::from_millis(3));
        assert_eq!(p.action(2, 5), Some(FaultKind::Panic));
        assert_eq!(p.action(0, 1), Some(FaultKind::Stall(Duration::from_millis(3))));
        assert_eq!(p.action(2, 4), None);
        assert_eq!(p.action(1, 5), None);
        assert_eq!((p.len(), p.panic_count()), (2, 1));
    }

    #[test]
    fn first_trigger_at_a_site_wins() {
        let p = FaultPlan::new().stall_worker(0, 1, Duration::from_millis(2)).panic_worker(0, 1);
        assert_eq!(p.action(0, 1), Some(FaultKind::Stall(Duration::from_millis(2))));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let a = FaultPlan::seeded(42, 3, 7, 16);
        let b = FaultPlan::seeded(42, 3, 7, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        for t in &a.triggers {
            assert!(t.worker < 3);
            assert!((1..=7).contains(&t.batch_seq));
            if let FaultKind::Stall(d) = t.kind {
                assert!((1..=5).contains(&d.as_millis()));
            }
        }
        // Different seeds diverge (overwhelmingly likely for 16 draws).
        assert_ne!(a, FaultPlan::seeded(43, 3, 7, 16));
    }
}
