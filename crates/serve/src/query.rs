//! Per-query state: tickets, handles, results and errors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use slimsell_graph::VertexId;

/// Why a query did not produce distances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query was cancelled via [`QueryHandle::cancel`] before its
    /// results were extracted. Cancellation never aborts or perturbs
    /// the batch the query rode in — batch-mates are served normally.
    Cancelled,
    /// The query's iteration budget was exhausted: the batch sweep it
    /// rode needed more iterations than the budget allows (a
    /// zero-budget query fails this way at submission, without ever
    /// entering the queue).
    BudgetExhausted,
    /// The query was submitted after the server began shutting down.
    ShutDown,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::BudgetExhausted => write!(f, "iteration budget exhausted"),
            QueryError::ShutDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for QueryError {}

/// How the batch that served a query ran — the per-batch slice of the
/// kernel's [`RunStats`](slimsell_core::RunStats), shared by every
/// query the batch coalesced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchInfo {
    /// Server-unique batch id (assignment order, not submission order).
    pub batch_id: u64,
    /// Live queries this batch coalesced (1..=B); unused lanes repeat
    /// the first root and are never extracted.
    pub batch_size: usize,
    /// Sweeps the batch executed.
    pub iterations: usize,
    /// Total column steps across the batch's sweeps.
    pub col_steps: u64,
    /// Total `C·B` lane-slots touched (`col_steps · C · B`).
    pub cells: u64,
    /// Lane-slots that carried a stored arc (`arcs · B` per processed
    /// chunk) — the numerator of [`Self::lane_utilization`].
    pub active_cells: u64,
}

impl BatchInfo {
    /// Fraction of touched lane-slots that held a stored arc rather
    /// than `-1` padding (1.0 when nothing was touched).
    pub fn lane_utilization(&self) -> f64 {
        if self.cells == 0 {
            1.0
        } else {
            self.active_cells as f64 / self.cells as f64
        }
    }
}

/// A served query: the exact single-source BFS distances (bit-identical
/// to a standalone [`BfsEngine`](slimsell_core::BfsEngine) run,
/// whatever batch the admission queue put the query in) plus the
/// batch's work accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryOutput {
    /// Hop distances in original vertex ids
    /// ([`UNREACHABLE`](slimsell_graph::UNREACHABLE) where unreached).
    pub dist: Vec<u32>,
    /// How the batch that carried this query ran.
    pub batch: BatchInfo,
}

/// The server-side query record: shared between the submitting client
/// (through [`QueryHandle`]) and the worker that serves the batch.
pub(crate) struct Ticket {
    pub(crate) id: u64,
    pub(crate) root: VertexId,
    /// Iteration budget: the query fails with
    /// [`QueryError::BudgetExhausted`] when its batch needs more
    /// sweeps than this. `None` = unbounded.
    pub(crate) budget: Option<usize>,
    cancelled: AtomicBool,
    slot: Mutex<Option<Result<QueryOutput, QueryError>>>,
    cv: Condvar,
}

impl Ticket {
    pub(crate) fn new(id: u64, root: VertexId, budget: Option<usize>) -> Self {
        Self {
            id,
            root,
            budget,
            cancelled: AtomicBool::new(false),
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Advisory cancellation flag, polled by the batch control hook and
    /// at extraction (the authoritative outcome is whoever resolves the
    /// slot first).
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    pub(crate) fn mark_cancelled(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// First writer wins: fills the result slot and wakes waiters.
    /// Returns whether this call actually resolved the query — the
    /// worker's accounting uses it so server stats always agree with
    /// the outcome each handle observed, even under a cancel race.
    pub(crate) fn resolve(&self, result: Result<QueryOutput, QueryError>) -> bool {
        let mut slot = self.slot.lock().expect("ticket lock");
        if slot.is_some() {
            return false;
        }
        *slot = Some(result);
        self.cv.notify_all();
        true
    }

    fn take_result(&self) -> Result<QueryOutput, QueryError> {
        let mut slot = self.slot.lock().expect("ticket lock");
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.cv.wait(slot).expect("ticket lock");
        }
    }

    fn is_resolved(&self) -> bool {
        self.slot.lock().expect("ticket lock").is_some()
    }
}

/// Client handle to one submitted query.
pub struct QueryHandle {
    pub(crate) ticket: Arc<Ticket>,
}

impl QueryHandle {
    /// Server-unique query id (submission order).
    pub fn id(&self) -> u64 {
        self.ticket.id
    }

    /// The requested BFS root (original vertex id).
    pub fn root(&self) -> VertexId {
        self.ticket.root
    }

    /// Requests cancellation. If the query has not been resolved yet it
    /// resolves to [`QueryError::Cancelled`] immediately (a queued
    /// query drops out of its batch before the sweep; a query whose
    /// batch is mid-sweep drops out of result extraction without
    /// aborting its batch-mates — and when *every* lane of a batch is
    /// cancelled or expired, the iteration-level control hook stops the
    /// sweep gracefully). Cancelling an already-served query is a
    /// no-op.
    pub fn cancel(&self) {
        self.ticket.mark_cancelled();
        self.ticket.resolve(Err(QueryError::Cancelled));
    }

    /// Whether a result (or error) is already available, without
    /// blocking.
    pub fn is_done(&self) -> bool {
        self.ticket.is_resolved()
    }

    /// Blocks until the query resolves and returns its outcome.
    pub fn wait(self) -> Result<QueryOutput, QueryError> {
        self.ticket.take_result()
    }
}
