//! Per-query state: tickets, handles, results and errors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use slimsell_core::VertexMask;
use slimsell_graph::VertexId;

use crate::stats::{Outcome, ServerStats};
use crate::sync;

/// Why a query did not produce distances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query was cancelled via [`QueryHandle::cancel`] before its
    /// results were extracted. Cancellation never aborts or perturbs
    /// the batch the query rode in — batch-mates are served normally.
    Cancelled,
    /// The query's iteration budget was exhausted: the batch sweep it
    /// rode needed more iterations than the budget allows (a
    /// zero-budget query fails this way at submission, without ever
    /// entering the queue).
    BudgetExhausted,
    /// The query's wall-clock deadline passed before its results could
    /// be delivered — either shed from the queue before claiming a
    /// batch lane, or expired during its batch's sweep.
    DeadlineExceeded,
    /// The query was submitted after the server began shutting down.
    ShutDown,
    /// The bounded admission queue was full
    /// ([`ServeOptions::queue_capacity`](crate::ServeOptions)); the
    /// submission fast-failed without queueing. Retry after a backoff.
    QueueFull,
    /// The server exhausted its worker-restart budget
    /// ([`ServeOptions::max_worker_restarts`](crate::ServeOptions))
    /// and is rejecting new work while draining what it already
    /// admitted.
    Degraded,
    /// A fault killed the query after admission: the worker serving
    /// its batch panicked mid-batch, or the whole worker pool died
    /// while the query was queued. Batch-mates of a panicking worker
    /// fail together; queries in other batches are unaffected.
    Failed {
        /// Human-readable description of the fault (panic payload or
        /// pool state).
        reason: String,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::BudgetExhausted => write!(f, "iteration budget exhausted"),
            QueryError::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
            QueryError::ShutDown => write!(f, "server shutting down"),
            QueryError::QueueFull => write!(f, "admission queue full"),
            QueryError::Degraded => write!(f, "server degraded: worker restart budget exhausted"),
            QueryError::Failed { reason } => write!(f, "query failed: {reason}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Per-query knobs for [`BfsServer::submit_spec`](crate::BfsServer::submit_spec).
#[derive(Clone, Debug, Default)]
pub struct QuerySpec {
    /// Iteration budget (`None` = unbounded): the query fails with
    /// [`QueryError::BudgetExhausted`] if its batch needs more sweeps.
    pub budget: Option<usize>,
    /// Wall-clock deadline measured from submission (`None` = no
    /// deadline). The admission queue dispatches
    /// earliest-deadline-first, sheds the query if the deadline passes
    /// while it is still queued, and fails it `DeadlineExceeded` if
    /// the deadline passes before extraction.
    pub deadline: Option<Duration>,
    /// Optional subgraph filter: the BFS runs restricted to the masked
    /// vertices (vertices outside the mask are never discovered and
    /// report [`UNREACHABLE`](slimsell_graph::UNREACHABLE)). The root
    /// must be inside the mask. Batching coalesces only queries whose
    /// mask is the *same* `Arc` (or absent on both sides) — share one
    /// `Arc<VertexMask>` across queries to let them ride one batch;
    /// distinct masks split batches
    /// ([`ServerStats::mask_splits`](crate::ServerStats)).
    pub mask: Option<Arc<VertexMask>>,
}

impl QuerySpec {
    /// Sets the iteration budget (builder).
    #[must_use]
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the wall-clock deadline (builder).
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Restricts the query to a vertex mask (builder). Submit the
    /// *same* `Arc` for queries that should coalesce into one batch.
    #[must_use]
    pub fn mask(mut self, mask: Arc<VertexMask>) -> Self {
        self.mask = Some(mask);
        self
    }
}

/// How the batch that served a query ran — the per-batch slice of the
/// kernel's [`RunStats`](slimsell_core::RunStats), shared by every
/// query the batch coalesced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchInfo {
    /// Server-unique batch id (assignment order, not submission order).
    pub batch_id: u64,
    /// Live queries this batch coalesced (1..=B); unused lanes repeat
    /// the first root and are never extracted.
    pub batch_size: usize,
    /// Sweeps the batch executed.
    pub iterations: usize,
    /// Total column steps across the batch's sweeps.
    pub col_steps: u64,
    /// Total `C·B` lane-slots touched (`col_steps · C · B`).
    pub cells: u64,
    /// Lane-slots that carried a stored arc (`arcs · B` per processed
    /// chunk) — the numerator of [`Self::lane_utilization`].
    pub active_cells: u64,
}

impl BatchInfo {
    /// Fraction of touched lane-slots that held a stored arc rather
    /// than `-1` padding (1.0 when nothing was touched).
    pub fn lane_utilization(&self) -> f64 {
        if self.cells == 0 {
            1.0
        } else {
            self.active_cells as f64 / self.cells as f64
        }
    }
}

/// A served query: the exact single-source BFS distances (bit-identical
/// to a standalone [`BfsEngine`](slimsell_core::BfsEngine) run,
/// whatever batch the admission queue put the query in) plus the
/// batch's work accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryOutput {
    /// Hop distances in original vertex ids
    /// ([`UNREACHABLE`](slimsell_graph::UNREACHABLE) where unreached).
    pub dist: Vec<u32>,
    /// How the batch that carried this query ran.
    pub batch: BatchInfo,
}

/// The server-side query record: shared between the submitting client
/// (through [`QueryHandle`]) and the worker that serves the batch.
pub(crate) struct Ticket {
    pub(crate) id: u64,
    pub(crate) root: VertexId,
    /// Iteration budget: the query fails with
    /// [`QueryError::BudgetExhausted`] when its batch needs more
    /// sweeps than this. `None` = unbounded.
    pub(crate) budget: Option<usize>,
    /// Absolute wall-clock deadline (submission instant + the spec's
    /// relative deadline). `None` = no deadline.
    pub(crate) deadline: Option<Instant>,
    /// Subgraph filter: only queries carrying the *same* `Arc` (or
    /// none) may share a batch, because the whole batch runs one
    /// masked sweep.
    pub(crate) mask: Option<Arc<VertexMask>>,
    cancelled: AtomicBool,
    slot: Mutex<Option<Result<QueryOutput, QueryError>>>,
    cv: Condvar,
    /// The server's counters: the winning resolver records its
    /// partition bucket here, so stats can never drift from handle
    /// outcomes — not even when a panic interrupts a worker between
    /// resolving a batch's tickets and its (former) end-of-batch
    /// accounting.
    stats: Arc<Mutex<ServerStats>>,
}

impl Ticket {
    pub(crate) fn new(
        id: u64,
        root: VertexId,
        budget: Option<usize>,
        deadline: Option<Instant>,
        mask: Option<Arc<VertexMask>>,
        stats: Arc<Mutex<ServerStats>>,
    ) -> Self {
        Self {
            id,
            root,
            budget,
            deadline,
            mask,
            cancelled: AtomicBool::new(false),
            slot: Mutex::new(None),
            cv: Condvar::new(),
            stats,
        }
    }

    /// Advisory cancellation flag, polled by the batch control hook and
    /// at extraction (the authoritative outcome is whoever resolves the
    /// slot first).
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    pub(crate) fn mark_cancelled(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the wall-clock deadline has already passed.
    pub(crate) fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// First writer wins: fills the result slot, records `outcome` in
    /// the server's partition counters, and wakes waiters. Returns
    /// whether this call actually resolved the query. Because the
    /// winning resolver is also the (only) accountant, server stats
    /// exactly agree with the outcome each handle observed — under
    /// cancel races and under worker panics alike.
    pub(crate) fn resolve(
        &self,
        result: Result<QueryOutput, QueryError>,
        outcome: Outcome,
    ) -> bool {
        {
            let mut slot = sync::lock(&self.slot);
            if slot.is_some() {
                return false;
            }
            *slot = Some(result);
            self.cv.notify_all();
        }
        sync::lock(&self.stats).count(outcome);
        true
    }

    fn take_result(&self) -> Result<QueryOutput, QueryError> {
        let mut slot = sync::lock(&self.slot);
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = sync::wait(&self.cv, slot);
        }
    }

    pub(crate) fn is_resolved(&self) -> bool {
        sync::lock(&self.slot).is_some()
    }
}

/// Client handle to one submitted query.
pub struct QueryHandle {
    pub(crate) ticket: Arc<Ticket>,
}

impl QueryHandle {
    /// Server-unique query id (submission order).
    pub fn id(&self) -> u64 {
        self.ticket.id
    }

    /// The requested BFS root (original vertex id).
    pub fn root(&self) -> VertexId {
        self.ticket.root
    }

    /// Requests cancellation. If the query has not been resolved yet it
    /// resolves to [`QueryError::Cancelled`] immediately (a queued
    /// query drops out of its batch before the sweep; a query whose
    /// batch is mid-sweep drops out of result extraction without
    /// aborting its batch-mates — and when *every* lane of a batch is
    /// cancelled or expired, the iteration-level control hook stops the
    /// sweep gracefully). Cancelling an already-served query is a
    /// no-op.
    pub fn cancel(&self) {
        self.ticket.mark_cancelled();
        self.ticket.resolve(Err(QueryError::Cancelled), Outcome::Cancelled);
    }

    /// Whether a result (or error) is already available, without
    /// blocking.
    pub fn is_done(&self) -> bool {
        self.ticket.is_resolved()
    }

    /// Blocks until the query resolves and returns its outcome.
    ///
    /// This can never block forever: every admitted ticket is resolved
    /// by its batch's worker, by supervision (a panicking worker fails
    /// its in-flight batch; a dying pool fails the remaining queue),
    /// or by [`shutdown`](crate::BfsServer::shutdown)'s final sweep —
    /// and dropping the server runs shutdown.
    pub fn wait(self) -> Result<QueryOutput, QueryError> {
        self.ticket.take_result()
    }
}
