//! Direction-optimizing queue BFS (Beamer et al.), the `O(Dn + Dm)`
//! "direction-inversion" row of Table II and the strongest traditional
//! baseline for low-diameter power-law graphs.
//!
//! Top-down steps are the Trad-BFS expansion; bottom-up steps iterate
//! over *unvisited* vertices and probe their neighbors against a frontier
//! bitmap, claiming a parent on the first hit. Switching follows the
//! α/β heuristic on frontier out-degree and frontier size.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use rayon::prelude::*;
use slimsell_graph::{CsrGraph, VertexId, UNREACHABLE};

use crate::trad::TradOutput;

/// α/β switching parameters (defaults follow Beamer's paper).
#[derive(Clone, Copy, Debug)]
pub struct DirOptBfsOptions {
    /// Go bottom-up when frontier out-edges exceed `m / alpha`.
    pub alpha: f64,
    /// Return top-down when frontier size drops below `n / beta`.
    pub beta: f64,
}

impl Default for DirOptBfsOptions {
    fn default() -> Self {
        Self { alpha: 14.0, beta: 24.0 }
    }
}

/// Runs direction-optimizing BFS from `root`.
pub fn dirop_bfs(g: &CsrGraph, root: VertexId, opts: &DirOptBfsOptions) -> TradOutput {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let m2 = g.num_arcs() as u64;
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHABLE)).collect();
    let mut dist = vec![UNREACHABLE; n];
    parent[root as usize].store(root, Ordering::Relaxed);
    dist[root as usize] = 0;

    let mut frontier = vec![root];
    let mut in_frontier = vec![false; n];
    let mut frontier_edges: u64 = g.degree(root) as u64;
    let mut bottom_up = false;
    let mut level = 0u32;
    let mut level_times = Vec::new();
    let mut edges_scanned = 0u64;

    while !frontier.is_empty() {
        level += 1;
        bottom_up = if bottom_up {
            (frontier.len() as f64) >= n as f64 / opts.beta
        } else {
            frontier_edges as f64 > m2 as f64 / opts.alpha
        };
        let t0 = Instant::now();
        let next: Vec<VertexId>;
        let scanned: u64;
        if bottom_up {
            in_frontier.iter_mut().for_each(|b| *b = false);
            for &v in &frontier {
                in_frontier[v as usize] = true;
            }
            let in_frontier_ref = &in_frontier;
            let parent_ref = &parent;
            let (nx, sc): (Vec<VertexId>, u64) = (0..n as VertexId)
                .into_par_iter()
                .fold(
                    || (Vec::new(), 0u64),
                    |(mut acc, mut cnt), v| {
                        if parent_ref[v as usize].load(Ordering::Relaxed) == UNREACHABLE {
                            for &w in g.neighbors(v) {
                                cnt += 1;
                                if in_frontier_ref[w as usize] {
                                    // Only this task touches v: plain store.
                                    parent_ref[v as usize].store(w, Ordering::Relaxed);
                                    acc.push(v);
                                    break;
                                }
                            }
                        }
                        (acc, cnt)
                    },
                )
                .reduce(
                    || (Vec::new(), 0),
                    |(mut a, ca), (b, cb)| {
                        a.extend_from_slice(&b);
                        (a, ca + cb)
                    },
                );
            next = nx;
            scanned = sc;
        } else {
            let parent_ref = &parent;
            let (nx, sc): (Vec<VertexId>, u64) = frontier
                .par_iter()
                .fold(
                    || (Vec::new(), 0u64),
                    |(mut acc, mut cnt), &v| {
                        for &w in g.neighbors(v) {
                            cnt += 1;
                            if parent_ref[w as usize].load(Ordering::Relaxed) == UNREACHABLE
                                && parent_ref[w as usize]
                                    .compare_exchange(
                                        UNREACHABLE,
                                        v,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                acc.push(w);
                            }
                        }
                        (acc, cnt)
                    },
                )
                .reduce(
                    || (Vec::new(), 0),
                    |(mut a, ca), (b, cb)| {
                        a.extend_from_slice(&b);
                        (a, ca + cb)
                    },
                );
            next = nx;
            scanned = sc;
        }
        for &w in &next {
            dist[w as usize] = level;
        }
        level_times.push(t0.elapsed());
        edges_scanned += scanned;
        frontier_edges = next.iter().map(|&w| g.degree(w) as u64).sum();
        frontier = next;
    }

    let parent = parent.into_iter().map(AtomicU32::into_inner).collect();
    TradOutput { dist, parent, level_times, edges_scanned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{serial_bfs, validate_parents, GraphBuilder};

    #[test]
    fn matches_serial_on_kronecker() {
        let g = kronecker(11, 16.0, KroneckerParams::GRAPH500, 2);
        let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let out = dirop_bfs(&g, root, &DirOptBfsOptions::default());
        let r = serial_bfs(&g, root);
        assert_eq!(out.dist, r.dist);
        validate_parents(&g, root, &out.dist, &out.parent).unwrap();
    }

    #[test]
    fn forced_bottom_up_matches() {
        let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 4);
        let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let opts = DirOptBfsOptions { alpha: f64::INFINITY, beta: 0.0 };
        let out = dirop_bfs(&g, root, &opts);
        assert_eq!(out.dist, serial_bfs(&g, root).dist);
    }

    #[test]
    fn path_stays_top_down_and_matches() {
        let n = 40u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let out = dirop_bfs(&g, 0, &DirOptBfsOptions::default());
        assert_eq!(out.dist, serial_bfs(&g, 0).dist);
    }

    #[test]
    fn saves_edge_scans_on_dense_graphs() {
        // Bottom-up breaks out of neighbor loops early; on a dense graph
        // the scanned-edge count must drop well below 2m per full sweep.
        let g = kronecker(10, 32.0, KroneckerParams::GRAPH500, 7);
        let root = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap();
        let td = crate::trad::trad_bfs(&g, root);
        let opts = DirOptBfsOptions { alpha: 64.0, beta: 2.0 };
        let bu = dirop_bfs(&g, root, &opts);
        assert_eq!(td.dist, bu.dist);
        assert!(
            bu.edges_scanned < td.edges_scanned,
            "dir-opt scanned {} !< trad {}",
            bu.edges_scanned,
            td.edges_scanned
        );
    }
}
