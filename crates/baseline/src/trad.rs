//! `Trad-BFS`: the Graph500-style parallel queue BFS baseline.
//!
//! Level-synchronous traversal: each level expands the current frontier
//! in parallel (rayon), claiming vertices with a compare-and-swap on the
//! parent array. The optimization the paper highlights — "checking if the
//! vertex was visited before executing an atomic" — is the relaxed load
//! preceding each CAS, which removes almost all contended atomics on
//! power-law graphs where most edge endpoints are already visited.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use rayon::prelude::*;
use slimsell_graph::{CsrGraph, VertexId, UNREACHABLE};

/// Per-level wall times, the series the paper's per-iteration plots use.
pub type LevelTimes = Vec<Duration>;

/// Output of a Trad-BFS run.
#[derive(Clone, Debug)]
pub struct TradOutput {
    /// Hop distances ([`UNREACHABLE`] if not reached).
    pub dist: Vec<u32>,
    /// BFS-tree parents (root is its own parent).
    pub parent: Vec<VertexId>,
    /// Wall time of each level expansion.
    pub level_times: LevelTimes,
    /// Total edges scanned (the measured `O(n + m)` work).
    pub edges_scanned: u64,
}

/// Runs the parallel queue BFS from `root`.
///
/// # Panics
/// Panics if `root` is out of range.
pub fn trad_bfs(g: &CsrGraph, root: VertexId) -> TradOutput {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHABLE)).collect();
    let mut dist = vec![UNREACHABLE; n];
    parent[root as usize].store(root, Ordering::Relaxed);
    dist[root as usize] = 0;

    let mut frontier = vec![root];
    let mut level = 0u32;
    let mut level_times = Vec::new();
    let mut edges_scanned = 0u64;

    while !frontier.is_empty() {
        level += 1;
        let t0 = Instant::now();
        let (next, scanned): (Vec<VertexId>, u64) = frontier
            .par_iter()
            .fold(
                || (Vec::new(), 0u64),
                |(mut acc, mut cnt), &v| {
                    for &w in g.neighbors(v) {
                        cnt += 1;
                        // Graph500 trick: test before the atomic claim.
                        if parent[w as usize].load(Ordering::Relaxed) == UNREACHABLE
                            && parent[w as usize]
                                .compare_exchange(
                                    UNREACHABLE,
                                    v,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        {
                            acc.push(w);
                        }
                    }
                    (acc, cnt)
                },
            )
            .reduce(
                || (Vec::new(), 0),
                |(mut a, ca), (b, cb)| {
                    a.extend_from_slice(&b);
                    (a, ca + cb)
                },
            );
        for &w in &next {
            dist[w as usize] = level;
        }
        level_times.push(t0.elapsed());
        edges_scanned += scanned;
        frontier = next;
    }

    let parent = parent.into_iter().map(AtomicU32::into_inner).collect();
    TradOutput { dist, parent, level_times, edges_scanned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{serial_bfs, validate_parents, GraphBuilder};

    #[test]
    fn matches_serial_on_sample() {
        let g = GraphBuilder::new(9)
            .edges([(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5), (7, 8)])
            .build();
        let out = trad_bfs(&g, 0);
        let r = serial_bfs(&g, 0);
        assert_eq!(out.dist, r.dist);
        validate_parents(&g, 0, &out.dist, &out.parent).unwrap();
        assert_eq!(out.dist[7], UNREACHABLE);
        assert_eq!(out.parent[7], UNREACHABLE);
    }

    #[test]
    fn matches_serial_on_kronecker() {
        let g = kronecker(11, 8.0, KroneckerParams::GRAPH500, 5);
        let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let out = trad_bfs(&g, root);
        let r = serial_bfs(&g, root);
        assert_eq!(out.dist, r.dist);
        validate_parents(&g, root, &out.dist, &out.parent).unwrap();
    }

    #[test]
    fn work_is_edges_of_reached_component() {
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (3, 4)]).build();
        let out = trad_bfs(&g, 0);
        // Scans each arc of the {0,1,2} component exactly once: 4 arcs.
        assert_eq!(out.edges_scanned, 4);
    }

    #[test]
    fn level_times_match_eccentricity() {
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build();
        let out = trad_bfs(&g, 0);
        assert_eq!(out.level_times.len(), 5); // 4 productive + 1 empty check? no: frontier empties after level 4
        assert_eq!(out.dist[4], 4);
    }

    #[test]
    fn isolated_root() {
        let g = GraphBuilder::new(3).edges([(1, 2)]).build();
        let out = trad_bfs(&g, 0);
        assert_eq!(out.dist, vec![0, UNREACHABLE, UNREACHABLE]);
    }
}
