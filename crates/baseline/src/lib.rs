//! BFS comparison baselines.
//!
//! The paper compares BFS-SpMV + SlimSell against "the work-efficient
//! highly-optimized OpenMP BFS Graph500 code (Trad-BFS)" (§IV,
//! "Comparison Targets"). This crate is the Rust counterpart of that
//! baseline plus the other schemes of Table II:
//!
//! * [`trad`] — level-synchronous parallel queue BFS with the Graph500
//!   optimization the paper singles out ("it reduces the amount of
//!   fine-grained synchronization by checking if the vertex was visited
//!   before executing an atomic"); `O(n + m)` work.
//! * [`dirop`] — Beamer direction-optimizing queue BFS
//!   (top-down/bottom-up switching), the `O(Dn + Dm)` row of Table II.
//! * [`spmspv`] — BFS as sparse-matrix × *sparse*-vector products with
//!   the three duplicate-elimination strategies of Table II (merge sort,
//!   radix sort, no sort).

pub mod dense;
pub mod dirop;
pub mod spmspv;
pub mod trad;

pub use dense::{DenseBfs, DenseBfsOutput};
pub use dirop::{dirop_bfs, DirOptBfsOptions};
pub use spmspv::{spmspv_bfs, Dedup};
pub use trad::{trad_bfs, LevelTimes, TradOutput};
