//! Textbook dense BFS-SpMV — Table II's `O(Dn²)` row.
//!
//! The naive algebraic BFS multiplies the *dense* adjacency matrix by
//! the frontier vector every iteration. It exists here to make the
//! work-complexity comparison measurable end-to-end: the measured cell
//! count is exactly `D·n²`, dwarfing every sparse scheme — the gap the
//! paper's Table II formalizes. Only sensible for small `n` (the dense
//! matrix is `n²` bytes); the constructor enforces a cap.

use slimsell_graph::{CsrGraph, VertexId, UNREACHABLE};

/// Dense adjacency-matrix BFS (boolean semiring).
#[derive(Clone, Debug)]
pub struct DenseBfs {
    n: usize,
    /// Row-major dense adjacency (0/1 bytes).
    a: Vec<u8>,
}

/// Output of a dense BFS run.
#[derive(Clone, Debug)]
pub struct DenseBfsOutput {
    /// Hop distances.
    pub dist: Vec<u32>,
    /// Matrix cells touched: `iterations · n²`.
    pub cells: u64,
}

impl DenseBfs {
    /// Materializes the dense adjacency matrix (`n ≤ 4096` enforced).
    pub fn new(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        assert!(n <= 4096, "dense BFS is O(n^2) storage; n = {n} is too large");
        let mut a = vec![0u8; n * n];
        for u in 0..n as VertexId {
            for &v in g.neighbors(u) {
                a[u as usize * n + v as usize] = 1;
            }
        }
        Self { n, a }
    }

    /// Runs BFS from `root` with dense MV products.
    pub fn run(&self, root: VertexId) -> DenseBfsOutput {
        let n = self.n;
        assert!((root as usize) < n, "root {root} out of range");
        let mut dist = vec![UNREACHABLE; n];
        let mut frontier = vec![0u8; n];
        let mut visited = vec![0u8; n];
        dist[root as usize] = 0;
        frontier[root as usize] = 1;
        visited[root as usize] = 1;
        let mut cells = 0u64;
        let mut level = 0u32;
        loop {
            level += 1;
            // y = A ⊗_B f : full dense sweep, n² cells.
            let mut next = vec![0u8; n];
            for (v, nv) in next.iter_mut().enumerate() {
                let row = &self.a[v * n..(v + 1) * n];
                let mut acc = 0u8;
                for (j, &aij) in row.iter().enumerate() {
                    acc |= aij & frontier[j];
                }
                cells += n as u64;
                *nv = acc & !visited[v];
            }
            let mut any = false;
            for v in 0..n {
                if next[v] != 0 {
                    dist[v] = level;
                    visited[v] = 1;
                    any = true;
                }
            }
            frontier = next;
            if !any {
                break;
            }
        }
        DenseBfsOutput { dist, cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{serial_bfs, GraphBuilder};

    #[test]
    fn matches_serial() {
        let g = kronecker(8, 6.0, KroneckerParams::GRAPH500, 3);
        let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let out = DenseBfs::new(&g).run(root);
        assert_eq!(out.dist, serial_bfs(&g, root).dist);
    }

    #[test]
    fn work_is_d_n_squared() {
        // Path 0-1-2-3: distances reach 3, plus one empty sweep = 4
        // iterations of n² cells each.
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let out = DenseBfs::new(&g).run(0);
        assert_eq!(out.cells, 4 * 16);
        assert_eq!(out.dist, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dense_work_dwarfs_sparse() {
        let g = kronecker(8, 4.0, KroneckerParams::GRAPH500, 1);
        let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let dense = DenseBfs::new(&g).run(root);
        let sparse = crate::trad::trad_bfs(&g, root);
        assert_eq!(dense.dist, sparse.dist);
        assert!(
            dense.cells > 20 * sparse.edges_scanned,
            "dense {} vs sparse {}",
            dense.cells,
            sparse.edges_scanned
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn rejects_large_graphs() {
        let g = GraphBuilder::new(5000).build();
        DenseBfs::new(&g);
    }
}
