//! BFS as sparse-matrix × sparse-vector products (SpMSpV).
//!
//! Table II lists three SpMSpV BFS variants from Yang et al. \[39\],
//! distinguished by how duplicate candidates (several frontier vertices
//! reaching the same neighbor) are eliminated:
//!
//! * merge sort  — `O(n + m log m)` work,
//! * radix sort  — `O(n + x·m)` work (`x` = key length in digits),
//! * no sort     — `O(n + m)` work (dense visited flags).
//!
//! These are work-efficiency baselines: the paper argues BFS-SpMV (dense
//! vector) loses work-optimality but wins it back through vectorization;
//! the SpMSpV numbers quantify what "work-optimal" costs per iteration.

use std::time::{Duration, Instant};

use slimsell_graph::{CsrGraph, VertexId, UNREACHABLE};

/// Duplicate-elimination strategy for candidate lists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dedup {
    /// Comparison sort + dedup (`O(m log m)` per full sweep).
    MergeSort,
    /// LSD radix sort on vertex ids + dedup.
    RadixSort,
    /// No sort: dense visited-flag filtering (work-optimal).
    NoSort,
}

/// Output of an SpMSpV BFS run.
#[derive(Clone, Debug)]
pub struct SpMSpVOutput {
    /// Hop distances.
    pub dist: Vec<u32>,
    /// Per-iteration wall times.
    pub level_times: Vec<Duration>,
    /// Candidate entries produced across the run (the `m`-proportional
    /// work term).
    pub candidates: u64,
}

/// Runs SpMSpV-based BFS from `root` with the chosen dedup strategy.
pub fn spmspv_bfs(g: &CsrGraph, root: VertexId, dedup: Dedup) -> SpMSpVOutput {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let mut dist = vec![UNREACHABLE; n];
    dist[root as usize] = 0;
    let mut frontier = vec![root];
    let mut level = 0u32;
    let mut level_times = Vec::new();
    let mut candidates = 0u64;
    let mut scratch: Vec<VertexId> = Vec::new();

    while !frontier.is_empty() {
        level += 1;
        let t0 = Instant::now();
        // The sparse "multiply": concatenate the adjacency of every
        // frontier entry (the y = A ⊗ f candidate list).
        scratch.clear();
        for &v in &frontier {
            scratch.extend_from_slice(g.neighbors(v));
        }
        candidates += scratch.len() as u64;
        // Duplicate elimination + visited filtering.
        let next: Vec<VertexId> = match dedup {
            Dedup::NoSort => {
                let mut next = Vec::new();
                for &w in &scratch {
                    if dist[w as usize] == UNREACHABLE {
                        dist[w as usize] = level;
                        next.push(w);
                    }
                }
                next
            }
            Dedup::MergeSort => {
                scratch.sort(); // stable merge sort per std
                collect_sorted(&scratch, &mut dist, level)
            }
            Dedup::RadixSort => {
                radix_sort_u32(&mut scratch);
                collect_sorted(&scratch, &mut dist, level)
            }
        };
        level_times.push(t0.elapsed());
        frontier = next;
    }
    SpMSpVOutput { dist, level_times, candidates }
}

/// Walks a sorted candidate list, keeping the first occurrence of each
/// unvisited vertex.
fn collect_sorted(sorted: &[VertexId], dist: &mut [u32], level: u32) -> Vec<VertexId> {
    let mut next = Vec::new();
    let mut prev = None;
    for &w in sorted {
        if prev == Some(w) {
            continue;
        }
        prev = Some(w);
        if dist[w as usize] == UNREACHABLE {
            dist[w as usize] = level;
            next.push(w);
        }
    }
    next
}

/// LSD radix sort with 8-bit digits (the `x = 4` of Table II's
/// `O(n + x·m)` for 32-bit keys).
fn radix_sort_u32(data: &mut Vec<VertexId>) {
    let mut buf = vec![0 as VertexId; data.len()];
    for pass in 0..4 {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for &x in data.iter() {
            counts[((x >> shift) & 0xFF) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut total = 0;
        for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
            *o = total;
            total += c;
        }
        for &x in data.iter() {
            let d = ((x >> shift) & 0xFF) as usize;
            buf[offsets[d]] = x;
            offsets[d] += 1;
        }
        std::mem::swap(data, &mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{serial_bfs, GraphBuilder};

    #[test]
    fn all_variants_match_serial() {
        let g = kronecker(10, 8.0, KroneckerParams::GRAPH500, 9);
        let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let reference = serial_bfs(&g, root);
        for dedup in [Dedup::NoSort, Dedup::MergeSort, Dedup::RadixSort] {
            let out = spmspv_bfs(&g, root, dedup);
            assert_eq!(out.dist, reference.dist, "{dedup:?}");
        }
    }

    #[test]
    fn candidate_count_equals_component_arcs() {
        // Every arc of the reached component contributes exactly one
        // candidate across the run.
        let g = GraphBuilder::new(6).edges([(0, 1), (0, 2), (1, 2), (3, 4)]).build();
        let out = spmspv_bfs(&g, 0, Dedup::NoSort);
        assert_eq!(out.candidates, 6); // arcs within {0,1,2}
    }

    #[test]
    fn radix_sort_sorts() {
        let mut v = vec![513, 2, 77777, 0, 513, 4_000_000_000, 1];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![0, 1, 2, 513, 513, 77777, 4_000_000_000]);
    }

    #[test]
    fn radix_sort_empty_and_single() {
        let mut v: Vec<u32> = vec![];
        radix_sort_u32(&mut v);
        assert!(v.is_empty());
        let mut v = vec![42];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn unreachable_marked() {
        let g = GraphBuilder::new(4).edges([(0, 1)]).build();
        let out = spmspv_bfs(&g, 0, Dedup::MergeSort);
        assert_eq!(out.dist, vec![0, 1, UNREACHABLE, UNREACHABLE]);
    }
}
