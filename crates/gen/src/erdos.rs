//! Erdős–Rényi random graphs (§IV's `ER` family).
//!
//! Two samplers:
//! * [`erdos_renyi_gnp`] — `G(n, p)`: every pair independently with
//!   probability `p`, using geometric skip sampling (Batagelj–Brandes) so
//!   the cost is `O(n + m)` rather than `O(n²)`.
//! * [`erdos_renyi_gnm`] — `G(n, m)`: exactly `m` distinct edges.

use slimsell_graph::{CsrGraph, GraphBuilder, VertexId};

use crate::rng::Xoshiro256pp;

/// Samples `G(n, p)` with geometric jumps over the lexicographic pair
/// ordering. Expected edges: `p · n(n−1)/2`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p = {p} out of [0,1]");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, (p * (n as f64) * (n as f64) / 2.0) as usize);
    if n >= 2 && p > 0.0 {
        if p >= 1.0 {
            for u in 0..n as VertexId {
                for v in (u + 1)..n as VertexId {
                    b.edge(u, v);
                }
            }
        } else {
            let log1mp = (1.0 - p).ln();
            // Walk pair index k over the strictly-upper-triangular pairs.
            let total: u128 = (n as u128) * (n as u128 - 1) / 2;
            let mut k: u128 = 0;
            loop {
                // Geometric skip: number of failures before next success.
                let r = rng.next_f64().max(f64::MIN_POSITIVE);
                let skip = (r.ln() / log1mp).floor() as u128;
                k = k.saturating_add(skip);
                if k >= total {
                    break;
                }
                let (u, v) = pair_from_index(n, k);
                b.edge(u, v);
                k += 1;
                if k >= total {
                    break;
                }
            }
        }
    }
    b.build()
}

/// Samples `G(n, m)`: exactly `m` distinct edges, rejection-sampled
/// (fine for the sparse graphs of the paper where `m ≪ n²/2`).
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let max_edges: u128 = (n as u128) * (n as u128 - 1) / 2;
    assert!((m as u128) <= max_edges, "m = {m} exceeds n choose 2");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.bounded_usize(n) as VertexId;
        let v = rng.bounded_usize(n) as VertexId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.edge(key.0, key.1);
        }
    }
    b.build()
}

/// Maps a linear index `k` into the strictly-upper-triangular pair
/// `(u, v)`, `u < v`, in row-major order.
fn pair_from_index(n: usize, k: u128) -> (VertexId, VertexId) {
    // Row u contributes (n - 1 - u) pairs. Find u by walking rows; to stay
    // O(1) amortized across a scan we solve the quadratic directly.
    let nf = n as f64;
    let kf = k as f64;
    // Solve u from k ≈ u*n - u(u+1)/2; use the closed form then fix up.
    let mut u = (nf - 0.5 - ((nf - 0.5) * (nf - 0.5) - 2.0 * kf).max(0.0).sqrt()).floor() as usize;
    loop {
        let start = row_start(n, u);
        let end = row_start(n, u + 1);
        if k < start {
            u -= 1;
        } else if k >= end {
            u += 1;
        } else {
            let v = u + 1 + (k - start) as usize;
            return (u as VertexId, v as VertexId);
        }
    }
}

/// First linear pair index of row `u`.
fn row_start(n: usize, u: usize) -> u128 {
    let u = u as u128;
    let n = n as u128;
    u * n - u * (u + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::GraphStats;

    #[test]
    fn gnp_expected_density() {
        let n = 2000;
        let p = 8.0 / n as f64; // average degree ≈ 8
        let g = erdos_renyi_gnp(n, p, 11);
        let s = GraphStats::compute(&g, 2);
        assert!((s.avg_degree - 8.0).abs() < 1.5, "avg degree {}", s.avg_degree);
    }

    #[test]
    fn gnp_p_one_is_complete() {
        let g = erdos_renyi_gnp(6, 1.0, 0);
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn gnp_p_zero_is_empty() {
        let g = erdos_renyi_gnp(10, 0.0, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 250, 5);
        assert_eq!(g.num_edges(), 250);
        g.validate();
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(erdos_renyi_gnm(64, 100, 3), erdos_renyi_gnm(64, 100, 3));
    }

    #[test]
    fn pair_index_bijective() {
        let n = 9;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for k in 0..total as u128 {
            let (u, v) = pair_from_index(n, k);
            assert!(u < v && (v as usize) < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn uniform_degrees_not_skewed() {
        // ER degrees concentrate: max degree stays within a small factor
        // of the mean (contrast with the Kronecker test).
        let g = erdos_renyi_gnp(4096, 16.0 / 4096.0, 2);
        let s = GraphStats::compute(&g, 2);
        assert!(
            (s.max_degree as f64) < 4.0 * s.avg_degree,
            "max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }
}
