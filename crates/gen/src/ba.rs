//! Barabási–Albert preferential attachment.
//!
//! Building block for the social-network stand-ins of Table IV: produces
//! heavy-tailed degree distributions with a small diameter, the regime in
//! which the paper reports the largest SlimWork gains (§IV-A5).

use slimsell_graph::{CsrGraph, GraphBuilder, VertexId};

use crate::rng::Xoshiro256pp;

/// Generates a Barabási–Albert graph: starts from a clique on
/// `attach + 1` vertices, then each new vertex attaches to `attach`
/// existing vertices chosen proportionally to degree (implemented with
/// the standard repeated-endpoint trick: sample uniformly from the arc
/// list).
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> CsrGraph {
    assert!(attach >= 1, "attach must be >= 1");
    assert!(n > attach, "n = {n} must exceed attach = {attach}");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    // Arc endpoint list: each edge (u,v) appends u and v; sampling a
    // uniform element is degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * attach);
    let mut b = GraphBuilder::with_capacity(n, n * attach);
    // Seed clique.
    for u in 0..=attach {
        for v in (u + 1)..=attach {
            b.edge(u as VertexId, v as VertexId);
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }
    for v in (attach + 1)..n {
        let mut targets = Vec::with_capacity(attach);
        let mut guard = 0;
        while targets.len() < attach && guard < 64 * attach {
            let t = endpoints[rng.bounded_usize(endpoints.len())];
            if t as usize != v && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
        }
        // Fallback for pathological cases: attach to lowest-indexed
        // vertices not yet chosen.
        let mut fill = 0 as VertexId;
        while targets.len() < attach {
            if fill as usize != v && !targets.contains(&fill) {
                targets.push(fill);
            }
            fill += 1;
        }
        for &t in &targets {
            b.edge(v as VertexId, t);
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::GraphStats;

    #[test]
    fn edge_count() {
        let (n, k) = (500, 4);
        let g = barabasi_albert(n, k, 1);
        // clique edges + (n - k - 1) * k
        let expect = k * (k + 1) / 2 + (n - k - 1) * k;
        assert_eq!(g.num_edges(), expect);
    }

    #[test]
    fn heavy_tail() {
        let g = barabasi_albert(2000, 4, 2);
        let s = GraphStats::compute(&g, 2);
        assert!(
            s.max_degree as f64 > 5.0 * s.avg_degree,
            "max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn connected() {
        let g = barabasi_albert(300, 2, 3);
        assert_eq!(slimsell_graph::stats::connected_components(&g), 1);
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(100, 3, 9), barabasi_albert(100, 3, 9));
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn rejects_small_n() {
        barabasi_albert(3, 3, 0);
    }
}
