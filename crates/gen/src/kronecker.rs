//! Kronecker (R-MAT) power-law graph generator.
//!
//! The paper's primary synthetic workload: "synthetic power-law Kronecker
//! \[22\] … graphs such that n ∈ {2^20,…,2^28} and ρ ∈ {2^1,…,2^10}" (§IV).
//! We implement the Graph500 stochastic-Kronecker recursion: each edge is
//! placed by descending `log2 n` levels of a 2×2 probability matrix
//! `[[A, B], [C, D]]` with the Graph500 parameters A = 0.57, B = C = 0.19,
//! D = 0.05 as the default.
//!
//! Edge generation is parallel (rayon) and deterministic: placements are
//! split into a *fixed* number of blocks ([`EDGE_BLOCKS`]), each with an
//! independent child PRNG derived from `(seed, block index)`, and the
//! blocks are concatenated in block order. The block count is a
//! constant — not a function of the thread count — so a given
//! `(scale, rho, params, seed)` yields the identical graph on any
//! machine and under any `SLIMSELL_THREADS` setting.

use rayon::prelude::*;
use slimsell_graph::{CsrGraph, GraphBuilder, VertexId};

use crate::rng::Xoshiro256pp;

/// Parameters of the stochastic Kronecker recursion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KroneckerParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl KroneckerParams {
    /// Graph500 reference parameters (A=0.57, B=C=0.19, D=0.05).
    pub const GRAPH500: Self = Self { a: 0.57, b: 0.19, c: 0.19 };

    /// The implied bottom-right probability `d = 1 − a − b − c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates a Kronecker graph with `2^scale` vertices and `ρ = m/n`
/// edges per vertex — the paper's convention (Figure 1: "a Kronecker
/// graph with 2^20 vertices and 512 edges per vertex"; Table IV's ρ̄
/// column is likewise `m/n`). `rho · n` edge placements are made before
/// deduplication.
///
/// Duplicates and self loops produced by the recursion are removed by the
/// builder, so the realized ρ̄ is slightly below the target for dense
/// settings — the same behaviour as the Graph500 kernel.
pub fn kronecker(scale: u32, rho: f64, params: KroneckerParams, seed: u64) -> CsrGraph {
    assert!(scale <= 30, "scale {scale} too large for this host");
    let n = 1usize << scale;
    let m_target = (rho * n as f64).round() as usize;
    let edges = kronecker_edges(scale, m_target, params, seed);
    GraphBuilder::with_capacity(n, m_target).edges(edges).build()
}

/// Fixed number of independently-seeded edge blocks. 64 gives good
/// stealing granularity up to ~16 threads while keeping per-block RNG
/// setup negligible; it must never be derived from the thread count or
/// generated graphs would differ across machines.
pub const EDGE_BLOCKS: usize = 64;

/// Raw edge-placement pass (before dedup/symmetrization); exposed for
/// preprocessing benchmarks that need the un-cleaned edge list.
pub fn kronecker_edges(
    scale: u32,
    m_target: usize,
    params: KroneckerParams,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let blocks = EDGE_BLOCKS;
    let per_block = m_target.div_ceil(blocks.max(1));
    let mut base = Xoshiro256pp::seed_from_u64(seed);
    let block_rngs: Vec<Xoshiro256pp> = (0..blocks).map(|i| base.split(i as u64)).collect();
    block_rngs
        .into_par_iter()
        .enumerate()
        .flat_map_iter(|(bi, mut rng)| {
            let count = if (bi + 1) * per_block <= m_target {
                per_block
            } else {
                m_target.saturating_sub(bi * per_block)
            };
            (0..count).map(move |_| place_edge(scale, params, &mut rng)).collect::<Vec<_>>()
        })
        .collect()
}

/// Places a single edge by descending the 2×2 recursion `scale` times.
/// Per-level probability noise (±10 %) follows the Graph500 reference
/// implementation's "noise" to avoid perfectly self-similar artifacts.
#[inline]
fn place_edge(scale: u32, p: KroneckerParams, rng: &mut Xoshiro256pp) -> (VertexId, VertexId) {
    let mut u = 0u64;
    let mut v = 0u64;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let noise = 0.9 + 0.2 * rng.next_f64();
        let a = p.a * noise;
        let b = p.b;
        let c = p.c;
        let norm = a + b + c + p.d();
        let r = rng.next_f64() * norm;
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as VertexId, v as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::GraphStats;

    #[test]
    fn sizes_are_close_to_target() {
        let g = kronecker(12, 16.0, KroneckerParams::GRAPH500, 1);
        assert_eq!(g.num_vertices(), 1 << 12);
        let rho = g.num_edges() as f64 / g.num_vertices() as f64;
        // Dedup removes some edges; expect within [8, 16].
        assert!(rho > 8.0 && rho <= 16.5, "rho = {rho}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = kronecker(10, 8.0, KroneckerParams::GRAPH500, 7);
        let b = kronecker(10, 8.0, KroneckerParams::GRAPH500, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = kronecker(10, 8.0, KroneckerParams::GRAPH500, 1);
        let b = kronecker(10, 8.0, KroneckerParams::GRAPH500, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn skewed_degrees() {
        // Power-law graphs have max degree far above the average.
        let g = kronecker(13, 16.0, KroneckerParams::GRAPH500, 3);
        let s = GraphStats::compute(&g, 2);
        assert!(
            s.max_degree as f64 > 8.0 * s.avg_degree,
            "max {} vs avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn valid_graph() {
        kronecker(9, 4.0, KroneckerParams::GRAPH500, 5).validate();
    }

    #[test]
    fn graph500_params_sum_to_one() {
        let p = KroneckerParams::GRAPH500;
        assert!((p.a + p.b + p.c + p.d() - 1.0).abs() < 1e-12);
    }
}
