//! Watts–Strogatz small-world graphs.
//!
//! Used by the web-graph stand-ins of Table IV: some web graphs in the
//! paper (`brk` D = 514, `ndm` D = 674) combine skewed degrees with very
//! long shortest paths. A ring lattice with low rewiring keeps the
//! diameter large while a configuration-model overlay adds the degree
//! skew (see `realworld.rs`).

use slimsell_graph::{CsrGraph, GraphBuilder, VertexId};

use crate::rng::Xoshiro256pp;

/// Watts–Strogatz: ring lattice on `n` vertices, each connected to `k/2`
/// neighbors on each side, each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(n > k, "n must exceed k");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    let half = k / 2;
    for u in 0..n {
        for j in 1..=half {
            let v = (u + j) % n;
            if rng.coin(beta) {
                // Rewire the far endpoint uniformly (avoiding self loop).
                let mut w = rng.bounded_usize(n);
                let mut guard = 0;
                while w == u && guard < 16 {
                    w = rng.bounded_usize(n);
                    guard += 1;
                }
                if w != u {
                    b.edge(u as VertexId, w as VertexId);
                    continue;
                }
            }
            b.edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::GraphStats;

    #[test]
    fn ring_lattice_no_rewire() {
        let g = watts_strogatz(20, 4, 0.0, 0);
        assert_eq!(g.num_edges(), 40);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let lattice = watts_strogatz(512, 4, 0.0, 1);
        let rewired = watts_strogatz(512, 4, 0.3, 1);
        let d0 = GraphStats::compute(&lattice, 4).diameter_lb;
        let d1 = GraphStats::compute(&rewired, 4).diameter_lb;
        assert!(d1 < d0, "rewired {d1} !< lattice {d0}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(100, 6, 0.1, 2), watts_strogatz(100, 6, 0.1, 2));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        watts_strogatz(10, 3, 0.0, 0);
    }
}
