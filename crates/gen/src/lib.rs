//! Workload generators for the SlimSell reproduction.
//!
//! The paper evaluates on three graph classes (§IV, "Selection of
//! Benchmarks and Parameters"):
//!
//! * **Kronecker power-law graphs** [Leskovec et al.] with
//!   `n ∈ {2^20 … 2^28}` and `ρ ∈ {2^1 … 2^10}` — generated here with the
//!   Graph500 R-MAT recursion ([`mod@kronecker`]).
//! * **Erdős–Rényi graphs** — uniform degree distribution ([`erdos`]).
//! * **Real-world graphs** (Table IV: social networks, web graphs, a
//!   purchase network, a road network) — the original SNAP datasets are
//!   not redistributable here, so [`realworld`] provides deterministic
//!   synthetic *stand-ins* matched on (n, m, ρ̄) and qualitative structure
//!   (degree skew, diameter regime); see DESIGN.md §3 for the
//!   substitution rationale.
//!
//! Additional generators ([`ba`], [`geometric`], [`smallworld`],
//! [`config_model`]) are the building blocks of the stand-ins.
//!
//! All generators are deterministic functions of their seed, built on a
//! from-scratch xoshiro256++ PRNG ([`rng`]).

pub mod ba;
pub mod config_model;
pub mod erdos;
pub mod geometric;
pub mod kronecker;
pub mod realworld;
pub mod rng;
pub mod smallworld;

pub use erdos::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use kronecker::{kronecker, KroneckerParams};
pub use realworld::{standin, standin_catalog, StandinSpec};
pub use rng::Xoshiro256pp;
