//! Deterministic stand-ins for the real-world graphs of Table IV.
//!
//! The paper evaluates ten SNAP graphs. Those datasets cannot be shipped
//! here, so each entry is substituted by a synthetic generator matched on
//! the statistics the paper's experiments actually consume:
//!
//! * `n`, `m`, ρ̄ — drive storage sizes (Fig. 7b/d) and padding `P`;
//! * degree skew — drives Sell-C-σ padding, σ sensitivity, SlimWork;
//! * diameter regime — drives the iteration count and the §IV-A5 finding
//!   that high-D/low-ρ̄ graphs (amz, rca) gain little from SlimWork.
//!
//! Structures used per category (see DESIGN.md §3):
//! * social networks / community graphs → Kronecker (R-MAT) skew, low D;
//! * web graphs, moderate D (`gog`, `sta`) → erased configuration model
//!   with a truncated power law;
//! * web graphs, extreme D (`brk`, `ndm`) → a *community chain*: a path
//!   of power-law clusters bridged by single edges, giving both skew and
//!   a diameter proportional to the chain length;
//! * purchase network (`amz`) → mild power law;
//! * road network (`rca`) → perturbed grid.
//!
//! Stand-ins are scaled down by `1 / 2^scale_shift` in `n` (default used
//! by the harness: 4, i.e. 1/16) with ρ̄ preserved, so relative storage
//! and behavioural comparisons transfer.

use slimsell_graph::{CsrGraph, GraphBuilder, VertexId};

use crate::ba::barabasi_albert;
use crate::config_model::{configuration_model, powerlaw_degrees};
use crate::geometric::road_network;
use crate::kronecker::{kronecker_edges, KroneckerParams};

/// Structural family of a stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StandinKind {
    /// R-MAT skew, small diameter (social networks, community graphs).
    SocialRmat,
    /// Truncated power-law configuration model (web graphs, moderate D).
    WebPowerlaw,
    /// Chain of power-law communities (web graphs with extreme D).
    WebChain,
    /// Mild power law (purchase network).
    Purchase,
    /// Perturbed grid (road network).
    Road,
}

/// One Table IV row: paper statistics plus the substitution recipe.
#[derive(Clone, Copy, Debug)]
pub struct StandinSpec {
    /// Paper's graph ID (e.g. `orc`).
    pub id: &'static str,
    /// Human-readable type from Table IV.
    pub family: &'static str,
    /// Generator family used for the stand-in.
    pub kind: StandinKind,
    /// Paper n.
    pub paper_n: usize,
    /// Paper m.
    pub paper_m: usize,
    /// Paper average degree ρ̄.
    pub paper_rho: f64,
    /// Paper diameter D.
    pub paper_d: u32,
}

/// The ten graphs of Table IV.
pub fn standin_catalog() -> &'static [StandinSpec] {
    use StandinKind::*;
    const CATALOG: &[StandinSpec] = &[
        StandinSpec {
            id: "orc",
            family: "Social network",
            kind: SocialRmat,
            paper_n: 3_070_000,
            paper_m: 117_000_000,
            paper_rho: 39.0,
            paper_d: 9,
        },
        StandinSpec {
            id: "pok",
            family: "Social network",
            kind: SocialRmat,
            paper_n: 1_630_000,
            paper_m: 30_600_000,
            paper_rho: 18.75,
            paper_d: 11,
        },
        StandinSpec {
            id: "epi",
            family: "Social network",
            kind: SocialRmat,
            paper_n: 75_000,
            paper_m: 508_000,
            paper_rho: 6.7,
            paper_d: 15,
        },
        StandinSpec {
            id: "ljn",
            family: "Community network",
            kind: SocialRmat,
            paper_n: 3_990_000,
            paper_m: 34_600_000,
            paper_rho: 8.67,
            paper_d: 17,
        },
        StandinSpec {
            id: "brk",
            family: "Web graph",
            kind: WebChain,
            paper_n: 685_000,
            paper_m: 7_600_000,
            paper_rho: 11.09,
            paper_d: 514,
        },
        StandinSpec {
            id: "gog",
            family: "Web graph",
            kind: WebPowerlaw,
            paper_n: 875_000,
            paper_m: 5_100_000,
            paper_rho: 5.82,
            paper_d: 21,
        },
        StandinSpec {
            id: "sta",
            family: "Web graph",
            kind: WebPowerlaw,
            paper_n: 281_000,
            paper_m: 2_310_000,
            paper_rho: 8.2,
            paper_d: 46,
        },
        StandinSpec {
            id: "ndm",
            family: "Web graph",
            kind: WebChain,
            paper_n: 325_000,
            paper_m: 1_490_000,
            paper_rho: 4.59,
            paper_d: 674,
        },
        StandinSpec {
            id: "amz",
            family: "Purchase network",
            kind: Purchase,
            paper_n: 262_000,
            paper_m: 1_230_000,
            paper_rho: 4.71,
            paper_d: 32,
        },
        StandinSpec {
            id: "rca",
            family: "Road network",
            kind: Road,
            paper_n: 1_960_000,
            paper_m: 2_760_000,
            paper_rho: 1.4,
            paper_d: 849,
        },
    ];
    CATALOG
}

/// Looks up a spec by ID.
pub fn standin_spec(id: &str) -> Option<&'static StandinSpec> {
    standin_catalog().iter().find(|s| s.id == id)
}

/// Generates the stand-in for graph `id`, scaled down by `2^scale_shift`
/// in `n` with ρ̄ preserved.
///
/// Table IV's ρ̄ column follows the paper's `m/n` convention (e.g. `orc`:
/// 117 M / 3.07 M ≈ 38 ≈ the quoted 39), so the *average degree* target
/// is `2 ρ̄`.
///
/// # Panics
/// Panics if `id` is not in [`standin_catalog`].
pub fn standin(id: &str, scale_shift: u32, seed: u64) -> CsrGraph {
    let spec = standin_spec(id).unwrap_or_else(|| panic!("unknown stand-in id {id:?}"));
    let n = (spec.paper_n >> scale_shift).max(256);
    let rho = spec.paper_rho; // m/n
    match spec.kind {
        StandinKind::SocialRmat => social_rmat(n, rho, seed),
        StandinKind::WebPowerlaw => web_powerlaw(n, rho, seed),
        StandinKind::WebChain => web_chain(n, rho, spec.paper_d, seed),
        StandinKind::Purchase => {
            let degrees = powerlaw_degrees(n, 2.8, 1, (n as f64).sqrt() as usize + 2, seed);
            with_rho_target(n, rho, configuration_model(&degrees, seed ^ 0x5EED))
        }
        // Average degree 2ρ̄ (≈ 2.8 for rca) keeps the perturbed grid
        // above the bond-percolation threshold, so the giant component
        // spans the grid and the diameter regime matches the paper's.
        StandinKind::Road => road_network(n, (2.0 * rho).min(4.0), seed),
    }
}

/// R-MAT over a non-power-of-two n: generate at the next power of two and
/// fold surplus ids down (keeps the skew; folding only merges rows).
fn social_rmat(n: usize, rho: f64, seed: u64) -> CsrGraph {
    let scale = (usize::BITS - (n - 1).leading_zeros()).max(1);
    let m_target = (rho * n as f64).round() as usize;
    let edges = kronecker_edges(scale, m_target, KroneckerParams::GRAPH500, seed);
    let mut b = GraphBuilder::with_capacity(n, m_target);
    for (u, v) in edges {
        b.edge(u % n as VertexId, v % n as VertexId);
    }
    b.build()
}

fn web_powerlaw(n: usize, rho: f64, seed: u64) -> CsrGraph {
    // Exponent ≈ 2.1 (typical for web graphs); cap at sqrt(n) like real
    // hosts, then rescale degree mass so the stub sum is 2m = 2ρ̄n.
    let mut degrees = powerlaw_degrees(n, 2.1, 1, (n as f64).sqrt() as usize + 2, seed);
    let sum: usize = degrees.iter().sum();
    let target = (2.0 * rho * n as f64) as usize;
    if sum > 0 {
        let scale = target as f64 / sum as f64;
        for d in &mut degrees {
            *d = ((*d as f64 * scale).round() as usize).max(1);
        }
    }
    configuration_model(&degrees, seed ^ 0xC0FFEE)
}

/// Chain of `k` power-law communities bridged consecutively; the chain
/// length sets the diameter regime (paper D in the hundreds).
fn web_chain(n: usize, rho: f64, paper_d: u32, seed: u64) -> CsrGraph {
    // Aim for a diameter on the order of paper_d (scaled graphs keep the
    // paper's D so the per-iteration experiments see many iterations).
    let k = (paper_d as usize / 3).clamp(2, n / 8);
    let comm = n / k;
    let mut b = GraphBuilder::with_capacity(n, (rho * n as f64) as usize + k);
    for ci in 0..k {
        let lo = ci * comm;
        let hi = if ci == k - 1 { n } else { lo + comm };
        let size = hi - lo;
        // BA with `attach` edges per vertex realizes m/n ≈ attach = ρ̄.
        let sub =
            barabasi_albert(size.max(4), (rho.round() as usize).max(1), seed ^ (ci as u64) << 1);
        for (u, v) in sub.edges() {
            if (u as usize) < size && (v as usize) < size {
                b.edge((lo + u as usize) as VertexId, (lo + v as usize) as VertexId);
            }
        }
        if ci + 1 < k {
            // Single bridge edge to the next community.
            b.edge((hi - 1) as VertexId, hi as VertexId);
        }
    }
    b.build()
}

/// Adds uniform random edges if the generated graph fell short of the
/// target ρ̄ = m/n by more than 20 % (erased configuration models lose
/// mass to collisions).
fn with_rho_target(n: usize, rho: f64, g: CsrGraph) -> CsrGraph {
    let have = g.num_edges() as f64 / n as f64;
    if have >= 0.8 * rho {
        return g;
    }
    let missing = ((rho - have) * n as f64) as usize;
    let mut rng = crate::rng::Xoshiro256pp::seed_from_u64(0xF1FE);
    let mut b = GraphBuilder::with_capacity(n, g.num_edges() + missing);
    b.extend(g.edges());
    for _ in 0..missing {
        let u = rng.bounded_usize(n) as VertexId;
        let v = rng.bounded_usize(n) as VertexId;
        if u != v {
            b.edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::GraphStats;

    /// Debug builds shrink stand-ins a further 4x (configuration-model
    /// generation dominates this suite unoptimized); release builds keep
    /// the documented scales.
    fn sh(shift: u32) -> u32 {
        if cfg!(debug_assertions) {
            shift + 2
        } else {
            shift
        }
    }

    #[test]
    fn catalog_has_ten_graphs() {
        assert_eq!(standin_catalog().len(), 10);
    }

    #[test]
    fn all_standins_generate_and_validate() {
        for spec in standin_catalog() {
            let g = standin(spec.id, sh(6), 42); // 1/64 scale for test speed
            g.validate();
            assert!(g.num_vertices() >= 256, "{}: n too small", spec.id);
            assert!(g.num_edges() > 0, "{}: no edges", spec.id);
        }
    }

    #[test]
    fn rho_within_factor_two() {
        for spec in standin_catalog() {
            let g = standin(spec.id, sh(6), 42);
            let rho = g.num_edges() as f64 / g.num_vertices() as f64;
            assert!(
                rho > spec.paper_rho / 2.5 && rho < spec.paper_rho * 2.5,
                "{}: rho {} vs paper {}",
                spec.id,
                rho,
                spec.paper_rho
            );
        }
    }

    #[test]
    fn road_standin_high_diameter() {
        let g = standin("rca", sh(6), 1);
        let s = GraphStats::compute(&g, 3);
        assert!(s.diameter_lb > 50, "rca diameter {}", s.diameter_lb);
    }

    #[test]
    fn chain_standin_higher_diameter_than_social() {
        let social = GraphStats::compute(&standin("pok", sh(6), 1), 3).diameter_lb;
        let chain = GraphStats::compute(&standin("ndm", sh(6), 1), 3).diameter_lb;
        assert!(chain > 3 * social, "chain D {chain} vs social D {social}");
    }

    #[test]
    fn social_standin_is_skewed() {
        let g = standin("orc", sh(7), 2);
        let s = GraphStats::compute(&g, 2);
        assert!(s.max_degree as f64 > 5.0 * s.avg_degree);
    }

    #[test]
    fn deterministic() {
        assert_eq!(standin("amz", sh(6), 9), standin("amz", sh(6), 9));
    }

    #[test]
    #[should_panic(expected = "unknown stand-in")]
    fn unknown_id_panics() {
        standin("nope", sh(4), 0);
    }
}
