//! Grid-like geometric graphs: the road-network stand-in.
//!
//! The paper's `rca` (California road network) has ρ̄ ≈ 1.4 and
//! D ≈ 849 — low degree, huge diameter. Road networks are close to planar
//! grids with perturbations, so the stand-in is a 2-D lattice with random
//! edge deletions and occasional diagonal shortcuts, which reproduces the
//! low-ρ̄/high-D regime where the paper finds "small or no improvement
//! from SlimWork, regardless of σ" (§IV-A5).

use slimsell_graph::{CsrGraph, GraphBuilder, VertexId};

use crate::rng::Xoshiro256pp;

/// Generates a perturbed `rows × cols` grid graph.
///
/// * `keep` — probability of keeping each lattice edge (1.0 = full grid);
/// * `shortcut` — probability per vertex of adding one diagonal edge.
pub fn perturbed_grid(rows: usize, cols: usize, keep: f64, shortcut: f64, seed: u64) -> CsrGraph {
    let n = rows * cols;
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.coin(keep) {
                b.edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows && rng.coin(keep) {
                b.edge(id(r, c), id(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols && rng.coin(shortcut) {
                b.edge(id(r, c), id(r + 1, c + 1));
            }
        }
    }
    b.build()
}

/// Road-network style graph with `n ≈ target_n` vertices and average
/// degree tuned toward `rho` (ρ̄ ∈ [1, 4] is meaningful for road nets).
pub fn road_network(target_n: usize, rho: f64, seed: u64) -> CsrGraph {
    assert!(rho > 0.0 && rho <= 4.5, "road networks have small average degree, got {rho}");
    let side = (target_n as f64).sqrt().ceil() as usize;
    // A full grid interior vertex has degree 4 (ρ̄→2 edges per vertex per
    // direction: full grid ρ̄ ≈ 4 ignoring borders). Scale keep for target.
    let keep = (rho / 4.0).min(1.0);
    perturbed_grid(side, side, keep, 0.02 * keep, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::GraphStats;

    #[test]
    fn full_grid_counts() {
        let g = perturbed_grid(4, 5, 1.0, 0.0, 0);
        assert_eq!(g.num_vertices(), 20);
        // 4 rows × 4 horizontal + 3 × 5 vertical = 16 + 15
        assert_eq!(g.num_edges(), 31);
    }

    #[test]
    fn full_grid_diameter_is_manhattan() {
        let g = perturbed_grid(6, 6, 1.0, 0.0, 0);
        let s = GraphStats::compute(&g, 4);
        assert_eq!(s.diameter_lb, 10); // (6-1) + (6-1)
    }

    #[test]
    fn road_network_low_degree_high_diameter() {
        let g = road_network(4096, 2.8, 1);
        let s = GraphStats::compute(&g, 3);
        assert!(s.avg_degree < 3.5, "avg degree {}", s.avg_degree);
        assert!(s.diameter_lb > 30, "diameter {}", s.diameter_lb);
        assert!(s.max_degree <= 8);
    }

    #[test]
    fn deterministic() {
        assert_eq!(road_network(1000, 2.0, 4), road_network(1000, 2.0, 4));
    }

    #[test]
    fn keep_zero_gives_no_lattice_edges() {
        let g = perturbed_grid(5, 5, 0.0, 0.0, 3);
        assert_eq!(g.num_edges(), 0);
    }
}
