//! Configuration model: graphs with a prescribed degree sequence.
//!
//! Lets the real-world stand-ins match a target degree *distribution*
//! (e.g. a truncated power law with exponent β, the distribution for
//! which the paper derives the Eq. (2) work bound) rather than just the
//! average degree.

use slimsell_graph::{CsrGraph, GraphBuilder, VertexId};

use crate::rng::Xoshiro256pp;

/// Builds a simple graph approximating the given degree sequence by
/// random stub matching; self loops and multi-edges from the matching are
/// dropped (standard erased configuration model), so realized degrees are
/// ≤ requested.
pub fn configuration_model(degrees: &[usize], seed: u64) -> CsrGraph {
    let n = degrees.len();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let total: usize = degrees.iter().sum();
    let mut stubs: Vec<VertexId> = Vec::with_capacity(total + 1);
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as VertexId, d));
    }
    if stubs.len() % 2 == 1 {
        stubs.pop(); // degree sum must be even; drop one stub
    }
    // Fisher–Yates shuffle, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.bounded_usize(i + 1);
        stubs.swap(i, j);
    }
    let mut b = GraphBuilder::with_capacity(n, stubs.len() / 2);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.edge(pair[0], pair[1]);
        }
    }
    b.build()
}

/// Samples a truncated power-law degree sequence: `P(ρ) ∝ ρ^(−β)` for
/// `ρ ∈ [d_min, d_max]` via inverse-CDF sampling, the distribution of
/// §III-A's power-law work-bound analysis.
pub fn powerlaw_degrees(n: usize, beta: f64, d_min: usize, d_max: usize, seed: u64) -> Vec<usize> {
    assert!(beta > 1.0, "power-law exponent must exceed 1");
    assert!(d_min >= 1 && d_max >= d_min);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let a = 1.0 - beta;
    let lo = (d_min as f64).powf(a);
    let hi = (d_max as f64 + 1.0).powf(a);
    (0..n)
        .map(|_| {
            let u = rng.next_f64();
            let x = (lo + u * (hi - lo)).powf(1.0 / a);
            (x.floor() as usize).clamp(d_min, d_max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_close_to_requested() {
        let degrees = vec![3usize; 200];
        let g = configuration_model(&degrees, 1);
        let realized: f64 = (0..200).map(|v| g.degree(v as VertexId) as f64).sum::<f64>() / 200.0;
        assert!((realized - 3.0).abs() < 0.5, "avg realized {realized}");
    }

    #[test]
    fn powerlaw_respects_bounds() {
        let d = powerlaw_degrees(5000, 2.2, 2, 100, 3);
        assert!(d.iter().all(|&x| (2..=100).contains(&x)));
        // Heavy tail: some vertex well above the median.
        let max = *d.iter().max().unwrap();
        assert!(max > 20, "max degree {max}");
    }

    #[test]
    fn powerlaw_mass_concentrates_low() {
        let d = powerlaw_degrees(10_000, 2.5, 1, 1000, 5);
        let low = d.iter().filter(|&&x| x <= 3).count();
        assert!(low > 5_000, "low-degree fraction {low}/10000");
    }

    #[test]
    fn odd_stub_sum_handled() {
        let g = configuration_model(&[3, 2, 2], 7);
        g.validate();
    }

    #[test]
    fn deterministic() {
        let d = powerlaw_degrees(100, 2.0, 1, 50, 9);
        assert_eq!(configuration_model(&d, 4), configuration_model(&d, 4));
    }
}
