//! Deterministic pseudo-random number generation.
//!
//! A from-scratch xoshiro256++ generator seeded through SplitMix64
//! (Blackman & Vigna). Implemented locally instead of pulling `rand` so
//! that every generated workload is a pure, version-independent function
//! of `(generator, parameters, seed)` — the property the reproduction
//! harness relies on when comparing runs.

/// SplitMix64 step: used to expand a 64-bit seed into xoshiro state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ PRNG: 256-bit state, 64-bit output, period 2^256 − 1.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, per
    /// the xoshiro authors' recommendation).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (high half, better statistical quality).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    pub fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn bounded_usize(&mut self, bound: usize) -> usize {
        self.bounded(bound as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn coin(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Splits off an independently-seeded child generator (for
    /// deterministic parallel generation).
    pub fn split(&mut self, stream: u64) -> Self {
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_in_range_and_covers() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.bounded(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = Xoshiro256pp::seed_from_u64(9);
        let mean: f64 = (0..100_000).map(|_| r.next_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn split_streams_independent() {
        let mut base = Xoshiro256pp::seed_from_u64(5);
        let mut c1 = base.split(0);
        let mut c2 = base.split(1);
        let x: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let y: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(x, y);
    }

    #[test]
    #[should_panic(expected = "bounded(0)")]
    fn bounded_zero_panics() {
        Xoshiro256pp::seed_from_u64(0).bounded(0);
    }
}
