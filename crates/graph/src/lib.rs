//! Graph substrate for the SlimSell reproduction.
//!
//! This crate provides the basic graph machinery every other crate builds
//! on: a compressed-sparse-row graph ([`CsrGraph`]), an explicit
//! adjacency-list view ([`AdjacencyList`], the `AL` representation of the
//! paper's Table III), a deduplicating/symmetrizing [`builder`], vertex
//! [`Permutation`]s (needed by Sell-C-σ's σ-scoped sorting), degree and
//! diameter [`stats`], and a serial reference BFS used as ground truth by
//! every other BFS implementation in the workspace.
//!
//! Graphs are undirected and unweighted, exactly the class SlimSell
//! targets (§III-B of the paper: "for undirected graphs, entries in A only
//! indicate presence or absence of edges").

pub mod adjlist;
pub mod builder;
pub mod csr;
pub mod io;
pub mod perm;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod weighted;

pub use adjlist::AdjacencyList;
pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use perm::Permutation;
pub use stats::GraphStats;
pub use subgraph::{induced_subgraph, largest_component};
pub use traversal::{serial_bfs, validate_parents, BfsResult, UNREACHABLE};
pub use weighted::WeightedCsrGraph;

/// Vertex identifier. The paper fixes 32-bit identifiers ("choosing 32-bit
/// integers to represent vertex identifiers on a CPU yields a SIMD width
/// of 8", §IV-A), so we do the same.
pub type VertexId = u32;
