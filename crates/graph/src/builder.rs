//! Edge-list to CSR builder with symmetrization and deduplication.
//!
//! Generators (Kronecker, Erdős–Rényi, …) emit raw edge lists that may
//! contain duplicates, self loops, and one-directional arcs. The builder
//! normalizes them into the undirected simple graph the SlimSell kernels
//! expect — the same cleanup the Graph500 reference code performs on
//! R-MAT output.

use crate::{CsrGraph, VertexId};

/// Incremental builder for [`CsrGraph`].
///
/// ```
/// use slimsell_graph::GraphBuilder;
/// let g = GraphBuilder::new(4)
///     .edges([(0, 1), (1, 0), (1, 1), (2, 3)]) // dup + self loop removed
///     .build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids are 32-bit");
        Self { n, edges: Vec::new() }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids are 32-bit");
        Self { n, edges: Vec::with_capacity(m) }
    }

    /// Adds a single undirected edge. Self loops are silently dropped;
    /// duplicates are removed at [`GraphBuilder::build`] time.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range n={}",
            self.n
        );
        if u != v {
            self.edges.push((u, v));
        }
        self
    }

    /// Adds many edges (chainable, consuming form).
    pub fn edges(mut self, it: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        for (u, v) in it {
            self.edge(u, v);
        }
        self
    }

    /// Adds many edges through a mutable reference.
    pub fn extend(&mut self, it: impl IntoIterator<Item = (VertexId, VertexId)>) -> &mut Self {
        for (u, v) in it {
            self.edge(u, v);
        }
        self
    }

    /// Number of (not yet deduplicated) edges recorded so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a validated [`CsrGraph`]: symmetrizes, sorts each
    /// neighbor list, removes duplicates, and builds row offsets with a
    /// counting pass (no per-row allocation).
    pub fn build(&self) -> CsrGraph {
        let n = self.n;
        // Count arcs per vertex (each undirected edge contributes 2 arcs).
        let mut deg = vec![0u64; n + 1];
        for &(u, v) in &self.edges {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let mut row_ptr = deg; // prefix sums; will be the final offsets
        let mut col = vec![0 as VertexId; *row_ptr.last().unwrap() as usize];
        // Scatter arcs using a moving cursor per row.
        let mut cursor: Vec<u64> = row_ptr[..n].to_vec();
        for &(u, v) in &self.edges {
            col[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            col[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Sort + dedup each row in place, then compact.
        let mut write = 0usize;
        let mut new_row_ptr = vec![0u64; n + 1];
        for v in 0..n {
            let (lo, hi) = (row_ptr[v] as usize, row_ptr[v + 1] as usize);
            let row = &mut col[lo..hi];
            row.sort_unstable();
            // Dedup within the row while compacting the global array.
            let mut prev: Option<VertexId> = None;
            for i in lo..hi {
                let c = col[i];
                if prev != Some(c) {
                    col[write] = c;
                    write += 1;
                    prev = Some(c);
                }
            }
            new_row_ptr[v + 1] = write as u64;
        }
        col.truncate(write);
        row_ptr = new_row_ptr;
        CsrGraph::from_parts_unchecked(n, row_ptr, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_symmetrize() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 0), (0, 1), (1, 2)]).build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn drops_self_loops() {
        let g = GraphBuilder::new(2).edges([(0, 0), (1, 1), (0, 1)]).build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 7);
    }

    #[test]
    fn zero_vertices() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        GraphBuilder::new(2).edges([(0, 5)]);
    }

    #[test]
    fn isolated_vertices_kept() {
        let g = GraphBuilder::new(10).edges([(0, 9)]).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn triangle() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2), (2, 0)]).build();
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        g.validate();
    }
}
