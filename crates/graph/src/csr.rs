//! Compressed sparse row (CSR) storage for undirected, unweighted graphs.
//!
//! CSR is both (a) the substrate every Sell-C-σ/SlimSell structure is
//! built from and (b) one of the comparison targets of the paper's storage
//! analysis (Table III: CSR uses `4m + n` cells for an undirected graph
//! once the `val` array of an adjacency *matrix* is included; see
//! [`CsrGraph::storage_cells_matrix`]).

use crate::VertexId;

/// An undirected, unweighted graph in CSR form.
///
/// Invariants (enforced by [`crate::GraphBuilder`] and checked by
/// [`CsrGraph::validate`]):
/// * neighbor lists are sorted and duplicate-free,
/// * no self loops,
/// * the adjacency relation is symmetric (`(u,v) ∈ E ⇔ (v,u) ∈ E`),
/// * `row_ptr` has length `n + 1`, is non-decreasing, and
///   `row_ptr[n] == col.len()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    /// Row offsets; `row_ptr[v]..row_ptr[v+1]` indexes `col`.
    row_ptr: Vec<u64>,
    /// Concatenated neighbor lists; `col.len() == 2m` for `m` undirected
    /// edges.
    col: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a CSR graph from raw parts, validating all invariants.
    ///
    /// # Panics
    /// Panics if the invariants documented on [`CsrGraph`] do not hold.
    pub fn from_parts(n: usize, row_ptr: Vec<u64>, col: Vec<VertexId>) -> Self {
        let g = Self { n, row_ptr, col };
        g.validate();
        g
    }

    /// Builds a CSR graph from raw parts without validation.
    ///
    /// Intended for internal use by [`crate::GraphBuilder`] and for
    /// permutation code that constructs already-valid graphs; in debug
    /// builds the invariants are still checked.
    pub(crate) fn from_parts_unchecked(n: usize, row_ptr: Vec<u64>, col: Vec<VertexId>) -> Self {
        let g = Self { n, row_ptr, col };
        debug_assert!(g.try_validate().is_ok(), "invalid CSR: {:?}", g.try_validate());
        g
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self { n, row_ptr: vec![0; n + 1], col: Vec::new() }
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col.len() / 2
    }

    /// Number of stored directed arcs (`2m` for an undirected graph).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.col.len()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.row_ptr[v + 1] - self.row_ptr[v]) as usize
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.col[self.row_ptr[v] as usize..self.row_ptr[v + 1] as usize]
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Row offset array (length `n + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[u64] {
        &self.row_ptr
    }

    /// Concatenated adjacency array (length `2m`).
    #[inline]
    pub fn col(&self) -> &[VertexId] {
        &self.col
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n as VertexId).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Storage cells of CSR viewed as a graph structure only
    /// (`col` + `row`): `2m + n + 1` cells.
    pub fn storage_cells_structure(&self) -> usize {
        self.col.len() + self.row_ptr.len()
    }

    /// Storage cells of CSR viewed as an adjacency *matrix* as in the
    /// paper's Table III (`val` + `col` + `row` = `4m + n` cells): general
    /// sparse-matrix CSR keeps an explicit `val` array of the same length
    /// as `col`, which is exactly the array SlimSell removes.
    pub fn storage_cells_matrix(&self) -> usize {
        2 * self.col.len() + self.n
    }

    /// Checks all structural invariants, returning a description of the
    /// first violation found.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.n + 1 {
            return Err(format!("row_ptr len {} != n+1 {}", self.row_ptr.len(), self.n + 1));
        }
        if self.row_ptr[0] != 0 {
            return Err("row_ptr[0] != 0".into());
        }
        if *self.row_ptr.last().unwrap() as usize != self.col.len() {
            return Err("row_ptr[n] != col.len()".into());
        }
        for v in 0..self.n {
            if self.row_ptr[v] > self.row_ptr[v + 1] {
                return Err(format!("row_ptr decreasing at {v}"));
            }
            let nbrs = &self.col[self.row_ptr[v] as usize..self.row_ptr[v + 1] as usize];
            for w in nbrs.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {v} not strictly sorted: {} >= {}", w[0], w[1]));
                }
            }
            for &u in nbrs {
                if u as usize >= self.n {
                    return Err(format!("row {v} references out-of-range vertex {u}"));
                }
                if u as usize == v {
                    return Err(format!("self loop at {v}"));
                }
            }
        }
        // Symmetry: every arc must have its reverse.
        for v in 0..self.n as VertexId {
            for &u in self.neighbors(v) {
                if !self.has_edge(u, v) {
                    return Err(format!("asymmetric arc ({v},{u})"));
                }
            }
        }
        Ok(())
    }

    /// Panicking variant of [`CsrGraph::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid CsrGraph: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path3() -> CsrGraph {
        // 0 - 1 - 2
        GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build()
    }

    #[test]
    fn counts() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn neighbors_sorted() {
        let g = GraphBuilder::new(4).edges([(3, 0), (1, 0), (2, 0)]).build();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn has_edge_symmetric() {
        let g = path3();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edges_iterator_unique() {
        let g = path3();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        g.validate();
    }

    #[test]
    fn storage_cells_match_table3() {
        let g = path3();
        let (n, m) = (3, 2);
        assert_eq!(g.storage_cells_matrix(), 4 * m + n);
        assert_eq!(g.storage_cells_structure(), 2 * m + n + 1);
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn rejects_self_loop() {
        CsrGraph::from_parts(2, vec![0, 1, 2], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn rejects_asymmetric() {
        CsrGraph::from_parts(2, vec![0, 1, 1], vec![1]);
    }
}
