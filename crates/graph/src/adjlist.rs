//! The adjacency-list (AL) representation of §II-D3.
//!
//! AL is the paper's baseline graph representation: `2m + n` memory cells
//! (a neighbor array of size `2m` plus an offset array of size `n`). It is
//! "effectively the smallest graph representation if no compression is
//! used" (§IV-E), which is why Figure 7 measures SlimSell against it.
//!
//! Structurally AL is CSR without the matrix `val` array; we keep it as a
//! distinct type so storage accounting (`Table III`, Figure 7) talks about
//! exactly the representation the paper does.

use crate::{CsrGraph, VertexId};

/// Adjacency-list representation (offsets + neighbor ids).
#[derive(Clone, Debug)]
pub struct AdjacencyList {
    /// `offset[v]` is the start of `v`'s neighbors; length `n` exactly as
    /// in §II-D3 ("an offset array with the beginning of the neighbor data
    /// of each vertex (size n)"). The end of row `v` is `offset[v+1]` or
    /// `neighbors.len()` for the last row.
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
}

impl AdjacencyList {
    /// Converts from CSR (drops the sentinel offset to match the paper's
    /// `n`-cell offset array).
    pub fn from_csr(g: &CsrGraph) -> Self {
        Self { offsets: g.row_ptr()[..g.num_vertices()].to_vec(), neighbors: g.col().to_vec() }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        let lo = self.offsets[v] as usize;
        let hi = if v + 1 < self.offsets.len() {
            self.offsets[v + 1] as usize
        } else {
            self.neighbors.len()
        };
        &self.neighbors[lo..hi]
    }

    /// Storage cells per Table III: `2m + n`.
    pub fn storage_cells(&self) -> usize {
        self.neighbors.len() + self.offsets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn roundtrip_from_csr() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3), (3, 0)]).build();
        let al = AdjacencyList::from_csr(&g);
        assert_eq!(al.num_vertices(), 4);
        assert_eq!(al.num_edges(), 4);
        for v in 0..4 {
            assert_eq!(al.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn storage_is_2m_plus_n() {
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (0, 2)]).build();
        let al = AdjacencyList::from_csr(&g);
        assert_eq!(al.storage_cells(), 2 * 3 + 5);
    }

    #[test]
    fn last_row_bounds() {
        let g = GraphBuilder::new(3).edges([(0, 2), (1, 2)]).build();
        let al = AdjacencyList::from_csr(&g);
        assert_eq!(al.neighbors(2), &[0, 1]);
    }
}
