//! Vertex permutations.
//!
//! Sell-C-σ sorts rows by degree inside σ-sized windows (§II-D2), which
//! relabels vertices. To keep the dense BFS vectors (`x`, `f`, `g`, `p`,
//! `d`) consistent, the whole matrix is permuted *symmetrically* (rows and
//! columns), BFS runs entirely in the permuted id space, and results are
//! mapped back through the permutation at the end.

use crate::{CsrGraph, VertexId};

/// A bijection on `0..n` stored in both directions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    /// `new_to_old[new] = old`
    new_to_old: Vec<VertexId>,
    /// `old_to_new[old] = new`
    old_to_new: Vec<VertexId>,
}

impl Permutation {
    /// Identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        let v: Vec<VertexId> = (0..n as VertexId).collect();
        Self { new_to_old: v.clone(), old_to_new: v }
    }

    /// Builds from a `new_to_old` mapping.
    ///
    /// # Panics
    /// Panics if `new_to_old` is not a bijection on `0..n`.
    pub fn from_new_to_old(new_to_old: Vec<VertexId>) -> Self {
        let n = new_to_old.len();
        let mut old_to_new = vec![VertexId::MAX; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            assert!((old as usize) < n, "permutation entry {old} out of range");
            assert_eq!(old_to_new[old as usize], VertexId::MAX, "duplicate entry {old}");
            old_to_new[old as usize] = new as VertexId;
        }
        Self { new_to_old, old_to_new }
    }

    /// Size of the permuted domain.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// Maps a permuted id back to the original id.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.new_to_old[new as usize]
    }

    /// Maps an original id to its permuted id.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        self.old_to_new[old as usize]
    }

    /// The `new_to_old` table.
    pub fn new_to_old(&self) -> &[VertexId] {
        &self.new_to_old
    }

    /// The `old_to_new` table.
    pub fn old_to_new(&self) -> &[VertexId] {
        &self.old_to_new
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.new_to_old.iter().enumerate().all(|(i, &v)| i as VertexId == v)
    }

    /// Applies the permutation symmetrically to a graph: vertex `old`
    /// becomes vertex `to_new(old)`, adjacency preserved.
    pub fn apply_to_graph(&self, g: &CsrGraph) -> CsrGraph {
        assert_eq!(self.len(), g.num_vertices());
        let n = g.num_vertices();
        let mut row_ptr = vec![0u64; n + 1];
        let mut acc = 0u64;
        for (new, slot) in row_ptr[1..].iter_mut().enumerate() {
            acc += g.degree(self.new_to_old[new]) as u64;
            *slot = acc;
        }
        let mut col = vec![0 as VertexId; g.num_arcs()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            let lo = row_ptr[new] as usize;
            for (i, &w) in g.neighbors(old).iter().enumerate() {
                col[lo + i] = self.old_to_new[w as usize];
            }
            col[lo..lo + g.degree(old)].sort_unstable();
        }
        CsrGraph::from_parts_unchecked(n, row_ptr, col)
    }

    /// Un-permutes a dense per-vertex vector: output `o[old] =
    /// data[to_new(old)]`.
    pub fn unpermute<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert!(data.len() >= self.len());
        (0..self.len()).map(|old| data[self.old_to_new[old] as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.to_old(2), 2);
        assert_eq!(p.to_new(3), 3);
    }

    #[test]
    fn inverse_consistency() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]);
        for new in 0..4 {
            assert_eq!(p.to_new(p.to_old(new)), new);
        }
        for old in 0..4 {
            assert_eq!(p.to_old(p.to_new(old)), old);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_non_bijection() {
        Permutation::from_new_to_old(vec![0, 0, 1]);
    }

    #[test]
    fn graph_permutation_preserves_adjacency() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let p = Permutation::from_new_to_old(vec![3, 1, 0, 2]);
        let pg = p.apply_to_graph(&g);
        assert_eq!(pg.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(pg.has_edge(p.to_new(u), p.to_new(v)), "edge ({u},{v}) lost");
        }
        pg.validate();
    }

    #[test]
    fn unpermute_maps_back() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]);
        // data indexed by NEW ids; vertex old=2 is new=0 etc.
        let data = [10, 11, 12];
        let o = p.unpermute(&data);
        assert_eq!(o, vec![11, 12, 10]);
    }
}
