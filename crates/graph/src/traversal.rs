//! Serial reference BFS and result validation.
//!
//! Every parallel/vectorized BFS in the workspace (all four semirings ×
//! both representations, Trad-BFS, direction-optimized, SpMSpV, the SIMT
//! engine) is cross-validated against [`serial_bfs`], the textbook
//! queue-based traversal of §II-C1.

use std::collections::VecDeque;

use crate::{CsrGraph, VertexId};

/// Distance value for vertices not reachable from the root.
pub const UNREACHABLE: u32 = u32::MAX;

/// Output of a BFS run: hop distances and a parent tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// `dist[v]` is the hop distance from the root, or [`UNREACHABLE`].
    pub dist: Vec<u32>,
    /// `parent[v]` is `v`'s parent in the BFS tree; the root is its own
    /// parent; unreachable vertices have `parent[v] == UNREACHABLE`.
    pub parent: Vec<VertexId>,
}

impl BfsResult {
    /// Number of vertices reached (including the root).
    pub fn num_reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != UNREACHABLE).count()
    }

    /// Eccentricity of the root: the largest finite distance.
    pub fn max_distance(&self) -> u32 {
        self.dist.iter().copied().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
    }
}

/// Textbook serial BFS (§II-C1): frontier as a FIFO queue.
pub fn serial_bfs(g: &CsrGraph, root: VertexId) -> BfsResult {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range");
    let mut dist = vec![UNREACHABLE; n];
    let mut parent = vec![UNREACHABLE; n];
    let mut q = VecDeque::new();
    dist[root as usize] = 0;
    parent[root as usize] = root;
    q.push_back(root);
    while let Some(v) = q.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = dv + 1;
                parent[w as usize] = v;
                q.push_back(w);
            }
        }
    }
    BfsResult { dist, parent }
}

/// Validates a parent array against known-correct distances.
///
/// A parent array is valid iff for every reachable non-root vertex `v`,
/// `parent[v]` is a neighbor of `v` with `dist[parent[v]] == dist[v] - 1`;
/// the root is its own parent; unreachable vertices have no parent.
/// BFS parent trees are not unique, so all implementations are checked
/// with this predicate rather than by exact comparison.
pub fn validate_parents(
    g: &CsrGraph,
    root: VertexId,
    dist: &[u32],
    parent: &[VertexId],
) -> Result<(), String> {
    let n = g.num_vertices();
    if dist.len() != n || parent.len() != n {
        return Err("length mismatch".into());
    }
    for v in 0..n as VertexId {
        let (d, p) = (dist[v as usize], parent[v as usize]);
        if v == root {
            if d != 0 {
                return Err(format!("root distance {d} != 0"));
            }
            if p != root {
                return Err(format!("root parent {p} != root {root}"));
            }
            continue;
        }
        match d {
            UNREACHABLE => {
                if p != UNREACHABLE {
                    return Err(format!("unreachable vertex {v} has parent {p}"));
                }
            }
            _ => {
                if p == UNREACHABLE || p as usize >= n {
                    return Err(format!("reachable vertex {v} has invalid parent {p}"));
                }
                if !g.has_edge(p, v) {
                    return Err(format!("parent edge ({p},{v}) not in graph"));
                }
                if dist[p as usize] != d - 1 {
                    return Err(format!(
                        "parent {p} of {v} at distance {} != {}",
                        dist[p as usize],
                        d - 1
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        // 0-1-2-3 path plus 4 isolated, 5-6 separate component
        GraphBuilder::new(7).edges([(0, 1), (1, 2), (2, 3), (5, 6)]).build()
    }

    #[test]
    fn path_distances() {
        let g = sample();
        let r = serial_bfs(&g, 0);
        assert_eq!(r.dist[..4], [0, 1, 2, 3]);
        assert_eq!(r.dist[4], UNREACHABLE);
        assert_eq!(r.dist[5], UNREACHABLE);
        assert_eq!(r.max_distance(), 3);
        assert_eq!(r.num_reached(), 4);
    }

    #[test]
    fn parents_validate() {
        let g = sample();
        let r = serial_bfs(&g, 0);
        validate_parents(&g, 0, &r.dist, &r.parent).unwrap();
    }

    #[test]
    fn bad_parent_rejected() {
        let g = sample();
        let r = serial_bfs(&g, 0);
        let mut bad = r.parent.clone();
        bad[3] = 0; // 0 is not adjacent to 3
        assert!(validate_parents(&g, 0, &r.dist, &bad).is_err());
    }

    #[test]
    fn bad_distance_rejected() {
        let g = sample();
        let r = serial_bfs(&g, 0);
        let mut bad = r.parent.clone();
        bad[2] = 3; // neighbor, but dist 3 = 3 != dist 2 - 1
        assert!(validate_parents(&g, 0, &r.dist, &bad).is_err());
    }

    #[test]
    fn single_vertex() {
        let g = GraphBuilder::new(1).build();
        let r = serial_bfs(&g, 0);
        assert_eq!(r.dist, vec![0]);
        assert_eq!(r.parent, vec![0]);
        validate_parents(&g, 0, &r.dist, &r.parent).unwrap();
    }

    #[test]
    fn other_component_root() {
        let g = sample();
        let r = serial_bfs(&g, 5);
        assert_eq!(r.dist[6], 1);
        assert_eq!(r.dist[0], UNREACHABLE);
        validate_parents(&g, 5, &r.dist, &r.parent).unwrap();
    }
}
