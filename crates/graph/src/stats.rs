//! Graph statistics: degree distribution and diameter estimation.
//!
//! Reproduces the columns of the paper's Table IV (n, m, average degree
//! ρ̄, diameter D) for both generated and stand-in graphs. The diameter is
//! estimated with the standard iterated double-sweep heuristic (exact on
//! trees, a lower bound in general) because exact diameter computation is
//! O(nm); the paper likewise reports effective diameters for its inputs.

use rayon::prelude::*;

use crate::traversal::{serial_bfs, UNREACHABLE};
use crate::{CsrGraph, VertexId};

/// Summary statistics for one graph (Table IV row).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Average degree ρ̄ = 2m / n.
    pub avg_degree: f64,
    /// Maximum degree ρ̂ (the `ρ⋀` of the work bounds in §III-A).
    pub max_degree: usize,
    /// Estimated diameter (lower bound from iterated double sweeps,
    /// restricted to the component of the sweep start).
    pub diameter_lb: u32,
    /// Number of vertices in the largest connected component found.
    pub largest_component: usize,
}

impl GraphStats {
    /// Computes statistics for `g`. `sweeps` controls how many double-sweep
    /// iterations refine the diameter estimate (2–4 is plenty).
    pub fn compute(g: &CsrGraph, sweeps: usize) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let max_degree = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap_or(0);
        let avg_degree = if n == 0 { 0.0 } else { 2.0 * m as f64 / n as f64 };
        let (diameter_lb, largest_component) =
            if n == 0 { (0, 0) } else { estimate_diameter(g, sweeps) };
        Self { n, m, avg_degree, max_degree, diameter_lb, largest_component }
    }

    /// Degree histogram: `hist[d]` = number of vertices with degree `d`.
    pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
        let n = g.num_vertices();
        let maxd = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap_or(0);
        let mut hist = vec![0usize; maxd + 1];
        for v in 0..n as VertexId {
            hist[g.degree(v)] += 1;
        }
        hist
    }
}

/// Iterated double sweep: BFS from a start vertex, then repeatedly BFS
/// from the farthest vertex found. Returns (diameter lower bound, size of
/// the start vertex's component).
fn estimate_diameter(g: &CsrGraph, sweeps: usize) -> (u32, usize) {
    // Start from the max-degree vertex of the (likely) giant component.
    let start = (0..g.num_vertices() as VertexId).max_by_key(|&v| g.degree(v)).unwrap_or(0);
    let mut cur = start;
    let mut best = 0u32;
    let mut comp = 1usize;
    for _ in 0..sweeps.max(1) {
        let r = serial_bfs(g, cur);
        comp = r.num_reached();
        let ecc = r.max_distance();
        if ecc <= best {
            break;
        }
        best = ecc;
        cur = r
            .dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != UNREACHABLE)
            .max_by_key(|(_, &d)| d)
            .map(|(v, _)| v as VertexId)
            .unwrap_or(cur);
    }
    (best, comp)
}

/// Picks `count` BFS roots with non-zero degree, deterministically spread
/// over the vertex range — the Graph500 convention of sampling search keys
/// (used by every benchmark harness in this workspace).
pub fn sample_roots(g: &CsrGraph, count: usize) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut roots = Vec::with_capacity(count);
    let mut v = 0usize;
    // Golden-ratio stride gives a deterministic low-discrepancy sequence.
    let stride = ((n as f64 * 0.618_033_988_749_894_9) as usize).max(1);
    let mut guard = 0usize;
    while roots.len() < count && guard < 4 * n + count {
        if g.degree(v as VertexId) > 0 && !roots.contains(&(v as VertexId)) {
            roots.push(v as VertexId);
        }
        v = (v + stride) % n;
        guard += 1;
    }
    if roots.is_empty() {
        roots.push(0);
    }
    roots
}

/// Counts connected components in parallel-friendly label-propagation
/// style (sequential union-find; used by tests and stand-in validation).
pub fn connected_components(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for (u, v) in g.edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }
    (0..n as u32)
        .into_par_iter()
        .filter(|&v| {
            // roots only; path-compressed parent may need one extra hop
            let mut x = v;
            loop {
                let p = parent[x as usize];
                if p == x {
                    return x == v;
                }
                x = p;
            }
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn path_stats() {
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build();
        let s = GraphStats::compute(&g, 4);
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 4);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.diameter_lb, 4);
        assert_eq!(s.largest_component, 5);
    }

    #[test]
    fn star_stats() {
        let g = GraphBuilder::new(6).edges((1..6).map(|v| (0, v))).build();
        let s = GraphStats::compute(&g, 2);
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.diameter_lb, 2);
        assert!((s.avg_degree - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2)]).build();
        let h = GraphStats::degree_histogram(&g);
        assert_eq!(h, vec![1, 2, 1]); // one deg-0, two deg-1, one deg-2
    }

    #[test]
    fn components() {
        let g = GraphBuilder::new(6).edges([(0, 1), (2, 3)]).build();
        assert_eq!(connected_components(&g), 4); // {0,1},{2,3},{4},{5}
    }

    #[test]
    fn sample_roots_nonzero_degree() {
        let g = GraphBuilder::new(100).edges([(0, 1), (50, 51), (98, 99)]).build();
        let roots = sample_roots(&g, 4);
        assert!(!roots.is_empty());
        for r in roots {
            assert!(g.degree(r) > 0);
        }
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(0).build();
        let s = GraphStats::compute(&g, 2);
        assert_eq!(s.n, 0);
        assert_eq!(s.diameter_lb, 0);
    }
}
