//! Weighted undirected graphs.
//!
//! SlimSell's storage trick — deriving `val` from `col` — only works for
//! *unweighted* graphs (§III-B). Weighted graphs are where Sell-C-σ's
//! explicit `val` array earns its keep, so the workspace carries a
//! weighted substrate to demonstrate that boundary (see
//! `slimsell_core::sssp`).

use crate::{CsrGraph, VertexId};

/// An undirected graph with non-negative `f32` edge weights, in CSR form
/// parallel to [`CsrGraph`].
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedCsrGraph {
    structure: CsrGraph,
    /// Weight of each stored arc, aligned with the structure's `col`.
    weights: Vec<f32>,
}

impl WeightedCsrGraph {
    /// Builds from weighted edge triples; duplicates keep the *minimum*
    /// weight, self loops are dropped, weights must be non-negative and
    /// finite.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId, f32)>,
    ) -> Self {
        let mut map: std::collections::BTreeMap<(VertexId, VertexId), f32> = Default::default();
        for (u, v, w) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range");
            assert!(w >= 0.0 && w.is_finite(), "weight {w} must be non-negative and finite");
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            map.entry(key).and_modify(|x| *x = x.min(w)).or_insert(w);
        }
        let mut b = crate::GraphBuilder::with_capacity(n, map.len());
        for &(u, v) in map.keys() {
            b.edge(u, v);
        }
        let structure = b.build();
        // Align weights with the CSR arc order (rows are sorted).
        let mut weights = vec![0.0f32; structure.num_arcs()];
        for v in 0..n as VertexId {
            let lo = structure.row_ptr()[v as usize] as usize;
            for (i, &w) in structure.neighbors(v).iter().enumerate() {
                let key = if v < w { (v, w) } else { (w, v) };
                weights[lo + i] = map[&key];
            }
        }
        Self { structure, weights }
    }

    /// The unweighted structure.
    pub fn structure(&self) -> &CsrGraph {
        &self.structure
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.structure.num_vertices()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.structure.num_edges()
    }

    /// Weighted neighbors of `v`: `(neighbor, weight)` pairs.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        let lo = self.structure.row_ptr()[v as usize] as usize;
        self.structure.neighbors(v).iter().enumerate().map(move |(i, &w)| (w, self.weights[lo + i]))
    }

    /// Weight of the edge `{u, v}`, if present.
    pub fn weight(&self, u: VertexId, v: VertexId) -> Option<f32> {
        let lo = self.structure.row_ptr()[u as usize] as usize;
        self.structure.neighbors(u).binary_search(&v).ok().map(|i| self.weights[lo + i])
    }
}

/// Deterministic weighted twin of an unweighted graph: same edges, with
/// a positive weight in `[0.1, 4.06]` derived purely from the edge's
/// endpoints. Any caller (benches, tests) building a weighted workload
/// from the same unweighted graph gets the *same* weighted graph, on
/// any machine at any thread count.
pub fn synthetic_weighted_twin(g: &CsrGraph) -> WeightedCsrGraph {
    let edges =
        g.edges().map(|(u, v)| (u, v, 0.1 + ((u as u64 * 31 + v as u64 * 17) % 100) as f32 / 25.0));
    WeightedCsrGraph::from_edges(g.num_vertices(), edges)
}

/// Dijkstra's algorithm — the serial reference for weighted SSSP.
pub fn dijkstra(g: &WeightedCsrGraph, root: VertexId) -> Vec<f32> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f32, VertexId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on distance.
            other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
        }
    }

    let n = g.num_vertices();
    assert!((root as usize) < n);
    let mut dist = vec![f32::INFINITY; n];
    dist[root as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Entry(0.0, root));
    while let Some(Entry(d, v)) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (w, wt) in g.neighbors(v) {
            let nd = d + wt;
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Entry(nd, w));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedCsrGraph {
        WeightedCsrGraph::from_edges(
            5,
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0), (2, 3, 1.0), (0, 4, 10.0), (3, 4, 1.0)],
        )
    }

    #[test]
    fn weights_aligned_with_structure() {
        let g = sample();
        assert_eq!(g.weight(0, 1), Some(1.0));
        assert_eq!(g.weight(1, 0), Some(1.0));
        assert_eq!(g.weight(0, 3), None);
    }

    #[test]
    fn duplicate_keeps_min_weight() {
        let g = WeightedCsrGraph::from_edges(2, [(0, 1, 5.0), (1, 0, 2.0), (0, 1, 7.0)]);
        assert_eq!(g.weight(0, 1), Some(2.0));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn dijkstra_shortest_paths() {
        let g = sample();
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn dijkstra_unreachable() {
        let g = WeightedCsrGraph::from_edges(3, [(0, 1, 1.0)]);
        let d = dijkstra(&g, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        WeightedCsrGraph::from_edges(2, [(0, 1, -1.0)]);
    }
}
