//! Subgraph extraction: induced subgraphs and the largest connected
//! component.
//!
//! BFS benchmarks conventionally run inside the giant component
//! (Graph500 samples search keys there); road-network stand-ins also
//! need component extraction before diameter measurements.

use crate::traversal::serial_bfs;
use crate::{CsrGraph, GraphBuilder, VertexId, UNREACHABLE};

/// The induced subgraph on `vertices` (deduplicated), plus the mapping
/// from new ids to the original ids.
pub fn induced_subgraph(g: &CsrGraph, vertices: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
    let mut keep: Vec<VertexId> = vertices.to_vec();
    keep.sort_unstable();
    keep.dedup();
    let mut old_to_new = vec![VertexId::MAX; g.num_vertices()];
    for (new, &old) in keep.iter().enumerate() {
        assert!((old as usize) < g.num_vertices(), "vertex {old} out of range");
        old_to_new[old as usize] = new as VertexId;
    }
    let mut b = GraphBuilder::new(keep.len());
    for &old in &keep {
        let u = old_to_new[old as usize];
        for &w in g.neighbors(old) {
            let v = old_to_new[w as usize];
            if v != VertexId::MAX && u < v {
                b.edge(u, v);
            }
        }
    }
    (b.build(), keep)
}

/// Extracts the largest connected component (by vertex count). Returns
/// the component as a graph plus the new→old id mapping.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let n = g.num_vertices();
    if n == 0 {
        return (CsrGraph::empty(0), Vec::new());
    }
    let mut component = vec![u32::MAX; n];
    let mut sizes: Vec<usize> = Vec::new();
    for v in 0..n as VertexId {
        if component[v as usize] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let r = serial_bfs(g, v);
        let mut size = 0;
        for (w, &d) in r.dist.iter().enumerate() {
            if d != UNREACHABLE {
                component[w] = id;
                size += 1;
            }
        }
        sizes.push(size);
    }
    let best = (0..sizes.len()).max_by_key(|&i| sizes[i]).unwrap() as u32;
    let vertices: Vec<VertexId> =
        (0..n as VertexId).filter(|&v| component[v as usize] == best).collect();
    induced_subgraph(g, &vertices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_components() -> CsrGraph {
        GraphBuilder::new(8).edges([(0, 1), (1, 2), (2, 3), (5, 6)]).build()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = two_components();
        let (sub, map) = induced_subgraph(&g, &[1, 2, 5, 6]);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_edges(), 2); // (1,2) and (5,6)
        assert_eq!(map, vec![1, 2, 5, 6]);
        assert!(sub.has_edge(0, 1)); // 1-2 renamed
        assert!(sub.has_edge(2, 3)); // 5-6 renamed
    }

    #[test]
    fn induced_dedups_input() {
        let g = two_components();
        let (sub, map) = induced_subgraph(&g, &[2, 2, 1, 1]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(map, vec![1, 2]);
    }

    #[test]
    fn largest_component_extracted() {
        let g = two_components();
        let (lc, map) = largest_component(&g);
        assert_eq!(lc.num_vertices(), 4);
        assert_eq!(map, vec![0, 1, 2, 3]);
        assert_eq!(lc.num_edges(), 3);
        lc.validate();
    }

    #[test]
    fn singleton_components() {
        let g = GraphBuilder::new(3).build();
        let (lc, map) = largest_component(&g);
        assert_eq!(lc.num_vertices(), 1);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn empty_graph() {
        let (lc, map) = largest_component(&CsrGraph::empty(0));
        assert_eq!(lc.num_vertices(), 0);
        assert!(map.is_empty());
    }
}
