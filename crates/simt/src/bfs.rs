//! SIMT BFS driver: functional execution + cycle accounting.
//!
//! Runs the same per-chunk math as `slimsell_core` (literally calling
//! [`slimsell_core::chunk_mv`] and the semiring's `post_chunk`), but
//! serially, while charging each chunk/tile task to the cost model and
//! scheduling tasks onto warp slots for a per-iteration makespan. The
//! functional output is therefore identical to the CPU engine; only the
//! simulated clock differs — which is all Figs. 6 and 10 need.

use slimsell_core::chunk_mv;
use slimsell_core::matrix::ChunkMatrix;
use slimsell_core::semiring::{Semiring, StateVecs};
use slimsell_graph::{VertexId, UNREACHABLE};

use crate::cost::CostModel;
use crate::machine::{imbalance, makespan, SimtConfig};

/// SIMT run options (the GPU-side SlimWork/SlimChunk switches).
#[derive(Clone, Copy, Debug)]
pub struct SimtOptions {
    /// Enable SlimWork chunk skipping.
    pub slimwork: bool,
    /// SlimChunk tile width in column steps (`None` = whole chunks).
    pub slimchunk: Option<usize>,
}

impl Default for SimtOptions {
    fn default() -> Self {
        Self { slimwork: true, slimchunk: None }
    }
}

/// Simulated statistics of one BFS iteration.
#[derive(Clone, Copy, Debug)]
pub struct SimtIter {
    /// Iteration makespan (simulated cycles until the last warp drains).
    pub cycles: u64,
    /// Total busy cycles across all warp tasks (work, not wall time).
    pub busy_cycles: u64,
    /// max/mean task duration — the load-imbalance gauge.
    pub imbalance: f64,
    /// Chunks that executed the MV.
    pub chunks_processed: usize,
    /// Chunks skipped by SlimWork.
    pub chunks_skipped: usize,
    /// SIMD (lane) efficiency of the processed chunks: fraction of
    /// touched cells that are real edges rather than padding. This is
    /// the utilization measure σ-sorting improves (cf. Cheng et al.
    /// \[11\], "Understanding the SIMD Efficiency of Graph Traversal on
    /// GPU", cited in §I/§V); 1.0 when nothing was processed.
    pub simd_efficiency: f64,
    /// Bytes moved through the simulated memory system this iteration
    /// (col stream + gathers + `val` stream for Sell-C-σ + result
    /// stores). SlimSell's removal of `val` shows up directly here —
    /// the "reduces data transfer" claim of §III-B, measurable.
    pub bytes_transferred: u64,
}

/// Full report of a simulated run.
#[derive(Clone, Debug)]
pub struct SimtBfsReport {
    /// Hop distances in original ids.
    pub dist: Vec<u32>,
    /// Parents if the semiring computes them.
    pub parent: Option<Vec<VertexId>>,
    /// Per-iteration simulated statistics.
    pub iters: Vec<SimtIter>,
}

impl SimtBfsReport {
    /// Total simulated cycles of the run.
    pub fn total_cycles(&self) -> u64 {
        self.iters.iter().map(|i| i.cycles).sum()
    }

    /// Per-iteration cycle series (figure y-axis).
    pub fn cycle_series(&self) -> Vec<u64> {
        self.iters.iter().map(|i| i.cycles).collect()
    }
}

/// Runs BFS on the simulated SIMT machine.
///
/// # Panics
/// Panics if `C != cfg.warp_width` or `root` is out of range.
pub fn run_simt_bfs<M, S, const C: usize>(
    matrix: &M,
    root: VertexId,
    cfg: &SimtConfig,
    opts: &SimtOptions,
) -> SimtBfsReport
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    assert_eq!(
        C, cfg.warp_width,
        "chunk height C={C} must equal the warp width {}",
        cfg.warp_width
    );
    let s = matrix.structure();
    let n = s.n();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let root_p = s.perm().to_new(root) as usize;
    let np = s.n_padded();
    let nc = s.num_chunks();
    let rep = matrix.representation();
    let cost: &CostModel = &cfg.cost;

    let mut cur = StateVecs::new(np);
    let mut nxt = StateVecs::new(np);
    let mut d = vec![0.0f32; np];
    S::init(&mut cur, &mut d, n, root_p);

    // Per-chunk edge (non-padding) cell counts for the lane-efficiency
    // metric — the same series the CPU engines' `active_cells` counter
    // draws from, so measured and simulated utilization agree exactly.
    let chunk_arcs: &[u64] = s.chunk_arcs();

    let mut iters = Vec::new();
    let mut depth = 0u32;
    loop {
        depth += 1;
        let mut durations: Vec<u64> = Vec::with_capacity(nc);
        let mut changed = false;
        let mut skipped = 0usize;
        let mut active_cells = 0u64;
        let mut touched_cells = 0u64;
        let mut bytes = 0u64;
        // Per column step: the col vector load, the gather, and — for
        // Sell-C-σ only — the val vector load; 4 bytes per lane each.
        let streams_per_step: u64 = match rep {
            slimsell_core::matrix::Representation::SellCSigma => 3,
            slimsell_core::matrix::Representation::SlimSell => 2,
        };
        for (i, &arcs) in chunk_arcs.iter().enumerate() {
            let base = i * C;
            if opts.slimwork && S::should_skip(&cur, base..base + C) {
                let (nx, ng, np_) = three_chunks(&mut nxt, base, C);
                S::copy_forward(&cur, base, nx, ng, np_);
                durations.push(cost.skipped_chunk());
                skipped += 1;
                continue;
            }
            let cl = s.cl()[i] as u64;
            active_cells += arcs;
            touched_cells += cl * C as u64;
            bytes += cl * C as u64 * 4 * streams_per_step + 2 * C as u64 * 4;
            match opts.slimchunk {
                None => durations.push(cost.chunk_task(cl, rep, S::NAME)),
                Some(tile_w) => {
                    // Tiles become independent warp tasks; the chunk's
                    // post-processing (+ one ALU merge per tile) rides on
                    // the last tile.
                    let tile_w = tile_w.max(1) as u64;
                    let mut remaining = cl;
                    let tiles = cl.div_ceil(tile_w).max(1);
                    for t in 0..tiles {
                        let cols = remaining.min(tile_w);
                        remaining -= cols;
                        let mut dur = cost.launch + cols * cost.column_step(rep);
                        if t == tiles - 1 {
                            dur += cost.post_chunk(S::NAME) + tiles * cost.alu;
                        }
                        durations.push(dur);
                    }
                }
            }
            // Functional execution (identical math to the CPU engine).
            let acc = chunk_mv::<M, S, C>(matrix, &cur.x, i);
            let (nx, ng, np_) = three_chunks(&mut nxt, base, C);
            let dd = &mut d[base..base + C];
            changed |= S::post_chunk(acc, &cur, base, nx, ng, np_, dd, depth as f32);
        }
        iters.push(SimtIter {
            cycles: makespan(&durations, cfg.warp_slots),
            busy_cycles: durations.iter().sum(),
            imbalance: imbalance(&durations),
            chunks_processed: nc - skipped,
            chunks_skipped: skipped,
            simd_efficiency: if touched_cells == 0 {
                1.0
            } else {
                active_cells as f64 / touched_cells as f64
            },
            bytes_transferred: bytes,
        });
        std::mem::swap(&mut cur, &mut nxt);
        if !changed || depth as usize > n {
            break;
        }
    }

    let perm = s.perm();
    let dist_f = S::distances(&cur, &d);
    let dist: Vec<u32> = (0..n)
        .map(|old| {
            let v = dist_f[perm.to_new(old as VertexId) as usize];
            if v.is_finite() {
                v as u32
            } else {
                UNREACHABLE
            }
        })
        .collect();
    let parent = S::parents(&cur).map(|p| {
        (0..n)
            .map(|old| {
                let pv = p[perm.to_new(old as VertexId) as usize];
                if pv == 0.0 {
                    UNREACHABLE
                } else {
                    perm.to_old(pv as VertexId - 1)
                }
            })
            .collect()
    });
    SimtBfsReport { dist, parent, iters }
}

/// Disjoint mutable chunk views over the three state vectors (distinct
/// struct fields, so plain destructuring borrows suffice).
fn three_chunks(v: &mut StateVecs, base: usize, c: usize) -> (&mut [f32], &mut [f32], &mut [f32]) {
    let StateVecs { x, g, p } = v;
    (&mut x[base..base + c], &mut g[base..base + c], &mut p[base..base + c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_core::matrix::{SellCSigma, SlimSellMatrix};
    use slimsell_core::semiring::{BooleanSemiring, SelMaxSemiring, TropicalSemiring};
    use slimsell_core::{BfsEngine, BfsOptions};
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{serial_bfs, validate_parents};

    fn cfg() -> SimtConfig {
        SimtConfig::default()
    }

    #[test]
    fn output_matches_reference_and_cpu_engine() {
        let g = kronecker(10, 8.0, KroneckerParams::GRAPH500, 3);
        let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let slim = SlimSellMatrix::<32>::build(&g, g.num_vertices());
        let reference = serial_bfs(&g, root);
        let simt =
            run_simt_bfs::<_, TropicalSemiring, 32>(&slim, root, &cfg(), &SimtOptions::default());
        assert_eq!(simt.dist, reference.dist);
        let cpu = BfsEngine::run::<_, TropicalSemiring, 32>(&slim, root, &BfsOptions::default());
        assert_eq!(simt.dist, cpu.dist);
    }

    #[test]
    fn selmax_parents_valid_on_simt() {
        let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 8);
        let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let slim = SlimSellMatrix::<32>::build(&g, 64);
        let r = run_simt_bfs::<_, SelMaxSemiring, 32>(&slim, root, &cfg(), &SimtOptions::default());
        assert_eq!(r.dist, serial_bfs(&g, root).dist);
        validate_parents(&g, root, &r.dist, &r.parent.unwrap()).unwrap();
    }

    #[test]
    fn slimchunk_reduces_makespan_on_sorted_powerlaw() {
        // Full sorting packs the hubs into the first chunks: classic
        // imbalance. Tiling must cut the first iterations' makespan.
        let g = kronecker(11, 16.0, KroneckerParams::GRAPH500, 1);
        let root = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap();
        let slim = SlimSellMatrix::<32>::build(&g, g.num_vertices());
        let plain = run_simt_bfs::<_, TropicalSemiring, 32>(
            &slim,
            root,
            &cfg(),
            &SimtOptions { slimchunk: None, slimwork: false },
        );
        let tiled = run_simt_bfs::<_, TropicalSemiring, 32>(
            &slim,
            root,
            &cfg(),
            &SimtOptions { slimchunk: Some(8), slimwork: false },
        );
        assert_eq!(plain.dist, tiled.dist);
        let p: u64 = plain.iters.iter().take(3).map(|i| i.cycles).sum();
        let t: u64 = tiled.iters.iter().take(3).map(|i| i.cycles).sum();
        assert!(t < p, "tiled early iterations {t} !< plain {p}");
        assert!(tiled.iters[1].imbalance <= plain.iters[1].imbalance);
    }

    #[test]
    fn slimsell_saves_cycles_over_sellcs() {
        let g = kronecker(10, 8.0, KroneckerParams::GRAPH500, 5);
        let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let n = g.num_vertices();
        let slim = SlimSellMatrix::<32>::build(&g, n);
        let sell = SellCSigma::<32>::build(&g, n, TropicalSemiring::PAD);
        let a =
            run_simt_bfs::<_, TropicalSemiring, 32>(&slim, root, &cfg(), &SimtOptions::default());
        let b =
            run_simt_bfs::<_, TropicalSemiring, 32>(&sell, root, &cfg(), &SimtOptions::default());
        assert_eq!(a.dist, b.dist);
        assert!(
            a.total_cycles() <= b.total_cycles(),
            "slim {} > sell {}",
            a.total_cycles(),
            b.total_cycles()
        );
    }

    #[test]
    fn slimwork_drains_late_iterations() {
        let g = kronecker(10, 16.0, KroneckerParams::GRAPH500, 2);
        let root = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap();
        let slim = SlimSellMatrix::<32>::build(&g, g.num_vertices());
        let with = run_simt_bfs::<_, BooleanSemiring, 32>(
            &slim,
            root,
            &cfg(),
            &SimtOptions { slimwork: true, slimchunk: None },
        );
        let without = run_simt_bfs::<_, BooleanSemiring, 32>(
            &slim,
            root,
            &cfg(),
            &SimtOptions { slimwork: false, slimchunk: None },
        );
        assert_eq!(with.dist, without.dist);
        let last_with = with.iters.last().unwrap();
        let last_without = without.iters.last().unwrap();
        assert!(last_with.cycles < last_without.cycles, "SlimWork last iteration not cheaper");
        assert!(with.total_cycles() < without.total_cycles());
    }

    #[test]
    fn slimsell_moves_one_third_fewer_bytes() {
        // §III-B: "SlimSell reduces data transfer by removing loads of
        // val" — of the three per-step streams (col, gather, val), one
        // disappears.
        let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 12);
        let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
        let n = g.num_vertices();
        let slim = SlimSellMatrix::<32>::build(&g, n);
        let sell = SellCSigma::<32>::build(&g, n, TropicalSemiring::PAD);
        let opts = SimtOptions { slimwork: false, slimchunk: None };
        let a = run_simt_bfs::<_, TropicalSemiring, 32>(&slim, root, &cfg(), &opts);
        let b = run_simt_bfs::<_, TropicalSemiring, 32>(&sell, root, &cfg(), &opts);
        let ba: u64 = a.iters.iter().map(|i| i.bytes_transferred).sum();
        let bb: u64 = b.iters.iter().map(|i| i.bytes_transferred).sum();
        let ratio = ba as f64 / bb as f64;
        assert!((0.6..0.75).contains(&ratio), "byte ratio {ratio} (expected ≈ 2/3)");
    }

    #[test]
    fn sorting_improves_simd_efficiency() {
        // σ-sorting packs similar-length rows together, cutting padding
        // and therefore raising the lane-utilization metric.
        let g = kronecker(10, 16.0, KroneckerParams::GRAPH500, 4);
        let root = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap();
        let eff = |sigma: usize| {
            let m = SlimSellMatrix::<32>::build(&g, sigma);
            let r = run_simt_bfs::<_, TropicalSemiring, 32>(
                &m,
                root,
                &cfg(),
                &SimtOptions { slimwork: false, slimchunk: None },
            );
            r.iters[0].simd_efficiency
        };
        let unsorted = eff(1);
        let sorted = eff(g.num_vertices());
        assert!(sorted > unsorted, "sorted eff {sorted} !> unsorted {unsorted}");
        assert!((0.0..=1.0).contains(&sorted));
    }

    #[test]
    #[should_panic(expected = "warp width")]
    fn wrong_width_rejected() {
        let g = kronecker(6, 4.0, KroneckerParams::GRAPH500, 0);
        let slim = SlimSellMatrix::<8>::build(&g, 8);
        run_simt_bfs::<_, TropicalSemiring, 8>(&slim, 0, &cfg(), &SimtOptions::default());
    }
}
