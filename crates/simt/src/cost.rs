//! Warp-level cost model.
//!
//! Costs are in abstract cycles per *warp-wide* operation. The defaults
//! are calibrated to the relative latencies that matter for the paper's
//! findings (gathers ≫ coalesced loads ≳ ALU), not to any particular GPU
//! part — the experiments read *shapes* (ratios, crossovers), not
//! absolute times, exactly as DESIGN.md's substitution note states.

use slimsell_core::counters::IterStats;
use slimsell_core::matrix::Representation;

/// Cycle costs for warp-wide operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// One vector ALU op (min/max/add/mul/and/or/cmp/blend).
    pub alu: u64,
    /// One coalesced vector load (col/val streams).
    pub load: u64,
    /// One coalesced vector store.
    pub store: u64,
    /// One gather (`f[col[...]]`): uncoalesced, the expensive one.
    pub gather: u64,
    /// SlimWork skip-criterion check per chunk.
    pub skip_check: u64,
    /// Fixed per-task launch/drain overhead.
    pub launch: u64,
}

impl CostModel {
    /// Default model (Tesla-class ratios: gather ≈ 4× coalesced load,
    /// load ≈ 2× ALU).
    pub const DEFAULT: Self =
        Self { alu: 1, load: 2, store: 2, gather: 8, skip_check: 2, launch: 4 };

    /// Cycles of one inner-loop column step (Listing 5 lines 6–21 /
    /// Listing 6 lines 7–17) for a representation/semiring combination.
    ///
    /// * both: load `col`, gather `rhs`, 2 ALU for `op1(op2(...))`;
    /// * Sell-C-σ: + 1 load for `val`;
    /// * SlimSell: + 2 ALU (compare + blend) to derive `val` — the
    ///   "more computation is required (lines 10–12)" of §III-B, traded
    ///   against the removed load.
    pub fn column_step(&self, rep: Representation) -> u64 {
        let base = self.load + self.gather + 2 * self.alu;
        match rep {
            Representation::SellCSigma => base + self.load,
            Representation::SlimSell => base + 2 * self.alu,
        }
    }

    /// Cycles of the per-chunk post-processing (Listing 5 lines 22–45).
    /// Semirings differ slightly (§IV-A2: tropical has none, boolean/real
    /// ≈ six instructions + two stores, sel-max ≈ four + two stores);
    /// modeled by instruction count.
    pub fn post_chunk(&self, semiring: &str) -> u64 {
        match semiring {
            "tropical" => self.store,
            "boolean" | "real" => 6 * self.alu + 2 * self.store,
            "sel-max" => 4 * self.alu + 2 * self.store,
            _ => 6 * self.alu + 2 * self.store,
        }
    }

    /// Cycles charged to a full chunk task of `cl` column steps.
    pub fn chunk_task(&self, cl: u64, rep: Representation, semiring: &str) -> u64 {
        self.launch + cl * self.column_step(rep) + self.post_chunk(semiring)
    }

    /// Cycles charged to a skipped chunk (criterion check + state copy).
    pub fn skipped_chunk(&self) -> u64 {
        self.skip_check + self.load + self.store
    }

    /// Busy cycles this model predicts for a *measured* CPU iteration:
    /// the launch and post-processing of every processed chunk, the
    /// column steps actually executed, and the skip path of every
    /// SlimWork-skipped chunk. For an untiled full sweep this equals
    /// [`run_simt_bfs`](crate::run_simt_bfs)'s per-iteration
    /// `busy_cycles` exactly — the bridge that lets the CPU engine's
    /// hardware counters validate the simulator (and vice versa).
    pub fn predicted_busy_cycles(
        &self,
        it: &IterStats,
        rep: Representation,
        semiring: &str,
    ) -> u64 {
        (self.launch + self.post_chunk(semiring)) * it.chunks_processed as u64
            + it.col_steps * self.column_step(rep)
            + self.skipped_chunk() * it.chunks_skipped as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slimsell_step_cheaper_when_alu_cheap() {
        // With the default ratios (2 ALU < 1 load) SlimSell's derived
        // vals beat Sell-C-σ's val load — the §IV-A3 result.
        let c = CostModel::DEFAULT;
        assert!(
            c.column_step(Representation::SlimSell) <= c.column_step(Representation::SellCSigma)
        );
    }

    #[test]
    fn tropical_post_is_cheapest() {
        let c = CostModel::DEFAULT;
        assert!(c.post_chunk("tropical") < c.post_chunk("boolean"));
        assert!(c.post_chunk("sel-max") < c.post_chunk("boolean"));
    }

    #[test]
    fn chunk_task_scales_with_cl() {
        let c = CostModel::DEFAULT;
        let t1 = c.chunk_task(1, Representation::SlimSell, "tropical");
        let t10 = c.chunk_task(10, Representation::SlimSell, "tropical");
        assert_eq!(t10 - t1, 9 * c.column_step(Representation::SlimSell));
    }

    #[test]
    fn skip_is_cheaper_than_any_work() {
        let c = CostModel::DEFAULT;
        assert!(c.skipped_chunk() < c.chunk_task(1, Representation::SlimSell, "tropical"));
    }
}
