//! The simulated machine: warp slots and the makespan scheduler.
//!
//! A GPU executes many warps concurrently (SMs × resident warps); an
//! iteration finishes when its last warp does. We model this as greedy
//! list scheduling: tasks are dispatched in order to the earliest-free
//! slot, and the iteration's simulated time is the makespan. Greedy
//! list scheduling is within 2× of optimal (Graham), and — more
//! importantly here — it exposes exactly the pathology the paper
//! describes for σ-sorted graphs on GPUs: one chunk with all the
//! high-degree rows keeps one slot busy long after the others drained.

use crate::cost::CostModel;

/// Simulated machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimtConfig {
    /// Warp width (= chunk height C); 32 on all NVIDIA parts.
    pub warp_width: usize,
    /// Concurrently executing warp slots (SMs × warps per SM kept
    /// modest so laptop-scale graphs still show contention).
    pub warp_slots: usize,
    /// Cycle cost model.
    pub cost: CostModel,
}

impl Default for SimtConfig {
    fn default() -> Self {
        // 13 SMX × 4 resident warps ≈ a K80-ish occupancy picture.
        Self { warp_width: 32, warp_slots: 52, cost: CostModel::DEFAULT }
    }
}

/// Greedy list-scheduling makespan of `durations` over `slots` parallel
/// slots, dispatching in order to the earliest-free slot.
pub fn makespan(durations: &[u64], slots: usize) -> u64 {
    assert!(slots > 0, "need at least one slot");
    if durations.is_empty() {
        return 0;
    }
    // Binary min-heap over slot free times, std collections only.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<u64>> =
        (0..slots.min(durations.len())).map(|_| Reverse(0u64)).collect();
    let mut end = 0u64;
    for &d in durations {
        let Reverse(free) = heap.pop().expect("heap non-empty");
        let finish = free + d;
        end = end.max(finish);
        heap.push(Reverse(finish));
    }
    end
}

/// Load-imbalance measure of a task set: max duration / mean duration
/// (1.0 = perfectly balanced). The quantity SlimChunk improves.
pub fn imbalance(durations: &[u64]) -> f64 {
    if durations.is_empty() {
        return 1.0;
    }
    let max = *durations.iter().max().unwrap() as f64;
    let mean = durations.iter().sum::<u64>() as f64 / durations.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_is_sum() {
        assert_eq!(makespan(&[3, 5, 2], 1), 10);
    }

    #[test]
    fn enough_slots_is_max() {
        assert_eq!(makespan(&[3, 5, 2], 3), 5);
    }

    #[test]
    fn greedy_two_slots() {
        // Dispatch order: 4→s0, 3→s1, 3→s1(free@3)=6, 2→s0(free@4)=6.
        assert_eq!(makespan(&[4, 3, 3, 2], 2), 6);
    }

    #[test]
    fn dominant_task_dominates() {
        // One huge task bounds the makespan regardless of slots.
        assert_eq!(makespan(&[100, 1, 1, 1], 4), 100);
    }

    #[test]
    fn empty_tasks() {
        assert_eq!(makespan(&[], 8), 0);
    }

    #[test]
    fn imbalance_measures() {
        assert_eq!(imbalance(&[5, 5, 5]), 1.0);
        assert!(imbalance(&[100, 1, 1]) > 2.0);
        assert_eq!(imbalance(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        makespan(&[1], 0);
    }
}
