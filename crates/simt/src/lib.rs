//! Software SIMT engine: the GPU substitute of this reproduction.
//!
//! The paper evaluates SlimSell on NVIDIA Tesla GPUs (§IV-B), where a
//! warp of 32 SIMT lanes plays the role of the SIMD unit ("one warp
//! usually counts 32 cores, which constitutes the GPU 'SIMD width'",
//! §II-B) and each Sell chunk of height `C = 32` is processed by one
//! warp. No GPU is available here, so this crate simulates the execution
//! model the GPU results depend on:
//!
//! * **lock-step warps** — a warp's cost per inner-loop column step is
//!   charged for all 32 lanes regardless of padding (that is precisely
//!   why padding hurts and σ-sorting helps on GPUs);
//! * **finite parallelism** — a fixed number of concurrently resident
//!   warp slots (SMs × warps/SM); an iteration's simulated time is the
//!   *makespan* of scheduling all chunk tasks onto those slots, so one
//!   oversized chunk serializes the iteration — the load-imbalance
//!   phenomenon SlimChunk (§III-D) attacks;
//! * **memory-operation costs** — explicit per-load/gather/store charges
//!   so SlimSell's removal of the `val` stream shows up as saved cycles.
//!
//! Functional execution reuses `slimsell_core::chunk_mv` and the semiring
//! post-processing verbatim, so the simulator's BFS *output* is
//! bit-identical to the CPU engine's — the cost model only decides what
//! the simulated clock says. See DESIGN.md §3 for the substitution
//! rationale.

pub mod bfs;
pub mod cost;
pub mod machine;

pub use bfs::{run_simt_bfs, SimtBfsReport, SimtOptions};
pub use cost::CostModel;
pub use machine::{makespan, SimtConfig};
