//! Criterion end-to-end benchmarks, one group per paper experiment
//! (micro-scale; the `repro` binary prints the full tables/series).
//!
//! * `fig1_bfs_compare` — Trad-BFS vs BFS-SpMV (SlimSell) vs dir-opt.
//! * `fig5_sigma` — total BFS time at small/medium/full σ (tropical).
//! * `fig5d_slimwork` — SlimWork on vs off.
//! * `fig9_selmax_vs_trad` — sel-max SpMV vs Trad-BFS on a denser graph.
//! * `prep_build` — σ-sort + structure build time (§IV-D).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use slimsell_baseline::trad_bfs;
use slimsell_core::dirop::{run_diropt, DirOptOptions};
use slimsell_core::matrix::SlimSellMatrix;
use slimsell_core::{BfsEngine, BfsOptions, SelMaxSemiring, TropicalSemiring};
use slimsell_gen::kronecker::{kronecker, KroneckerParams};
use slimsell_graph::stats::sample_roots;

fn bench_fig1(c: &mut Criterion) {
    let g = kronecker(12, 16.0, KroneckerParams::GRAPH500, 42);
    let root = sample_roots(&g, 1)[0];
    let slim = SlimSellMatrix::<16>::build(&g, g.num_vertices());
    let mut group = c.benchmark_group("fig1_bfs_compare");
    group.sample_size(10);
    group.bench_function("trad_bfs", |b| b.iter(|| black_box(trad_bfs(&g, root))));
    group.bench_function("slimsell_spmv_tropical", |b| {
        b.iter(|| {
            black_box(BfsEngine::run::<_, TropicalSemiring, 16>(
                &slim,
                root,
                &BfsOptions::default(),
            ))
        })
    });
    group.bench_function("slimsell_diropt", |b| {
        b.iter(|| black_box(run_diropt(&slim, root, &DirOptOptions::default())))
    });
    group.finish();
}

fn bench_fig5_sigma(c: &mut Criterion) {
    let g = kronecker(12, 16.0, KroneckerParams::GRAPH500, 42);
    let n = g.num_vertices();
    let root = sample_roots(&g, 1)[0];
    let mut group = c.benchmark_group("fig5_sigma");
    group.sample_size(10);
    for sigma in [1usize, 64, n] {
        let slim = SlimSellMatrix::<8>::build(&g, sigma);
        group.bench_function(format!("tropical/sigma={sigma}"), |b| {
            b.iter(|| {
                black_box(BfsEngine::run::<_, TropicalSemiring, 8>(
                    &slim,
                    root,
                    &BfsOptions::default(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_fig5d_slimwork(c: &mut Criterion) {
    let g = kronecker(12, 16.0, KroneckerParams::GRAPH500, 42);
    let root = sample_roots(&g, 1)[0];
    let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let mut group = c.benchmark_group("fig5d_slimwork");
    group.sample_size(10);
    group.bench_function("with_slimwork", |b| {
        b.iter(|| {
            black_box(BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &BfsOptions::default()))
        })
    });
    group.bench_function("without_slimwork", |b| {
        b.iter(|| {
            black_box(BfsEngine::run::<_, TropicalSemiring, 8>(&slim, root, &BfsOptions::plain()))
        })
    });
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let g = kronecker(11, 64.0, KroneckerParams::GRAPH500, 42);
    let root = sample_roots(&g, 1)[0];
    let slim = SlimSellMatrix::<16>::build(&g, g.num_vertices());
    let mut group = c.benchmark_group("fig9_selmax_vs_trad");
    group.sample_size(10);
    group.bench_function("trad_bfs", |b| b.iter(|| black_box(trad_bfs(&g, root))));
    group.bench_function("slimsell_selmax", |b| {
        b.iter(|| {
            black_box(BfsEngine::run::<_, SelMaxSemiring, 16>(&slim, root, &BfsOptions::default()))
        })
    });
    group.finish();
}

fn bench_prep(c: &mut Criterion) {
    let g = kronecker(12, 16.0, KroneckerParams::GRAPH500, 42);
    let n = g.num_vertices();
    let mut group = c.benchmark_group("prep_build");
    group.sample_size(10);
    group.bench_function("build_sigma_1", |b| {
        b.iter(|| black_box(SlimSellMatrix::<8>::build(&g, 1)))
    });
    group.bench_function("build_sigma_n", |b| {
        b.iter(|| black_box(SlimSellMatrix::<8>::build(&g, n)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig5_sigma,
    bench_fig5d_slimwork,
    bench_fig9,
    bench_prep
);
criterion_main!(benches);
