//! Criterion micro-benchmarks of the SpMV kernels.
//!
//! Groups:
//! * `spmv_sweep_table5` — one full matrix sweep (all chunks) per
//!   representation × semiring at C = 8: the kernel-level version of
//!   Table V (SlimSell vs Sell-C-σ).
//! * `spmv_lane_width` — the same sweep at C ∈ {4, 8, 16, 32}: the
//!   architecture axis (CPU/KNL/GPU-warp widths).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use slimsell_core::chunk_mv;
use slimsell_core::matrix::{ChunkMatrix, SellCSigma, SlimSellMatrix};
use slimsell_core::semiring::{
    BooleanSemiring, RealSemiring, SelMaxSemiring, Semiring, TropicalSemiring,
};
use slimsell_gen::kronecker::{kronecker, KroneckerParams};
use slimsell_graph::CsrGraph;

fn graph() -> CsrGraph {
    kronecker(13, 16.0, KroneckerParams::GRAPH500, 42)
}

fn sweep<M: ChunkMatrix<C>, S: Semiring, const C: usize>(m: &M, x: &[f32]) -> f32 {
    let nc = m.structure().num_chunks();
    let mut acc = 0.0;
    for i in 0..nc {
        acc += chunk_mv::<M, S, C>(m, x, i).reduce_add();
    }
    acc
}

fn bench_table5(c: &mut Criterion) {
    let g = graph();
    let n = g.num_vertices();
    let mut group = c.benchmark_group("spmv_sweep_table5");
    group.sample_size(10);

    macro_rules! bench_sem {
        ($sem:ty, $name:literal) => {{
            let slim = SlimSellMatrix::<8>::build(&g, n);
            let sell = SellCSigma::<8>::build(&g, n, <$sem>::PAD);
            let x = vec![1.0f32; slim.structure().n_padded()];
            group.bench_function(concat!("slimsell/", $name), |b| {
                b.iter(|| black_box(sweep::<_, $sem, 8>(&slim, &x)))
            });
            group.bench_function(concat!("sellcs/", $name), |b| {
                b.iter(|| black_box(sweep::<_, $sem, 8>(&sell, &x)))
            });
        }};
    }
    bench_sem!(TropicalSemiring, "tropical");
    bench_sem!(BooleanSemiring, "boolean");
    bench_sem!(RealSemiring, "real");
    bench_sem!(SelMaxSemiring, "sel-max");
    group.finish();
}

fn bench_lane_width(c: &mut Criterion) {
    let g = graph();
    let n = g.num_vertices();
    let mut group = c.benchmark_group("spmv_lane_width");
    group.sample_size(10);
    macro_rules! bench_c {
        ($c:literal) => {{
            let slim = SlimSellMatrix::<$c>::build(&g, n);
            let x = vec![1.0f32; slim.structure().n_padded()];
            group.bench_function(concat!("slimsell_tropical/C=", stringify!($c)), |b| {
                b.iter(|| black_box(sweep::<_, TropicalSemiring, $c>(&slim, &x)))
            });
        }};
    }
    bench_c!(4);
    bench_c!(8);
    bench_c!(16);
    bench_c!(32);
    group.finish();
}

criterion_group!(benches, bench_table5, bench_lane_width);
criterion_main!(benches);
