//! Harness plumbing: argument parsing, timing, experiment context.
//!
//! Deliberately dependency-free (no clap): the `repro` binary takes
//! `--key value` pairs after the experiment name.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use slimsell_analysis::report::TextTable;

/// Parsed command-line arguments: one positional experiment name plus
/// `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The experiment name (first positional argument).
    pub experiment: String,
    opts: BTreeMap<String, String>,
}

impl Args {
    /// Parses from an iterator of arguments (excluding `argv[0]`).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut it = args.into_iter();
        let experiment = it.next().ok_or("missing experiment name")?;
        let mut opts = BTreeMap::new();
        while let Some(k) = it.next() {
            let key = k.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {k:?}"))?;
            let v = it.next().ok_or_else(|| format!("missing value for --{key}"))?;
            opts.insert(key.to_string(), v);
        }
        Ok(Self { experiment, opts })
    }

    /// Typed option lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.opts.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| panic!("bad value for --{key}: {v:?}")),
            None => default,
        }
    }

    /// String option lookup.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.opts.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Whether an option was explicitly provided.
    pub fn has(&self, key: &str) -> bool {
        self.opts.contains_key(key)
    }
}

/// Shared experiment context: default scales and result emission.
pub struct ExpContext {
    /// Parsed arguments.
    pub args: Args,
    /// Directory for CSV dumps (default `results/`).
    pub results_dir: PathBuf,
}

impl ExpContext {
    /// Builds a context from arguments.
    pub fn new(args: Args) -> Self {
        let results_dir = PathBuf::from(args.get_str("results-dir", "results"));
        Self { args, results_dir }
    }

    /// Default Kronecker scale (log2 n). The paper uses 2^20–2^28; the
    /// default 14 fits a 2-core CI host in seconds. Override with
    /// `--scale-log2`.
    pub fn scale_log2(&self) -> u32 {
        self.args.get("scale-log2", 14u32)
    }

    /// Default edges-per-vertex ρ (paper: 2^1…2^10).
    pub fn rho(&self) -> f64 {
        self.args.get("rho", 16.0f64)
    }

    /// RNG seed.
    pub fn seed(&self) -> u64 {
        self.args.get("seed", 42u64)
    }

    /// Runs to average per measurement point.
    pub fn runs(&self) -> usize {
        self.args.get("runs", 3usize)
    }

    /// Real-world stand-in scale shift (n divided by 2^shift).
    pub fn scale_shift(&self) -> u32 {
        self.args.get("scale-shift", 4u32)
    }

    /// Writes a raw artifact (e.g. machine-readable JSON) into the
    /// results directory.
    pub fn emit_raw(&self, filename: &str, contents: &str) {
        if let Err(e) = std::fs::create_dir_all(&self.results_dir) {
            eprintln!("warning: cannot create {}: {e}", self.results_dir.display());
            return;
        }
        let path = self.results_dir.join(filename);
        match std::fs::write(&path, contents) {
            Ok(()) => println!("[{} written]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    /// Prints a rendered table and writes its CSV twin.
    pub fn emit(&self, name: &str, title: &str, table: &TextTable) {
        println!("\n== {title} ==");
        print!("{}", table.render());
        if let Err(e) = std::fs::create_dir_all(&self.results_dir) {
            eprintln!("warning: cannot create {}: {e}", self.results_dir.display());
            return;
        }
        let path = self.results_dir.join(format!("{name}.csv"));
        match std::fs::write(&path, table.to_csv()) {
            Ok(()) => println!("[csv written to {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Runs `f` `runs` times and returns the mean seconds (result discarded).
pub fn mean_time(runs: usize, mut f: impl FnMut()) -> f64 {
    assert!(runs > 0);
    let mut total = 0.0;
    for _ in 0..runs {
        total += timed(&mut f).1;
    }
    total / runs as f64
}

/// Runs `f` `runs` times and returns the median seconds (the robust
/// statistic the machine-readable bench artifacts record).
pub fn median_time(runs: usize, mut f: impl FnMut()) -> f64 {
    assert!(runs > 0);
    let mut samples: Vec<f64> = (0..runs).map(|_| timed(&mut f).1).collect();
    samples.sort_by(f64::total_cmp);
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        0.5 * (samples[mid - 1] + samples[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args() {
        let a =
            Args::parse(["fig5a", "--scale-log2", "16", "--name", "x"].map(String::from)).unwrap();
        assert_eq!(a.experiment, "fig5a");
        assert_eq!(a.get("scale-log2", 0u32), 16);
        assert_eq!(a.get_str("name", "y"), "x");
        assert_eq!(a.get("missing", 7i32), 7);
        assert!(a.has("name") && !a.has("nope"));
    }

    #[test]
    fn parse_errors() {
        assert!(Args::parse([]).is_err());
        assert!(Args::parse(["e", "positional"].map(String::from)).is_err());
        assert!(Args::parse(["e", "--flag"].map(String::from)).is_err());
    }

    #[test]
    fn timing_helpers() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
        assert!(
            mean_time(2, || {
                std::hint::black_box(0);
            }) >= 0.0
        );
    }
}
