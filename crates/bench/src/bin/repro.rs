//! `repro`: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p slimsell-bench --bin repro -- <experiment> [--key value]...
//!
//! experiments:
//!   table2 table3 table4 table5
//!   fig1 fig5a fig5b fig5c fig5d fig6a fig6b fig6c fig6d fig6e
//!   fig7 fig8 fig9 fig10
//!   prep bounds scaling frontier serve
//!   all                        run everything
//!
//! common options:
//!   --scale-log2 N    Kronecker scale (default 14; paper uses 20-28)
//!   --rho X           edges per vertex (default 16)
//!   --seed S          generator seed (default 42)
//!   --runs K          repetitions per timing point (default 3)
//!   --scale-shift N   real-world stand-in down-scaling (default 4)
//!   --results-dir D   CSV output directory (default results/)
//!
//! scaling options:
//!   --kernel K        kernel(s) for BENCH_scaling.json: bfs (default),
//!                     pagerank, sssp, msbfs, betweenness, or all
//!   --simd {0,1}      also sweep the SIMD backend axis: measure each
//!                     point under the scalar backend and the best
//!                     detected one (default 0: current backend only)
//!
//! frontier options:
//!   --adaptive {0,1}  include the adaptive sweep axis (default 1)
//!
//! serve options:
//!   --queries N       closed-loop queries per (B, clients) point
//!                     (default 64)
//!   --deadline-us N   per-query wall-clock deadline for the overload
//!                     sweep, microseconds (default 2000; 0 = none)
//!   --retries N       client retries after a QueueFull rejection,
//!                     with jittered exponential backoff (default 2)
//! ```
//!
//! The `scaling` experiment additionally writes the machine-readable
//! `results/BENCH_scaling.json` (threads × scale × kernel, plus the
//! semiring axis for BFS; median ns per stored arc) used to track
//! multicore perf across PRs; sweep the thread axis on any host with
//! `SLIMSELL_THREADS` unset. The `frontier` experiment writes
//! `results/BENCH_frontier.json`: full-sweep vs worklist vs adaptive
//! BFS over `{kronecker, geometric, smallworld} × scales
//! 10..=--scale-log2`, with exact column-step/visit/activation/
//! mode-switch counters. The `serve` experiment drives the batched BFS
//! query engine (`crates/serve`) with closed-loop clients and writes
//! `results/BENCH_serve.json`: qps, p50/p99 latency and batch-fill
//! counters over batch widths `B ∈ {1, 4, 8}` × client counts
//! `{1, 4, 16}`; the batch window is tunable via
//! `SLIMSELL_BATCH_WINDOW_US`. It then runs the overload sweep against
//! a deliberately under-provisioned server (one worker, bounded queue,
//! per-query deadlines) and writes `results/BENCH_serve_overload.json`:
//! goodput, served-query p99, shed fraction and queue-full reject
//! fraction per offered-load point, with client-side
//! retry-plus-jittered-backoff on `QueueFull`.

use slimsell_bench::experiments;
use slimsell_bench::harness::{Args, ExpContext};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print_help();
        return;
    }
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            print_help();
            std::process::exit(2);
        }
    };
    let ctx = ExpContext::new(args);
    if let Err(e) = experiments::run(&ctx) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn print_help() {
    println!("repro — regenerate the SlimSell paper's tables and figures");
    println!("usage: repro <experiment> [--key value]...");
    println!("experiments: {}", experiments::EXPERIMENTS.join(", "));
    println!(
        "options: --scale-log2 N  --rho X  --seed S  --runs K  --scale-shift N  --results-dir D"
    );
    println!("scaling only: --kernel {{bfs|pagerank|sssp|msbfs|betweenness|all}}  --simd {{0|1}}");
    println!("frontier: sweeps scales 10..=--scale-log2 (full vs worklist vs adaptive;");
    println!("          --adaptive 0 drops the adaptive axis)");
    println!("serve: batched BFS query engine load test; --queries N per point (default 64),");
    println!("       batch window via SLIMSELL_BATCH_WINDOW_US (default 200);");
    println!("       overload sweep: --deadline-us N (default 2000, 0 = none), --retries N");
    println!("       (default 2, jittered backoff); restart budget via SLIMSELL_MAX_RESTARTS");
    println!("see DESIGN.md section 4 for the experiment-to-paper mapping");
}
