//! Reproduction harness for every table and figure of the paper.
//!
//! The `repro` binary (`cargo run --release -p slimsell-bench --bin
//! repro -- <experiment>`) regenerates the rows/series of each
//! experiment; [`experiments`] holds one module per table/figure and
//! DESIGN.md §4 maps them back to the paper. [`dispatch`] turns runtime
//! configuration (C, σ, representation, semiring) into calls of the
//! const-generic engines; [`harness`] provides argument parsing, timing
//! and CSV emission.

pub mod dispatch;
pub mod experiments;
pub mod harness;

pub use dispatch::{prepare, prepare_simt, Prepared, RepKind, SemiringKind};
pub use harness::{Args, ExpContext};
