//! Runtime → const-generic dispatch.
//!
//! Experiments choose C, σ, representation and semiring at run time; the
//! kernels are generic in `C` (a `const`) and the semiring (a type). This
//! module builds the matrix once and returns boxed closures so a
//! configuration can be run many times (preprocessing amortization, §IV-D)
//! without rebuilding.

use slimsell_core::matrix::{ChunkMatrix, SellCSigma, SlimSellMatrix};
use slimsell_core::semiring::{
    BooleanSemiring, RealSemiring, SelMaxSemiring, Semiring, TropicalSemiring,
};
use slimsell_core::{BfsEngine, BfsOptions, BfsOutput};
use slimsell_graph::{CsrGraph, VertexId};
use slimsell_simd::UnsupportedLanes;
use slimsell_simt::{run_simt_bfs, SimtBfsReport, SimtConfig, SimtOptions};

/// Representation selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepKind {
    /// SlimSell (no `val` array).
    SlimSell,
    /// Sell-C-σ (explicit `val`).
    SellCSigma,
}

impl RepKind {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            RepKind::SlimSell => "SlimSell",
            RepKind::SellCSigma => "Sell-C-sigma",
        }
    }
}

/// Semiring selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SemiringKind {
    /// Tropical (min, +).
    Tropical,
    /// Real (+, ·).
    Real,
    /// Boolean (|, &).
    Boolean,
    /// Sel-max (max, ·).
    SelMax,
}

impl SemiringKind {
    /// All four semirings in the paper's listing order.
    pub const ALL: [SemiringKind; 4] =
        [SemiringKind::Tropical, SemiringKind::Real, SemiringKind::Boolean, SemiringKind::SelMax];

    /// Display name used in tables (matches the paper's legends).
    pub fn name(self) -> &'static str {
        match self {
            SemiringKind::Tropical => "tropical",
            SemiringKind::Real => "real",
            SemiringKind::Boolean => "boolean",
            SemiringKind::SelMax => "sel-max",
        }
    }

    /// Whether the semiring produces parents directly.
    pub fn computes_parents(self) -> bool {
        matches!(self, SemiringKind::SelMax)
    }
}

/// Boxed BFS entry point captured over a prepared matrix.
type BfsRunner = Box<dyn Fn(VertexId, &BfsOptions) -> BfsOutput + Send + Sync>;

/// Boxed simulated-BFS entry point captured over a prepared matrix.
type SimtRunner = Box<dyn Fn(VertexId, &SimtOptions) -> SimtBfsReport + Send + Sync>;

/// A built matrix + engine configuration, ready to run from any root.
pub struct Prepared {
    runner: BfsRunner,
    storage_cells: usize,
    padding_cells: usize,
    num_chunks: usize,
}

impl Prepared {
    /// Runs BFS from `root` with the given engine options.
    pub fn run(&self, root: VertexId, opts: &BfsOptions) -> BfsOutput {
        (self.runner)(root, opts)
    }

    /// Total storage cells of the built matrix (Table III accounting).
    pub fn storage_cells(&self) -> usize {
        self.storage_cells
    }

    /// Padding cells `P` of the built structure.
    pub fn padding_cells(&self) -> usize {
        self.padding_cells
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }
}

macro_rules! prep_arm {
    ($g:expr, $sigma:expr, $rep:expr, $c:literal, $sem:ty) => {{
        match $rep {
            RepKind::SlimSell => {
                let m = SlimSellMatrix::<$c>::build($g, $sigma);
                let (cells, pad, nc) =
                    (m.storage_cells(), m.structure().padding_cells(), m.structure().num_chunks());
                Prepared {
                    runner: Box::new(move |root, opts| {
                        BfsEngine::run::<_, $sem, $c>(&m, root, opts)
                    }),
                    storage_cells: cells,
                    padding_cells: pad,
                    num_chunks: nc,
                }
            }
            RepKind::SellCSigma => {
                let m = SellCSigma::<$c>::build($g, $sigma, <$sem>::PAD);
                let (cells, pad, nc) =
                    (m.storage_cells(), m.structure().padding_cells(), m.structure().num_chunks());
                Prepared {
                    runner: Box::new(move |root, opts| {
                        BfsEngine::run::<_, $sem, $c>(&m, root, opts)
                    }),
                    storage_cells: cells,
                    padding_cells: pad,
                    num_chunks: nc,
                }
            }
        }
    }};
}

macro_rules! prep_c {
    ($g:expr, $sigma:expr, $rep:expr, $sem:expr, $c:literal) => {
        match $sem {
            SemiringKind::Tropical => prep_arm!($g, $sigma, $rep, $c, TropicalSemiring),
            SemiringKind::Real => prep_arm!($g, $sigma, $rep, $c, RealSemiring),
            SemiringKind::Boolean => prep_arm!($g, $sigma, $rep, $c, BooleanSemiring),
            SemiringKind::SelMax => prep_arm!($g, $sigma, $rep, $c, SelMaxSemiring),
        }
    };
}

/// Builds a matrix for `(C, σ, representation, semiring)` and returns a
/// reusable runner, or [`UnsupportedLanes`] when `c` is not a lane count
/// the SIMD backends implement (4/8/16/32) — the same error the lane
/// dispatcher itself reports, so callers can surface one message for
/// both layers.
pub fn try_prepare(
    g: &CsrGraph,
    c: usize,
    sigma: usize,
    rep: RepKind,
    sem: SemiringKind,
) -> Result<Prepared, UnsupportedLanes> {
    Ok(match c {
        4 => prep_c!(g, sigma, rep, sem, 4),
        8 => prep_c!(g, sigma, rep, sem, 8),
        16 => prep_c!(g, sigma, rep, sem, 16),
        32 => prep_c!(g, sigma, rep, sem, 32),
        _ => return Err(UnsupportedLanes(c)),
    })
}

/// Builds a matrix for `(C, σ, representation, semiring)` and returns a
/// reusable runner.
///
/// # Panics
/// Panics if `c` is not one of 4/8/16/32 (see [`try_prepare`] for the
/// non-panicking form).
pub fn prepare(g: &CsrGraph, c: usize, sigma: usize, rep: RepKind, sem: SemiringKind) -> Prepared {
    match try_prepare(g, c, sigma, rep, sem) {
        Ok(p) => p,
        Err(e) => panic!("{e}"),
    }
}

/// A prepared SIMT (GPU-model) configuration; warp width is fixed at 32.
pub struct PreparedSimt {
    runner: SimtRunner,
}

impl PreparedSimt {
    /// Runs the simulated BFS from `root`.
    pub fn run(&self, root: VertexId, opts: &SimtOptions) -> SimtBfsReport {
        (self.runner)(root, opts)
    }
}

/// Builds a warp-width-32 matrix and binds it to the SIMT engine.
pub fn prepare_simt(
    g: &CsrGraph,
    sigma: usize,
    rep: RepKind,
    sem: SemiringKind,
    cfg: SimtConfig,
) -> PreparedSimt {
    macro_rules! simt_arm {
        ($sem:ty) => {{
            match rep {
                RepKind::SlimSell => {
                    let m = SlimSellMatrix::<32>::build(g, sigma);
                    PreparedSimt {
                        runner: Box::new(move |root, opts| {
                            run_simt_bfs::<_, $sem, 32>(&m, root, &cfg, opts)
                        }),
                    }
                }
                RepKind::SellCSigma => {
                    let m = SellCSigma::<32>::build(g, sigma, <$sem>::PAD);
                    PreparedSimt {
                        runner: Box::new(move |root, opts| {
                            run_simt_bfs::<_, $sem, 32>(&m, root, &cfg, opts)
                        }),
                    }
                }
            }
        }};
    }
    match sem {
        SemiringKind::Tropical => simt_arm!(TropicalSemiring),
        SemiringKind::Real => simt_arm!(RealSemiring),
        SemiringKind::Boolean => simt_arm!(BooleanSemiring),
        SemiringKind::SelMax => simt_arm!(SelMaxSemiring),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::{serial_bfs, GraphBuilder};

    fn g() -> CsrGraph {
        GraphBuilder::new(20)
            .edges((0..19u32).map(|v| (v, v + 1)).chain([(0, 10), (5, 15)]))
            .build()
    }

    #[test]
    fn all_configs_match_reference() {
        let g = g();
        let reference = serial_bfs(&g, 0);
        for c in [4usize, 8, 16, 32] {
            for rep in [RepKind::SlimSell, RepKind::SellCSigma] {
                for sem in SemiringKind::ALL {
                    let p = prepare(&g, c, 20, rep, sem);
                    let out = p.run(0, &BfsOptions::default());
                    assert_eq!(out.dist, reference.dist, "C={c} {:?} {:?}", rep, sem);
                }
            }
        }
    }

    #[test]
    fn simt_configs_match_reference() {
        let g = g();
        let reference = serial_bfs(&g, 0);
        for rep in [RepKind::SlimSell, RepKind::SellCSigma] {
            let p = prepare_simt(&g, 20, rep, SemiringKind::Tropical, SimtConfig::default());
            let out = p.run(0, &SimtOptions::default());
            assert_eq!(out.dist, reference.dist);
        }
    }

    #[test]
    fn storage_metadata_exposed() {
        let g = g();
        let slim = prepare(&g, 8, 20, RepKind::SlimSell, SemiringKind::Tropical);
        let sell = prepare(&g, 8, 20, RepKind::SellCSigma, SemiringKind::Tropical);
        assert!(slim.storage_cells() < sell.storage_cells());
        assert_eq!(slim.num_chunks(), 3);
    }

    #[test]
    #[should_panic(expected = "unsupported chunk height C=5")]
    fn bad_c_panics() {
        prepare(&g(), 5, 1, RepKind::SlimSell, SemiringKind::Tropical);
    }

    #[test]
    fn bad_c_reports_supported_lanes() {
        let err = match try_prepare(&g(), 7, 1, RepKind::SlimSell, SemiringKind::Tropical) {
            Ok(_) => panic!("C=7 must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err.0, 7);
        let msg = err.to_string();
        assert!(msg.contains("C=7") && msg.contains("[4, 8, 16, 32]"), "message: {msg}");
    }
}
