//! Figure 9: fine-grained comparison of Trad-BFS and BFS-SpMV with
//! SlimSell + sel-max (C = 16) on dense Kronecker graphs.
//!
//! Paper pairs: (n, ρ) ∈ {(2^19, 1024), (2^20, 512), (2^21, 128)};
//! defaults shift log n down by `--shift` (default 6) with ρ scaled by
//! the same factor to stay laptop-sized. Shape to verify (§IV-F): the
//! denser the graph, the better BFS-SpMV fares against the traditional
//! BFS, whose middle iterations dominate.

use slimsell_analysis::report::{fmt_secs, TextTable};
use slimsell_baseline::trad_bfs;
use slimsell_core::BfsOptions;

use crate::dispatch::{prepare, RepKind, SemiringKind};
use crate::harness::ExpContext;

use super::{kron_at, roots};

/// Runs all three panels.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    let shift = ctx.args.get("shift", 6u32);
    let combos: [(u32, f64); 3] = [(19, 1024.0), (20, 512.0), (21, 128.0)];
    for (idx, (logn, rho)) in combos.into_iter().enumerate() {
        let scale = logn.saturating_sub(shift).max(8);
        let rho = (rho / (1u64 << shift) as f64 * 4.0).max(4.0);
        let g = kron_at(scale, rho, ctx.seed());
        let root = roots(&g, 1)[0];
        let trad = trad_bfs(&g, root);
        let p = prepare(&g, 16, g.num_vertices(), RepKind::SlimSell, SemiringKind::SelMax);
        let spmv = p.run(root, &BfsOptions::default());
        assert_eq!(spmv.dist, {
            let mut d = trad.dist.clone();
            d.truncate(spmv.dist.len());
            d
        });

        let iters = trad.level_times.len().max(spmv.stats.iters.len());
        let mut t = TextTable::new(["iteration", "Trad-BFS [s]", "SlimSell sel-max [s]"]);
        for i in 0..iters {
            t.row([
                format!("{i}"),
                trad.level_times.get(i).map(|d| fmt_secs(d.as_secs_f64())).unwrap_or_default(),
                spmv.stats
                    .iters
                    .get(i)
                    .map(|s| fmt_secs(s.elapsed.as_secs_f64()))
                    .unwrap_or_default(),
            ]);
        }
        ctx.emit(
            &format!("fig9_{}", ['a', 'b', 'c'][idx]),
            &format!(
                "Figure 9{}: Trad-BFS vs SlimSell sel-max, n=2^{scale}, rho={rho:.0} (C=16)",
                ['a', 'b', 'c'][idx]
            ),
            &t,
        );
        let tt: f64 = trad.level_times.iter().map(|d| d.as_secs_f64()).sum();
        let ts = spmv.stats.total_time().as_secs_f64();
        println!(
            "totals: trad {} | slimsell sel-max {} | ratio {:.2}",
            fmt_secs(tt),
            fmt_secs(ts),
            tt / ts
        );
    }
    Ok(())
}
