//! `frontier`: full-sweep vs worklist vs adaptive BFS on high-diameter
//! generators, plus the machine-readable `BENCH_frontier.json`
//! artifact.
//!
//! SlimWork keeps a full sweep `O(n_chunks)` per iteration because
//! every chunk still runs the skip test (and unreached chunks run their
//! whole MV); the worklist engine is `O(|worklist|)`. The gap is
//! largest exactly where the paper found "small or no improvement from
//! SlimWork" (§IV-A5): road-network-like geometric graphs and
//! small-world ring lattices, whose diameters are in the hundreds — and
//! it inverts in Kronecker's flood regime, which is what the adaptive
//! controller (`SweepMode::Adaptive`, the default) is for. The sweep
//! crosses `{kronecker, geometric, smallworld} × {full, worklist,
//! adaptive}` over scales `10..=--scale-log2` (pass `--adaptive 0` to
//! drop the adaptive axis), records wall time and the exact work
//! counters (column steps, chunk visits, activation probes, mode
//! switches — identical on every host), and emits the comparison both
//! as tables (via `slimsell_analysis::frontier`) and as
//! `BENCH_frontier.json` with the same shape conventions as
//! `BENCH_scaling.json`.

use slimsell_analysis::frontier::{AdaptiveComparison, WorklistComparison};
use slimsell_core::counters::RunStats;
use slimsell_core::{BfsEngine, BfsOptions, Schedule, SlimSellMatrix, SweepMode, TropicalSemiring};
use slimsell_gen::geometric::road_network;
use slimsell_gen::smallworld::watts_strogatz;
use slimsell_graph::CsrGraph;

use super::{kron_at, roots};
use crate::harness::{median_time, ExpContext};

/// Average degree of the geometric (road-network stand-in) graphs.
const ROAD_RHO: f64 = 2.8;
/// Ring-lattice degree and rewiring probability of the small-world
/// graphs (low beta keeps the diameter large — the regime under test).
const SW_K: usize = 4;
const SW_BETA: f64 = 0.02;

/// Runs the sweep and writes `BENCH_frontier.json`.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    let hi = ctx.scale_log2().max(10);
    let runs = ctx.runs();
    // The adaptive axis is on by default; `--adaptive 0` reverts to the
    // pre-PR-5 two-mode sweep.
    let with_adaptive = ctx.args.get("adaptive", 1u32) != 0;
    let mut table = WorklistComparison::table();
    let mut ad_table = AdaptiveComparison::table();
    let mut points = String::new();
    for scale in 10..=hi {
        let n = 1usize << scale;
        let graphs: [(&str, CsrGraph); 3] = [
            ("kronecker", kron_at(scale, ctx.rho(), ctx.seed())),
            ("geometric", road_network(n, ROAD_RHO, ctx.seed())),
            ("smallworld", watts_strogatz(n, SW_K, SW_BETA, ctx.seed())),
        ];
        for (name, g) in graphs {
            let root = roots(&g, 1)[0];
            let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
            let arcs = g.num_arcs() as f64;
            let measure = |sweep: SweepMode| -> (RunStats, f64) {
                // Pin every knob explicitly so the artifact does not
                // depend on the SLIMSELL_SWEEP default.
                let opts = BfsOptions {
                    slimwork: true,
                    slimchunk: None,
                    max_iterations: None,
                    ..Default::default()
                }
                .sweep(sweep)
                .schedule(Schedule::Dynamic);
                // Work counters are deterministic across runs, so the
                // stats come from the timed runs themselves — no extra
                // untimed execution per point.
                let mut stats = None;
                let secs = median_time(runs, || {
                    let out = std::hint::black_box(BfsEngine::run::<_, TropicalSemiring, 8>(
                        &m, root, &opts,
                    ));
                    stats = Some(out.stats);
                });
                (stats.expect("runs >= 1"), secs)
            };
            let (full, full_s) = measure(SweepMode::Full);
            let (wl, wl_s) = measure(SweepMode::Worklist);
            let cmp = WorklistComparison::measure(&full, &wl);
            table.row(cmp.row(&format!("{name}@2^{scale}")));
            let mut modes: Vec<(SweepMode, &RunStats, f64, f64)> = vec![
                (SweepMode::Full, &full, full_s, 1.0),
                (SweepMode::Worklist, &wl, wl_s, cmp.col_step_ratio()),
            ];
            let adaptive = with_adaptive.then(|| measure(SweepMode::Adaptive));
            if let Some((ad, ad_s)) = &adaptive {
                let ac = AdaptiveComparison::measure(&full, &wl, ad);
                ad_table.row(ac.row(&format!("{name}@2^{scale}")));
                modes.push((SweepMode::Adaptive, ad, *ad_s, ac.ratio_vs_full()));
            }
            for (sweep, stats, secs, ratio) in modes {
                if !points.is_empty() {
                    points.push_str(",\n");
                }
                points.push_str(&format!(
                    "    {{\"graph\": \"{name}\", \"scale_log2\": {scale}, \
                     \"sweep\": \"{}\", \"iterations\": {}, \"col_steps\": {}, \
                     \"visited_chunks\": {}, \"activations\": {}, \"mode_switches\": {}, \
                     \"worklist_iters\": {}, \"median_s\": {secs:.6}, \
                     \"median_ns_per_edge\": {:.3}, \"col_step_ratio_vs_full\": {ratio:.4}}}",
                    sweep.name(),
                    stats.num_iterations(),
                    stats.total_col_steps(),
                    stats.total_visited(),
                    stats.total_activations(),
                    stats.mode_switches(),
                    stats.worklist_sweep_iterations(),
                    secs * 1e9 / arcs,
                ));
            }
        }
    }
    ctx.emit("frontier", "Full sweep vs worklist (tropical, C=8, SlimWork on)", &table);
    if with_adaptive {
        ctx.emit("frontier_adaptive", "Adaptive sweep vs both pure modes", &ad_table);
    }
    let json = format!(
        "{{\n  \"bench\": \"frontier\",\n  \"representation\": \"SlimSell\",\n  \
         \"lanes\": 8,\n  \"semiring\": \"tropical\",\n  \"runs\": {runs},\n  \
         \"rho\": {},\n  \"seed\": {},\n  \
         \"unit\": \"median ns per stored arc per BFS run; col_steps/visits/activations/mode_switches are exact counters\",\n  \
         \"note\": \"worklist col_steps < full col_steps is the frontier-proportional win; \
         adaptive must stay within max(full, worklist) everywhere and track the better mode; \
         counters are host-independent, times are not\",\n  \"points\": [\n{points}\n  ]\n}}\n",
        ctx.rho(),
        ctx.seed(),
    );
    ctx.emit_raw("BENCH_frontier.json", &json);
    Ok(())
}
