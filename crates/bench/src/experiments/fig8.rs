//! Figure 8: KNL-style per-iteration analysis (tropical, C = 16) across
//! Kronecker sizes: the paper runs `[log n − ρ]` ∈ {20-16, 20-32, 20-64}
//! (panel a) and {21-16, 21-32, 22-16} (panel b). Defaults here shift
//! log n down by `--shift` (default 6); the shape to verify is that
//! per-iteration latency grows with ρ and n, and drops sharply after the
//! frontier peak.

use slimsell_analysis::report::{fmt_secs, TextTable};
use slimsell_core::BfsOptions;

use crate::dispatch::{prepare, RepKind, SemiringKind};
use crate::harness::ExpContext;

use super::{kron_at, roots};

/// Runs both panels.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    let shift = ctx.args.get("shift", 6u32);
    let combos: [(u32, f64); 6] =
        [(20, 16.0), (20, 32.0), (20, 64.0), (21, 16.0), (21, 32.0), (22, 16.0)];
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for (logn, rho) in combos {
        let scale = logn.saturating_sub(shift).max(8);
        let g = kron_at(scale, rho, ctx.seed());
        let root = roots(&g, 1)[0];
        let p = prepare(&g, 16, g.num_vertices(), RepKind::SlimSell, SemiringKind::Tropical);
        let out = p.run(root, &BfsOptions::default());
        series.push((format!("{scale}-{rho:.0}"), out.stats.iter_seconds()));
    }
    let iters = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut header = vec!["iteration".to_string()];
    header.extend(series.iter().map(|(n, _)| format!("{n} [s]")));
    let mut t = TextTable::new(header);
    for i in 0..iters {
        let mut row = vec![format!("{i}")];
        for (_, s) in &series {
            row.push(s.get(i).map(|&v| fmt_secs(v)).unwrap_or_default());
        }
        t.row(row);
    }
    ctx.emit(
        "fig8",
        &format!("Figure 8: per-iteration times, tropical, C=16 (scales shifted by -{shift})"),
        &t,
    );
    Ok(())
}
