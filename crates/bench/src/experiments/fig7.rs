//! Figure 7: storage analysis — AL vs Sell-C-σ vs SlimSell across graph
//! families and sorting scopes.
//!
//! Panels a/c sweep Kronecker graphs along the paper's `[log n − ρ]`
//! axis (constant n·ρ product); panels b/d use the Table IV stand-ins
//! with sizes relative to AL. Each panel is produced at four sorting
//! scopes (σ = n, √n-ish, n/4, n/8). Shape to verify (§IV-E): SlimSell ≈
//! 0.5 × Sell-C-σ everywhere, and SlimSell ≤ AL once σ ≥ √n.

use slimsell_analysis::report::TextTable;
use slimsell_core::storage::StorageComparison;
use slimsell_gen::standin_catalog;
use slimsell_graph::CsrGraph;

use crate::harness::ExpContext;

use super::kron_at;

fn sigma_points(n: usize) -> Vec<(String, usize)> {
    vec![
        ("n".into(), n),
        ("sqrt(n)".into(), (n as f64).sqrt().ceil() as usize),
        ("n/4".into(), (n / 4).max(1)),
        ("n/8".into(), (n / 8).max(1)),
    ]
}

fn measure_row(g: &CsrGraph, sigma: usize) -> StorageComparison {
    StorageComparison::measure::<8>(g, sigma)
}

/// Runs the requested family (`--family kron` or `--family rw`; default
/// both).
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    let family = ctx.args.get_str("family", "both");
    if family == "kron" || family == "both" {
        kron_panel(ctx)?;
    }
    if family == "rw" || family == "both" {
        rw_panel(ctx)?;
    }
    Ok(())
}

/// Panels a/c: Kronecker sweep at constant n·ρ (paper: log n + log ρ =
/// 29; default here 18, override with `--budget-log2`).
fn kron_panel(ctx: &ExpContext) -> Result<(), String> {
    let budget = ctx.args.get("budget-log2", 18u32);
    let mut t = TextTable::new([
        "graph [logn-rho]",
        "sigma",
        "AL [MiB]",
        "Sell-C-sigma [MiB]",
        "SlimSell [MiB]",
        "slim/sell",
        "slim/AL",
    ]);
    let mib = |cells: usize| cells as f64 * 4.0 / (1024.0 * 1024.0);
    for logn in (budget.saturating_sub(8))..=(budget.saturating_sub(1)) {
        let rho = (1u64 << (budget - logn)) as f64;
        let g = kron_at(logn, rho, ctx.seed());
        for (label, sigma) in sigma_points(g.num_vertices()) {
            let c = measure_row(&g, sigma);
            t.row([
                format!("{logn}-{rho:.0}"),
                label,
                format!("{:.3}", mib(c.al)),
                format!("{:.3}", mib(c.sell_c_sigma)),
                format!("{:.3}", mib(c.slimsell)),
                format!("{:.3}", c.slim_vs_sell()),
                format!("{:.3}", c.slim_vs_al()),
            ]);
        }
    }
    ctx.emit("fig7_kron", "Figure 7a/c: storage, Kronecker sweep (C=8)", &t);
    Ok(())
}

/// Panels b/d: real-world stand-ins, sizes relative to AL.
fn rw_panel(ctx: &ExpContext) -> Result<(), String> {
    let shift = ctx.scale_shift();
    let mut t = TextTable::new([
        "graph",
        "sigma",
        "AL (rel)",
        "Sell-C-sigma (rel)",
        "SlimSell (rel)",
        "P/n",
    ]);
    for spec in standin_catalog() {
        let g = slimsell_gen::standin(spec.id, shift, ctx.seed());
        for (label, sigma) in sigma_points(g.num_vertices()) {
            let c = measure_row(&g, sigma);
            t.row([
                spec.id.to_string(),
                label,
                "1.000".to_string(),
                format!("{:.3}", c.sell_c_sigma as f64 / c.al as f64),
                format!("{:.3}", c.slim_vs_al()),
                format!("{:.3}", c.padding as f64 / c.n as f64),
            ]);
        }
    }
    ctx.emit("fig7_rw", "Figure 7b/d: storage, real-world stand-ins (relative to AL, C=8)", &t);
    Ok(())
}
