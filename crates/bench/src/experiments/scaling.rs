//! Strong and weak scaling over thread counts (§IV mentions both axes).
//!
//! Strong: fixed Kronecker graph, threads ∈ {1, 2, 4, …} up to twice the
//! host parallelism. Weak: n doubles with the thread count.

use slimsell_analysis::report::TextTable;
use slimsell_core::BfsOptions;

use crate::dispatch::{prepare, RepKind, SemiringKind};
use crate::harness::{mean_time, ExpContext};

use super::{kron_at, kron_graph, roots};

fn thread_points() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2);
    let mut v = vec![1usize];
    let mut t = 2;
    while t <= 2 * max {
        v.push(t);
        t *= 2;
    }
    v
}

/// Runs both scaling experiments.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    strong(ctx)?;
    weak(ctx)
}

fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(f)
}

fn strong(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let rts = roots(&g, 2);
    let runs = ctx.runs();
    let mut t = TextTable::new(["threads", "time [s]", "speedup vs 1T"]);
    let mut t1 = None;
    for threads in thread_points() {
        let secs = with_pool(threads, || {
            let p = prepare(&g, 8, n, RepKind::SlimSell, SemiringKind::Tropical);
            mean_time(runs, || {
                for &r in &rts {
                    std::hint::black_box(p.run(r, &BfsOptions::default()));
                }
            })
        });
        let base = *t1.get_or_insert(secs);
        t.row([format!("{threads}"), format!("{secs:.4}"), format!("{:.2}", base / secs)]);
    }
    ctx.emit("scaling_strong", "Strong scaling (Kronecker, tropical, C=8)", &t);
    Ok(())
}

fn weak(ctx: &ExpContext) -> Result<(), String> {
    let base_scale = ctx.args.get("scale-log2", 13u32);
    let runs = ctx.runs();
    let mut t = TextTable::new(["threads", "scale (log2 n)", "time [s]", "efficiency"]);
    let mut t1 = None;
    for (i, threads) in thread_points().into_iter().enumerate() {
        let scale = base_scale + i as u32;
        let g = kron_at(scale, ctx.rho(), ctx.seed());
        let rts = roots(&g, 1);
        let secs = with_pool(threads, || {
            let p = prepare(&g, 8, g.num_vertices(), RepKind::SlimSell, SemiringKind::Tropical);
            mean_time(runs, || {
                for &r in &rts {
                    std::hint::black_box(p.run(r, &BfsOptions::default()));
                }
            })
        });
        let base = *t1.get_or_insert(secs);
        t.row([
            format!("{threads}"),
            format!("{scale}"),
            format!("{secs:.4}"),
            format!("{:.2}", base / secs),
        ]);
    }
    ctx.emit("scaling_weak", "Weak scaling (n grows with threads, tropical, C=8)", &t);
    Ok(())
}
