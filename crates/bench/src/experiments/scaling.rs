//! Strong and weak scaling over thread counts (§IV mentions both axes),
//! plus the machine-readable `BENCH_scaling.json` artifact that tracks
//! the multicore perf trajectory across PRs.
//!
//! Strong: fixed Kronecker graph, threads ∈ {1, 2, 4, …} up to twice the
//! host parallelism. Weak: n doubles with the thread count. The JSON
//! artifact records threads × scale × semiring with the *median* ns per
//! stored arc per BFS run, and the speedup of each point against the
//! 1-thread run of the same configuration.

use slimsell_analysis::report::TextTable;
use slimsell_core::BfsOptions;

use crate::dispatch::{prepare, RepKind, SemiringKind};
use crate::harness::{mean_time, median_time, ExpContext};

use super::{kron_at, kron_graph, roots};

fn thread_points() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2);
    let mut v = vec![1usize];
    let mut t = 2;
    // Always sweep through 4 threads (the tracked speedup point) even
    // on small CI hosts; oversubscription is informative, not harmful.
    while t <= (2 * max).max(4) {
        v.push(t);
        t *= 2;
    }
    v
}

/// Runs both scaling experiments and writes `BENCH_scaling.json`.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    strong(ctx)?;
    weak(ctx)?;
    bench_json(ctx)
}

/// Measures threads × scale × semiring and emits `BENCH_scaling.json`.
fn bench_json(ctx: &ExpContext) -> Result<(), String> {
    let base_scale = ctx.scale_log2();
    let scales = [base_scale.saturating_sub(2), base_scale];
    let runs = ctx.runs();
    let threads_list = thread_points();
    let mut points = String::new();
    for &scale in &scales {
        let g = kron_at(scale, ctx.rho(), ctx.seed());
        let root = roots(&g, 1)[0];
        let arcs = g.num_arcs() as f64;
        for semiring in SemiringKind::ALL {
            let p = prepare(&g, 8, g.num_vertices(), RepKind::SlimSell, semiring);
            let mut t1 = None;
            for &threads in &threads_list {
                let secs = with_pool(threads, || {
                    median_time(runs, || {
                        std::hint::black_box(p.run(root, &BfsOptions::default()));
                    })
                });
                let base = *t1.get_or_insert(secs);
                if !points.is_empty() {
                    points.push_str(",\n");
                }
                points.push_str(&format!(
                    "    {{\"threads\": {threads}, \"scale_log2\": {scale}, \
                     \"semiring\": \"{}\", \"median_s\": {secs:.6}, \
                     \"median_ns_per_edge\": {:.3}, \"speedup_vs_1t\": {:.3}}}",
                    semiring.name(),
                    secs * 1e9 / arcs,
                    base / secs,
                ));
            }
        }
    }
    let host = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"representation\": \"SlimSell\",\n  \
         \"lanes\": 8,\n  \"host_parallelism\": {host},\n  \"runs\": {runs},\n  \
         \"rho\": {},\n  \"seed\": {},\n  \"unit\": \"median ns per stored arc per BFS\",\n  \
         \"note\": \"speedup_vs_1t is bounded by host_parallelism; on a 1-CPU host \
         threads time-share one core and ~1.0 is the honest ceiling\",\n  \
         \"points\": [\n{points}\n  ]\n}}\n",
        ctx.rho(),
        ctx.seed(),
    );
    ctx.emit_raw("BENCH_scaling.json", &json);
    Ok(())
}

fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(f)
}

fn strong(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let rts = roots(&g, 2);
    let runs = ctx.runs();
    let mut t = TextTable::new(["threads", "time [s]", "speedup vs 1T"]);
    let mut t1 = None;
    for threads in thread_points() {
        let secs = with_pool(threads, || {
            let p = prepare(&g, 8, n, RepKind::SlimSell, SemiringKind::Tropical);
            mean_time(runs, || {
                for &r in &rts {
                    std::hint::black_box(p.run(r, &BfsOptions::default()));
                }
            })
        });
        let base = *t1.get_or_insert(secs);
        t.row([format!("{threads}"), format!("{secs:.4}"), format!("{:.2}", base / secs)]);
    }
    ctx.emit("scaling_strong", "Strong scaling (Kronecker, tropical, C=8)", &t);
    Ok(())
}

fn weak(ctx: &ExpContext) -> Result<(), String> {
    let base_scale = ctx.args.get("scale-log2", 13u32);
    let runs = ctx.runs();
    let mut t = TextTable::new(["threads", "scale (log2 n)", "time [s]", "efficiency"]);
    let mut t1 = None;
    for (i, threads) in thread_points().into_iter().enumerate() {
        let scale = base_scale + i as u32;
        let g = kron_at(scale, ctx.rho(), ctx.seed());
        let rts = roots(&g, 1);
        let secs = with_pool(threads, || {
            let p = prepare(&g, 8, g.num_vertices(), RepKind::SlimSell, SemiringKind::Tropical);
            mean_time(runs, || {
                for &r in &rts {
                    std::hint::black_box(p.run(r, &BfsOptions::default()));
                }
            })
        });
        let base = *t1.get_or_insert(secs);
        t.row([
            format!("{threads}"),
            format!("{scale}"),
            format!("{secs:.4}"),
            format!("{:.2}", base / secs),
        ]);
    }
    ctx.emit("scaling_weak", "Weak scaling (n grows with threads, tropical, C=8)", &t);
    Ok(())
}
