//! Strong and weak scaling over thread counts (§IV mentions both axes),
//! plus the machine-readable `BENCH_scaling.json` artifact that tracks
//! the multicore perf trajectory across PRs.
//!
//! Strong: fixed Kronecker graph, threads ∈ {1, 2, 4, …} up to twice the
//! host parallelism. Weak: n doubles with the thread count. The JSON
//! artifact records threads × scale × kernel (× semiring for BFS) with
//! the *median* ns per stored arc per run, and the speedup of each point
//! against the 1-thread run of the same configuration.
//!
//! The `--kernel` axis selects which kernels the artifact measures:
//! `bfs` (default; all four semirings), `pagerank`, `sssp`, `msbfs`,
//! `betweenness`, or `all`. All five ride the shared chunk tiling of
//! `slimsell_core::tiling`, so the same sweep tracks their multicore
//! trajectories.
//!
//! The `--simd {0,1}` axis (default 0) additionally sweeps the explicit
//! SIMD backend: each (kernel, semiring, threads, scale) point is
//! measured once under the scalar backend and once under the best
//! runtime-detected one, with a `"simd"` label per point — the
//! scalar-vs-vectorized ns-per-arc comparison of the chunk-MV kernel.
//! Without it, points carry the label of whatever backend is active
//! (the `SLIMSELL_SIMD` resolution).

use slimsell_analysis::report::TextTable;
use slimsell_core::{
    betweenness_from_sources, multi_bfs, pagerank, sssp, BfsOptions, PageRankOptions,
    SlimSellMatrix, WeightedSellCSigma,
};
use slimsell_graph::stats::sample_roots;
use slimsell_graph::weighted::synthetic_weighted_twin;
use slimsell_graph::{CsrGraph, VertexId};
use slimsell_simd::{active_backend, detect_best, set_backend, Backend};

use crate::dispatch::{prepare, RepKind, SemiringKind};
use crate::harness::{mean_time, median_time, ExpContext};

use super::{kron_at, kron_graph, roots};

/// Kernel names accepted by `--kernel` (besides `all`).
pub const KERNELS: &[&str] = &["bfs", "pagerank", "sssp", "msbfs", "betweenness"];

fn thread_points() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2);
    let mut v = vec![1usize];
    let mut t = 2;
    // Always sweep through 4 threads (the tracked speedup point) even
    // on small CI hosts; oversubscription is informative, not harmful.
    while t <= (2 * max).max(4) {
        v.push(t);
        t *= 2;
    }
    v
}

/// Runs both scaling experiments and writes `BENCH_scaling.json`.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    // Validate --kernel up front: a typo must fail in milliseconds, not
    // after the strong/weak sweeps have run for minutes.
    kernel_list(ctx)?;
    strong(ctx)?;
    weak(ctx)?;
    bench_json(ctx)
}

/// The kernels selected by `--kernel` (a single name or `all`).
fn kernel_list(ctx: &ExpContext) -> Result<Vec<&'static str>, String> {
    let arg = ctx.args.get_str("kernel", "bfs");
    if arg == "all" {
        return Ok(KERNELS.to_vec());
    }
    KERNELS
        .iter()
        .find(|&&k| k == arg)
        .map(|&k| vec![k])
        .ok_or_else(|| format!("unknown --kernel {arg:?}; available: all, {}", KERNELS.join(", ")))
}

/// Reusable timed configurations of one kernel on one graph: a semiring
/// label plus a boxed runner (built once, run at every thread count).
type KernelConfig = (&'static str, Box<dyn Fn() + Send + Sync>);

fn kernel_configs(g: &CsrGraph, root: VertexId, kernel: &str) -> Vec<KernelConfig> {
    let n = g.num_vertices();
    match kernel {
        "bfs" => SemiringKind::ALL
            .into_iter()
            .map(|sem| {
                let p = prepare(g, 8, n, RepKind::SlimSell, sem);
                let f: Box<dyn Fn() + Send + Sync> = Box::new(move || {
                    std::hint::black_box(p.run(root, &BfsOptions::default()));
                });
                (sem.name(), f)
            })
            .collect(),
        "pagerank" => {
            let m = SlimSellMatrix::<8>::build(g, n);
            vec![(
                SemiringKind::Real.name(),
                Box::new(move || {
                    std::hint::black_box(pagerank(&m, &PageRankOptions::default()));
                }),
            )]
        }
        "sssp" => {
            let m = WeightedSellCSigma::<8>::build(&synthetic_weighted_twin(g), n);
            vec![(
                SemiringKind::Tropical.name(),
                Box::new(move || {
                    std::hint::black_box(sssp(&m, root));
                }),
            )]
        }
        "msbfs" => {
            let m = SlimSellMatrix::<8>::build(g, n);
            let r = sample_roots(g, 8);
            let batch: [VertexId; 8] = std::array::from_fn(|b| r[b % r.len()]);
            vec![(
                SemiringKind::Tropical.name(),
                Box::new(move || {
                    std::hint::black_box(multi_bfs::<_, 8, 8>(&m, &batch));
                }),
            )]
        }
        "betweenness" => {
            let m = SlimSellMatrix::<8>::build(g, n);
            let sources = sample_roots(g, 4);
            vec![(
                SemiringKind::Real.name(),
                Box::new(move || {
                    std::hint::black_box(betweenness_from_sources(&m, &sources));
                }),
            )]
        }
        other => unreachable!("kernel_list admitted unknown kernel {other:?}"),
    }
}

/// Measures threads × scale × kernel (× semiring for BFS) and emits
/// `BENCH_scaling.json`.
fn bench_json(ctx: &ExpContext) -> Result<(), String> {
    let base_scale = ctx.scale_log2();
    let scales = [base_scale.saturating_sub(2), base_scale];
    let runs = ctx.runs();
    let threads_list = thread_points();
    let kernels = kernel_list(ctx)?;
    // --simd 1 sweeps scalar vs the best detected backend per point;
    // otherwise every point runs (and is labeled) under the backend the
    // SLIMSELL_SIMD resolution already made active.
    let simd_axis = ctx.args.get("simd", 0u32) != 0;
    let auto = detect_best();
    let legs: Vec<(&'static str, Option<Backend>)> = if simd_axis {
        vec![(Backend::Scalar.name(), Some(Backend::Scalar)), (auto.name(), Some(auto))]
    } else {
        vec![(active_backend().name(), None)]
    };
    let mut points = String::new();
    for &scale in &scales {
        let g = kron_at(scale, ctx.rho(), ctx.seed());
        let root = roots(&g, 1)[0];
        let arcs = g.num_arcs() as f64;
        for &kernel in &kernels {
            for (semiring, runner) in kernel_configs(&g, root, kernel) {
                for &(simd, backend) in &legs {
                    let prev = backend.map(set_backend);
                    // The 1-thread speedup baseline is per (kernel,
                    // semiring, simd) leg: backend switches change the
                    // absolute time, not what "perfect scaling" means.
                    let mut t1 = None;
                    for &threads in &threads_list {
                        let secs = with_pool(threads, || median_time(runs, &runner));
                        let base = *t1.get_or_insert(secs);
                        if !points.is_empty() {
                            points.push_str(",\n");
                        }
                        points.push_str(&format!(
                            "    {{\"threads\": {threads}, \"scale_log2\": {scale}, \
                             \"kernel\": \"{kernel}\", \"semiring\": \"{semiring}\", \
                             \"simd\": \"{simd}\", \
                             \"median_s\": {secs:.6}, \"median_ns_per_edge\": {:.3}, \
                             \"speedup_vs_1t\": {:.3}}}",
                            secs * 1e9 / arcs,
                            base / secs,
                        ));
                    }
                    if let Some(p) = prev {
                        set_backend(p);
                    }
                }
            }
        }
    }
    let host = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"representation\": \"SlimSell\",\n  \
         \"lanes\": 8,\n  \"host_parallelism\": {host},\n  \"runs\": {runs},\n  \
         \"rho\": {},\n  \"seed\": {},\n  \"simd_auto\": \"{}\",\n  \
         \"unit\": \"median ns per stored arc per kernel run\",\n  \
         \"note\": \"speedup_vs_1t is bounded by host_parallelism; on a 1-CPU host \
         threads time-share one core and ~1.0 is the honest ceiling\",\n  \
         \"points\": [\n{points}\n  ]\n}}\n",
        ctx.rho(),
        ctx.seed(),
        auto.name(),
    );
    ctx.emit_raw("BENCH_scaling.json", &json);
    Ok(())
}

fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(f)
}

fn strong(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let rts = roots(&g, 2);
    let runs = ctx.runs();
    let mut t = TextTable::new(["threads", "time [s]", "speedup vs 1T"]);
    let mut t1 = None;
    for threads in thread_points() {
        let secs = with_pool(threads, || {
            let p = prepare(&g, 8, n, RepKind::SlimSell, SemiringKind::Tropical);
            mean_time(runs, || {
                for &r in &rts {
                    std::hint::black_box(p.run(r, &BfsOptions::default()));
                }
            })
        });
        let base = *t1.get_or_insert(secs);
        t.row([format!("{threads}"), format!("{secs:.4}"), format!("{:.2}", base / secs)]);
    }
    ctx.emit("scaling_strong", "Strong scaling (Kronecker, tropical, C=8)", &t);
    Ok(())
}

fn weak(ctx: &ExpContext) -> Result<(), String> {
    let base_scale = ctx.args.get("scale-log2", 13u32);
    let runs = ctx.runs();
    let mut t = TextTable::new(["threads", "scale (log2 n)", "time [s]", "efficiency"]);
    let mut t1 = None;
    for (i, threads) in thread_points().into_iter().enumerate() {
        let scale = base_scale + i as u32;
        let g = kron_at(scale, ctx.rho(), ctx.seed());
        let rts = roots(&g, 1);
        let secs = with_pool(threads, || {
            let p = prepare(&g, 8, g.num_vertices(), RepKind::SlimSell, SemiringKind::Tropical);
            mean_time(runs, || {
                for &r in &rts {
                    std::hint::black_box(p.run(r, &BfsOptions::default()));
                }
            })
        });
        let base = *t1.get_or_insert(secs);
        t.row([
            format!("{threads}"),
            format!("{scale}"),
            format!("{secs:.4}"),
            format!("{:.2}", base / secs),
        ]);
    }
    ctx.emit("scaling_weak", "Weak scaling (n grows with threads, tropical, C=8)", &t);
    Ok(())
}
