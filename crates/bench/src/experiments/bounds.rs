//! Eq. (1) / Eq. (2): measured work versus the analytic bounds.

use slimsell_analysis::bounds::{eq1_work_bound, eq2_work_bound, estimate_powerlaw_exponent};
use slimsell_analysis::report::TextTable;
use slimsell_analysis::work::work_bound_general;
use slimsell_core::BfsOptions;
use slimsell_graph::GraphStats;

use crate::dispatch::{prepare, RepKind, SemiringKind};
use crate::harness::ExpContext;

use super::{er_graph, kron_graph, roots};

/// Runs the bound-vs-measured comparison on an ER and a Kronecker graph.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    let mut t = TextTable::new([
        "graph",
        "measured cells",
        "general bound D(2m + rho^ C)",
        "family bound",
        "bound / measured",
    ]);

    // Erdős–Rényi → Eq. (1).
    let g = er_graph(ctx);
    let s = GraphStats::compute(&g, 2);
    let root = roots(&g, 1)[0];
    let p = prepare(&g, 8, g.num_vertices(), RepKind::SlimSell, SemiringKind::Tropical);
    let out = p.run(root, &BfsOptions::plain());
    let wb = work_bound_general(s.n, s.m, 8, s.max_degree, &out.stats);
    let pr = ctx.rho() / s.n as f64;
    let eq1 = eq1_work_bound(s.n, s.m, out.stats.num_iterations(), 8, pr);
    t.row([
        format!("ER n=2^{} rho~{:.0}", ctx.scale_log2(), ctx.rho()),
        format!("{}", out.stats.total_cells()),
        format!("{}", wb.cells_bound()),
        format!("Eq.(1): {eq1:.0}"),
        format!("{:.2}", eq1 / out.stats.total_cells().max(1) as f64),
    ]);

    // Kronecker → Eq. (2) with the MLE-estimated exponent.
    let g = kron_graph(ctx);
    let s = GraphStats::compute(&g, 2);
    let root = roots(&g, 1)[0];
    let p = prepare(&g, 8, g.num_vertices(), RepKind::SlimSell, SemiringKind::Tropical);
    let out = p.run(root, &BfsOptions::plain());
    let wb = work_bound_general(s.n, s.m, 8, s.max_degree, &out.stats);
    let hist = GraphStats::degree_histogram(&g);
    let degrees: Vec<usize> =
        hist.iter().enumerate().flat_map(|(d, &c)| std::iter::repeat_n(d, c)).collect();
    let beta = estimate_powerlaw_exponent(&degrees, 4).unwrap_or(2.2);
    let eq2 = eq2_work_bound(s.n, s.m, out.stats.num_iterations(), 8, 1.0, beta);
    t.row([
        format!("Kronecker n=2^{} rho={:.0} (beta~{beta:.2})", ctx.scale_log2(), ctx.rho()),
        format!("{}", out.stats.total_cells()),
        format!("{}", wb.cells_bound()),
        format!("Eq.(2): {eq2:.0}"),
        format!("{:.2}", eq2 / out.stats.total_cells().max(1) as f64),
    ]);

    ctx.emit("bounds", "Work bounds Eq.(1)/Eq.(2) vs measured work (no SlimWork)", &t);
    println!("(bound/measured >= 1 confirms the bound; large values are slack, expected for O(.) bounds)");
    Ok(())
}
