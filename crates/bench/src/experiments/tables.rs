//! Tables II–V.

use slimsell_analysis::report::{fmt_secs, TextTable};
use slimsell_analysis::work::table2_rows;
use slimsell_baseline::{spmspv_bfs, trad_bfs, Dedup};
use slimsell_core::storage::StorageComparison;
use slimsell_core::BfsOptions;
use slimsell_gen::standin_catalog;
use slimsell_graph::GraphStats;

use crate::dispatch::{prepare, RepKind, SemiringKind};
use crate::harness::{mean_time, ExpContext};

use super::{kron_graph, roots};

/// Table II: work complexity comparison, annotated with measured work on
/// the context's Kronecker graph where the scheme is implemented.
pub fn table2(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let root = roots(&g, 1)[0];
    let mut t =
        TextTable::new(["BFS algorithm", "W (paper)", "implemented as", "measured work units"]);
    let trad = trad_bfs(&g, root);
    let spmspv = spmspv_bfs(&g, root, Dedup::NoSort);
    let spmv = prepare(&g, 8, g.num_vertices(), RepKind::SlimSell, SemiringKind::Tropical)
        .run(root, &BfsOptions::plain());
    let spmv_sw = prepare(&g, 8, g.num_vertices(), RepKind::SlimSell, SemiringKind::Tropical)
        .run(root, &BfsOptions::default());
    for row in table2_rows() {
        let measured = match row.scheme {
            "Traditional BFS (bag/queue-based)" => format!("{} edges scanned", trad.edges_scanned),
            "BFS SpMSpV (no sort)" => format!("{} candidates", spmspv.candidates),
            "BFS-SpMV (sparse)" => format!("{} cells (no SlimWork)", spmv.stats.total_cells()),
            "This work (max degree rho^)" => {
                format!("{} cells (SlimWork)", spmv_sw.stats.total_cells())
            }
            _ => "-".to_string(),
        };
        t.row([
            row.scheme.to_string(),
            row.work.to_string(),
            row.implemented_as.to_string(),
            measured,
        ]);
    }
    ctx.emit("table2", "Table II: work complexity of BFS schemes", &t);
    Ok(())
}

/// Table III: storage of Sell-C-σ, CSR, AL, SlimSell — formulas versus
/// measured cells on the context's Kronecker graph (C = 8, σ = n).
pub fn table3(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let m = g.num_edges();
    let cmp = StorageComparison::measure::<8>(&g, n);
    let p = cmp.padding;
    let nc = n.div_ceil(8);
    let mut t =
        TextTable::new(["representation", "formula (cells)", "formula value", "measured cells"]);
    t.row([
        "Sell-C-sigma".into(),
        "2(2m + P) + 2*ceil(n/C)".into(),
        format!("{}", 2 * (2 * m + p) + 2 * nc),
        format!("{}", cmp.sell_c_sigma),
    ]);
    t.row([
        "CSR (matrix)".into(),
        "4m + n".into(),
        format!("{}", 4 * m + n),
        format!("{}", cmp.csr),
    ]);
    t.row(["AL".into(), "2m + n".into(), format!("{}", 2 * m + n), format!("{}", cmp.al)]);
    t.row([
        "SlimSell".into(),
        "2m + P + 2*ceil(n/C)".into(),
        format!("{}", 2 * m + p + 2 * nc),
        format!("{}", cmp.slimsell),
    ]);
    t.row(["(P, padding cells)".into(), "-".into(), format!("{p}"), format!("{p}")]);
    t.row([
        "SlimSell / Sell-C-sigma".into(),
        "-> 0.5 for P << m".into(),
        String::new(),
        format!("{:.3}", cmp.slim_vs_sell()),
    ]);
    ctx.emit("table3", "Table III: storage complexity (measured on Kronecker)", &t);
    Ok(())
}

/// Table IV: the real-world graph catalog — paper statistics next to the
/// generated stand-ins at the configured scale shift.
pub fn table4(ctx: &ExpContext) -> Result<(), String> {
    let shift = ctx.scale_shift();
    let mut t = TextTable::new([
        "type",
        "ID",
        "paper n",
        "paper m",
        "paper rho",
        "paper D",
        "standin n",
        "standin m",
        "standin rho",
        "standin D (lb)",
    ]);
    for spec in standin_catalog() {
        let g = slimsell_gen::standin(spec.id, shift, ctx.seed());
        let s = GraphStats::compute(&g, 3);
        t.row([
            spec.family.to_string(),
            spec.id.to_string(),
            format!("{}", spec.paper_n),
            format!("{}", spec.paper_m),
            format!("{:.2}", spec.paper_rho),
            format!("{}", spec.paper_d),
            format!("{}", s.n),
            format!("{}", s.m),
            format!("{:.2}", s.m as f64 / s.n as f64),
            format!("{}", s.diameter_lb),
        ]);
    }
    ctx.emit(
        "table4",
        &format!("Table IV: real-world graphs (stand-ins at 1/2^{shift} scale)"),
        &t,
    );
    Ok(())
}

/// Table V: speedup of SlimSell over Sell-C-σ per semiring at small and
/// large σ (paper: σ = 2^4 vs 2^18 on Kronecker n = 2^24, ρ = 16).
pub fn table5(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let sigmas = [16usize, n.min(1 << 18)];
    let rts = roots(&g, 2);
    let runs = ctx.runs();
    let mut t = TextTable::new(["sigma", "boolean", "real", "tropical", "sel-max"]);
    for sigma in sigmas {
        let mut cells = vec![format!("2^{}", (sigma as f64).log2() as u32)];
        for sem in [
            SemiringKind::Boolean,
            SemiringKind::Real,
            SemiringKind::Tropical,
            SemiringKind::SelMax,
        ] {
            let slim = prepare(&g, 8, sigma, RepKind::SlimSell, sem);
            let sell = prepare(&g, 8, sigma, RepKind::SellCSigma, sem);
            let t_slim = mean_time(runs, || {
                for &r in &rts {
                    std::hint::black_box(slim.run(r, &BfsOptions::default()));
                }
            });
            let t_sell = mean_time(runs, || {
                for &r in &rts {
                    std::hint::black_box(sell.run(r, &BfsOptions::default()));
                }
            });
            cells.push(format!("{:.2}", t_sell / t_slim));
        }
        t.row(cells);
    }
    println!("(speedup = time(Sell-C-sigma) / time(SlimSell); > 1 means SlimSell wins)");
    ctx.emit("table5", "Table V: SlimSell speedup over Sell-C-sigma (Kronecker)", &t);
    let _ = fmt_secs(0.0);
    Ok(())
}
