//! Figure 5: CPU analysis (paper: Xeon E5-2695 v4, C = 8).
//!
//! * 5a — total time vs log σ, all four semirings, Kronecker, with the
//!   DP transformation, static OpenMP scheduling;
//! * 5b — same without DP, dynamic scheduling;
//! * 5c — Erdős–Rényi, DP, dynamic;
//! * 5d — per-iteration time with and without SlimWork.
//!
//! Shapes to verify (§IV-A): performance flat while log σ ≤ log C; large
//! σ helps power-law graphs much more than ER; semiring differences are
//! small except the DP overhead (absent for sel-max); SlimWork shrinks
//! late iterations.

use slimsell_analysis::report::{fmt_secs, TextTable};
use slimsell_core::{dp_transform, BfsOptions, Schedule};

use crate::dispatch::{prepare, RepKind, SemiringKind};
use crate::harness::{mean_time, ExpContext};

use super::{er_graph, kron_graph, roots, sigma_sweep};

/// Which Fig. 5 panel to run.
#[derive(Clone, Copy, Debug)]
pub enum Variant {
    /// 5a: Kronecker, DP, omp-static.
    KroneckerDpStatic,
    /// 5b: Kronecker, no DP, omp-dynamic.
    KroneckerNoDpDynamic,
    /// 5c: Erdős–Rényi, DP, omp-dynamic.
    ErdosRenyiDpDynamic,
}

/// σ-sweep over the four semirings (panels a–c).
pub fn run_sigma_sweep(ctx: &ExpContext, variant: Variant) -> Result<(), String> {
    let (g, with_dp, schedule, name, title) = match variant {
        Variant::KroneckerDpStatic => (
            kron_graph(ctx),
            true,
            Schedule::Static,
            "fig5a",
            "Figure 5a: Kronecker, DP, omp-s (C=8)",
        ),
        Variant::KroneckerNoDpDynamic => (
            kron_graph(ctx),
            false,
            Schedule::Dynamic,
            "fig5b",
            "Figure 5b: Kronecker, No-DP, omp-d (C=8)",
        ),
        Variant::ErdosRenyiDpDynamic => (
            er_graph(ctx),
            true,
            Schedule::Dynamic,
            "fig5c",
            "Figure 5c: Erdos-Renyi, DP, omp-d (C=8)",
        ),
    };
    let n = g.num_vertices();
    let rts = roots(&g, 2);
    let runs = ctx.runs();
    let opts = BfsOptions::default().schedule(schedule);

    let mut t =
        TextTable::new(["log2(sigma)", "boolean [s]", "real [s]", "sel-max [s]", "tropical [s]"]);
    for sigma in sigma_sweep(n) {
        let mut cells = vec![format!("{:.0}", (sigma as f64).log2())];
        for sem in [
            SemiringKind::Boolean,
            SemiringKind::Real,
            SemiringKind::SelMax,
            SemiringKind::Tropical,
        ] {
            let p = prepare(&g, 8, sigma, RepKind::SlimSell, sem);
            let secs = mean_time(runs, || {
                for &r in &rts {
                    let out = p.run(r, &opts);
                    // DP derives parents for the semirings that lack them
                    // (sel-max already has parents: the §IV-A2 asymmetry).
                    if with_dp && !sem.computes_parents() {
                        std::hint::black_box(dp_transform(&g, &out.dist, r));
                    }
                    std::hint::black_box(out);
                }
            });
            cells.push(format!("{:.4}", secs));
        }
        t.row(cells);
    }
    ctx.emit(name, title, &t);
    Ok(())
}

/// Panel 5d: per-iteration time with and without SlimWork (tropical,
/// σ = n).
pub fn run_slimwork(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let root = roots(&g, 1)[0];
    let p = prepare(&g, 8, n, RepKind::SlimSell, SemiringKind::Tropical);
    let with = p.run(root, &BfsOptions::default());
    let without = p.run(root, &BfsOptions::plain());
    assert_eq!(with.dist, without.dist, "SlimWork changed the BFS output");

    let iters = with.stats.iters.len().max(without.stats.iters.len());
    let mut t = TextTable::new([
        "iteration",
        "No SlimWork [s]",
        "SlimWork [s]",
        "chunks skipped",
        "cells (no SW)",
        "cells (SW)",
    ]);
    for i in 0..iters {
        t.row([
            format!("{i}"),
            without
                .stats
                .iters
                .get(i)
                .map(|s| fmt_secs(s.elapsed.as_secs_f64()))
                .unwrap_or_default(),
            with.stats.iters.get(i).map(|s| fmt_secs(s.elapsed.as_secs_f64())).unwrap_or_default(),
            with.stats.iters.get(i).map(|s| s.chunks_skipped.to_string()).unwrap_or_default(),
            without.stats.iters.get(i).map(|s| s.cells.to_string()).unwrap_or_default(),
            with.stats.iters.get(i).map(|s| s.cells.to_string()).unwrap_or_default(),
        ]);
    }
    ctx.emit("fig5d", "Figure 5d: SlimWork per-iteration effect (tropical, sigma=n, C=8)", &t);
    println!(
        "total cells: without SlimWork {} | with {} ({}x reduction)",
        without.stats.total_cells(),
        with.stats.total_cells(),
        without.stats.total_cells() as f64 / with.stats.total_cells().max(1) as f64
    );
    Ok(())
}
