//! Figure 1: per-iteration time of traditional BFS vs algebraic BFS with
//! SlimSell, with and without direction optimization, on a dense
//! Kronecker graph (paper: n = 2^20, ρ = 512, KNL C = 16).
//!
//! Default here: n = 2^13, ρ = 64 (`--scale-log2`/`--rho` to go larger);
//! the paper's shape to verify is (a) traditional BFS has one expensive
//! middle iteration, (b) SlimSell's SpMV iterations shrink monotonically
//! once SlimWork starts skipping, (c) direction optimization removes the
//! cost of the first/last sparse iterations.

use slimsell_analysis::report::{fmt_secs, TextTable};
use slimsell_baseline::trad_bfs;
use slimsell_core::dirop::{run_diropt, DirOptOptions};
use slimsell_core::matrix::SlimSellMatrix;
use slimsell_core::BfsOptions;

use crate::dispatch::{prepare, RepKind, SemiringKind};
use crate::harness::ExpContext;

use super::{kron_at, roots};

/// Runs the Figure 1 comparison.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    let scale = ctx.args.get("scale-log2", 13u32);
    let rho = ctx.args.get("rho", 64.0f64);
    let g = kron_at(scale, rho, ctx.seed());
    let root = roots(&g, 1)[0];
    let n = g.num_vertices();

    // Traditional BFS (Graph500-style).
    let trad = trad_bfs(&g, root);

    // Algebraic BFS with SlimSell (tropical, C = 16, SlimWork on).
    let spmv = prepare(&g, 16, n, RepKind::SlimSell, SemiringKind::Tropical)
        .run(root, &BfsOptions::default());

    // Algebraic BFS with SlimSell + direction optimization.
    let slim = SlimSellMatrix::<16>::build(&g, n);
    let dir = run_diropt(&slim, root, &DirOptOptions::default());

    let iters = trad.level_times.len().max(spmv.stats.iters.len()).max(dir.bfs.stats.iters.len());
    let mut t = TextTable::new([
        "iteration",
        "Trad-BFS [s]",
        "SlimSell SpMV [s]",
        "SlimSell dir-opt [s]",
        "dir-opt mode",
        "SpMV chunks skipped",
    ]);
    for i in 0..iters {
        t.row([
            format!("{i}"),
            trad.level_times.get(i).map(|d| fmt_secs(d.as_secs_f64())).unwrap_or_default(),
            spmv.stats.iters.get(i).map(|s| fmt_secs(s.elapsed.as_secs_f64())).unwrap_or_default(),
            dir.bfs
                .stats
                .iters
                .get(i)
                .map(|s| fmt_secs(s.elapsed.as_secs_f64()))
                .unwrap_or_default(),
            dir.modes.get(i).map(|m| format!("{m:?}")).unwrap_or_default(),
            spmv.stats.iters.get(i).map(|s| s.chunks_skipped.to_string()).unwrap_or_default(),
        ]);
    }
    ctx.emit(
        "fig1",
        &format!("Figure 1: per-iteration BFS time, Kronecker n=2^{scale}, rho={rho}"),
        &t,
    );
    println!(
        "totals: trad {} | slimsell-spmv {} | slimsell-dirop {}",
        fmt_secs(trad.level_times.iter().map(|d| d.as_secs_f64()).sum()),
        fmt_secs(spmv.stats.total_time().as_secs_f64()),
        fmt_secs(dir.bfs.stats.total_time().as_secs_f64()),
    );
    Ok(())
}
