//! `masked`: masked vs unmasked traversal work, plus the
//! machine-readable `BENCH_masked.json` artifact.
//!
//! The descriptor layer's promise is that restricting a sweep to a
//! vertex subset costs work proportional to the *surviving* subgraph —
//! no matrix rebuild, strictly fewer column steps than the unmasked
//! traversal. This experiment measures that claim: on each generator ×
//! scale it runs the tropical BFS engine unmasked and under a
//! half-graph mask (original ids `[0, n/2)` plus the root), under both
//! the full and adaptive sweeps, and repeats the pair through the
//! descriptor front door (`run_descriptor`, push–pull with the
//! visited-complement mask). The comparison lands as a table (via
//! [`slimsell_analysis::masked::MaskedComparison`]) and as
//! `BENCH_masked.json`; the run fails if masking was not strictly
//! cheaper on at least two generators at scale ≥ 12 — the acceptance
//! bar of the mask/descriptor PR.

use std::sync::Arc;

use slimsell_analysis::masked::MaskedComparison;
use slimsell_core::counters::RunStats;
use slimsell_core::matrix::ChunkMatrix;
use slimsell_core::{
    run_descriptor, BfsEngine, BfsOptions, Descriptor, SlimSellMatrix, SweepMode, TropicalSemiring,
    VertexMask,
};
use slimsell_gen::geometric::road_network;
use slimsell_graph::{CsrGraph, VertexId};

use super::{kron_at, roots};
use crate::harness::{median_time, ExpContext};

/// Average degree of the geometric (road-network stand-in) graphs.
const ROAD_RHO: f64 = 2.8;
/// σ-window of the sweep (the paper's locality-preserving default).
const SIGMA: usize = 32;

/// Runs the sweep and writes `BENCH_masked.json`.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    let hi = ctx.scale_log2().max(12);
    let runs = ctx.runs();
    let mut table = MaskedComparison::table();
    let mut points = String::new();
    // Generators (at scale >= 12, any sweep or driver) where masking
    // was *not* strictly cheaper — the acceptance predicate.
    let mut failed: Vec<String> = Vec::new();
    let mut passed_at_scale = 0usize;
    for scale in 12..=hi {
        let n = 1usize << scale;
        let er_p = (ctx.rho() / n as f64).min(1.0);
        let graphs: [(&str, CsrGraph); 3] = [
            ("kronecker", kron_at(scale, ctx.rho(), ctx.seed())),
            ("erdos-renyi", slimsell_gen::erdos_renyi_gnp(n, er_p, ctx.seed())),
            ("geometric", road_network(n, ROAD_RHO, ctx.seed())),
        ];
        for (name, g) in graphs {
            let root = roots(&g, 1)[0];
            let m = SlimSellMatrix::<8>::build(&g, SIGMA);
            // The half-graph mask: original ids [0, n/2) plus the root.
            let ids = (0..(n / 2) as VertexId).chain([root]);
            let mask = Arc::new(VertexMask::from_original(m.structure(), ids));
            let mask_len = mask.len();
            let mut strictly_cheaper_everywhere = true;
            let mut record = |driver: &str,
                              sweep: SweepMode,
                              unmasked: (RunStats, f64),
                              masked: (RunStats, f64),
                              table: &mut slimsell_analysis::report::TextTable,
                              points: &mut String| {
                let cmp = MaskedComparison::measure(&unmasked.0, &masked.0, mask_len, n);
                table.row(cmp.row(&format!("{name}@2^{scale} {driver}/{}", sweep.name())));
                strictly_cheaper_everywhere &= cmp.strictly_cheaper();
                if !points.is_empty() {
                    points.push_str(",\n");
                }
                points.push_str(&format!(
                    "    {{\"graph\": \"{name}\", \"scale_log2\": {scale}, \
                     \"driver\": \"{driver}\", \"sweep\": \"{}\", \
                     \"mask_fraction\": {:.4}, \
                     \"iterations_unmasked\": {}, \"iterations_masked\": {}, \
                     \"col_steps_unmasked\": {}, \"col_steps_masked\": {}, \
                     \"col_step_ratio\": {:.4}, \"strictly_cheaper\": {}, \
                     \"median_s_unmasked\": {:.6}, \"median_s_masked\": {:.6}}}",
                    sweep.name(),
                    cmp.mask_fraction,
                    cmp.unmasked_iterations,
                    cmp.masked_iterations,
                    cmp.unmasked_col_steps,
                    cmp.masked_col_steps,
                    cmp.col_step_ratio(),
                    cmp.strictly_cheaper(),
                    unmasked.1,
                    masked.1,
                ));
            };
            let time_engine = |mask: Option<&Arc<VertexMask>>, sweep: SweepMode| {
                let opts = BfsOptions::default().sweep(sweep).mask(mask.map(Arc::clone));
                let mut stats = None;
                let secs = median_time(runs, || {
                    let out = std::hint::black_box(BfsEngine::run::<_, TropicalSemiring, 8>(
                        &m, root, &opts,
                    ));
                    stats = Some(out.stats);
                });
                (stats.expect("runs >= 1"), secs)
            };
            let time_descriptor = |mask: Option<&Arc<VertexMask>>, sweep: SweepMode| {
                let mut desc = Descriptor::default().sweep(sweep);
                if let Some(mk) = mask {
                    desc = desc.mask(Arc::clone(mk));
                }
                let mut stats = None;
                let secs = median_time(runs, || {
                    let out = std::hint::black_box(run_descriptor(&m, root, &desc));
                    stats = Some(out.bfs.stats);
                });
                (stats.expect("runs >= 1"), secs)
            };
            for sweep in [SweepMode::Full, SweepMode::Adaptive] {
                record(
                    "engine",
                    sweep,
                    time_engine(None, sweep),
                    time_engine(Some(&mask), sweep),
                    &mut table,
                    &mut points,
                );
            }
            record(
                "descriptor",
                SweepMode::Adaptive,
                time_descriptor(None, SweepMode::Adaptive),
                time_descriptor(Some(&mask), SweepMode::Adaptive),
                &mut table,
                &mut points,
            );
            if strictly_cheaper_everywhere {
                passed_at_scale += 1;
            } else {
                failed.push(format!("{name}@2^{scale}"));
            }
        }
    }
    ctx.emit("masked", "Masked vs unmasked traversal work (tropical, C=8, sigma=32)", &table);
    let json = format!(
        "{{\n  \"bench\": \"masked\",\n  \"representation\": \"SlimSell\",\n  \
         \"lanes\": 8,\n  \"sigma\": {SIGMA},\n  \"semiring\": \"tropical\",\n  \
         \"runs\": {runs},\n  \"rho\": {},\n  \"seed\": {},\n  \
         \"mask\": \"original ids [0, n/2) plus the root\",\n  \
         \"unit\": \"col_steps are exact counters; times are medians in seconds\",\n  \
         \"note\": \"strictly_cheaper must hold on every generator at scale >= 12; \
         masked iteration counts may differ (the mask changes reachability)\",\n  \
         \"generators_strictly_cheaper\": {passed_at_scale},\n  \"points\": [\n{points}\n  ]\n}}\n",
        ctx.rho(),
        ctx.seed(),
    );
    ctx.emit_raw("BENCH_masked.json", &json);
    if passed_at_scale < 2 {
        return Err(format!(
            "masked acceptance failed: only {passed_at_scale} generator/scale points were \
             strictly cheaper under the mask (need >= 2); offenders: {failed:?}"
        ));
    }
    Ok(())
}
