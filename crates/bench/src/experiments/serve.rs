//! `serve`: closed-loop load generation against the batched BFS query
//! engine (`crates/serve`), plus the machine-readable
//! `BENCH_serve.json` and `BENCH_serve_overload.json` artifacts.
//!
//! The serving layer coalesces concurrent single-source queries into
//! `B`-wide multi-source batches on the `msbfs` kernel. This experiment
//! measures the trade it makes: each point runs `--queries` queries
//! (default 64) from `clients ∈ {1, 4, 16}` closed-loop client threads
//! (submit, wait, repeat) against a server with one worker over a
//! shared Kronecker snapshot, sweeping the batch width `B ∈ {1, 4, 8}`.
//! `B = 1` is the unbatched baseline — one sweep per query on the same
//! thread budget — so `speedup_vs_b1` at equal client count isolates
//! the amortization win of riding one `C·B`-wide sweep instead of `B`
//! separate `C`-wide sweeps. Latency percentiles (nearest-rank, via
//! `slimsell_analysis::serve`) expose the cost side: the batch window
//! delays lightly loaded queries. Batch-fill and lane-occupancy
//! counters are exact; only the timed fields are host-dependent.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use slimsell_analysis::serve::{LatencyProfile, OverloadPoint, ServePoint};
use slimsell_core::SlimSellMatrix;
use slimsell_graph::VertexId;
use slimsell_serve::{BfsServer, QueryError, QuerySpec, ServeOptions, ServerStats};

use super::{kron_graph, roots};
use crate::harness::ExpContext;

/// Batch widths under test; 1 is the unbatched baseline.
const BATCH_WIDTHS: [usize; 3] = [1, 4, 8];
/// Closed-loop client thread counts.
const CLIENTS: [usize; 3] = [1, 4, 16];

/// Runs the sweep and writes `BENCH_serve.json`.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    let queries = ctx.args.get("queries", 64usize);
    let g = kron_graph(ctx);
    let m = Arc::new(SlimSellMatrix::<8>::build(&g, g.num_vertices()));
    let root_pool = roots(&g, 64);

    let mut table = ServePoint::table();
    let mut points = String::new();
    // qps of the B = 1 baseline at each client count, for the speedup
    // column of same-client-count comparisons.
    let mut base_qps = [0.0f64; CLIENTS.len()];
    for &b in &BATCH_WIDTHS {
        for (ci, &clients) in CLIENTS.iter().enumerate() {
            let (point, stats) = match b {
                1 => run_point::<1>(&m, &root_pool, clients, queries),
                4 => run_point::<4>(&m, &root_pool, clients, queries),
                8 => run_point::<8>(&m, &root_pool, clients, queries),
                _ => unreachable!("batch width {b} not wired"),
            };
            if b == 1 {
                base_qps[ci] = point.qps();
            }
            let speedup = if base_qps[ci] > 0.0 { point.qps() / base_qps[ci] } else { 0.0 };
            table.row(point.row());
            if !points.is_empty() {
                points.push_str(",\n");
            }
            points.push_str(&format!(
                "    {{\"scale_log2\": {}, \"batch_b\": {b}, \"clients\": {clients}, \
                 \"queries\": {}, \"elapsed_s\": {:.6}, \"qps\": {:.2}, \
                 \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"mean_ms\": {:.4}, \
                 \"batches\": {}, \"multi_root_batches\": {}, \"mean_batch_fill\": {:.3}, \
                 \"total_iterations\": {}, \"total_col_steps\": {}, \
                 \"lane_utilization\": {:.4}, \"speedup_vs_b1\": {speedup:.3}}}",
                ctx.scale_log2(),
                point.queries,
                point.elapsed_s,
                point.qps(),
                point.latency.p50_s * 1e3,
                point.latency.p99_s * 1e3,
                point.latency.mean_s * 1e3,
                stats.batches,
                stats.multi_root_batches,
                stats.mean_batch_fill(),
                stats.total_iterations,
                stats.total_col_steps,
                stats.lane_utilization(),
            ));
        }
    }
    ctx.emit("serve", "Batched BFS serving: qps/latency vs batch width B and client count", &table);
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"representation\": \"SlimSell\",\n  \
         \"lanes\": 8,\n  \"workers\": 1,\n  \"rho\": {},\n  \"seed\": {},\n  \
         \"unit\": \"qps = served queries per second; latencies are per-query submit-to-result wall times\",\n  \
         \"note\": \"B=1 is the unbatched baseline on the same thread budget; speedup_vs_b1 compares \
         equal client counts. Batch/fill/iteration/col_step counters are exact, times are host-dependent\",\n  \
         \"points\": [\n{points}\n  ]\n}}\n",
        ctx.rho(),
        ctx.seed(),
    );
    ctx.emit_raw("BENCH_serve.json", &json);
    run_overload(ctx, &m, &root_pool, queries)?;
    Ok(())
}

/// The overload/degradation sweep: the same snapshot behind a
/// deliberately under-provisioned server — one worker, a bounded
/// admission queue, per-query wall-clock deadlines — hammered by an
/// increasing number of clients that retry `QueueFull` rejections with
/// jittered exponential backoff (`--retries`, default 2). The
/// degradation table reports goodput, served-query p99, the shed
/// fraction, and the queue-full reject fraction per offered-load
/// point; graceful overload behavior means goodput holds and the tail
/// stays bounded while shed% absorbs the excess. `--deadline-us`
/// (default 2000) sets the per-query deadline; 0 disables deadlines.
fn run_overload(
    ctx: &ExpContext,
    m: &Arc<SlimSellMatrix<8>>,
    root_pool: &[VertexId],
    queries: usize,
) -> Result<(), String> {
    let deadline_us = ctx.args.get("deadline-us", 2000u64);
    let retries = ctx.args.get("retries", 2usize);

    let mut table = OverloadPoint::table();
    let mut points = String::new();
    for &clients in &CLIENTS {
        let point = run_overload_point(m, root_pool, clients, queries, deadline_us, retries);
        table.row(point.row());
        if !points.is_empty() {
            points.push_str(",\n");
        }
        points.push_str(&format!(
            "    {{\"scale_log2\": {}, \"clients\": {clients}, \"deadline_us\": {deadline_us}, \
             \"retries\": {retries}, \"offered\": {}, \"attempts\": {}, \"served\": {}, \
             \"shed\": {}, \"expired\": {}, \"queue_full_rejects\": {}, \
             \"elapsed_s\": {:.6}, \"goodput_qps\": {:.2}, \"p99_ms\": {:.4}, \
             \"shed_frac\": {:.4}, \"reject_frac\": {:.4}}}",
            ctx.scale_log2(),
            point.offered,
            point.attempts,
            point.served,
            point.shed,
            point.expired,
            point.queue_full_rejects,
            point.elapsed_s,
            point.goodput(),
            point.latency.p99_s * 1e3,
            point.shed_frac(),
            point.reject_frac(),
        ));
    }
    ctx.emit(
        "serve_overload",
        "Degradation under overload: goodput/p99/shed vs offered load (bounded queue, deadlines)",
        &table,
    );
    let json = format!(
        "{{\n  \"bench\": \"serve_overload\",\n  \"representation\": \"SlimSell\",\n  \
         \"lanes\": 8,\n  \"batch_b\": 8,\n  \"workers\": 1,\n  \"queue_capacity\": 16,\n  \
         \"rho\": {},\n  \"seed\": {},\n  \
         \"unit\": \"goodput = served queries per second; p99 over served queries only\",\n  \
         \"note\": \"clients retry QueueFull up to --retries times with jittered exponential backoff; \
         shed_frac counts deadline-expired queries (queued or in-batch), reject_frac counts \
         queue-full bounces per submission attempt\",\n  \"points\": [\n{points}\n  ]\n}}\n",
        ctx.rho(),
        ctx.seed(),
    );
    ctx.emit_raw("BENCH_serve_overload.json", &json);
    Ok(())
}

/// `splitmix64` step for the client-side backoff jitter — deterministic
/// per client, no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs one offered-load point against an under-provisioned server
/// (one worker, B = 8, bounded queue of 16), with client-side
/// retry-on-`QueueFull` and jittered exponential backoff.
fn run_overload_point(
    m: &Arc<SlimSellMatrix<8>>,
    root_pool: &[VertexId],
    clients: usize,
    queries: usize,
    deadline_us: u64,
    retries: usize,
) -> OverloadPoint {
    let deadline = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
    let server = BfsServer::<_, 8, 8>::start(
        Arc::clone(m),
        ServeOptions { workers: 1, queue_capacity: Some(16), ..ServeOptions::default() },
    );
    let latencies = Mutex::new(Vec::with_capacity(queries));
    let attempts_total = Mutex::new(0usize);
    let per_client = queries.div_ceil(clients);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let server = &server;
            let latencies = &latencies;
            let attempts_total = &attempts_total;
            s.spawn(move || {
                let mut rng = 0x5eed ^ (c as u64).wrapping_mul(0x9e37_79b9);
                let mut local = Vec::new();
                let mut attempts = 0usize;
                for k in 0..per_client {
                    let root = root_pool[(c + k * clients) % root_pool.len()];
                    let q0 = Instant::now();
                    for attempt in 0..=retries {
                        attempts += 1;
                        let spec = QuerySpec { budget: None, deadline, mask: None };
                        match server.submit_spec(root, spec).wait() {
                            Ok(out) => {
                                local.push(q0.elapsed().as_secs_f64());
                                std::hint::black_box(out.dist.len());
                                break;
                            }
                            Err(QueryError::QueueFull) if attempt < retries => {
                                // Jittered exponential backoff before
                                // the retry: base 100 µs doubling per
                                // attempt, plus up to 100 µs jitter.
                                let base = 100u64 << attempt;
                                let jitter = splitmix64(&mut rng) % 100;
                                std::thread::sleep(Duration::from_micros(base + jitter));
                            }
                            Err(_) => break,
                        }
                    }
                }
                latencies.lock().expect("latency lock").extend(local);
                *attempts_total.lock().expect("attempts lock") += attempts;
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = server.shutdown().stats;
    let samples = latencies.into_inner().expect("latency lock");
    let attempts = attempts_total.into_inner().expect("attempts lock");
    OverloadPoint {
        clients,
        deadline_us,
        offered: per_client * clients,
        attempts,
        served: samples.len(),
        shed: stats.shed,
        expired: stats.expired,
        queue_full_rejects: stats.queue_full_rejects,
        elapsed_s: elapsed,
        latency: LatencyProfile::from_seconds(samples),
    }
}

/// Runs one `(B, clients)` point: closed-loop clients over a
/// single-worker server, returning the distilled point and the
/// server's final counters.
fn run_point<const B: usize>(
    m: &Arc<SlimSellMatrix<8>>,
    root_pool: &[VertexId],
    clients: usize,
    queries: usize,
) -> (ServePoint, ServerStats) {
    let server = BfsServer::<_, 8, B>::start(
        Arc::clone(m),
        ServeOptions { workers: 1, ..ServeOptions::default() },
    );
    let latencies = Mutex::new(Vec::with_capacity(queries));
    let per_client = queries.div_ceil(clients);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let server = &server;
            let latencies = &latencies;
            s.spawn(move || {
                let mut local = Vec::with_capacity(per_client);
                for k in 0..per_client {
                    let root = root_pool[(c + k * clients) % root_pool.len()];
                    let q0 = Instant::now();
                    let out = server.submit(root).wait().expect("serve load query failed");
                    local.push(q0.elapsed().as_secs_f64());
                    std::hint::black_box(out.dist.len());
                }
                latencies.lock().expect("latency lock").extend(local);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = server.shutdown().stats;
    let samples = latencies.into_inner().expect("latency lock");
    let point = ServePoint {
        batch_b: B,
        clients,
        queries: samples.len(),
        elapsed_s: elapsed,
        latency: LatencyProfile::from_seconds(samples),
        batches: stats.batches,
        multi_root_batches: stats.multi_root_batches,
        mean_batch_fill: stats.mean_batch_fill(),
        lane_utilization: stats.lane_utilization(),
        total_iterations: stats.total_iterations,
        total_col_steps: stats.total_col_steps,
    };
    (point, stats)
}
