//! Figure 6: GPU analysis on the SIMT simulator (warp width C = 32).
//!
//! All y-axes are *simulated warp cycles* (see `slimsell-simt`): the
//! shapes the paper reads off the K80 — the σ threshold at log σ =
//! log C, the load-imbalance growth at large σ, and SlimChunk's ≈50 %
//! cut of the first iterations — are reproduced by the lock-step +
//! makespan model.

use slimsell_analysis::report::TextTable;
use slimsell_simt::{SimtConfig, SimtOptions};

use crate::dispatch::{prepare_simt, RepKind, SemiringKind};
use crate::harness::ExpContext;

use super::{er_graph, kron_graph, roots, sigma_sweep};

fn default_opts() -> SimtOptions {
    SimtOptions { slimwork: true, slimchunk: None }
}

/// Panels 6a (Kronecker) and 6b (Erdős–Rényi): total simulated cycles vs
/// log σ for all four semirings.
pub fn run_sigma_sweep(ctx: &ExpContext, erdos: bool) -> Result<(), String> {
    let g = if erdos { er_graph(ctx) } else { kron_graph(ctx) };
    let n = g.num_vertices();
    let root = roots(&g, 1)[0];
    let (name, title) = if erdos {
        ("fig6b", "Figure 6b: GPU-sim, Erdos-Renyi, cycles vs sigma (C=32)")
    } else {
        ("fig6a", "Figure 6a: GPU-sim, Kronecker, cycles vs sigma (C=32)")
    };
    let mut t = TextTable::new([
        "log2(sigma)",
        "boolean [cyc]",
        "real [cyc]",
        "sel-max [cyc]",
        "tropical [cyc]",
    ]);
    for sigma in sigma_sweep(n) {
        let mut cells = vec![format!("{:.0}", (sigma as f64).log2())];
        for sem in [
            SemiringKind::Boolean,
            SemiringKind::Real,
            SemiringKind::SelMax,
            SemiringKind::Tropical,
        ] {
            let p = prepare_simt(&g, sigma, RepKind::SlimSell, sem, SimtConfig::default());
            let rep = p.run(root, &default_opts());
            cells.push(format!("{}", rep.total_cycles()));
        }
        t.row(cells);
    }
    ctx.emit(name, title, &t);
    Ok(())
}

/// Panel 6c: per-iteration cycles by semiring at σ = 2^10 (clamped to n).
pub fn run_per_iteration(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let sigma = (1usize << 10).min(g.num_vertices());
    let root = roots(&g, 1)[0];
    let mut series = Vec::new();
    for sem in
        [SemiringKind::Boolean, SemiringKind::Real, SemiringKind::SelMax, SemiringKind::Tropical]
    {
        let p = prepare_simt(&g, sigma, RepKind::SlimSell, sem, SimtConfig::default());
        series.push(p.run(root, &default_opts()).cycle_series());
    }
    let iters = series.iter().map(Vec::len).max().unwrap_or(0);
    let mut t = TextTable::new([
        "iteration",
        "boolean [cyc]",
        "real [cyc]",
        "sel-max [cyc]",
        "tropical [cyc]",
    ]);
    for i in 0..iters {
        let mut row = vec![format!("{i}")];
        for s in &series {
            row.push(s.get(i).map(u64::to_string).unwrap_or_default());
        }
        t.row(row);
    }
    ctx.emit("fig6c", "Figure 6c: GPU-sim per-iteration cycles by semiring (sigma=2^10)", &t);
    Ok(())
}

/// Panel 6d: SlimChunk on/off, total cycles vs σ (tropical).
pub fn run_slimchunk_sweep(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let root = roots(&g, 1)[0];
    let tile = ctx.args.get("tile", 8usize);
    let mut t = TextTable::new([
        "log2(sigma)",
        "No SlimChunk [cyc]",
        "SlimChunk [cyc]",
        "imbalance (no SC)",
        "imbalance (SC)",
    ]);
    for sigma in sigma_sweep(n) {
        let p = prepare_simt(
            &g,
            sigma,
            RepKind::SlimSell,
            SemiringKind::Tropical,
            SimtConfig::default(),
        );
        let plain = p.run(root, &SimtOptions { slimchunk: None, slimwork: true });
        let tiled = p.run(root, &SimtOptions { slimchunk: Some(tile), slimwork: true });
        assert_eq!(plain.dist, tiled.dist, "SlimChunk changed the BFS output");
        let imb = |r: &slimsell_simt::SimtBfsReport| {
            r.iters.iter().map(|i| i.imbalance).fold(0.0f64, f64::max)
        };
        t.row([
            format!("{:.0}", (sigma as f64).log2()),
            format!("{}", plain.total_cycles()),
            format!("{}", tiled.total_cycles()),
            format!("{:.1}", imb(&plain)),
            format!("{:.1}", imb(&tiled)),
        ]);
    }
    ctx.emit("fig6d", "Figure 6d: SlimChunk effect vs sigma (GPU-sim, tropical)", &t);
    Ok(())
}

/// Panel 6e: SlimChunk on/off per iteration at σ = 2^10.
pub fn run_slimchunk_per_iteration(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let sigma = (1usize << 10).min(g.num_vertices());
    let root = roots(&g, 1)[0];
    let tile = ctx.args.get("tile", 8usize);
    let p =
        prepare_simt(&g, sigma, RepKind::SlimSell, SemiringKind::Tropical, SimtConfig::default());
    let plain = p.run(root, &SimtOptions { slimchunk: None, slimwork: true });
    let tiled = p.run(root, &SimtOptions { slimchunk: Some(tile), slimwork: true });
    let iters = plain.iters.len().max(tiled.iters.len());
    let mut t = TextTable::new(["iteration", "No SlimChunk [cyc]", "SlimChunk [cyc]", "speedup"]);
    for i in 0..iters {
        let a = plain.iters.get(i).map(|s| s.cycles);
        let b = tiled.iters.get(i).map(|s| s.cycles);
        t.row([
            format!("{i}"),
            a.map(|v| v.to_string()).unwrap_or_default(),
            b.map(|v| v.to_string()).unwrap_or_default(),
            match (a, b) {
                (Some(a), Some(b)) if b > 0 => format!("{:.2}", a as f64 / b as f64),
                _ => String::new(),
            },
        ]);
    }
    ctx.emit("fig6e", "Figure 6e: SlimChunk per-iteration (GPU-sim, sigma=2^10)", &t);
    Ok(())
}
