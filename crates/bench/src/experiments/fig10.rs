//! Figure 10: traditional BFS on a latency-oriented CPU vs BFS-SpMV with
//! SlimSell on a throughput-oriented GPU (tropical, C = 32), for
//! ρ ∈ {128, 256, 512} at n = 2^20.
//!
//! The CPU side runs for real (seconds); the GPU side is the SIMT
//! simulator (cycles), converted to seconds at a configurable clock
//! (`--gpu-ghz`, default 0.82 — K80 boost). Absolute alignment is not
//! meaningful across a simulator boundary; the shape to verify is the
//! paper's: the denser the graph, the better the SpMV side fares, with
//! the SIMD-friendly middle iterations winning while the sparse first
//! and last iterations lose.

use slimsell_analysis::report::{fmt_secs, TextTable};
use slimsell_baseline::trad_bfs;
use slimsell_simt::{SimtConfig, SimtOptions};

use crate::dispatch::{prepare_simt, RepKind, SemiringKind};
use crate::harness::ExpContext;

use super::{kron_at, roots};

/// Runs the three panels (scaled ρ ∈ {16, 32, 64} by default; `--shift 0
/// --scale-log2 20` reproduces the paper sizes given time and RAM).
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    let scale = ctx.args.get("scale-log2", 14u32);
    let ghz = ctx.args.get("gpu-ghz", 0.82f64);
    let cycles_per_sec = ghz * 1e9;
    let rhos: [f64; 3] =
        if ctx.args.has("paper-rhos") { [128.0, 256.0, 512.0] } else { [16.0, 32.0, 64.0] };
    for (idx, rho) in rhos.into_iter().enumerate() {
        let g = kron_at(scale, rho, ctx.seed());
        let root = roots(&g, 1)[0];
        let trad = trad_bfs(&g, root);
        let p = prepare_simt(
            &g,
            g.num_vertices(),
            RepKind::SlimSell,
            SemiringKind::Tropical,
            SimtConfig::default(),
        );
        let sim = p.run(root, &SimtOptions::default());
        assert_eq!(sim.dist, trad.dist, "GPU-sim output diverged from Trad-BFS");

        let iters = trad.level_times.len().max(sim.iters.len());
        let mut t = TextTable::new([
            "iteration",
            "Trad-BFS (CPU) [s]",
            "SlimSell SpMV (GPU-sim) [cycles]",
            "GPU-sim [s at clock]",
        ]);
        for i in 0..iters {
            t.row([
                format!("{i}"),
                trad.level_times.get(i).map(|d| fmt_secs(d.as_secs_f64())).unwrap_or_default(),
                sim.iters.get(i).map(|s| s.cycles.to_string()).unwrap_or_default(),
                sim.iters
                    .get(i)
                    .map(|s| fmt_secs(s.cycles as f64 / cycles_per_sec))
                    .unwrap_or_default(),
            ]);
        }
        ctx.emit(
            &format!("fig10_{}", ['a', 'b', 'c'][idx]),
            &format!("Figure 10{}: Trad-BFS (CPU) vs SlimSell (GPU-sim), n=2^{scale}, rho={rho:.0} (C=32)", ['a', 'b', 'c'][idx]),
            &t,
        );
    }
    Ok(())
}
