//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * **tile width** — SlimChunk's only parameter (§III-D leaves it to
//!   "the dynamic nature of the partial chunk allocation"; we sweep it);
//! * **chunk height C** — the architecture axis (CPU 8 / KNL 16 / warp
//!   32) on one host;
//! * **scheduling** — `omp-s` vs `omp-d` at small and full σ (§IV-A1's
//!   static-scheduling imbalance);
//! * **gather cost** — SIMT cost-model sensitivity: how the SlimSell
//!   advantage over Sell-C-σ depends on the load/gather price (§IV-A3's
//!   bandwidth argument);
//! * **SIMD efficiency** — lane utilization vs σ (why sorting matters on
//!   wide units).

use slimsell_analysis::report::TextTable;
use slimsell_core::{BfsOptions, Schedule};
use slimsell_simt::{CostModel, SimtConfig, SimtOptions};

use crate::dispatch::{prepare, prepare_simt, RepKind, SemiringKind};
use crate::harness::{mean_time, ExpContext};

use super::{kron_graph, roots, sigma_sweep};

/// Runs all ablations.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    tile_width(ctx)?;
    chunk_height(ctx)?;
    schedule(ctx)?;
    gather_cost(ctx)?;
    simd_efficiency(ctx)
}

fn tile_width(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let root = roots(&g, 1)[0];
    let p = prepare_simt(&g, n, RepKind::SlimSell, SemiringKind::Tropical, SimtConfig::default());
    let mut t = TextTable::new(["tile width", "total cycles", "max imbalance"]);
    let baseline = p.run(root, &SimtOptions { slimchunk: None, slimwork: true });
    let imb = |r: &slimsell_simt::SimtBfsReport| {
        r.iters.iter().map(|i| i.imbalance).fold(0.0f64, f64::max)
    };
    t.row([
        "none".to_string(),
        baseline.total_cycles().to_string(),
        format!("{:.1}", imb(&baseline)),
    ]);
    for tile in [1usize, 2, 4, 8, 16, 32, 64, 256] {
        let r = p.run(root, &SimtOptions { slimchunk: Some(tile), slimwork: true });
        t.row([tile.to_string(), r.total_cycles().to_string(), format!("{:.1}", imb(&r))]);
    }
    ctx.emit("ablate_tile", "Ablation: SlimChunk tile width (GPU-sim, sigma=n)", &t);
    Ok(())
}

fn chunk_height(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let rts = roots(&g, 2);
    let runs = ctx.runs();
    let mut t = TextTable::new(["C", "time [s]", "padding cells"]);
    for c in [4usize, 8, 16, 32] {
        let p = prepare(&g, c, n, RepKind::SlimSell, SemiringKind::Tropical);
        let secs = mean_time(runs, || {
            for &r in &rts {
                std::hint::black_box(p.run(r, &BfsOptions::default()));
            }
        });
        t.row([c.to_string(), format!("{secs:.4}"), p.padding_cells().to_string()]);
    }
    ctx.emit("ablate_c", "Ablation: chunk height C (CPU, tropical, sigma=n)", &t);
    Ok(())
}

fn schedule(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let rts = roots(&g, 2);
    let runs = ctx.runs();
    let mut t = TextTable::new(["sigma", "static [s]", "dynamic [s]"]);
    for sigma in [8usize, n] {
        let p = prepare(&g, 8, sigma, RepKind::SlimSell, SemiringKind::Tropical);
        let mut row = vec![if sigma == n { "n".to_string() } else { sigma.to_string() }];
        for sched in [Schedule::Static, Schedule::Dynamic] {
            let opts = BfsOptions::default().schedule(sched);
            let secs = mean_time(runs, || {
                for &r in &rts {
                    std::hint::black_box(p.run(r, &opts));
                }
            });
            row.push(format!("{secs:.4}"));
        }
        t.row(row);
    }
    ctx.emit("ablate_schedule", "Ablation: omp-s vs omp-d scheduling (CPU, tropical)", &t);
    Ok(())
}

fn gather_cost(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let root = roots(&g, 1)[0];
    let mut t = TextTable::new([
        "load cost [cyc]",
        "SlimSell [cyc]",
        "Sell-C-sigma [cyc]",
        "Slim advantage",
    ]);
    for load in [1u64, 2, 4, 8, 16] {
        let cost = CostModel { load, ..CostModel::DEFAULT };
        let cfg = SimtConfig { cost, ..Default::default() };
        let slim = prepare_simt(&g, n, RepKind::SlimSell, SemiringKind::Tropical, cfg)
            .run(root, &SimtOptions::default());
        let sell = prepare_simt(&g, n, RepKind::SellCSigma, SemiringKind::Tropical, cfg)
            .run(root, &SimtOptions::default());
        t.row([
            load.to_string(),
            slim.total_cycles().to_string(),
            sell.total_cycles().to_string(),
            format!("{:.3}", sell.total_cycles() as f64 / slim.total_cycles() as f64),
        ]);
    }
    ctx.emit(
        "ablate_gather",
        "Ablation: memory-cost sensitivity of SlimSell vs Sell-C-sigma (GPU-sim)",
        &t,
    );
    Ok(())
}

fn simd_efficiency(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let root = roots(&g, 1)[0];
    let mut t = TextTable::new(["log2(sigma)", "SIMD efficiency (iter 0)", "padding cells"]);
    for sigma in sigma_sweep(n) {
        let p = prepare_simt(
            &g,
            sigma,
            RepKind::SlimSell,
            SemiringKind::Tropical,
            SimtConfig::default(),
        );
        let r = p.run(root, &SimtOptions { slimwork: false, slimchunk: None });
        let pad = prepare(&g, 32, sigma, RepKind::SlimSell, SemiringKind::Tropical).padding_cells();
        t.row([
            format!("{:.0}", (sigma as f64).log2()),
            format!("{:.3}", r.iters[0].simd_efficiency),
            pad.to_string(),
        ]);
    }
    ctx.emit("ablate_simd_eff", "Ablation: lane utilization vs sorting scope (C=32)", &t);
    Ok(())
}
