//! One module per paper experiment. DESIGN.md §4 maps each to its table
//! or figure; EXPERIMENTS.md records paper-vs-measured outcomes.

pub mod ablate;
pub mod bounds;
pub mod fig1;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod frontier;
pub mod masked;
pub mod prep;
pub mod scaling;
pub mod serve;
pub mod tables;

use slimsell_gen::kronecker::KroneckerParams;
use slimsell_graph::{stats::sample_roots, CsrGraph, VertexId};

use crate::harness::ExpContext;

/// Dispatches an experiment by name.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    match ctx.args.experiment.as_str() {
        "table2" => tables::table2(ctx),
        "table3" => tables::table3(ctx),
        "table4" => tables::table4(ctx),
        "table5" => tables::table5(ctx),
        "fig1" => fig1::run(ctx),
        "fig5a" => fig5::run_sigma_sweep(ctx, fig5::Variant::KroneckerDpStatic),
        "fig5b" => fig5::run_sigma_sweep(ctx, fig5::Variant::KroneckerNoDpDynamic),
        "fig5c" => fig5::run_sigma_sweep(ctx, fig5::Variant::ErdosRenyiDpDynamic),
        "fig5d" => fig5::run_slimwork(ctx),
        "fig6a" => fig6::run_sigma_sweep(ctx, /*erdos=*/ false),
        "fig6b" => fig6::run_sigma_sweep(ctx, /*erdos=*/ true),
        "fig6c" => fig6::run_per_iteration(ctx),
        "fig6d" => fig6::run_slimchunk_sweep(ctx),
        "fig6e" => fig6::run_slimchunk_per_iteration(ctx),
        "fig7" => fig7::run(ctx),
        "fig8" => fig8::run(ctx),
        "fig9" => fig9::run(ctx),
        "fig10" => fig10::run(ctx),
        "prep" => prep::run(ctx),
        "bounds" => bounds::run(ctx),
        "scaling" => scaling::run(ctx),
        "frontier" => frontier::run(ctx),
        "masked" => masked::run(ctx),
        "serve" => serve::run(ctx),
        "ablate" => ablate::run(ctx),
        "all" => {
            for name in EXPERIMENTS {
                if *name == "all" {
                    continue;
                }
                let mut args = ctx.args.clone();
                args.experiment = name.to_string();
                run(&ExpContext { args, results_dir: ctx.results_dir.clone() })?;
            }
            Ok(())
        }
        other => {
            Err(format!("unknown experiment {other:?}; available: {}", EXPERIMENTS.join(", ")))
        }
    }
}

/// All experiment names (for `--help` and `all`).
pub const EXPERIMENTS: &[&str] = &[
    "table2", "table3", "table4", "table5", "fig1", "fig5a", "fig5b", "fig5c", "fig5d", "fig6a",
    "fig6b", "fig6c", "fig6d", "fig6e", "fig7", "fig8", "fig9", "fig10", "prep", "bounds",
    "scaling", "frontier", "masked", "serve", "ablate", "all",
];

/// Generates the context's default Kronecker graph.
pub(crate) fn kron_graph(ctx: &ExpContext) -> CsrGraph {
    slimsell_gen::kronecker(ctx.scale_log2(), ctx.rho(), KroneckerParams::GRAPH500, ctx.seed())
}

/// Generates a Kronecker graph at explicit (scale, ρ).
pub(crate) fn kron_at(scale: u32, rho: f64, seed: u64) -> CsrGraph {
    slimsell_gen::kronecker(scale, rho, KroneckerParams::GRAPH500, seed)
}

/// Generates the context's Erdős–Rényi twin: same n, average *degree*
/// matched to the paper's ER setting (ρ̄ ≈ 16 for Fig. 5c/6b means
/// `p·n ≈ 16`).
pub(crate) fn er_graph(ctx: &ExpContext) -> CsrGraph {
    let n = 1usize << ctx.scale_log2();
    let p = (ctx.rho() / n as f64).min(1.0);
    slimsell_gen::erdos_renyi_gnp(n, p, ctx.seed())
}

/// Deterministic non-isolated BFS roots.
pub(crate) fn roots(g: &CsrGraph, count: usize) -> Vec<VertexId> {
    sample_roots(g, count)
}

/// The σ sweep of Figs. 5/6: powers of two from 1 (log σ = 0) to n,
/// matching the paper's x-axis (σ a multiple of C once σ > C; smaller
/// values only reorder inside a chunk, the flat region of the plots).
pub(crate) fn sigma_sweep(n: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut s = 1usize;
    while s < n {
        v.push(s);
        s *= 4;
    }
    v.push(n);
    v
}
