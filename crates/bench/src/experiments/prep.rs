//! §IV-D: preprocessing (sorting + build) amortization.
//!
//! Measures the σ-sort + SlimSell build time against one BFS run on the
//! context's Kronecker graph and prints the amortization table; the
//! paper's datum to compare: at n = 2^24 sorting is ≈21 % of one BFS run
//! and 10 runs push preprocessing below 2 %.

use slimsell_analysis::amortize::{amortization_table, runs_to_amortize};
use slimsell_analysis::report::{fmt_secs, TextTable};
use slimsell_core::matrix::SlimSellMatrix;
use slimsell_core::{BfsEngine, BfsOptions, TropicalSemiring};

use crate::harness::{timed, ExpContext};

use super::{kron_graph, roots};

/// Runs the preprocessing analysis.
pub fn run(ctx: &ExpContext) -> Result<(), String> {
    let g = kron_graph(ctx);
    let n = g.num_vertices();
    let root = roots(&g, 1)[0];

    let (slim, t_build) = timed(|| SlimSellMatrix::<8>::build(&g, n));
    // Isolate the sorting share: building with σ = 1 skips the sort.
    let (_, t_build_nosort) = timed(|| SlimSellMatrix::<8>::build(&g, 1));
    let t_sort = (t_build - t_build_nosort).max(0.0);
    let (_, t_bfs) = timed(|| {
        std::hint::black_box(BfsEngine::run::<_, TropicalSemiring, 8>(
            &slim,
            root,
            &BfsOptions::default(),
        ))
    });

    let mut t = TextTable::new(["quantity", "value"]);
    t.row(["sigma-sort time (est.)".to_string(), fmt_secs(t_sort)]);
    t.row(["full build time".to_string(), fmt_secs(t_build)]);
    t.row(["one BFS run".to_string(), fmt_secs(t_bfs)]);
    t.row(["sort / BFS".to_string(), format!("{:.1}%", 100.0 * t_sort / t_bfs)]);
    t.row([
        "runs to get sort below 2%".to_string(),
        format!("{}", runs_to_amortize(t_sort, t_bfs, 0.02)),
    ]);
    t.row([
        "runs to get full preprocessing below 5%".to_string(),
        format!("{}", runs_to_amortize(t_build, t_bfs, 0.05)),
    ]);
    ctx.emit("prep", "Preprocessing amortization (S IV-D)", &t);

    let mut t2 = TextTable::new(["BFS runs", "preprocessing share"]);
    for (k, share) in amortization_table(t_build, t_bfs, &[1, 2, 5, 10, 20, 50, 100]) {
        t2.row([format!("{k}"), format!("{:.1}%", 100.0 * share)]);
    }
    ctx.emit("prep_table", "Preprocessing share vs number of BFS runs", &t2);
    Ok(())
}
