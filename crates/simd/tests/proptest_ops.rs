//! Property tests: every vector primitive agrees lane-wise with its
//! scalar definition from the paper's Listing 1.

use proptest::prelude::*;
use slimsell_simd::{SimdF32, SimdI32};

const C: usize = 8;

fn lanes() -> impl Strategy<Value = [f32; C]> {
    prop::array::uniform8(prop_oneof![
        Just(0.0f32),
        Just(1.0f32),
        Just(f32::INFINITY),
        -100.0f32..100.0f32,
    ])
}

proptest! {
    #[test]
    fn add_matches_scalar(a in lanes(), b in lanes()) {
        let v = SimdF32::<C>(a).add(SimdF32(b));
        for i in 0..C {
            prop_assert_eq!(v.0[i].to_bits(), (a[i] + b[i]).to_bits());
        }
    }

    #[test]
    fn mul_matches_scalar(a in lanes(), b in lanes()) {
        let v = SimdF32::<C>(a).mul(SimdF32(b));
        for i in 0..C {
            prop_assert_eq!(v.0[i].to_bits(), (a[i] * b[i]).to_bits());
        }
    }

    #[test]
    fn min_max_match_scalar(a in lanes(), b in lanes()) {
        let mn = SimdF32::<C>(a).min(SimdF32(b));
        let mx = SimdF32::<C>(a).max(SimdF32(b));
        for i in 0..C {
            prop_assert_eq!(mn.0[i], a[i].min(b[i]));
            prop_assert_eq!(mx.0[i], a[i].max(b[i]));
        }
    }

    #[test]
    fn blend_matches_ternary(a in lanes(), b in lanes(), m in lanes()) {
        let v = SimdF32::blend(SimdF32::<C>(a), SimdF32(b), SimdF32(m));
        for i in 0..C {
            let expect = if m[i] != 0.0 { b[i] } else { a[i] };
            prop_assert_eq!(v.0[i].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn cmp_masks_complementary(a in lanes(), b in lanes()) {
        let eq = SimdF32::<C>(a).cmp_eq(SimdF32(b));
        let ne = SimdF32::<C>(a).cmp_neq(SimdF32(b));
        for i in 0..C {
            prop_assert!(eq.0[i] == 0.0 || eq.0[i] == 1.0);
            prop_assert_eq!(eq.0[i] + ne.0[i], 1.0);
        }
    }

    #[test]
    fn bitwise_logical_on_01(a in prop::array::uniform8(0u8..2), b in prop::array::uniform8(0u8..2)) {
        let va = SimdF32::<C>::from_fn(|i| a[i] as f32);
        let vb = SimdF32::<C>::from_fn(|i| b[i] as f32);
        let and = va.and_bits(vb);
        let or = va.or_bits(vb);
        for i in 0..C {
            prop_assert_eq!(and.0[i], (a[i] & b[i]) as f32);
            prop_assert_eq!(or.0[i], (a[i] | b[i]) as f32);
        }
    }

    #[test]
    fn gather_respects_marker(idx in prop::array::uniform8(-1i32..16), values in prop::collection::vec(-10.0f32..10.0, 16)) {
        let g = SimdF32::<C>::gather_or(&values, SimdI32(idx), f32::INFINITY);
        for i in 0..C {
            let expect = if idx[i] >= 0 { values[idx[i] as usize] } else { f32::INFINITY };
            prop_assert_eq!(g.0[i].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn mask_not_is_involution_on_masks(m in prop::array::uniform8(0u8..2)) {
        let v = SimdF32::<C>::from_fn(|i| m[i] as f32);
        prop_assert_eq!(v.mask_not().mask_not().0, v.0);
    }
}
