//! Property tests: every explicit-SIMD backend is **bit-identical** to
//! the portable scalar lane-loop backend on every primitive, at every
//! supported lane count — the contract that makes runtime backend
//! selection (and mid-process [`set_backend`] switching) observation-free.
//!
//! Inputs deliberately include the IEEE-754 corners where naive intrinsic
//! emulation diverges from Rust scalar semantics: signed zeros (min/max
//! return the *first* operand on equal compares; blend must treat `-0.0`
//! as zero), infinities, and subnormals. NaN is covered one-sidedly by a
//! deterministic test (the engine never produces NaN, and the both-NaN
//! payload is out of contract).

use proptest::prelude::*;
use slimsell_simd::{backend_supported, set_backend, Backend, SimdF32, SimdI32};
use std::sync::Mutex;

/// Serializes backend toggling across the test threads of this binary.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const WIDE_BACKENDS: [Backend; 2] = [Backend::Avx2, Backend::Avx512];

fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    let prev = set_backend(b);
    let r = f();
    set_backend(prev);
    r
}

fn val() -> impl Strategy<Value = f32> {
    prop_oneof![
        Just(0.0f32),
        Just(-0.0f32),
        Just(1.0f32),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
        Just(1.0e-40f32), // subnormal
        -100.0f32..100.0f32,
    ]
}

fn take<const C: usize>(v: &[f32]) -> [f32; C] {
    let mut out = [0.0f32; C];
    out.copy_from_slice(&v[..C]);
    out
}

fn push<const C: usize>(out: &mut Vec<u32>, v: SimdF32<C>) {
    out.extend(v.as_array().iter().map(|x| x.to_bits()));
}

/// Runs every primitive on the given inputs under the *currently active*
/// backend and returns the concatenated bit patterns of all results.
fn digest<const C: usize>(a: [f32; C], b: [f32; C], m: [f32; C], idx: [i32; C]) -> Vec<u32> {
    let va = SimdF32::<C>(a);
    let vb = SimdF32::<C>(b);
    let vm = SimdF32::<C>(m);
    let vi = SimdI32::<C>(idx);
    let values: Vec<f32> = a.iter().chain(b.iter()).copied().collect();
    let mut out = Vec::new();
    push(&mut out, SimdF32::<C>::load(&a));
    let mut stored = vec![0.0f32; C];
    va.store(&mut stored);
    out.extend(stored.iter().map(|x| x.to_bits()));
    push(&mut out, SimdF32::<C>::gather_or(&values, vi, f32::INFINITY));
    push(&mut out, va.cmp_eq(vb));
    push(&mut out, va.cmp_neq(vb));
    push(&mut out, SimdF32::blend(va, vb, vm));
    push(&mut out, va.min(vb));
    push(&mut out, va.max(vb));
    push(&mut out, va.add(vb));
    push(&mut out, va.mul(vb));
    push(&mut out, va.and_bits(vb));
    push(&mut out, va.or_bits(vb));
    out.push(va.any_nonzero() as u32);
    out.push(va.any_ne(vb) as u32);
    out.push(va.ne_bits(vb));
    push(&mut out, vi.cmp_eq_mask(SimdI32::minus_ones()));
    push(&mut out, vi.to_f32());
    out
}

fn check_backends<const C: usize>(a: &[f32], b: &[f32], m: &[f32], idx: &[i32]) {
    let (a, b, m) = (take::<C>(a), take::<C>(b), take::<C>(m));
    let mut ix = [0i32; C];
    ix.copy_from_slice(&idx[..C]);
    let reference = with_backend(Backend::Scalar, || digest(a, b, m, ix));
    for be in WIDE_BACKENDS {
        if !backend_supported(be) {
            continue;
        }
        let got = with_backend(be, || digest(a, b, m, ix));
        assert_eq!(got, reference, "backend {} diverged at C={C}", be.name());
    }
}

proptest! {
    #[test]
    fn all_backends_bit_identical(
        a in prop::collection::vec(val(), 32),
        b in prop::collection::vec(val(), 32),
        m in prop::collection::vec(val(), 32),
        // `digest` gathers from a 2C-element buffer; keep indices valid
        // for the smallest C (the OOB path has its own deterministic test).
        idx in prop::collection::vec(-1i32..8, 32),
    ) {
        let _g = lock();
        check_backends::<4>(&a, &b, &m, &idx);
        check_backends::<8>(&a, &b, &m, &idx);
        check_backends::<16>(&a, &b, &m, &idx);
        check_backends::<32>(&a, &b, &m, &idx);
    }
}

/// Signed zeros and one-sided NaN: the exact corners where `vminps`
/// operand order matters. `f32::min(-0.0, +0.0)` must stay `-0.0`
/// (first operand), `min(NaN, x)` and `min(x, NaN)` must both be `x`,
/// on every backend.
#[test]
fn min_max_corner_cases_every_backend() {
    let _g = lock();
    let cases: [(f32, f32); 8] = [
        (-0.0, 0.0),
        (0.0, -0.0),
        (f32::NAN, 1.0),
        (1.0, f32::NAN),
        (f32::INFINITY, f32::NEG_INFINITY),
        (f32::NEG_INFINITY, f32::INFINITY),
        (2.0, 2.0),
        (-3.5, 7.25),
    ];
    for be in [Backend::Scalar, Backend::Avx2, Backend::Avx512] {
        if !backend_supported(be) {
            continue;
        }
        with_backend(be, || {
            for (x, y) in cases {
                let a = SimdF32::<8>::splat(x);
                let b = SimdF32::<8>::splat(y);
                let (mn, mx) = (a.min(b), a.max(b));
                for i in 0..8 {
                    assert_eq!(
                        mn.0[i].to_bits(),
                        x.min(y).to_bits(),
                        "min({x}, {y}) on {}",
                        be.name()
                    );
                    assert_eq!(
                        mx.0[i].to_bits(),
                        x.max(y).to_bits(),
                        "max({x}, {y}) on {}",
                        be.name()
                    );
                }
            }
        });
    }
}

/// `-0.0` is numerically zero: blend must select `a`, cmp_neq must say
/// "equal", any_ne must say "same" — while ne_bits (bitwise) must flag
/// the lane. Pinned on every backend.
#[test]
fn signed_zero_mask_semantics_every_backend() {
    let _g = lock();
    for be in [Backend::Scalar, Backend::Avx2, Backend::Avx512] {
        if !backend_supported(be) {
            continue;
        }
        with_backend(be, || {
            let pz = SimdF32::<8>::splat(0.0);
            let nz = SimdF32::<8>::splat(-0.0);
            let a = SimdF32::<8>::splat(10.0);
            let b = SimdF32::<8>::splat(20.0);
            assert_eq!(SimdF32::blend(a, b, nz).0, [10.0; 8], "{}", be.name());
            assert_eq!(pz.cmp_neq(nz).0, [0.0; 8], "{}", be.name());
            assert!(!pz.any_ne(nz), "{}", be.name());
            assert!(!nz.any_nonzero(), "{}", be.name());
            assert_eq!(pz.ne_bits(nz), 0xff, "{}", be.name());
            assert_eq!(pz.ne_bits(pz), 0, "{}", be.name());
        });
    }
}

/// Out-of-bounds gather indices must panic identically (the portable
/// slice-index path) regardless of backend.
#[test]
fn gather_out_of_bounds_panics_every_backend() {
    let _g = lock();
    for be in [Backend::Scalar, Backend::Avx2, Backend::Avx512] {
        if !backend_supported(be) {
            continue;
        }
        let result = std::panic::catch_unwind(|| {
            with_backend(be, || {
                let values = [1.0f32; 4];
                SimdF32::<8>::gather_or(&values, SimdI32::from_fn(|i| i as i32), 0.0)
            })
        });
        assert!(result.is_err(), "OOB gather must panic on {}", be.name());
        // catch_unwind with the backend still switched: restore.
        set_backend(Backend::Scalar);
    }
    set_backend(slimsell_simd::detect_best());
}
