//! Runtime SIMD backend selection.
//!
//! The portable lane loops in [`crate::f32xc`]/[`crate::i32xc`] are
//! correct everywhere, but whether they compile to the packed
//! instructions of the paper's Listing 2 depends on the build's target
//! features. This module removes that correctness-irrelevant but
//! performance-critical dependence on compile flags: the explicit
//! intrinsics backend in `crate::x86` is selected **once per process
//! at run time** from CPUID (`is_x86_feature_detected!`), so a binary
//! built with the default (SSE2-baseline) target features still executes
//! `vminps`/`vblendvps`/`vgatherdps` on hardware that has them.
//!
//! Selection order:
//!
//! 1. `SLIMSELL_SIMD` — `auto` (default), `scalar`, `avx2`, `avx512`.
//!    Anything else panics loudly (same policy as `SLIMSELL_SWEEP`), and
//!    requesting a backend the CPU cannot run panics too: an explicit
//!    request that cannot be honored must not silently degrade.
//! 2. `auto`/unset: the best backend the CPU supports — AVX-512 if
//!    `avx512f` is detected, else AVX2 if `avx2` is detected, else the
//!    portable scalar lane loops. Non-x86_64 hosts always resolve to
//!    [`Backend::Scalar`].
//!
//! Every backend is **bit-identical** on every primitive (pinned by the
//! `backend_equivalence` property suite), so the choice — including a
//! mid-process [`set_backend`] switch, which benches use to measure the
//! scalar-vs-simd axis in one process — is observation-free for results.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation backs the `SimdF32`/`SimdI32` primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable fixed-trip lane loops (the universal fallback).
    Scalar,
    /// x86 intrinsics: 128-bit (C=4) and 256-bit (C=8; wider lane counts
    /// in 256-bit groups) paths, gated on the `avx2` CPU feature.
    Avx2,
    /// x86 intrinsics: additionally 512-bit paths for C ∈ {16, 32},
    /// gated on the `avx512f` CPU feature (implies the AVX2 paths for
    /// C ∈ {4, 8}).
    Avx512,
}

impl Backend {
    /// Stable lowercase name (the `SLIMSELL_SIMD` vocabulary, also used
    /// in `BENCH_scaling.json`'s `simd` field).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }
}

/// 0 = uninitialized; otherwise `Backend` discriminant + 1.
static BACKEND: AtomicU8 = AtomicU8::new(0);

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 1,
        Backend::Avx2 => 2,
        Backend::Avx512 => 3,
    }
}

fn decode(v: u8) -> Option<Backend> {
    match v {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Avx2),
        3 => Some(Backend::Avx512),
        _ => None,
    }
}

/// Whether this process can run `b` (CPUID check; [`Backend::Scalar`]
/// is always supported, everything else never is off x86_64).
pub fn backend_supported(b: Backend) -> bool {
    match b {
        Backend::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// The best backend the current CPU supports.
pub fn detect_best() -> Backend {
    if backend_supported(Backend::Avx512) {
        Backend::Avx512
    } else if backend_supported(Backend::Avx2) {
        Backend::Avx2
    } else {
        Backend::Scalar
    }
}

fn init_from_env() -> Backend {
    let b = match std::env::var("SLIMSELL_SIMD").as_deref() {
        Err(_) | Ok("auto") | Ok("") => detect_best(),
        Ok("scalar") => Backend::Scalar,
        Ok("avx2") => Backend::Avx2,
        Ok("avx512") => Backend::Avx512,
        Ok(other) => {
            panic!("unrecognized SLIMSELL_SIMD value {other:?} (use auto, scalar, avx2, or avx512)")
        }
    };
    assert!(
        backend_supported(b),
        "SLIMSELL_SIMD={} requested but the CPU does not support it (detected best: {})",
        b.name(),
        detect_best().name(),
    );
    // `store` rather than CAS: concurrent first calls compute the same
    // value, so the race is benign.
    BACKEND.store(encode(b), Ordering::Relaxed);
    b
}

/// The process-wide active backend, resolving `SLIMSELL_SIMD` on first
/// use. Cheap enough to call per primitive (one relaxed atomic load).
#[inline]
pub fn active_backend() -> Backend {
    match decode(BACKEND.load(Ordering::Relaxed)) {
        Some(b) => b,
        None => init_from_env(),
    }
}

/// Overrides the active backend for the rest of the process (or until
/// the next call), returning the previously active one — how tests and
/// the `repro scaling --simd` bench sweep the scalar-vs-simd axis
/// within a single process. Safe to flip mid-computation because every
/// backend is bit-identical on every primitive.
///
/// # Panics
/// Panics if the CPU does not support `b` (see [`backend_supported`]).
pub fn set_backend(b: Backend) -> Backend {
    assert!(
        backend_supported(b),
        "cannot select SIMD backend {}: unsupported on this CPU (detected best: {})",
        b.name(),
        detect_best().name(),
    );
    let prev = active_backend();
    BACKEND.store(encode(b), Ordering::Relaxed);
    prev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_supported_and_settable() {
        assert!(backend_supported(Backend::Scalar));
        let prev = set_backend(Backend::Scalar);
        assert_eq!(active_backend(), Backend::Scalar);
        set_backend(prev);
    }

    #[test]
    fn detect_best_is_supported_and_sticky() {
        let best = detect_best();
        assert!(backend_supported(best));
        let prev = set_backend(best);
        assert_eq!(active_backend(), best);
        set_backend(prev);
    }

    #[test]
    fn names_round_trip() {
        for b in [Backend::Scalar, Backend::Avx2, Backend::Avx512] {
            assert!(!b.name().is_empty());
        }
        assert_eq!(Backend::Avx2.name(), "avx2");
    }
}
