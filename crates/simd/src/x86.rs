//! Explicit x86 SIMD backend for the `SimdF32`/`SimdI32` primitives.
//!
//! Each width module (`w4` = 128-bit, `w8` = 256-bit, `w16` = 512-bit)
//! implements the Listing-2 primitive set with `std::arch` intrinsics,
//! operating on raw lane pointers in groups of the register width so that
//! every supported `C` gets an explicit-SIMD path under any non-scalar
//! backend: C=4 → one 128-bit group, C=8 → one 256-bit group, C∈{16,32}
//! → `C/16` 512-bit groups under AVX-512 or `C/8` 256-bit groups under
//! AVX2. The `pub(crate)` glue functions at the bottom dispatch on
//! ([`active_backend`], `C`) and return `None` when the portable lane
//! loop should run instead (scalar backend, or a gather that must take
//! the panicking slice-index path).
//!
//! # Bit-identity contract
//!
//! Every function here must be bit-identical to the portable lane loop it
//! replaces (pinned by the `backend_equivalence` property suite). The
//! non-obvious cases:
//!
//! * **min/max**: `f32::min(a, b)` returns the *first* operand when the
//!   operands compare equal (so `min(-0.0, +0.0) == -0.0`) and the other
//!   operand when exactly one is NaN, while `vminps(x, y)` returns the
//!   *second* operand on equal or unordered. Emulation: `vminps(b, a)`
//!   (operands swapped, so equal → `a`, `b` NaN → `a`), then a blend to
//!   `b` where `a` is NaN. The engine never produces NaN, so the
//!   both-NaN payload is out of contract.
//! * **blend**: the scalar contract is `mask != 0.0 ? b : a`, so `-0.0`
//!   must select `a`; a raw sign-bit `vblendvps` on the mask would take
//!   `b`. The mask is first compared `NEQ_UQ` against zero (unordered →
//!   true, matching scalar `!=` on NaN).
//! * **gather_or**: only lanes with `idx >= 0` may touch memory (masked
//!   gather with the `idx > -1` compare as the lane mask); an in-range
//!   check is done vectorially first, and any out-of-bounds lane makes
//!   the glue return `None` so the portable loop raises the standard
//!   slice-index panic.
//! * **cvtdq2ps** is bit-identical to `as f32` (round-to-nearest-even,
//!   verified including `i32::MIN/MAX` and 2^24+1).

use crate::backend::{active_backend, Backend};

/// 128-bit lane groups. Gated on `avx2` (not bare SSE) because the
/// masked-gather primitive `_mm_mask_i32gather_ps` is an AVX2
/// instruction; the runtime backend check covers the whole module.
mod w4 {
    use core::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn ld(p: *const f32, k: usize) -> __m128 {
        _mm_loadu_ps(p.add(k * 4))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn st(p: *mut f32, k: usize, v: __m128) {
        _mm_storeu_ps(p.add(k * 4), v)
    }

    macro_rules! bin4 {
        ($name:ident, |$x:ident, $y:ident| $body:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(a: *const f32, b: *const f32, out: *mut f32, n: usize) {
                for k in 0..n {
                    let $x = ld(a, k);
                    let $y = ld(b, k);
                    st(out, k, $body);
                }
            }
        };
    }

    bin4!(add, |x, y| _mm_add_ps(x, y));
    bin4!(mul, |x, y| _mm_mul_ps(x, y));
    bin4!(and_bits, |x, y| _mm_and_ps(x, y));
    bin4!(or_bits, |x, y| _mm_or_ps(x, y));
    // Swapped operands + NaN fixup: see module docs.
    bin4!(min, |x, y| {
        let r = _mm_min_ps(y, x);
        _mm_blendv_ps(r, y, _mm_cmpunord_ps(x, x))
    });
    bin4!(max, |x, y| {
        let r = _mm_max_ps(y, x);
        _mm_blendv_ps(r, y, _mm_cmpunord_ps(x, x))
    });
    bin4!(cmp_eq, |x, y| _mm_and_ps(_mm_cmpeq_ps(x, y), _mm_set1_ps(1.0)));
    bin4!(cmp_neq, |x, y| _mm_and_ps(_mm_cmpneq_ps(x, y), _mm_set1_ps(1.0)));

    #[target_feature(enable = "avx2")]
    pub unsafe fn copy(src: *const f32, out: *mut f32, n: usize) {
        for k in 0..n {
            st(out, k, ld(src, k));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn blend(a: *const f32, b: *const f32, m: *const f32, out: *mut f32, n: usize) {
        for k in 0..n {
            let sel = _mm_cmpneq_ps(ld(m, k), _mm_setzero_ps());
            st(out, k, _mm_blendv_ps(ld(a, k), ld(b, k), sel));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn any_ne(a: *const f32, b: *const f32, n: usize) -> bool {
        let mut m = 0;
        for k in 0..n {
            m |= _mm_movemask_ps(_mm_cmpneq_ps(ld(a, k), ld(b, k)));
        }
        m != 0
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn ne_bits(a: *const f32, b: *const f32, n: usize) -> u32 {
        let mut m = 0u32;
        for k in 0..n {
            let ai = _mm_loadu_si128(a.add(k * 4) as *const __m128i);
            let bi = _mm_loadu_si128(b.add(k * 4) as *const __m128i);
            let eq = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(ai, bi))) as u32;
            m |= (!eq & 0xf) << (k * 4);
        }
        m
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gather(
        values: *const f32,
        len: i32,
        idx: *const i32,
        default: f32,
        out: *mut f32,
        n: usize,
    ) -> bool {
        let m_ones = _mm_set1_epi32(-1);
        let lim = _mm_set1_epi32(len - 1);
        let def = _mm_set1_ps(default);
        for k in 0..n {
            let ix = _mm_loadu_si128(idx.add(k * 4) as *const __m128i);
            let ge0 = _mm_cmpgt_epi32(ix, m_ones);
            let oob = _mm_and_si128(ge0, _mm_cmpgt_epi32(ix, lim));
            if _mm_movemask_epi8(oob) != 0 {
                return false;
            }
            let g = _mm_mask_i32gather_ps::<4>(def, values, ix, _mm_castsi128_ps(ge0));
            st(out, k, g);
        }
        true
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn i32_cmp_eq_mask(a: *const i32, b: *const i32, out: *mut f32, n: usize) {
        for k in 0..n {
            let ai = _mm_loadu_si128(a.add(k * 4) as *const __m128i);
            let bi = _mm_loadu_si128(b.add(k * 4) as *const __m128i);
            let eq = _mm_castsi128_ps(_mm_cmpeq_epi32(ai, bi));
            st(out, k, _mm_and_ps(eq, _mm_set1_ps(1.0)));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn i32_to_f32(a: *const i32, out: *mut f32, n: usize) {
        for k in 0..n {
            let ai = _mm_loadu_si128(a.add(k * 4) as *const __m128i);
            st(out, k, _mm_cvtepi32_ps(ai));
        }
    }
}

/// 256-bit lane groups (AVX2) — the paper's §IV-A configuration.
mod w8 {
    use core::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn ld(p: *const f32, k: usize) -> __m256 {
        _mm256_loadu_ps(p.add(k * 8))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn st(p: *mut f32, k: usize, v: __m256) {
        _mm256_storeu_ps(p.add(k * 8), v)
    }

    macro_rules! bin8 {
        ($name:ident, |$x:ident, $y:ident| $body:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(a: *const f32, b: *const f32, out: *mut f32, n: usize) {
                for k in 0..n {
                    let $x = ld(a, k);
                    let $y = ld(b, k);
                    st(out, k, $body);
                }
            }
        };
    }

    bin8!(add, |x, y| _mm256_add_ps(x, y));
    bin8!(mul, |x, y| _mm256_mul_ps(x, y));
    bin8!(and_bits, |x, y| _mm256_and_ps(x, y));
    bin8!(or_bits, |x, y| _mm256_or_ps(x, y));
    // Swapped operands + NaN fixup: see module docs.
    bin8!(min, |x, y| {
        let r = _mm256_min_ps(y, x);
        _mm256_blendv_ps(r, y, _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x))
    });
    bin8!(max, |x, y| {
        let r = _mm256_max_ps(y, x);
        _mm256_blendv_ps(r, y, _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x))
    });
    bin8!(cmp_eq, |x, y| _mm256_and_ps(_mm256_cmp_ps::<_CMP_EQ_OQ>(x, y), _mm256_set1_ps(1.0)));
    bin8!(cmp_neq, |x, y| _mm256_and_ps(_mm256_cmp_ps::<_CMP_NEQ_UQ>(x, y), _mm256_set1_ps(1.0)));

    #[target_feature(enable = "avx2")]
    pub unsafe fn copy(src: *const f32, out: *mut f32, n: usize) {
        for k in 0..n {
            st(out, k, ld(src, k));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn blend(a: *const f32, b: *const f32, m: *const f32, out: *mut f32, n: usize) {
        for k in 0..n {
            let sel = _mm256_cmp_ps::<_CMP_NEQ_UQ>(ld(m, k), _mm256_setzero_ps());
            st(out, k, _mm256_blendv_ps(ld(a, k), ld(b, k), sel));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn any_ne(a: *const f32, b: *const f32, n: usize) -> bool {
        let mut m = 0;
        for k in 0..n {
            m |= _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_NEQ_UQ>(ld(a, k), ld(b, k)));
        }
        m != 0
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn ne_bits(a: *const f32, b: *const f32, n: usize) -> u32 {
        let mut m = 0u32;
        for k in 0..n {
            let ai = _mm256_loadu_si256(a.add(k * 8) as *const __m256i);
            let bi = _mm256_loadu_si256(b.add(k * 8) as *const __m256i);
            let eq = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(ai, bi))) as u32;
            m |= (!eq & 0xff) << (k * 8);
        }
        m
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gather(
        values: *const f32,
        len: i32,
        idx: *const i32,
        default: f32,
        out: *mut f32,
        n: usize,
    ) -> bool {
        let m_ones = _mm256_set1_epi32(-1);
        let lim = _mm256_set1_epi32(len - 1);
        let def = _mm256_set1_ps(default);
        for k in 0..n {
            let ix = _mm256_loadu_si256(idx.add(k * 8) as *const __m256i);
            let ge0 = _mm256_cmpgt_epi32(ix, m_ones);
            let oob = _mm256_and_si256(ge0, _mm256_cmpgt_epi32(ix, lim));
            if _mm256_movemask_epi8(oob) != 0 {
                return false;
            }
            let g = _mm256_mask_i32gather_ps::<4>(def, values, ix, _mm256_castsi256_ps(ge0));
            st(out, k, g);
        }
        true
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn i32_cmp_eq_mask(a: *const i32, b: *const i32, out: *mut f32, n: usize) {
        for k in 0..n {
            let ai = _mm256_loadu_si256(a.add(k * 8) as *const __m256i);
            let bi = _mm256_loadu_si256(b.add(k * 8) as *const __m256i);
            let eq = _mm256_castsi256_ps(_mm256_cmpeq_epi32(ai, bi));
            st(out, k, _mm256_and_ps(eq, _mm256_set1_ps(1.0)));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn i32_to_f32(a: *const i32, out: *mut f32, n: usize) {
        for k in 0..n {
            let ai = _mm256_loadu_si256(a.add(k * 8) as *const __m256i);
            st(out, k, _mm256_cvtepi32_ps(ai));
        }
    }
}

/// 512-bit lane groups (AVX-512 F) — the paper's KNL configuration.
/// Compares produce `__mmask16` registers rather than vector masks.
mod w16 {
    use core::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn ld(p: *const f32, k: usize) -> __m512 {
        _mm512_loadu_ps(p.add(k * 16))
    }

    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn st(p: *mut f32, k: usize, v: __m512) {
        _mm512_storeu_ps(p.add(k * 16), v)
    }

    macro_rules! bin16 {
        ($name:ident, |$x:ident, $y:ident| $body:expr) => {
            #[target_feature(enable = "avx512f")]
            pub unsafe fn $name(a: *const f32, b: *const f32, out: *mut f32, n: usize) {
                for k in 0..n {
                    let $x = ld(a, k);
                    let $y = ld(b, k);
                    st(out, k, $body);
                }
            }
        };
    }

    bin16!(add, |x, y| _mm512_add_ps(x, y));
    bin16!(mul, |x, y| _mm512_mul_ps(x, y));
    bin16!(and_bits, |x, y| _mm512_castsi512_ps(_mm512_and_si512(
        _mm512_castps_si512(x),
        _mm512_castps_si512(y)
    )));
    bin16!(or_bits, |x, y| _mm512_castsi512_ps(_mm512_or_si512(
        _mm512_castps_si512(x),
        _mm512_castps_si512(y)
    )));
    // Swapped operands + NaN fixup: see module docs.
    bin16!(min, |x, y| {
        let r = _mm512_min_ps(y, x);
        _mm512_mask_blend_ps(_mm512_cmp_ps_mask::<_CMP_UNORD_Q>(x, x), r, y)
    });
    bin16!(max, |x, y| {
        let r = _mm512_max_ps(y, x);
        _mm512_mask_blend_ps(_mm512_cmp_ps_mask::<_CMP_UNORD_Q>(x, x), r, y)
    });
    bin16!(cmp_eq, |x, y| _mm512_maskz_mov_ps(
        _mm512_cmp_ps_mask::<_CMP_EQ_OQ>(x, y),
        _mm512_set1_ps(1.0)
    ));
    bin16!(cmp_neq, |x, y| _mm512_maskz_mov_ps(
        _mm512_cmp_ps_mask::<_CMP_NEQ_UQ>(x, y),
        _mm512_set1_ps(1.0)
    ));

    #[target_feature(enable = "avx512f")]
    pub unsafe fn copy(src: *const f32, out: *mut f32, n: usize) {
        for k in 0..n {
            st(out, k, ld(src, k));
        }
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn blend(a: *const f32, b: *const f32, m: *const f32, out: *mut f32, n: usize) {
        for k in 0..n {
            let sel = _mm512_cmp_ps_mask::<_CMP_NEQ_UQ>(ld(m, k), _mm512_setzero_ps());
            st(out, k, _mm512_mask_blend_ps(sel, ld(a, k), ld(b, k)));
        }
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn any_ne(a: *const f32, b: *const f32, n: usize) -> bool {
        let mut m = 0u16;
        for k in 0..n {
            m |= _mm512_cmp_ps_mask::<_CMP_NEQ_UQ>(ld(a, k), ld(b, k));
        }
        m != 0
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn ne_bits(a: *const f32, b: *const f32, n: usize) -> u32 {
        let mut m = 0u32;
        for k in 0..n {
            let ai = _mm512_loadu_si512(a.add(k * 16) as *const _);
            let bi = _mm512_loadu_si512(b.add(k * 16) as *const _);
            m |= (_mm512_cmpneq_epi32_mask(ai, bi) as u32) << (k * 16);
        }
        m
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn gather(
        values: *const f32,
        len: i32,
        idx: *const i32,
        default: f32,
        out: *mut f32,
        n: usize,
    ) -> bool {
        let m_ones = _mm512_set1_epi32(-1);
        let lim = _mm512_set1_epi32(len - 1);
        let def = _mm512_set1_ps(default);
        for k in 0..n {
            let ix = _mm512_loadu_si512(idx.add(k * 16) as *const _);
            let ge0 = _mm512_cmpgt_epi32_mask(ix, m_ones);
            if ge0 & _mm512_cmpgt_epi32_mask(ix, lim) != 0 {
                return false;
            }
            let g = _mm512_mask_i32gather_ps::<4>(def, ge0, ix, values);
            st(out, k, g);
        }
        true
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn i32_cmp_eq_mask(a: *const i32, b: *const i32, out: *mut f32, n: usize) {
        for k in 0..n {
            let ai = _mm512_loadu_si512(a.add(k * 16) as *const _);
            let bi = _mm512_loadu_si512(b.add(k * 16) as *const _);
            let eq = _mm512_cmpeq_epi32_mask(ai, bi);
            st(out, k, _mm512_maskz_mov_ps(eq, _mm512_set1_ps(1.0)));
        }
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn i32_to_f32(a: *const i32, out: *mut f32, n: usize) {
        for k in 0..n {
            let ai = _mm512_loadu_si512(a.add(k * 16) as *const _);
            st(out, k, _mm512_cvtepi32_ps(ai));
        }
    }
}

/// The active backend if it has explicit-SIMD paths, else `None`.
#[inline]
fn wide_backend() -> Option<Backend> {
    match active_backend() {
        Backend::Scalar => None,
        b => Some(b),
    }
}

macro_rules! bin_glue {
    ($name:ident, $op:ident) => {
        #[inline]
        pub(crate) fn $name<const C: usize>(a: &[f32; C], b: &[f32; C]) -> Option<[f32; C]> {
            let be = wide_backend()?;
            let mut out = [0.0f32; C];
            unsafe {
                match C {
                    4 => w4::$op(a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), 1),
                    8 => w8::$op(a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), 1),
                    16 | 32 => {
                        if be == Backend::Avx512 {
                            w16::$op(a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), C / 16)
                        } else {
                            w8::$op(a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), C / 8)
                        }
                    }
                    _ => return None,
                }
            }
            Some(out)
        }
    };
}

bin_glue!(add, add);
bin_glue!(mul, mul);
bin_glue!(min, min);
bin_glue!(max, max);
bin_glue!(and_bits, and_bits);
bin_glue!(or_bits, or_bits);
bin_glue!(cmp_eq, cmp_eq);
bin_glue!(cmp_neq, cmp_neq);

#[inline]
pub(crate) fn copy<const C: usize>(src: &[f32]) -> Option<[f32; C]> {
    let be = wide_backend()?;
    // Length check stays with the caller's portable panic path.
    if src.len() < C {
        return None;
    }
    let mut out = [0.0f32; C];
    unsafe {
        match C {
            4 => w4::copy(src.as_ptr(), out.as_mut_ptr(), 1),
            8 => w8::copy(src.as_ptr(), out.as_mut_ptr(), 1),
            16 | 32 => {
                if be == Backend::Avx512 {
                    w16::copy(src.as_ptr(), out.as_mut_ptr(), C / 16)
                } else {
                    w8::copy(src.as_ptr(), out.as_mut_ptr(), C / 8)
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

#[inline]
pub(crate) fn store<const C: usize>(v: &[f32; C], dst: &mut [f32]) -> Option<()> {
    let be = wide_backend()?;
    if dst.len() < C {
        return None;
    }
    unsafe {
        match C {
            4 => w4::copy(v.as_ptr(), dst.as_mut_ptr(), 1),
            8 => w8::copy(v.as_ptr(), dst.as_mut_ptr(), 1),
            16 | 32 => {
                if be == Backend::Avx512 {
                    w16::copy(v.as_ptr(), dst.as_mut_ptr(), C / 16)
                } else {
                    w8::copy(v.as_ptr(), dst.as_mut_ptr(), C / 8)
                }
            }
            _ => return None,
        }
    }
    Some(())
}

#[inline]
pub(crate) fn blend<const C: usize>(a: &[f32; C], b: &[f32; C], m: &[f32; C]) -> Option<[f32; C]> {
    let be = wide_backend()?;
    let mut out = [0.0f32; C];
    unsafe {
        match C {
            4 => w4::blend(a.as_ptr(), b.as_ptr(), m.as_ptr(), out.as_mut_ptr(), 1),
            8 => w8::blend(a.as_ptr(), b.as_ptr(), m.as_ptr(), out.as_mut_ptr(), 1),
            16 | 32 => {
                if be == Backend::Avx512 {
                    w16::blend(a.as_ptr(), b.as_ptr(), m.as_ptr(), out.as_mut_ptr(), C / 16)
                } else {
                    w8::blend(a.as_ptr(), b.as_ptr(), m.as_ptr(), out.as_mut_ptr(), C / 8)
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

#[inline]
pub(crate) fn any_ne<const C: usize>(a: &[f32; C], b: &[f32; C]) -> Option<bool> {
    let be = wide_backend()?;
    unsafe {
        match C {
            4 => Some(w4::any_ne(a.as_ptr(), b.as_ptr(), 1)),
            8 => Some(w8::any_ne(a.as_ptr(), b.as_ptr(), 1)),
            16 | 32 => {
                if be == Backend::Avx512 {
                    Some(w16::any_ne(a.as_ptr(), b.as_ptr(), C / 16))
                } else {
                    Some(w8::any_ne(a.as_ptr(), b.as_ptr(), C / 8))
                }
            }
            _ => None,
        }
    }
}

#[inline]
pub(crate) fn ne_bits<const C: usize>(a: &[f32; C], b: &[f32; C]) -> Option<u32> {
    let be = wide_backend()?;
    unsafe {
        match C {
            4 => Some(w4::ne_bits(a.as_ptr(), b.as_ptr(), 1)),
            8 => Some(w8::ne_bits(a.as_ptr(), b.as_ptr(), 1)),
            16 | 32 => {
                if be == Backend::Avx512 {
                    Some(w16::ne_bits(a.as_ptr(), b.as_ptr(), C / 16))
                } else {
                    Some(w8::ne_bits(a.as_ptr(), b.as_ptr(), C / 8))
                }
            }
            _ => None,
        }
    }
}

#[inline]
pub(crate) fn gather_or<const C: usize>(
    values: &[f32],
    idx: &[i32; C],
    default: f32,
) -> Option<[f32; C]> {
    let be = wide_backend()?;
    if values.len() > i32::MAX as usize {
        return None;
    }
    let len = values.len() as i32;
    let mut out = [0.0f32; C];
    let ok = unsafe {
        match C {
            4 => w4::gather(values.as_ptr(), len, idx.as_ptr(), default, out.as_mut_ptr(), 1),
            8 => w8::gather(values.as_ptr(), len, idx.as_ptr(), default, out.as_mut_ptr(), 1),
            16 | 32 => {
                if be == Backend::Avx512 {
                    w16::gather(
                        values.as_ptr(),
                        len,
                        idx.as_ptr(),
                        default,
                        out.as_mut_ptr(),
                        C / 16,
                    )
                } else {
                    w8::gather(values.as_ptr(), len, idx.as_ptr(), default, out.as_mut_ptr(), C / 8)
                }
            }
            _ => return None,
        }
    };
    // Out-of-bounds lane: take the portable path so the standard
    // slice-index panic fires with its usual message.
    if ok {
        Some(out)
    } else {
        None
    }
}

#[inline]
pub(crate) fn i32_cmp_eq_mask<const C: usize>(a: &[i32; C], b: &[i32; C]) -> Option<[f32; C]> {
    let be = wide_backend()?;
    let mut out = [0.0f32; C];
    unsafe {
        match C {
            4 => w4::i32_cmp_eq_mask(a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), 1),
            8 => w8::i32_cmp_eq_mask(a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), 1),
            16 | 32 => {
                if be == Backend::Avx512 {
                    w16::i32_cmp_eq_mask(a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), C / 16)
                } else {
                    w8::i32_cmp_eq_mask(a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), C / 8)
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

#[inline]
pub(crate) fn i32_to_f32<const C: usize>(a: &[i32; C]) -> Option<[f32; C]> {
    let be = wide_backend()?;
    let mut out = [0.0f32; C];
    unsafe {
        match C {
            4 => w4::i32_to_f32(a.as_ptr(), out.as_mut_ptr(), 1),
            8 => w8::i32_to_f32(a.as_ptr(), out.as_mut_ptr(), 1),
            16 | 32 => {
                if be == Backend::Avx512 {
                    w16::i32_to_f32(a.as_ptr(), out.as_mut_ptr(), C / 16)
                } else {
                    w8::i32_to_f32(a.as_ptr(), out.as_mut_ptr(), C / 8)
                }
            }
            _ => return None,
        }
    }
    Some(out)
}
