//! Portable SIMD abstraction for the SlimSell kernels.
//!
//! This crate is the Rust counterpart of the paper's Listing 1/2: a small
//! set of vector primitives (`LOAD`, `STORE`, `SET`, `CMP`, `BLEND`,
//! `MIN`, `MAX`, `ADD`, `MUL`, `AND`, `OR`) over vectors of `C` lanes.
//! The lane count `C` is a `const` generic so the same kernels run in the
//! paper's three configurations:
//!
//! | C  | architecture modeled                                    |
//! |----|---------------------------------------------------------|
//! | 8  | AVX2 CPU (256-bit registers, 32-bit elements, §IV-A)    |
//! | 16 | Xeon Phi KNL (512-bit AVX-512 units, §IV-C)             |
//! | 32 | GPU warp (32 SIMT lanes, §IV-B)                         |
//!
//! Implementation note: stable Rust has no `std::simd`, so the *portable*
//! implementation of each primitive is a fixed-trip-count lane loop over a
//! `#[repr(align(64))]` array. On x86-64 the primitives additionally have
//! an explicit `std::arch` intrinsics backend ([`backend`], `x86`) that is
//! selected **once per process at run time** from CPUID — so a binary
//! built with the default target features still executes the very
//! instructions Listing 2 names (`vminps`, `vaddps`, `vblendvps`,
//! `vgatherdps`, …) on hardware that has them, with no dependence on
//! `-C target-cpu=native` build flags (see `.cargo/config.toml` for the
//! optional opt-in). The `SLIMSELL_SIMD={auto,scalar,avx2,avx512}`
//! environment variable overrides the selection; every backend is
//! bit-identical to the portable lane loops.
//!
//! Mask convention: comparison results are *numeric* masks holding `0.0`
//! or `1.0` per lane, matching the paper's Listing 1 ("return a vector
//! with binary outcome of each comparison (0/1)"); `BLEND` treats any
//! non-zero lane as "take b". The paper's boolean-semiring kernels apply
//! bitwise `AND`/`OR` to such masks; for values restricted to
//! {0.0, 1.0} the IEEE-754 bit patterns make bitwise and/or coincide with
//! logical and/or, a property [`SimdF32::and_bits`] relies on and the
//! unit tests pin down.

// The fixed-trip `for i in 0..C` lane loops ARE the vectorization idiom this
// crate is built around (see module docs above), and `add`/`mul`/`min`/`max`
// deliberately mirror the paper's Listing-1 primitive names rather than the
// `std::ops` traits.
#![allow(clippy::needless_range_loop, clippy::should_implement_trait)]

pub mod backend;
pub mod f32xc;
pub mod i32xc;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

pub use backend::{active_backend, backend_supported, detect_best, set_backend, Backend};
pub use f32xc::SimdF32;
pub use i32xc::SimdI32;

/// Lane counts used by the reproduction (CPU, AVX2, KNL, GPU-warp).
pub const SUPPORTED_LANES: [usize; 4] = [4, 8, 16, 32];

/// Best-effort prefetch of the cache line containing `data[i]` into the
/// whole cache hierarchy (`prefetcht0`). Purely a latency hint for
/// gather-heavy kernels whose future indices are known ahead of time —
/// it never reads or writes architectural state, so results are
/// unaffected. A no-op on non-x86-64 targets and for out-of-range
/// indices.
#[inline(always)]
pub fn prefetch_read(data: &[f32], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if i < data.len() {
        // SAFETY: the pointer is in bounds of a live slice, and
        // `prefetcht0` has no architectural effect on memory.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                data.as_ptr().add(i).cast(),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (data, i);
}

/// Error returned by [`dispatch_lanes`] for a lane count outside
/// [`SUPPORTED_LANES`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnsupportedLanes(pub usize);

impl std::fmt::Display for UnsupportedLanes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unsupported chunk height C={} (supported lane counts: {:?})",
            self.0, SUPPORTED_LANES
        )
    }
}

impl std::error::Error for UnsupportedLanes {}

/// Dispatches a generic-in-`C` function object over a runtime lane count.
///
/// ```
/// use slimsell_simd::{dispatch_lanes, LaneDispatch};
/// struct WidthOf;
/// impl LaneDispatch for WidthOf {
///     type Output = usize;
///     fn run<const C: usize>(self) -> usize { C }
/// }
/// assert_eq!(dispatch_lanes(16, WidthOf).unwrap(), 16);
/// assert!(dispatch_lanes(5, WidthOf).is_err());
/// ```
///
/// # Errors
/// Returns [`UnsupportedLanes`] (naming the offending count and the
/// supported set) when `c` is not in [`SUPPORTED_LANES`].
pub fn dispatch_lanes<D: LaneDispatch>(c: usize, d: D) -> Result<D::Output, UnsupportedLanes> {
    match c {
        4 => Ok(d.run::<4>()),
        8 => Ok(d.run::<8>()),
        16 => Ok(d.run::<16>()),
        32 => Ok(d.run::<32>()),
        _ => Err(UnsupportedLanes(c)),
    }
}

/// A function object that can run at any supported lane count; used with
/// [`dispatch_lanes`] to turn a runtime `C` into a `const` generic.
pub trait LaneDispatch {
    /// Result type of the dispatched computation.
    type Output;
    /// Runs the computation at lane count `C`.
    fn run<const C: usize>(self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Width;
    impl LaneDispatch for Width {
        type Output = usize;
        fn run<const C: usize>(self) -> usize {
            C
        }
    }

    #[test]
    fn dispatch_supported() {
        for c in SUPPORTED_LANES {
            assert_eq!(dispatch_lanes(c, Width), Ok(c));
        }
    }

    #[test]
    fn dispatch_unsupported() {
        let err = dispatch_lanes(7, Width).unwrap_err();
        assert_eq!(err, UnsupportedLanes(7));
        let msg = err.to_string();
        assert!(msg.contains("C=7"), "{msg}");
        assert!(msg.contains("4, 8, 16, 32"), "{msg}");
    }
}
