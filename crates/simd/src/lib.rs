//! Portable SIMD abstraction for the SlimSell kernels.
//!
//! This crate is the Rust counterpart of the paper's Listing 1/2: a small
//! set of vector primitives (`LOAD`, `STORE`, `SET`, `CMP`, `BLEND`,
//! `MIN`, `MAX`, `ADD`, `MUL`, `AND`, `OR`) over vectors of `C` lanes.
//! The lane count `C` is a `const` generic so the same kernels run in the
//! paper's three configurations:
//!
//! | C  | architecture modeled                                    |
//! |----|---------------------------------------------------------|
//! | 8  | AVX2 CPU (256-bit registers, 32-bit elements, §IV-A)    |
//! | 16 | Xeon Phi KNL (512-bit AVX-512 units, §IV-C)             |
//! | 32 | GPU warp (32 SIMT lanes, §IV-B)                         |
//!
//! Implementation note: stable Rust has no `std::simd`, so each primitive
//! is a fixed-trip-count lane loop over a `#[repr(align(64))]` array.
//! With `-C target-cpu=native` (set in `.cargo/config.toml`) LLVM compiles
//! these loops to single AVX2/AVX-512 instructions — the compiled kernels
//! use the very instructions Listing 2 names (`vminps`, `vaddps`,
//! `vblendvps`, …). This keeps the programming model identical to the
//! paper's while remaining portable, which is exactly the property
//! Sell-C-σ was designed around.
//!
//! Mask convention: comparison results are *numeric* masks holding `0.0`
//! or `1.0` per lane, matching the paper's Listing 1 ("return a vector
//! with binary outcome of each comparison (0/1)"); `BLEND` treats any
//! non-zero lane as "take b". The paper's boolean-semiring kernels apply
//! bitwise `AND`/`OR` to such masks; for values restricted to
//! {0.0, 1.0} the IEEE-754 bit patterns make bitwise and/or coincide with
//! logical and/or, a property [`SimdF32::and_bits`] relies on and the
//! unit tests pin down.

// The fixed-trip `for i in 0..C` lane loops ARE the vectorization idiom this
// crate is built around (see module docs above), and `add`/`mul`/`min`/`max`
// deliberately mirror the paper's Listing-1 primitive names rather than the
// `std::ops` traits.
#![allow(clippy::needless_range_loop, clippy::should_implement_trait)]

pub mod f32xc;
pub mod i32xc;

pub use f32xc::SimdF32;
pub use i32xc::SimdI32;

/// Lane counts used by the reproduction (CPU, AVX2, KNL, GPU-warp).
pub const SUPPORTED_LANES: [usize; 4] = [4, 8, 16, 32];

/// Dispatches a generic-in-`C` function object over a runtime lane count.
///
/// ```
/// use slimsell_simd::{dispatch_lanes, LaneDispatch};
/// struct WidthOf;
/// impl LaneDispatch for WidthOf {
///     type Output = usize;
///     fn run<const C: usize>(self) -> usize { C }
/// }
/// assert_eq!(dispatch_lanes(16, WidthOf).unwrap(), 16);
/// assert!(dispatch_lanes(5, WidthOf).is_none());
/// ```
pub fn dispatch_lanes<D: LaneDispatch>(c: usize, d: D) -> Option<D::Output> {
    match c {
        4 => Some(d.run::<4>()),
        8 => Some(d.run::<8>()),
        16 => Some(d.run::<16>()),
        32 => Some(d.run::<32>()),
        _ => None,
    }
}

/// A function object that can run at any supported lane count; used with
/// [`dispatch_lanes`] to turn a runtime `C` into a `const` generic.
pub trait LaneDispatch {
    /// Result type of the dispatched computation.
    type Output;
    /// Runs the computation at lane count `C`.
    fn run<const C: usize>(self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Width;
    impl LaneDispatch for Width {
        type Output = usize;
        fn run<const C: usize>(self) -> usize {
            C
        }
    }

    #[test]
    fn dispatch_supported() {
        for c in SUPPORTED_LANES {
            assert_eq!(dispatch_lanes(c, Width), Some(c));
        }
    }

    #[test]
    fn dispatch_unsupported() {
        assert_eq!(dispatch_lanes(7, Width), None);
    }
}
