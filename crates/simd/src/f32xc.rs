//! `f32` vectors of `C` lanes: the `V` type of the paper's Listing 1.
//!
//! All BFS semiring values are `f32`, mirroring the paper's use of the
//! `_mm256_*_ps` instruction family (Listing 2). Every operation below
//! first consults the runtime-selected explicit-SIMD backend
//! ([`crate::backend`]) and falls back to a portable fixed-trip-count
//! lane loop — bit-identical by contract — when the backend is scalar,
//! the host is not x86-64, or the operation must take the panicking
//! bounds-check path.

use crate::i32xc::SimdI32;

/// A vector of `C` IEEE-754 single-precision lanes.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(align(64))]
pub struct SimdF32<const C: usize>(pub [f32; C]);

impl<const C: usize> SimdF32<C> {
    /// `set1`: all lanes equal to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; C])
    }

    /// All-zero vector (the `[0,0,...,0]` literal of Listing 5).
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(0.0)
    }

    /// All-one vector.
    #[inline(always)]
    pub fn one() -> Self {
        Self::splat(1.0)
    }

    /// All-∞ vector (`infs` in Listing 6).
    #[inline(always)]
    pub fn inf() -> Self {
        Self::splat(f32::INFINITY)
    }

    /// Builds a vector lane-by-lane (the `set` of Listing 2).
    #[inline(always)]
    pub fn from_fn(mut f: impl FnMut(usize) -> f32) -> Self {
        let mut out = [0.0f32; C];
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
        Self(out)
    }

    /// `LOAD`: reads `C` contiguous lanes from `src`.
    ///
    /// # Panics
    /// Panics if `src.len() < C`.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::copy(src) {
            return Self(out);
        }
        let mut out = [0.0f32; C];
        out.copy_from_slice(&src[..C]);
        Self(out)
    }

    /// `STORE`: writes `C` lanes to `dst`.
    ///
    /// # Panics
    /// Panics if `dst.len() < C`.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if crate::x86::store(&self.0, dst).is_some() {
            return;
        }
        dst[..C].copy_from_slice(&self.0);
    }

    /// Gather `out[i] = values[idx[i]]`, with negative indices (SlimSell's
    /// `-1` padding marker) replaced by `default`.
    ///
    /// The paper's Listing 6 gathers `f[col[...]]` even for padding
    /// columns and relies on the subsequent `BLEND`-derived `∞`/`0`
    /// neutralizing the lane; a safe implementation must not read
    /// `f[-1]`, hence the explicit default.
    #[inline(always)]
    pub fn gather_or(values: &[f32], idx: SimdI32<C>, default: f32) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::gather_or(values, &idx.0, default) {
            return Self(out);
        }
        let mut out = [0.0f32; C];
        for i in 0..C {
            let j = idx.0[i];
            out[i] = if j >= 0 { values[j as usize] } else { default };
        }
        Self(out)
    }

    /// `CMP(a, b, EQ)`: numeric mask, `1.0` where equal else `0.0`.
    #[inline(always)]
    pub fn cmp_eq(self, other: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::cmp_eq(&self.0, &other.0) {
            return Self(out);
        }
        Self::from_fn(|i| if self.0[i] == other.0[i] { 1.0 } else { 0.0 })
    }

    /// `CMP(a, b, NEQ)`: numeric mask, `1.0` where different else `0.0`.
    #[inline(always)]
    pub fn cmp_neq(self, other: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::cmp_neq(&self.0, &other.0) {
            return Self(out);
        }
        Self::from_fn(|i| if self.0[i] != other.0[i] { 1.0 } else { 0.0 })
    }

    /// `BLEND(a, b, mask)`: `out[i] = mask[i] != 0 ? b[i] : a[i]`.
    #[inline(always)]
    pub fn blend(a: Self, b: Self, mask: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::blend(&a.0, &b.0, &mask.0) {
            return Self(out);
        }
        Self::from_fn(|i| if mask.0[i] != 0.0 { b.0[i] } else { a.0[i] })
    }

    /// Element-wise minimum (`MIN`). NaN handling follows `f32::min`.
    #[inline(always)]
    pub fn min(self, other: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::min(&self.0, &other.0) {
            return Self(out);
        }
        Self::from_fn(|i| self.0[i].min(other.0[i]))
    }

    /// Element-wise maximum (`MAX`).
    #[inline(always)]
    pub fn max(self, other: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::max(&self.0, &other.0) {
            return Self(out);
        }
        Self::from_fn(|i| self.0[i].max(other.0[i]))
    }

    /// Element-wise addition (`ADD`).
    #[inline(always)]
    pub fn add(self, other: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::add(&self.0, &other.0) {
            return Self(out);
        }
        Self::from_fn(|i| self.0[i] + other.0[i])
    }

    /// Element-wise multiplication (`MUL`).
    #[inline(always)]
    pub fn mul(self, other: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::mul(&self.0, &other.0) {
            return Self(out);
        }
        Self::from_fn(|i| self.0[i] * other.0[i])
    }

    /// Bitwise `AND` on lane bit patterns (`_mm256_and_ps`). For lanes
    /// restricted to {0.0, 1.0} this is logical AND.
    #[inline(always)]
    pub fn and_bits(self, other: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::and_bits(&self.0, &other.0) {
            return Self(out);
        }
        Self::from_fn(|i| f32::from_bits(self.0[i].to_bits() & other.0[i].to_bits()))
    }

    /// Bitwise `OR` on lane bit patterns (`_mm256_or_ps`). For lanes
    /// restricted to {0.0, 1.0} this is logical OR.
    #[inline(always)]
    pub fn or_bits(self, other: Self) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::or_bits(&self.0, &other.0) {
            return Self(out);
        }
        Self::from_fn(|i| f32::from_bits(self.0[i].to_bits() | other.0[i].to_bits()))
    }

    /// Logical NOT of a {0,1} numeric mask (the `NOT` of Listing 5 line
    /// 35): `1.0` where the lane is `0.0`, else `0.0`.
    #[inline(always)]
    pub fn mask_not(self) -> Self {
        Self::from_fn(|i| if self.0[i] == 0.0 { 1.0 } else { 0.0 })
    }

    /// Logical AND of two {0,1} numeric masks.
    #[inline(always)]
    pub fn mask_and(self, other: Self) -> Self {
        Self::from_fn(|i| if self.0[i] != 0.0 && other.0[i] != 0.0 { 1.0 } else { 0.0 })
    }

    /// True if any lane is non-zero.
    #[inline(always)]
    pub fn any_nonzero(self) -> bool {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::any_ne(&self.0, &[0.0f32; C]) {
            return out;
        }
        let mut acc = false;
        for i in 0..C {
            acc |= self.0[i] != 0.0;
        }
        acc
    }

    /// True if any lane differs from `other` (used for per-chunk change
    /// detection in the tropical semiring).
    #[inline(always)]
    pub fn any_ne(self, other: Self) -> bool {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::any_ne(&self.0, &other.0) {
            return out;
        }
        let mut acc = false;
        for i in 0..C {
            acc |= self.0[i] != other.0[i];
        }
        acc
    }

    /// Per-lane *bitwise* difference mask: bit `i` is set iff lane `i` of
    /// `self` and `other` have different IEEE-754 bit patterns (so `-0.0`
    /// differs from `+0.0`, matching `to_bits()` comparison). This is the
    /// lane-granular form of chunk change detection
    /// (`Semiring::state_changed_mask`): with `C <= 32` the mask fits a
    /// `u32`, the same shape as `ChunkDepGraph`'s per-edge source-lane
    /// masks that filter worklist activation.
    #[inline(always)]
    pub fn ne_bits(self, other: Self) -> u32 {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::ne_bits(&self.0, &other.0) {
            return out;
        }
        let mut m = 0u32;
        for i in 0..C {
            if self.0[i].to_bits() != other.0[i].to_bits() {
                m |= 1 << (i & 31);
            }
        }
        m
    }

    /// Horizontal sum of all lanes.
    #[inline(always)]
    pub fn reduce_add(self) -> f32 {
        self.0.iter().sum()
    }

    /// Horizontal minimum of all lanes.
    #[inline(always)]
    pub fn reduce_min(self) -> f32 {
        self.0.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Lane slice view.
    #[inline(always)]
    pub fn as_array(&self) -> &[f32; C] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = SimdF32<8>;

    #[test]
    fn load_store_roundtrip() {
        let src: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v = V::load(&src);
        let mut dst = [0.0f32; 8];
        v.store(&mut dst);
        assert_eq!(&dst[..], &src[..]);
    }

    #[test]
    #[should_panic]
    fn load_short_slice_panics() {
        V::load(&[1.0; 4]);
    }

    #[test]
    fn min_add_matches_scalar() {
        let a = V::from_fn(|i| i as f32);
        let b = V::from_fn(|i| (8 - i) as f32);
        let m = a.min(b);
        let s = a.add(b);
        for i in 0..8 {
            assert_eq!(m.0[i], (i as f32).min((8 - i) as f32));
            assert_eq!(s.0[i], 8.0);
        }
    }

    #[test]
    fn infinity_is_add_absorbing() {
        // The tropical kernel relies on ∞ + x = ∞ (padding neutrality).
        let v = V::inf().add(V::from_fn(|i| i as f32));
        assert!(v.0.iter().all(|x| x.is_infinite()));
        assert_eq!(V::inf().min(V::splat(3.0)), V::splat(3.0));
    }

    #[test]
    fn blend_selects_on_nonzero() {
        let a = V::splat(1.0);
        let b = V::splat(2.0);
        let mask = V::from_fn(|i| if i % 2 == 0 { 1.0 } else { 0.0 });
        let out = V::blend(a, b, mask);
        for i in 0..8 {
            assert_eq!(out.0[i], if i % 2 == 0 { 2.0 } else { 1.0 });
        }
    }

    #[test]
    fn cmp_masks_are_zero_one() {
        let a = V::from_fn(|i| i as f32);
        let b = V::splat(3.0);
        let eq = a.cmp_eq(b);
        let ne = a.cmp_neq(b);
        for i in 0..8 {
            assert_eq!(eq.0[i], if i == 3 { 1.0 } else { 0.0 });
            assert_eq!(ne.0[i], if i == 3 { 0.0 } else { 1.0 });
            assert_eq!(eq.0[i] + ne.0[i], 1.0);
        }
    }

    #[test]
    fn bitwise_and_or_act_logically_on_01() {
        // The boolean-semiring kernel depends on this property.
        for (x, y) in [(0.0f32, 0.0f32), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let a = V::splat(x);
            let b = V::splat(y);
            let and = a.and_bits(b).0[0];
            let or = a.or_bits(b).0[0];
            assert_eq!(and, if x != 0.0 && y != 0.0 { 1.0 } else { 0.0 });
            assert_eq!(or, if x != 0.0 || y != 0.0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn mask_not_inverts() {
        let m = V::from_fn(|i| if i < 4 { 0.0 } else { 1.0 });
        let n = m.mask_not();
        for i in 0..8 {
            assert_eq!(n.0[i], if i < 4 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn gather_with_padding_marker() {
        let values = [10.0f32, 11.0, 12.0, 13.0];
        let idx = SimdI32::<4>([2, -1, 0, -1]);
        let g = SimdF32::<4>::gather_or(&values, idx, f32::INFINITY);
        assert_eq!(g.0, [12.0, f32::INFINITY, 10.0, f32::INFINITY]);
    }

    #[test]
    fn reductions() {
        let v = V::from_fn(|i| i as f32);
        assert_eq!(v.reduce_add(), 28.0);
        assert_eq!(v.reduce_min(), 0.0);
        assert!(v.any_nonzero());
        assert!(!V::zero().any_nonzero());
        assert!(v.any_ne(V::zero()));
        assert!(!v.any_ne(v));
    }

    #[test]
    fn works_at_all_supported_widths() {
        fn probe<const C: usize>() {
            let v = SimdF32::<C>::from_fn(|i| i as f32);
            assert_eq!(v.reduce_add(), (0..C).sum::<usize>() as f32);
        }
        probe::<4>();
        probe::<8>();
        probe::<16>();
        probe::<32>();
    }
}
