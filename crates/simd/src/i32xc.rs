//! `i32` vectors of `C` lanes: column-index vectors.
//!
//! SlimSell stores column indices as signed 32-bit integers so that the
//! padding marker `-1` fits in-band (§III-B: "each entry in col … contains
//! either a usual column index … or a special marker (e.g., −1)").

use crate::f32xc::SimdF32;

/// A vector of `C` signed 32-bit integer lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(align(64))]
pub struct SimdI32<const C: usize>(pub [i32; C]);

impl<const C: usize> SimdI32<C> {
    /// All lanes equal to `v`.
    #[inline(always)]
    pub fn splat(v: i32) -> Self {
        Self([v; C])
    }

    /// The SlimSell padding-marker vector `m_ones = [-1, …, -1]`.
    #[inline(always)]
    pub fn minus_ones() -> Self {
        Self::splat(-1)
    }

    /// Builds a vector lane-by-lane.
    #[inline(always)]
    pub fn from_fn(mut f: impl FnMut(usize) -> i32) -> Self {
        let mut out = [0i32; C];
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
        Self(out)
    }

    /// `LOAD`: reads `C` contiguous lanes.
    ///
    /// # Panics
    /// Panics if `src.len() < C`.
    #[inline(always)]
    pub fn load(src: &[i32]) -> Self {
        let mut out = [0i32; C];
        out.copy_from_slice(&src[..C]);
        Self(out)
    }

    /// `STORE`: writes `C` lanes.
    #[inline(always)]
    pub fn store(self, dst: &mut [i32]) {
        dst[..C].copy_from_slice(&self.0);
    }

    /// `CMP(a, b, EQ)` producing a numeric f32 mask (`1.0`/`0.0`), the
    /// form the SlimSell kernel feeds straight into `BLEND` (Listing 6
    /// lines 10–12).
    #[inline(always)]
    pub fn cmp_eq_mask(self, other: Self) -> SimdF32<C> {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::i32_cmp_eq_mask(&self.0, &other.0) {
            return SimdF32(out);
        }
        SimdF32::from_fn(|i| if self.0[i] == other.0[i] { 1.0 } else { 0.0 })
    }

    /// Converts lanes to `f32` (`cvtI2f` of Listing 2).
    #[inline(always)]
    pub fn to_f32(self) -> SimdF32<C> {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = crate::x86::i32_to_f32(&self.0) {
            return SimdF32(out);
        }
        SimdF32::from_fn(|i| self.0[i] as f32)
    }

    /// Lane slice view.
    #[inline(always)]
    pub fn as_array(&self) -> &[i32; C] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let src = [-1, 4, 7, -1];
        let v = SimdI32::<4>::load(&src);
        let mut dst = [0i32; 4];
        v.store(&mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn padding_mask_derivation() {
        // Exactly the SlimSell Listing 6 sequence: CMP against -1 then
        // BLEND(ones, infs, mask) must produce 1 for edges, ∞ for pads.
        let cols = SimdI32::<4>([3, -1, 0, -1]);
        let mask = cols.cmp_eq_mask(SimdI32::minus_ones());
        let vals = SimdF32::blend(SimdF32::one(), SimdF32::inf(), mask);
        assert_eq!(vals.0, [1.0, f32::INFINITY, 1.0, f32::INFINITY]);
    }

    #[test]
    fn to_f32_conversion() {
        let v = SimdI32::<4>([0, 1, -1, 100]);
        assert_eq!(v.to_f32().0, [0.0, 1.0, -1.0, 100.0]);
    }

    #[test]
    fn splat_and_minus_ones() {
        assert_eq!(SimdI32::<8>::minus_ones().0, [-1; 8]);
        assert_eq!(SimdI32::<8>::splat(5).0, [5; 8]);
    }
}
