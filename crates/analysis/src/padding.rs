//! Analytic padding model — the quantity behind Figure 3's bound
//! justification and the `P` of every storage formula.
//!
//! Given a degree sequence, the padding of a fully sorted (`σ = n`)
//! Sell structure is exactly computable: rows are sorted descending, so
//! chunk `i` holds ranks `iC..iC+C` and pads every row up to the chunk's
//! first (largest) degree. The paper's Figure 3 argument — total padding
//! at most `ρ̂·C` under full sorting — is checkable against this exact
//! value.

/// Exact padding cells `P` of a fully sorted Sell structure with chunk
/// height `c`, from an (arbitrary-order) degree sequence. Virtual rows
/// padding `n` up to a multiple of `c` count too, matching the built
/// structure.
pub fn padding_full_sort(degrees: &[usize], c: usize) -> usize {
    assert!(c > 0);
    let mut sorted: Vec<usize> = degrees.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let n = sorted.len();
    let n_padded = n.div_ceil(c) * c;
    sorted.resize(n_padded, 0);
    sorted
        .chunks(c)
        .map(|chunk| {
            let cl = chunk[0];
            chunk.iter().map(|&d| cl - d).sum::<usize>()
        })
        .sum()
}

/// Exact padding of the *unsorted* (`σ = 1`) layout for a degree
/// sequence in storage order.
pub fn padding_unsorted(degrees: &[usize], c: usize) -> usize {
    assert!(c > 0);
    let n = degrees.len();
    let n_padded = n.div_ceil(c) * c;
    let mut padded: Vec<usize> = degrees.to_vec();
    padded.resize(n_padded, 0);
    padded
        .chunks(c)
        .map(|chunk| {
            let cl = *chunk.iter().max().unwrap();
            chunk.iter().map(|&d| cl - d).sum::<usize>()
        })
        .sum()
}

/// The paper's Figure 3 upper bound on full-sort padding: `ρ̂ · C`
/// (maximum degree times chunk height).
pub fn padding_bound_full_sort(degrees: &[usize], c: usize) -> usize {
    degrees.iter().copied().max().unwrap_or(0) * c
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_core::SellStructure;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::VertexId;

    #[test]
    fn matches_built_structure_exactly() {
        let g = kronecker(10, 8.0, KroneckerParams::GRAPH500, 5);
        let degrees: Vec<usize> = (0..g.num_vertices() as VertexId).map(|v| g.degree(v)).collect();
        let c = 8;
        let sorted = SellStructure::<8>::build(&g, g.num_vertices());
        assert_eq!(padding_full_sort(&degrees, c), sorted.padding_cells());
        let unsorted = SellStructure::<8>::build(&g, 1);
        assert_eq!(padding_unsorted(&degrees, c), unsorted.padding_cells());
    }

    #[test]
    fn figure3_bound_holds() {
        let g = kronecker(11, 16.0, KroneckerParams::GRAPH500, 3);
        let degrees: Vec<usize> = (0..g.num_vertices() as VertexId).map(|v| g.degree(v)).collect();
        for c in [4usize, 8, 16, 32] {
            let p = padding_full_sort(&degrees, c);
            let bound = padding_bound_full_sort(&degrees, c);
            assert!(p <= bound, "C={c}: P {p} > bound {bound}");
        }
    }

    #[test]
    fn sorting_never_increases_padding() {
        // Alternating degrees: worst case for the unsorted layout.
        let degrees: Vec<usize> = (0..64).map(|i| if i % 2 == 0 { 20 } else { 1 }).collect();
        let c = 8;
        assert!(padding_full_sort(&degrees, c) <= padding_unsorted(&degrees, c));
        // Here sorting should save a lot.
        assert!(padding_full_sort(&degrees, c) * 4 < padding_unsorted(&degrees, c));
    }

    #[test]
    fn uniform_degrees_no_padding() {
        let degrees = vec![5usize; 32];
        assert_eq!(padding_full_sort(&degrees, 8), 0);
        assert_eq!(padding_unsorted(&degrees, 8), 0);
    }

    #[test]
    fn virtual_rows_counted() {
        // n = 5 with C = 4: 3 virtual rows pad to the last chunk's max.
        let degrees = vec![2usize; 5];
        // chunks: [2,2,2,2] pad 0; [2,0,0,0] pad 6.
        assert_eq!(padding_full_sort(&degrees, 4), 6);
    }
}
