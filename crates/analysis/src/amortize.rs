//! Preprocessing amortization (§IV-D).
//!
//! Sorting and building the Sell structure is a one-time investment:
//! "for a Kronecker graph with n = 2^24, sorting takes ≈0.95 s, which
//! constitutes ≈21 % of a single BFS run. Thus, 10 BFS runs are enough to
//! reduce the sorting time to <2 % of the total runtime." This module is
//! that arithmetic, used by the `repro prep` experiment with *measured*
//! sort/build/BFS times.

/// Number of BFS runs needed so preprocessing is at most `fraction` of
/// total runtime: smallest `k` with `t_pre / (t_pre + k·t_bfs) ≤ f`.
pub fn runs_to_amortize(t_pre: f64, t_bfs: f64, fraction: f64) -> u64 {
    assert!(t_pre >= 0.0 && t_bfs > 0.0, "need non-negative pre and positive BFS time");
    assert!((0.0..1.0).contains(&fraction) && fraction > 0.0, "fraction in (0,1)");
    let k = t_pre * (1.0 - fraction) / (fraction * t_bfs);
    k.ceil().max(0.0) as u64
}

/// Preprocessing share of total runtime after `runs` BFS executions.
pub fn preprocessing_share(t_pre: f64, t_bfs: f64, runs: u64) -> f64 {
    t_pre / (t_pre + runs as f64 * t_bfs)
}

/// Rows of an amortization table: (runs, preprocessing share).
pub fn amortization_table(t_pre: f64, t_bfs: f64, runs: &[u64]) -> Vec<(u64, f64)> {
    runs.iter().map(|&k| (k, preprocessing_share(t_pre, t_bfs, k))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_example() {
        // Sorting ≈ 21 % of one BFS run: t_pre = 0.21 · t_bfs.
        let t_bfs = 4.5; // ≈ the implied n=2^24 run time
        let t_pre = 0.95;
        let k = runs_to_amortize(t_pre, t_bfs, 0.02);
        // "10 BFS runs are enough to reduce the sorting time to <2 %".
        assert!(k <= 11, "k = {k}");
        assert!(preprocessing_share(t_pre, t_bfs, k) <= 0.02);
    }

    #[test]
    fn share_decreases_monotonically() {
        let mut prev = 1.0;
        for k in 1..20 {
            let s = preprocessing_share(1.0, 0.5, k);
            assert!(s < prev);
            prev = s;
        }
    }

    #[test]
    fn zero_preprocessing_needs_zero_runs() {
        assert_eq!(runs_to_amortize(0.0, 1.0, 0.05), 0);
    }

    #[test]
    fn table_shape() {
        let t = amortization_table(1.0, 1.0, &[1, 10, 100]);
        assert_eq!(t.len(), 3);
        assert!((t[1].1 - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        runs_to_amortize(1.0, 1.0, 0.0);
    }
}
