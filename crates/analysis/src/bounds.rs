//! Maximum-degree and work bounds: Eq. (1) and Eq. (2) of §III-A.
//!
//! * Erdős–Rényi: balls-into-bins gives `ρ̂ = O(np)` when
//!   `np = Ω(log n)`, and `ρ̂ = O(log n)` for very small `p`, yielding
//!   Eq. (1): `W = O(Dn + Dm + DC log n)` in the sparse regime.
//! * Power-law (`P(ρ) = α ρ^{−β}`): the tail-integral argument bounds
//!   `ρ̂ = O((α n log n)^{1/(β−1)})` with probability `1 − 1/log n`,
//!   yielding Eq. (2).

/// High-probability max-degree bound for `G(n, p)` (with an explicit
/// constant of 4, ample for the w.h.p. statement at the scales used).
pub fn er_max_degree_bound(n: usize, p: f64) -> f64 {
    let n_f = n as f64;
    let mean = n_f * p;
    let log_n = n_f.max(2.0).ln();
    if mean >= log_n {
        // ρ̂ = O(np) regime.
        4.0 * mean
    } else {
        // Sparse regime: ρ̂ = O(log n).
        4.0 * log_n
    }
}

/// High-probability max-degree bound for a power-law graph with density
/// normalization `alpha` and exponent `beta > 1`:
/// `ρ̂ = O((α n log n)^{1/(β−1)})` (Eq. 2's middle step).
pub fn powerlaw_max_degree_bound(n: usize, alpha: f64, beta: f64) -> f64 {
    assert!(beta > 1.0, "power-law exponent must exceed 1 (got {beta})");
    let n_f = n as f64;
    (alpha * n_f * n_f.max(2.0).ln()).powf(1.0 / (beta - 1.0))
}

/// Eq. (1): work bound (in cells, with the same explicit constants as
/// [`crate::work::WorkBound`]) for an ER graph.
pub fn eq1_work_bound(n: usize, m: usize, d: usize, c: usize, p: f64) -> f64 {
    d as f64 * (n as f64 + 2.0 * m as f64 + c as f64 * er_max_degree_bound(n, p))
}

/// Eq. (2): work bound for a power-law graph.
pub fn eq2_work_bound(n: usize, m: usize, d: usize, c: usize, alpha: f64, beta: f64) -> f64 {
    d as f64 * (n as f64 + 2.0 * m as f64 + c as f64 * powerlaw_max_degree_bound(n, alpha, beta))
}

/// Maximum-likelihood estimate of a power-law exponent β from observed
/// degrees ≥ `d_min` (Clauset–Shalizi–Newman continuous MLE):
/// `β̂ = 1 + k / Σ ln(d_i / (d_min − ½))`.
pub fn estimate_powerlaw_exponent(degrees: &[usize], d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1);
    let tail: Vec<f64> = degrees.iter().filter(|&&d| d >= d_min).map(|&d| d as f64).collect();
    if tail.len() < 10 {
        return None;
    }
    let denom: f64 = tail.iter().map(|&d| (d / (d_min as f64 - 0.5)).ln()).sum();
    if denom <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_gen::erdos_renyi_gnp;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::GraphStats;

    #[test]
    fn er_bound_covers_observed_max_degree() {
        for seed in [1, 2, 3] {
            let n = 4096;
            let p = 16.0 / n as f64;
            let g = erdos_renyi_gnp(n, p, seed);
            let s = GraphStats::compute(&g, 1);
            assert!(
                (s.max_degree as f64) < er_max_degree_bound(n, p),
                "seed {seed}: max degree {} exceeds bound {}",
                s.max_degree,
                er_max_degree_bound(n, p)
            );
        }
    }

    #[test]
    fn er_sparse_regime_uses_log() {
        let n = 1 << 20;
        let p = 1e-7; // np ≈ 0.1 ≪ log n
        let b = er_max_degree_bound(n, p);
        assert!((b - 4.0 * (n as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn powerlaw_bound_grows_with_n_and_shrinks_with_beta() {
        let b1 = powerlaw_max_degree_bound(1 << 16, 1.0, 2.5);
        let b2 = powerlaw_max_degree_bound(1 << 20, 1.0, 2.5);
        assert!(b2 > b1);
        let b3 = powerlaw_max_degree_bound(1 << 20, 1.0, 3.5);
        assert!(b3 < b2);
    }

    #[test]
    fn exponent_estimate_recovers_generated_beta() {
        let degrees = slimsell_gen::config_model::powerlaw_degrees(50_000, 2.5, 2, 2_000, 7);
        let est = estimate_powerlaw_exponent(&degrees, 4).unwrap();
        assert!((est - 2.5).abs() < 0.35, "estimated beta {est}");
    }

    #[test]
    fn kronecker_max_degree_within_powerlaw_bound() {
        let g = kronecker(12, 16.0, KroneckerParams::GRAPH500, 1);
        let s = GraphStats::compute(&g, 1);
        let hist = GraphStats::degree_histogram(&g);
        let degrees: Vec<usize> =
            hist.iter().enumerate().flat_map(|(d, &c)| std::iter::repeat_n(d, c)).collect();
        let beta = estimate_powerlaw_exponent(&degrees, 4).unwrap();
        let bound = powerlaw_max_degree_bound(s.n, 1.0, beta);
        assert!(
            (s.max_degree as f64) < 4.0 * bound,
            "max degree {} vs bound {bound} (beta {beta})",
            s.max_degree
        );
    }

    #[test]
    fn eq_bounds_positive_and_ordered() {
        let e1 = eq1_work_bound(1 << 14, 1 << 17, 8, 8, 16.0 / (1 << 14) as f64);
        let e2 = eq2_work_bound(1 << 14, 1 << 17, 8, 8, 1.0, 2.2);
        assert!(e1 > 0.0 && e2 > 0.0);
        // The power-law tail term dominates the ER log term.
        assert!(e2 > e1);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn beta_must_exceed_one() {
        powerlaw_max_degree_bound(100, 1.0, 1.0);
    }
}
