//! Analytical models from §III of the paper, in executable form.
//!
//! * [`work`] — the Table II work-complexity comparison and the general
//!   bound `W = O(Dn + Dm + DCρ̂)`;
//! * [`bounds`] — the maximum-degree and work bounds for Erdős–Rényi
//!   (Eq. 1) and power-law (Eq. 2) graphs, plus a power-law exponent
//!   estimator used to feed Eq. 2 with measured inputs;
//! * [`amortize`] — the §IV-D preprocessing amortization model ("10 BFS
//!   runs are enough to reduce the sorting time to <2 % of the total
//!   runtime");
//! * [`frontier`] — full-sweep vs worklist sweep accounting: column
//!   steps, chunk visits and activation overhead of the
//!   frontier-proportional engine;
//! * [`masked`] — masked vs unmasked traversal accounting: the
//!   column-step savings of descriptor-restricted sweeps;
//! * [`serve`] — serving-layer latency/throughput distillation:
//!   nearest-rank latency percentiles and the batch-fill counters
//!   behind the batched-BFS query engine's qps numbers;
//! * [`report`] — plain-text table rendering shared by the reproduction
//!   harness.

pub mod amortize;
pub mod bounds;
pub mod frontier;
pub mod masked;
pub mod padding;
pub mod report;
pub mod serve;
pub mod work;

pub use amortize::{amortization_table, runs_to_amortize};
pub use bounds::{er_max_degree_bound, estimate_powerlaw_exponent, powerlaw_max_degree_bound};
pub use frontier::WorklistComparison;
pub use masked::MaskedComparison;
pub use padding::{padding_bound_full_sort, padding_full_sort, padding_unsorted};
pub use serve::{LatencyProfile, OverloadPoint, ServePoint};
pub use work::{table2_rows, work_bound_general, WorkBound};
