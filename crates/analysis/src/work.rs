//! Work complexity: Table II and the general Sell-based BFS bound.
//!
//! The paper's central complexity claim (§III-A, "Work Complexity"):
//! padding can cost at most `ρ̂·C` cells beyond `m` per SpMV, because
//! "the size of each block is smaller than the number of vertices in the
//! previous (larger) block", so
//!
//! ```text
//! W = O(Dn + Dm + D·C·ρ̂)
//! ```
//!
//! for a graph of maximum degree ρ̂ under full sorting. [`WorkBound`]
//! evaluates this with explicit constants so measured work (cells
//! processed, from `slimsell_core::RunStats`) can be checked against it.

use slimsell_core::RunStats;

/// Evaluated work bound for one BFS run.
#[derive(Clone, Copy, Debug)]
pub struct WorkBound {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Iterations executed (≈ diameter + 1).
    pub d: usize,
    /// Chunk height.
    pub c: usize,
    /// Maximum degree ρ̂.
    pub max_degree: usize,
}

impl WorkBound {
    /// The §III-A bound on *matrix cells touched* across the run:
    /// `D(2m + ρ̂C)` — per iteration the Sell structure holds at most
    /// `2m + ρ̂C` cells (edges plus worst-case padding; `2m` because the
    /// undirected graph stores both arc directions).
    pub fn cells_bound(&self) -> u64 {
        self.d as u64 * (2 * self.m as u64 + self.max_degree as u64 * self.c as u64)
    }

    /// The full `W = D·n + D·(2m + ρ̂C)` bound including the `O(n)`
    /// per-iteration vector work.
    pub fn total_bound(&self) -> u64 {
        self.d as u64 * self.n as u64 + self.cells_bound()
    }

    /// Checks a measured run against the bound.
    pub fn holds_for(&self, stats: &RunStats) -> bool {
        stats.total_cells() <= self.cells_bound()
    }
}

/// Evaluates the general bound from run statistics and graph numbers.
pub fn work_bound_general(
    n: usize,
    m: usize,
    c: usize,
    max_degree: usize,
    stats: &RunStats,
) -> WorkBound {
    WorkBound { n, m, d: stats.num_iterations(), c, max_degree }
}

/// One Table II row: scheme name and its asymptotic work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table2Row {
    /// Scheme as named by the paper.
    pub scheme: &'static str,
    /// Asymptotic work `W` as printed in Table II.
    pub work: &'static str,
    /// Whether this workspace implements the scheme (every row is).
    pub implemented_as: &'static str,
}

/// The rows of Table II, each mapped to its implementation here.
pub fn table2_rows() -> &'static [Table2Row] {
    const ROWS: &[Table2Row] = &[
        Table2Row {
            scheme: "Traditional BFS (textbook)",
            work: "O(n + m)",
            implemented_as: "slimsell_graph::serial_bfs",
        },
        Table2Row {
            scheme: "Traditional BFS (bag/queue-based)",
            work: "O(n + m)",
            implemented_as: "slimsell_baseline::trad_bfs",
        },
        Table2Row {
            scheme: "Traditional BFS (direction-inversion)",
            work: "O(Dn + Dm)",
            implemented_as: "slimsell_baseline::dirop_bfs",
        },
        Table2Row {
            scheme: "BFS-SpMV (textbook, dense matrix)",
            work: "O(Dn^2)",
            implemented_as: "(analytic only: dense MV row)",
        },
        Table2Row {
            scheme: "BFS-SpMV (sparse)",
            work: "O(Dn + Dm)",
            implemented_as: "slimsell_core::BfsEngine (no SlimWork)",
        },
        Table2Row {
            scheme: "BFS SpMSpV (merge sort)",
            work: "O(n + m log m)",
            implemented_as: "slimsell_baseline::spmspv_bfs(MergeSort)",
        },
        Table2Row {
            scheme: "BFS SpMSpV (radix sort)",
            work: "O(n + x m)",
            implemented_as: "slimsell_baseline::spmspv_bfs(RadixSort)",
        },
        Table2Row {
            scheme: "BFS SpMSpV (no sort)",
            work: "O(n + m)",
            implemented_as: "slimsell_baseline::spmspv_bfs(NoSort)",
        },
        Table2Row {
            scheme: "This work (max degree rho^)",
            work: "O(Dn + Dm + DC*rho^)",
            implemented_as: "slimsell_core::BfsEngine + SlimSell",
        },
        Table2Row {
            scheme: "This work (Erdos-Renyi)",
            work: "Eq. (1): O(Dn + Dm + DC log n)",
            implemented_as: "slimsell_analysis::bounds::eq1",
        },
        Table2Row {
            scheme: "This work (power-law)",
            work: "Eq. (2): O(Dn + Dm + DC(a n log n)^(1/(b-1)))",
            implemented_as: "slimsell_analysis::bounds::eq2",
        },
    ];
    ROWS
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_core::{BfsEngine, BfsOptions, ChunkMatrix, SlimSellMatrix};
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::GraphStats;

    #[test]
    fn eleven_rows() {
        assert_eq!(table2_rows().len(), 11);
    }

    #[test]
    fn bound_holds_on_fully_sorted_kronecker_runs() {
        // The §III-A bound assumes full sorting ("Full sorting ... is
        // assumed (σ = n)"), under which total padding ≤ ρ̂C.
        for seed in [1, 2] {
            let g = kronecker(10, 8.0, KroneckerParams::GRAPH500, seed);
            let s = GraphStats::compute(&g, 2);
            let root = (0..g.num_vertices() as u32).find(|&v| g.degree(v) > 0).unwrap();
            let slim = SlimSellMatrix::<8>::build(&g, g.num_vertices());
            for opts in [BfsOptions::default(), BfsOptions::plain()] {
                let out =
                    BfsEngine::run::<_, slimsell_core::TropicalSemiring, 8>(&slim, root, &opts);
                let wb = work_bound_general(s.n, s.m, 8, s.max_degree, &out.stats);
                assert!(
                    wb.holds_for(&out.stats),
                    "bound {} < measured {}",
                    wb.cells_bound(),
                    out.stats.total_cells()
                );
            }
        }
    }

    #[test]
    fn unsorted_layout_can_exceed_the_sorted_bound_per_iteration() {
        // Without sorting the per-iteration padding is NOT bounded by
        // ρ̂C — the reason σ matters. Alternating high/low-degree rows
        // force cl = ρ̂ in every chunk.
        use slimsell_graph::GraphBuilder;
        let n = 256usize;
        let mut b = GraphBuilder::new(n);
        for v in (0..n as u32).step_by(2) {
            for k in 1..=16u32 {
                b.edge(v, (v + k) % n as u32);
            }
        }
        let g = b.build();
        let unsorted = SlimSellMatrix::<8>::build(&g, 1);
        let sorted = SlimSellMatrix::<8>::build(&g, n);
        let s = GraphStats::compute(&g, 2);
        let per_iter_bound = 2 * s.m + s.max_degree * 8;
        assert!(unsorted.structure().total_cells() > per_iter_bound);
        assert!(sorted.structure().total_cells() <= per_iter_bound);
    }

    #[test]
    fn bound_arithmetic() {
        let wb = WorkBound { n: 100, m: 400, d: 5, c: 8, max_degree: 30 };
        assert_eq!(wb.cells_bound(), 5 * (800 + 240));
        assert_eq!(wb.total_bound(), 5 * 100 + 5 * (800 + 240));
    }
}
