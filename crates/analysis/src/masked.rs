//! Masked vs unmasked traversal accounting — the analysis behind the
//! `masked` experiment.
//!
//! A [`VertexMask`](slimsell_core::VertexMask) restricts a sweep to a
//! vertex subset: fully masked chunks forward their state without
//! running the MV, partially masked chunks run it and blend the
//! masked-out lanes back. The win the descriptor layer is after is that
//! the masked run executes *strictly fewer column steps* than the
//! unmasked traversal of the same matrix — work proportional to the
//! surviving subgraph, without rebuilding the representation. This
//! module distills a masked/unmasked pair of [`RunStats`] into one
//! comparison row.
//!
//! Unlike [`frontier`](crate::frontier), the two runs are *different*
//! traversals (the mask changes reachability), so iteration counts are
//! reported separately rather than asserted equal.

use slimsell_core::RunStats;

use crate::report::TextTable;

/// Aggregated comparison of a masked run against the unmasked run on
/// the same matrix and root.
#[derive(Clone, Copy, Debug)]
pub struct MaskedComparison {
    /// Fraction of real vertices inside the mask (`|mask| / n`).
    pub mask_fraction: f64,
    /// Iterations of the unmasked run.
    pub unmasked_iterations: usize,
    /// Iterations of the masked run (may differ: the mask changes
    /// reachability and therefore the fixpoint).
    pub masked_iterations: usize,
    /// Total column steps of the unmasked run.
    pub unmasked_col_steps: u64,
    /// Total column steps of the masked run.
    pub masked_col_steps: u64,
    /// Chunk visits the masked run skipped as fully masked (SlimWork
    /// skips included — the per-iteration `chunks_skipped` sum).
    pub masked_skipped: usize,
    /// Chunk visits the unmasked run skipped (SlimWork only).
    pub unmasked_skipped: usize,
}

impl MaskedComparison {
    /// Builds the comparison from the two runs' statistics and the mask
    /// cardinality.
    pub fn measure(unmasked: &RunStats, masked: &RunStats, mask_len: usize, n: usize) -> Self {
        Self {
            mask_fraction: if n == 0 { 0.0 } else { mask_len as f64 / n as f64 },
            unmasked_iterations: unmasked.num_iterations(),
            masked_iterations: masked.num_iterations(),
            unmasked_col_steps: unmasked.total_col_steps(),
            masked_col_steps: masked.total_col_steps(),
            masked_skipped: masked.total_skipped(),
            unmasked_skipped: unmasked.total_skipped(),
        }
    }

    /// Masked column steps as a fraction of the unmasked run's (< 1
    /// means masking saved MV work; the acceptance bar is *strictly*
    /// below 1 on every generator at scale).
    pub fn col_step_ratio(&self) -> f64 {
        if self.unmasked_col_steps == 0 {
            return if self.masked_col_steps == 0 { 1.0 } else { f64::INFINITY };
        }
        self.masked_col_steps as f64 / self.unmasked_col_steps as f64
    }

    /// Whether the masked run did strictly less MV work — the
    /// acceptance predicate of the `masked` experiment.
    pub fn strictly_cheaper(&self) -> bool {
        self.masked_col_steps < self.unmasked_col_steps
    }

    /// Header of the comparison table [`row`](Self::row)s feed.
    pub const HEADER: [&'static str; 8] = [
        "graph",
        "mask",
        "iters (un/masked)",
        "col steps (unmasked)",
        "col steps (masked)",
        "step ratio",
        "skips (unmasked)",
        "skips (masked)",
    ];

    /// One table row labeled with the graph/configuration name.
    pub fn row(&self, label: &str) -> [String; 8] {
        [
            label.to_string(),
            format!("{:.2}", self.mask_fraction),
            format!("{}/{}", self.unmasked_iterations, self.masked_iterations),
            self.unmasked_col_steps.to_string(),
            self.masked_col_steps.to_string(),
            format!("{:.3}", self.col_step_ratio()),
            self.unmasked_skipped.to_string(),
            self.masked_skipped.to_string(),
        ]
    }

    /// A ready table with this comparison's header.
    pub fn table() -> TextTable {
        TextTable::new(Self::HEADER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_core::{IterStats, RunStats};

    fn stats(col_steps: u64, iters: usize, skipped: usize) -> RunStats {
        let mut s = RunStats::default();
        for _ in 0..iters {
            s.iters.push(IterStats {
                col_steps: col_steps / iters as u64,
                cells: col_steps * 8 / iters as u64,
                chunks_skipped: skipped / iters,
                ..Default::default()
            });
        }
        s
    }

    #[test]
    fn ratio_and_predicate() {
        let un = stats(1000, 4, 0);
        let mk = stats(400, 2, 12);
        let c = MaskedComparison::measure(&un, &mk, 50, 100);
        assert!((c.mask_fraction - 0.5).abs() < 1e-12);
        assert_eq!(c.unmasked_iterations, 4);
        assert_eq!(c.masked_iterations, 2);
        assert!(c.strictly_cheaper());
        assert!(c.col_step_ratio() < 0.5);
        let eq = MaskedComparison::measure(&un, &un, 100, 100);
        assert!(!eq.strictly_cheaper());
        assert!((eq.col_step_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_work_is_not_infinite() {
        let z = RunStats::default();
        let c = MaskedComparison::measure(&z, &z, 0, 0);
        assert_eq!(c.col_step_ratio(), 1.0);
        assert!(!c.strictly_cheaper());
    }
}
