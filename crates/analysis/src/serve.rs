//! Serving-layer latency/throughput distillation — the analysis behind
//! the `serve` experiment.
//!
//! The serving layer trades latency for throughput: holding a batch
//! window open delays the first query of a batch by up to the window,
//! but every coalesced query amortizes one `C·B`-wide sweep over `B`
//! sources. This module distills a closed-loop load run into one
//! comparison row per `(B, clients)` point: queries/sec, the latency
//! distribution (nearest-rank percentiles over per-query wall times),
//! and the batch-fill/lane-occupancy counters that explain *why* the
//! throughput moved. No types from the serving crate appear here — the
//! inputs are plain numbers, so the analysis stays dependency-free and
//! host-independent except for the timed fields.

use crate::report::TextTable;

/// Latency distribution over per-query wall times (seconds).
#[derive(Clone, Debug)]
pub struct LatencyProfile {
    /// Number of samples the profile summarizes.
    pub samples: usize,
    /// Mean latency in seconds.
    pub mean_s: f64,
    /// Median (nearest-rank p50) in seconds.
    pub p50_s: f64,
    /// Nearest-rank p99 in seconds.
    pub p99_s: f64,
    /// Worst observed latency in seconds.
    pub max_s: f64,
}

impl LatencyProfile {
    /// Builds the profile from raw per-query latencies (any order).
    /// An empty sample set yields an all-zero profile.
    pub fn from_seconds(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self { samples: 0, mean_s: 0.0, p50_s: 0.0, p99_s: 0.0, max_s: 0.0 };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        Self {
            samples: n,
            mean_s: mean,
            p50_s: percentile(&samples, 0.50),
            p99_s: percentile(&samples, 0.99),
            max_s: samples[n - 1],
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One measured `(batch width, client count)` point of the serve
/// experiment: the timed side (throughput, latency profile) plus the
/// deterministic batch counters that explain it.
#[derive(Clone, Debug)]
pub struct ServePoint {
    /// Source-dimension lanes per batch (`B`).
    pub batch_b: usize,
    /// Closed-loop client threads submitting queries.
    pub clients: usize,
    /// Queries served at this point.
    pub queries: usize,
    /// Wall time for the whole run, seconds.
    pub elapsed_s: f64,
    /// Per-query latency distribution.
    pub latency: LatencyProfile,
    /// Batches executed.
    pub batches: u64,
    /// Batches that coalesced more than one query.
    pub multi_root_batches: u64,
    /// Mean live queries per batch.
    pub mean_batch_fill: f64,
    /// Fraction of touched lane-slots that carried a stored arc.
    pub lane_utilization: f64,
    /// Sweeps executed across all batches.
    pub total_iterations: u64,
    /// Column steps across all batches.
    pub total_col_steps: u64,
}

impl ServePoint {
    /// Served queries per second.
    pub fn qps(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            0.0
        } else {
            self.queries as f64 / self.elapsed_s
        }
    }

    /// Header of the comparison table [`row`](Self::row)s feed.
    pub const HEADER: [&'static str; 9] =
        ["B", "clients", "queries", "qps", "p50", "p99", "batches", "fill", "lane util"];

    /// One table row for this point.
    pub fn row(&self) -> [String; 9] {
        [
            self.batch_b.to_string(),
            self.clients.to_string(),
            self.queries.to_string(),
            format!("{:.1}", self.qps()),
            crate::report::fmt_secs(self.latency.p50_s),
            crate::report::fmt_secs(self.latency.p99_s),
            self.batches.to_string(),
            format!("{:.2}", self.mean_batch_fill),
            format!("{:.3}", self.lane_utilization),
        ]
    }

    /// A ready table with this comparison's header.
    pub fn table() -> TextTable {
        TextTable::new(Self::HEADER)
    }
}

/// One measured offered-load point of the overload/degradation sweep:
/// clients hammer a deliberately under-provisioned server (bounded
/// queue, tight deadlines) and the point records how gracefully it
/// sheds — goodput instead of collapse, bounded tail latency, and an
/// explicit account of every query that was not served.
#[derive(Clone, Debug)]
pub struct OverloadPoint {
    /// Closed-loop client threads offering load.
    pub clients: usize,
    /// Per-query wall-clock deadline, microseconds (0 = none).
    pub deadline_us: u64,
    /// Queries the clients attempted (first tries, not retries).
    pub offered: usize,
    /// Submission attempts including retries after `QueueFull`.
    pub attempts: usize,
    /// Queries that resolved with exact distances.
    pub served: usize,
    /// Queries shed from the queue after their deadline expired.
    pub shed: u64,
    /// Queries that expired after claiming a batch lane.
    pub expired: u64,
    /// Submissions fast-failed against the full bounded queue.
    pub queue_full_rejects: u64,
    /// Wall time for the whole run, seconds.
    pub elapsed_s: f64,
    /// Latency profile over *served* queries only (goodput latency).
    pub latency: LatencyProfile,
}

impl OverloadPoint {
    /// Served queries per second — goodput, not offered throughput.
    pub fn goodput(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            0.0
        } else {
            self.served as f64 / self.elapsed_s
        }
    }

    /// Fraction of offered queries shed or expired past deadline.
    pub fn shed_frac(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.shed + self.expired) as f64 / self.offered as f64
        }
    }

    /// Fraction of submission attempts bounced off the full queue.
    pub fn reject_frac(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.queue_full_rejects as f64 / self.attempts as f64
        }
    }

    /// Header of the degradation table [`row`](Self::row)s feed.
    pub const HEADER: [&'static str; 8] =
        ["clients", "deadline", "offered", "served", "goodput", "p99", "shed%", "qfull%"];

    /// One degradation-table row for this point.
    pub fn row(&self) -> [String; 8] {
        [
            self.clients.to_string(),
            if self.deadline_us == 0 { "-".to_string() } else { format!("{}us", self.deadline_us) },
            self.offered.to_string(),
            self.served.to_string(),
            format!("{:.1}/s", self.goodput()),
            crate::report::fmt_secs(self.latency.p99_s),
            format!("{:.1}", 100.0 * self.shed_frac()),
            format!("{:.1}", 100.0 * self.reject_frac()),
        ]
    }

    /// A ready table with the degradation header.
    pub fn table() -> TextTable {
        TextTable::new(Self::HEADER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let p = LatencyProfile::from_seconds((1..=100).map(|i| i as f64).collect());
        assert_eq!(p.samples, 100);
        assert_eq!(p.p50_s, 50.0);
        assert_eq!(p.p99_s, 99.0);
        assert_eq!(p.max_s, 100.0);
        assert!((p.mean_s - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_profile() {
        let p = LatencyProfile::from_seconds(vec![0.25]);
        assert_eq!((p.p50_s, p.p99_s, p.max_s), (0.25, 0.25, 0.25));
    }

    #[test]
    fn empty_profile_is_zeroed() {
        let p = LatencyProfile::from_seconds(vec![]);
        assert_eq!(p.samples, 0);
        assert_eq!(p.p99_s, 0.0);
    }

    #[test]
    fn point_row_matches_header_width() {
        let point = ServePoint {
            batch_b: 8,
            clients: 4,
            queries: 64,
            elapsed_s: 2.0,
            latency: LatencyProfile::from_seconds(vec![0.01; 64]),
            batches: 9,
            multi_root_batches: 8,
            mean_batch_fill: 7.1,
            lane_utilization: 0.42,
            total_iterations: 90,
            total_col_steps: 12_345,
        };
        assert!((point.qps() - 32.0).abs() < 1e-9);
        let mut t = ServePoint::table();
        t.row(point.row());
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("32.0"));
    }

    #[test]
    fn overload_point_fractions_and_row() {
        let point = OverloadPoint {
            clients: 16,
            deadline_us: 2000,
            offered: 100,
            attempts: 130,
            served: 60,
            shed: 25,
            expired: 5,
            queue_full_rejects: 13,
            elapsed_s: 2.0,
            latency: LatencyProfile::from_seconds(vec![0.001; 60]),
        };
        assert!((point.goodput() - 30.0).abs() < 1e-9);
        assert!((point.shed_frac() - 0.30).abs() < 1e-9);
        assert!((point.reject_frac() - 0.10).abs() < 1e-9);
        let mut t = OverloadPoint::table();
        t.row(point.row());
        let rendered = t.render();
        assert!(rendered.contains("2000us"));
        assert!(rendered.contains("30.0/s"));
        assert!(rendered.contains("10.0"));
    }

    #[test]
    fn overload_point_degenerate_cases_are_zeroed() {
        let point = OverloadPoint {
            clients: 1,
            deadline_us: 0,
            offered: 0,
            attempts: 0,
            served: 0,
            shed: 0,
            expired: 0,
            queue_full_rejects: 0,
            elapsed_s: 0.0,
            latency: LatencyProfile::from_seconds(vec![]),
        };
        assert_eq!(point.goodput(), 0.0);
        assert_eq!(point.shed_frac(), 0.0);
        assert_eq!(point.reject_frac(), 0.0);
        assert!(point.row()[1].contains('-'));
    }
}
