//! Full-sweep vs worklist sweep accounting — the analysis behind the
//! `frontier` experiment.
//!
//! SlimWork's full sweep visits every chunk every iteration (the skip
//! test alone costs `O(n_chunks × D)`), while the worklist engine's
//! per-iteration cost follows the active frontier. This module distills
//! two [`RunStats`] of the *same* BFS (one per mode) into one
//! comparison row: column steps executed, chunks visited, the
//! activation probes the worklist paid, and the resulting ratios. The
//! split between [`chunks_skipped`](slimsell_core::IterStats::chunks_skipped)
//! and [`chunks_not_on_worklist`](slimsell_core::IterStats::chunks_not_on_worklist)
//! is what lets the savings be attributed correctly: SlimWork skips are
//! visits that ran a skip test; not-on-worklist chunks were never
//! touched at all. [`AdaptiveComparison`] extends the picture to the
//! adaptive sweep mode, distilling its decision trace (`mode_switches`,
//! worklist-iteration share) and checking it tracks the better pure
//! mode.

use slimsell_core::RunStats;

use crate::report::TextTable;

/// Aggregated comparison of a full-sweep run against a worklist run of
/// the same BFS (same graph, root, semiring — iteration counts and
/// outputs are identical by construction; work differs).
#[derive(Clone, Copy, Debug)]
pub struct WorklistComparison {
    /// Iterations executed (equal in both modes by construction).
    pub iterations: usize,
    /// Total column steps of the full sweep.
    pub full_col_steps: u64,
    /// Total column steps of the worklist run.
    pub worklist_col_steps: u64,
    /// Total chunk visits of the full sweep (`iterations × n_chunks`).
    pub full_visited: u64,
    /// Total chunk visits of the worklist run (worklist sizes summed).
    pub worklist_visited: u64,
    /// Chunks the worklist engine never touched (summed per iteration).
    pub not_on_worklist: u64,
    /// Dependent-expansion probes the worklist engine paid.
    pub activations: u64,
}

impl WorklistComparison {
    /// Builds the comparison from the two runs' statistics.
    ///
    /// # Panics
    /// Panics if the iteration counts differ — that means the two runs
    /// were not the same BFS (the worklist engine never changes the
    /// iteration count).
    pub fn measure(full: &RunStats, worklist: &RunStats) -> Self {
        assert_eq!(
            full.num_iterations(),
            worklist.num_iterations(),
            "full-sweep and worklist runs disagree on iterations — not the same BFS"
        );
        Self {
            iterations: full.num_iterations(),
            full_col_steps: full.total_col_steps(),
            worklist_col_steps: worklist.total_col_steps(),
            full_visited: full.total_visited(),
            worklist_visited: worklist.total_visited(),
            not_on_worklist: worklist.total_not_on_worklist(),
            activations: worklist.total_activations(),
        }
    }

    /// Worklist column steps as a fraction of the full sweep's (< 1
    /// means the worklist saved MV work).
    pub fn col_step_ratio(&self) -> f64 {
        ratio(self.worklist_col_steps, self.full_col_steps)
    }

    /// Worklist chunk visits as a fraction of the full sweep's — the
    /// skip-test traffic avoided.
    pub fn visit_ratio(&self) -> f64 {
        ratio(self.worklist_visited, self.full_visited)
    }

    /// Activation probes per saved chunk visit — the overhead paid for
    /// the avoided traffic (∞-free: 0 when nothing was saved).
    pub fn activation_cost_per_saved_visit(&self) -> f64 {
        let saved = self.full_visited.saturating_sub(self.worklist_visited);
        if saved == 0 {
            0.0
        } else {
            self.activations as f64 / saved as f64
        }
    }

    /// Header of the comparison table [`row`](Self::row)s feed.
    pub const HEADER: [&'static str; 8] = [
        "graph",
        "iters",
        "col steps (full)",
        "col steps (worklist)",
        "step ratio",
        "visit ratio",
        "activations",
        "act/saved visit",
    ];

    /// One table row labeled with the graph/configuration name.
    pub fn row(&self, label: &str) -> [String; 8] {
        [
            label.to_string(),
            self.iterations.to_string(),
            self.full_col_steps.to_string(),
            self.worklist_col_steps.to_string(),
            format!("{:.3}", self.col_step_ratio()),
            format!("{:.3}", self.visit_ratio()),
            self.activations.to_string(),
            format!("{:.2}", self.activation_cost_per_saved_visit()),
        ]
    }

    /// A ready table with this comparison's header.
    pub fn table() -> TextTable {
        TextTable::new(Self::HEADER)
    }
}

/// Aggregated three-way comparison: the adaptive run against both pure
/// sweep modes of the same BFS. The acceptance shape: adaptive's column
/// steps must never exceed the worse pure mode (per iteration it runs
/// one of the two pure dispatchers) and should track the better one
/// closely; `mode_switches`/`worklist_iters` expose the controller's
/// decision trace.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveComparison {
    /// Iterations executed (equal in all three modes by construction).
    pub iterations: usize,
    /// Total column steps of the pure full-sweep run.
    pub full_col_steps: u64,
    /// Total column steps of the pure worklist run.
    pub worklist_col_steps: u64,
    /// Total column steps of the adaptive run.
    pub adaptive_col_steps: u64,
    /// Sweep-mode switches the adaptive controller performed.
    pub mode_switches: usize,
    /// Adaptive iterations executed as worklist sweeps.
    pub worklist_iters: usize,
    /// Activation probes the adaptive run paid.
    pub activations: u64,
}

impl AdaptiveComparison {
    /// Builds the comparison from the three runs' statistics.
    ///
    /// # Panics
    /// Panics if the iteration counts differ — the sweep policy must
    /// never change the fixpoint (not the same BFS otherwise).
    pub fn measure(full: &RunStats, worklist: &RunStats, adaptive: &RunStats) -> Self {
        assert_eq!(
            full.num_iterations(),
            adaptive.num_iterations(),
            "full-sweep and adaptive runs disagree on iterations — not the same BFS"
        );
        assert_eq!(
            worklist.num_iterations(),
            adaptive.num_iterations(),
            "worklist and adaptive runs disagree on iterations — not the same BFS"
        );
        Self {
            iterations: adaptive.num_iterations(),
            full_col_steps: full.total_col_steps(),
            worklist_col_steps: worklist.total_col_steps(),
            adaptive_col_steps: adaptive.total_col_steps(),
            mode_switches: adaptive.mode_switches(),
            worklist_iters: adaptive.worklist_sweep_iterations(),
            activations: adaptive.total_activations(),
        }
    }

    /// Adaptive column steps as a fraction of the full sweep's.
    pub fn ratio_vs_full(&self) -> f64 {
        ratio(self.adaptive_col_steps, self.full_col_steps)
    }

    /// Adaptive column steps as a fraction of the *better* pure mode's
    /// (1.0 = matched it exactly; the acceptance criterion asks for
    /// ≤ 1.05 on every generator).
    pub fn ratio_vs_best(&self) -> f64 {
        ratio(self.adaptive_col_steps, self.full_col_steps.min(self.worklist_col_steps))
    }

    /// Whether adaptive stayed within the worse pure mode — the hard
    /// bound (it runs one of the two dispatchers every iteration).
    pub fn bounded_by_worse_mode(&self) -> bool {
        self.adaptive_col_steps <= self.full_col_steps.max(self.worklist_col_steps)
    }

    /// Header of the comparison table [`row`](Self::row)s feed.
    pub const HEADER: [&'static str; 8] = [
        "graph",
        "iters",
        "col steps (full)",
        "col steps (worklist)",
        "col steps (adaptive)",
        "vs best",
        "switches",
        "wl iters",
    ];

    /// One table row labeled with the graph/configuration name.
    pub fn row(&self, label: &str) -> [String; 8] {
        [
            label.to_string(),
            self.iterations.to_string(),
            self.full_col_steps.to_string(),
            self.worklist_col_steps.to_string(),
            self.adaptive_col_steps.to_string(),
            format!("{:.3}", self.ratio_vs_best()),
            self.mode_switches.to_string(),
            format!("{}/{}", self.worklist_iters, self.iterations),
        ]
    }

    /// A ready table with this comparison's header.
    pub fn table() -> TextTable {
        TextTable::new(Self::HEADER)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        if num == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_core::{BfsEngine, BfsOptions, SlimSellMatrix, SweepMode, TropicalSemiring};
    use slimsell_graph::GraphBuilder;

    fn runs() -> (RunStats, RunStats) {
        let n = 128u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let m = SlimSellMatrix::<4>::build(&g, 1);
        let full = BfsEngine::run::<_, TropicalSemiring, 4>(
            &m,
            0,
            &BfsOptions::default().sweep(SweepMode::Full),
        );
        let wl = BfsEngine::run::<_, TropicalSemiring, 4>(
            &m,
            0,
            &BfsOptions::default().sweep(SweepMode::Worklist),
        );
        (full.stats, wl.stats)
    }

    #[test]
    fn measures_a_real_path_bfs() {
        let (full, wl) = runs();
        let c = WorklistComparison::measure(&full, &wl);
        assert_eq!(c.iterations, full.num_iterations());
        assert!(c.worklist_col_steps < c.full_col_steps, "no savings on a path?");
        assert!(c.col_step_ratio() < 1.0);
        assert!(c.visit_ratio() < 1.0);
        assert!(c.activations > 0);
        assert!(c.activation_cost_per_saved_visit() >= 0.0);
    }

    #[test]
    fn row_matches_header_width() {
        let (full, wl) = runs();
        let c = WorklistComparison::measure(&full, &wl);
        let mut t = WorklistComparison::table();
        t.row(c.row("path-128"));
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("path-128"));
    }

    #[test]
    #[should_panic(expected = "disagree on iterations")]
    fn mismatched_runs_rejected() {
        let (full, _) = runs();
        WorklistComparison::measure(&full, &RunStats::default());
    }

    #[test]
    fn ratio_edge_cases() {
        assert_eq!(ratio(0, 0), 1.0);
        assert!(ratio(1, 0).is_infinite());
        assert_eq!(ratio(1, 2), 0.5);
    }

    fn adaptive_runs() -> (RunStats, RunStats, RunStats) {
        let n = 128u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let m = SlimSellMatrix::<4>::build(&g, 1);
        let run = |sweep| {
            BfsEngine::run::<_, TropicalSemiring, 4>(&m, 0, &BfsOptions::default().sweep(sweep))
                .stats
        };
        (run(SweepMode::Full), run(SweepMode::Worklist), run(SweepMode::Adaptive))
    }

    #[test]
    fn adaptive_comparison_measures_a_real_bfs() {
        let (full, wl, ad) = adaptive_runs();
        let c = AdaptiveComparison::measure(&full, &wl, &ad);
        assert_eq!(c.iterations, full.num_iterations());
        assert!(c.bounded_by_worse_mode());
        // On a path the worklist wins and adaptive should match it.
        assert!(c.ratio_vs_best() <= 1.05, "vs best {}", c.ratio_vs_best());
        assert!(c.ratio_vs_full() < 1.0);
        let mut t = AdaptiveComparison::table();
        t.row(c.row("path-128"));
        assert!(t.render().contains("path-128"));
    }

    #[test]
    #[should_panic(expected = "disagree on iterations")]
    fn adaptive_mismatched_runs_rejected() {
        let (full, wl, _) = adaptive_runs();
        AdaptiveComparison::measure(&full, &wl, &RunStats::default());
    }
}
