//! Plain-text table rendering for the reproduction harness.
//!
//! Every `repro` subcommand prints its rows through [`TextTable`] so the
//! output is aligned and diff-friendly, and optionally dumps the same
//! rows as CSV for plotting.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width != header width");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = width[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180-light: fields with commas are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in seconds with engineering-friendly precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.row(["xxxxx", "1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a      "));
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(["k", "v"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        TextTable::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.500ms");
        assert_eq!(fmt_secs(0.0000025), "2.5us");
    }
}
