//! The two matrix representations: Sell-C-σ and SlimSell.
//!
//! Both share the chunked [`SellStructure`]; they differ only in where
//! the semiring values come from during the inner loop:
//!
//! * [`SellCSigma`] stores an explicit `val` array (Listing 5, line 7:
//!   `V vals = LOAD(&val[index])`) — `1` for edges, the semiring-specific
//!   padding value (`∞` tropical / `0` others) for padding cells.
//! * [`SlimSellMatrix`] stores no `val` at all and derives it from the
//!   column indices with a compare + blend (Listing 6, lines 10–12),
//!   halving the matrix storage (§III-B).

use slimsell_graph::CsrGraph;
use slimsell_simd::{SimdF32, SimdI32};

use crate::structure::SellStructure;

/// Which representation a matrix is — used in reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Representation {
    /// Sell-C-σ with an explicit `val` array.
    SellCSigma,
    /// SlimSell: `val` derived from `col`.
    SlimSell,
}

/// A chunked matrix the BFS-SpMV kernels can run over.
pub trait ChunkMatrix<const C: usize>: Send + Sync {
    /// The underlying chunk structure.
    fn structure(&self) -> &SellStructure<C>;

    /// Produces the `vals` vector for the column step starting at
    /// `index` in the `col` array. `cols` are the already-loaded column
    /// indices of this step; `pad` is the semiring's padding value.
    fn vals(&self, index: usize, cols: SimdI32<C>, pad: f32) -> SimdF32<C>;

    /// Which representation this is.
    fn representation(&self) -> Representation;

    /// Total storage in 4-byte cells (Table III accounting).
    fn storage_cells(&self) -> usize;
}

/// Sell-C-σ (§II-D2): chunked storage with an explicit `val` array.
#[derive(Clone, Debug)]
pub struct SellCSigma<const C: usize> {
    structure: SellStructure<C>,
    /// Semiring values: `1.0` for edges, `pad` for padding cells.
    val: Vec<f32>,
    /// The padding value `val` was built with (must match the semiring
    /// used at run time; checked in debug builds).
    pad: f32,
}

impl<const C: usize> SellCSigma<C> {
    /// Builds Sell-C-σ for a given sorting scope and semiring padding
    /// value (`S::PAD` of the semiring the BFS will run with).
    pub fn build(g: &CsrGraph, sigma: usize, pad: f32) -> Self {
        let structure = SellStructure::build(g, sigma);
        Self::from_structure(structure, pad)
    }

    /// Builds from an existing structure (shared with a SlimSell build).
    pub fn from_structure(structure: SellStructure<C>, pad: f32) -> Self {
        let val = structure.col().iter().map(|&c| if c >= 0 { 1.0 } else { pad }).collect();
        Self { structure, val, pad }
    }

    /// The explicit value array.
    pub fn val(&self) -> &[f32] {
        &self.val
    }

    /// Padding value the `val` array encodes.
    pub fn pad(&self) -> f32 {
        self.pad
    }
}

impl<const C: usize> ChunkMatrix<C> for SellCSigma<C> {
    #[inline]
    fn structure(&self) -> &SellStructure<C> {
        &self.structure
    }

    #[inline(always)]
    fn vals(&self, index: usize, _cols: SimdI32<C>, pad: f32) -> SimdF32<C> {
        debug_assert_eq!(
            pad.to_bits(),
            self.pad.to_bits(),
            "Sell-C-σ built for a different semiring"
        );
        SimdF32::load(&self.val[index..])
    }

    fn representation(&self) -> Representation {
        Representation::SellCSigma
    }

    /// `val + col + cs + cl` = `2(2m + P) + 2⌈n/C⌉` cells.
    fn storage_cells(&self) -> usize {
        self.val.len()
            + self.structure.col().len()
            + self.structure.cs().len()
            + self.structure.cl().len()
    }
}

/// SlimSell (§III-B): no `val` array; values derived from `col`.
#[derive(Clone, Debug)]
pub struct SlimSellMatrix<const C: usize> {
    structure: SellStructure<C>,
}

impl<const C: usize> SlimSellMatrix<C> {
    /// Builds SlimSell for a given sorting scope.
    pub fn build(g: &CsrGraph, sigma: usize) -> Self {
        Self { structure: SellStructure::build(g, sigma) }
    }

    /// Wraps an existing structure.
    pub fn from_structure(structure: SellStructure<C>) -> Self {
        Self { structure }
    }
}

impl<const C: usize> ChunkMatrix<C> for SlimSellMatrix<C> {
    #[inline]
    fn structure(&self) -> &SellStructure<C> {
        &self.structure
    }

    /// Listing 6 lines 10–12: mask = CMP(cols, −1, EQ); vals =
    /// BLEND(ones, pad, mask).
    #[inline(always)]
    fn vals(&self, _index: usize, cols: SimdI32<C>, pad: f32) -> SimdF32<C> {
        let mask = cols.cmp_eq_mask(SimdI32::minus_ones());
        SimdF32::blend(SimdF32::one(), SimdF32::splat(pad), mask)
    }

    fn representation(&self) -> Representation {
        Representation::SlimSell
    }

    /// `col + cs + cl` = `2m + P + 2⌈n/C⌉` cells.
    fn storage_cells(&self) -> usize {
        self.structure.col().len() + self.structure.cs().len() + self.structure.cl().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::GraphBuilder;

    fn g() -> CsrGraph {
        GraphBuilder::new(6).edges([(0, 1), (0, 2), (0, 3), (1, 2), (4, 5)]).build()
    }

    #[test]
    fn vals_agree_between_representations() {
        let g = g();
        for pad in [f32::INFINITY, 0.0] {
            let sell = SellCSigma::<4>::build(&g, 6, pad);
            let slim = SlimSellMatrix::<4>::build(&g, 6);
            let s = sell.structure();
            for i in 0..s.num_chunks() {
                let mut index = s.cs()[i];
                for _ in 0..s.cl()[i] {
                    let cols = SimdI32::<4>::load(&s.col()[index..]);
                    let a = sell.vals(index, cols, pad);
                    let b = slim.vals(index, cols, pad);
                    assert_eq!(
                        a.0.map(f32::to_bits),
                        b.0.map(f32::to_bits),
                        "chunk {i} index {index}"
                    );
                    index += 4;
                }
            }
        }
    }

    #[test]
    fn slimsell_is_smaller() {
        let g = g();
        let sell = SellCSigma::<4>::build(&g, 6, 0.0);
        let slim = SlimSellMatrix::<4>::build(&g, 6);
        assert!(slim.storage_cells() < sell.storage_cells());
        // Exactly the val array is saved.
        assert_eq!(sell.storage_cells() - slim.storage_cells(), sell.val().len());
    }

    #[test]
    fn storage_formulas() {
        let g = g();
        let (m, n) = (g.num_edges(), g.num_vertices());
        let slim = SlimSellMatrix::<4>::build(&g, 6);
        let p = slim.structure().padding_cells();
        let nc = n.div_ceil(4);
        assert_eq!(slim.storage_cells(), 2 * m + p + 2 * nc);
        let sell = SellCSigma::<4>::build(&g, 6, 0.0);
        assert_eq!(sell.storage_cells(), 2 * (2 * m + p) + 2 * nc);
    }

    #[test]
    fn val_encodes_edges_as_one() {
        let g = g();
        let sell = SellCSigma::<4>::build(&g, 1, f32::INFINITY);
        for (i, &c) in sell.structure().col().iter().enumerate() {
            if c >= 0 {
                assert_eq!(sell.val()[i], 1.0);
            } else {
                assert!(sell.val()[i].is_infinite());
            }
        }
    }
}
