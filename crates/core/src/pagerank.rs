//! PageRank over the SlimSell structure — the paper's §VI observation
//! that "many algorithms (e.g., Pagerank) have identical communication
//! patterns in each superstep", making them *better* suited to the
//! SpMV-over-Sell approach than BFS (no SlimWork-style early-out is even
//! needed; every iteration touches the whole structure).
//!
//! The update is `x' = (1−d)/n + d · (Aᵀ D⁻¹ x + dangling/n)` with
//! `D` the degree matrix. Because the graph is undirected and the matrix
//! symmetric, `Aᵀ D⁻¹ x` is computed by pre-scaling (`y = x/deg`) and
//! one SpMV over the chunked structure — the same gather/accumulate
//! kernel as BFS with the real semiring's (+, ·) and implicit 1 values.
//!
//! The expensive `O(m)` SpMV pass rides the sweep-policy substrate of
//! [`crate::sweep`]: the per-vertex SpMV accumulator is persistent, the
//! pre-scale pass records which chunks of `y` changed bit-wise since
//! the previous iteration, and in worklist/adaptive mode only the
//! dependents of changed `y` chunks are recomputed — a chunk none of
//! whose gathered inputs changed would reproduce its cached accumulator
//! to the bit (the chunk SpMV is a pure function of the gathered
//! lanes). Mid-run the damping base mass shifts every iteration, so `y`
//! floods and the adaptive controller's seed-count rule settles on full
//! sweeps without paying a single activation probe (only the `O(n)`
//! bit compare); the worklist pays off in the convergence tail, when
//! most of `y` has stopped moving. The cheap `O(n)` pre-scale and
//! output passes always sweep fully. Scores, residuals, and iteration
//! counts are bit-identical in every sweep mode and at any thread
//! count.
//!
//! Both the pre-scale and the SpMV run tile-parallel over
//! [`crate::tiling`] chunk tiles writing disjoint slabs. The L1
//! residual is made thread-count-independent by accumulating one
//! partial per chunk (fixed lane order) into a side slab and summing
//! that slab sequentially in chunk order — scores and residuals are
//! bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use slimsell_core::{pagerank, PageRankOptions, SlimSellMatrix};
//! use slimsell_graph::GraphBuilder;
//!
//! // On a ring every vertex is symmetric: scores are uniform.
//! let g = GraphBuilder::new(8).edges((0..8u32).map(|v| (v, (v + 1) % 8))).build();
//! let m = SlimSellMatrix::<4>::build(&g, 8);
//! let out = pagerank(&m, &PageRankOptions::default());
//! assert!(out.scores.iter().all(|&s| (s - 0.125).abs() < 1e-5));
//! ```

use std::time::Instant;

use slimsell_graph::VertexId;
use slimsell_simd::{SimdF32, SimdI32};

use crate::counters::{IterStats, RunStats};
use crate::matrix::ChunkMatrix;
use crate::semiring::{RealSemiring, Semiring};
use crate::sweep::{resolve_sweep, AdaptiveController, ExecutedSweep, SweepConfig, SweepMode};
use crate::tiling::{ChunkTiling, Schedule, WorklistTiling};
use crate::worklist::ActivationState;

/// PageRank options.
#[derive(Clone, Debug)]
pub struct PageRankOptions {
    /// Damping factor `d` (0.85 is the classic choice).
    pub damping: f32,
    /// L1 convergence tolerance.
    pub tolerance: f32,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Sweep strategy and scheduling for the SpMV pass (defaults to
    /// the `SLIMSELL_SWEEP` env var; adaptive when unset). Scores are
    /// bit-identical in every mode.
    pub config: SweepConfig,
    /// Personalization set (original vertex ids). `None` is classic
    /// PageRank with the uniform teleport vector — byte-identical to
    /// the pre-personalization behavior. `Some(seeds)` teleports (and
    /// routes dangling mass) to the seed set only: the restart
    /// distribution puts `1/|S|` on each seed and 0 elsewhere, so
    /// scores concentrate around the seeds (personalized PageRank).
    pub personalize: Option<Vec<VertexId>>,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tolerance: 1e-7,
            max_iterations: 200,
            config: SweepConfig::default(),
            personalize: None,
        }
    }
}

impl PageRankOptions {
    /// Sets the sweep mode, keeping the schedule (builder).
    #[must_use]
    pub fn sweep(mut self, sweep: SweepMode) -> Self {
        self.config.sweep = sweep;
        self
    }

    /// Sets the schedule, keeping the sweep mode (builder).
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Sets the full sweep configuration (builder).
    #[must_use]
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the personalization seed set (builder; original ids).
    #[must_use]
    pub fn personalize(mut self, seeds: impl IntoIterator<Item = VertexId>) -> Self {
        self.personalize = Some(seeds.into_iter().collect());
        self
    }

    /// Migration shim for the pre-PR-10 `sweep` field.
    #[deprecated(note = "set `config.sweep` or use the `.sweep(..)` builder")]
    pub fn set_sweep(&mut self, sweep: SweepMode) {
        self.config.sweep = sweep;
    }

    /// Migration shim for the pre-PR-10 `schedule` knob.
    #[deprecated(note = "set `config.schedule` or use the `.schedule(..)` builder")]
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.config.schedule = schedule;
    }
}

/// PageRank result.
#[derive(Clone, Debug)]
pub struct PageRankOutput {
    /// Scores in original vertex ids; sums to 1.
    pub scores: Vec<f32>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final L1 residual.
    pub residual: f32,
    /// Per-iteration statistics of the SpMV pass: sweep-mode trace,
    /// column steps actually executed, worklist sizes, activations.
    pub stats: RunStats,
}

/// Runs PageRank on the chunked structure.
pub fn pagerank<M, const C: usize>(matrix: &M, opts: &PageRankOptions) -> PageRankOutput
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let n = s.n();
    let np = s.n_padded();
    assert!(n > 0);
    let d = opts.damping;

    // Degrees in permuted space (padding rows get degree 0).
    let deg: Vec<f32> = (0..np).map(|r| if r < n { s.row_len(r) as f32 } else { 0.0 }).collect();
    let inv_deg: Vec<f32> = deg.iter().map(|&x| if x > 0.0 { 1.0 / x } else { 0.0 }).collect();

    // Personalized restart distribution in permuted space: 1/|S| on
    // each seed, 0 elsewhere. The `None` arm below keeps the classic
    // uniform-teleport code path byte-identical to the
    // pre-personalization behavior.
    let tele: Option<Vec<f32>> = opts.personalize.as_ref().map(|seeds| {
        assert!(!seeds.is_empty(), "personalization seed set is empty");
        let mut uniq: Vec<VertexId> = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let w = 1.0 / uniq.len() as f32;
        let mut t = vec![0.0f32; np];
        for &v in &uniq {
            assert!((v as usize) < n, "personalization seed {v} out of range (n = {n})");
            t[s.perm().to_new(v) as usize] = w;
        }
        t
    });

    let mut x = match &tele {
        None => {
            let mut x = vec![0.0f32; np];
            x[..n].fill(1.0 / n as f32);
            x
        }
        // Personalized runs start from the restart distribution.
        Some(t) => t.clone(),
    };
    let mut y = vec![0.0f32; np]; // pre-scaled x/deg
    let mut nxt = vec![0.0f32; np];
    let nc = np / C;
    // Per-chunk residual partials; summed in chunk order so the L1
    // residual does not depend on tile boundaries (thread count).
    let mut chunk_res = vec![0.0f32; nc];
    // Persistent SpMV accumulator: `acc[v] = (A ⊗ y)[v]` at all times.
    // The all-zero start is exactly the SpMV of the all-zero initial
    // `y`, so the change-driven update below is correct from the first
    // iteration with no special casing.
    let mut acc = vec![0.0f32; np];
    // Which lanes of which chunks of `y` changed bit-wise this
    // iteration (the SpMV worklist seeds, one lane mask per chunk),
    // rebuilt by the pre-scale pass every iteration.
    let mut y_changed = vec![0u32; nc];
    let mut pending: Vec<(u32, u32)> = Vec::new();
    let mut act = ActivationState::new();
    let mut ctl = AdaptiveController::new();
    // Change detection (the bit compares in the pre-scale pass and the
    // seed-list rebuild) is paid only by worklist-capable modes.
    let track = opts.config.sweep.uses_worklist();

    let tiling = ChunkTiling::new(nc, opts.config.schedule);
    let mut stats = RunStats::default();
    let mut iterations = 0;
    let mut residual = f32::INFINITY;
    while iterations < opts.max_iterations && residual > opts.tolerance {
        iterations += 1;
        let t0 = Instant::now();
        // Dangling vertices spread their mass uniformly (sequential
        // fixed-order sum: deterministic).
        let dangling: f32 = (0..n).filter(|&v| deg[v] == 0.0).map(|v| x[v]).sum();
        let base_mass = (1.0 - d) / n as f32 + d * dangling / n as f32;
        // Pre-scale pass: y = x / deg, disjoint chunk tiles of y —
        // with per-chunk bit-exact change flags for the SpMV worklist
        // when a worklist-capable mode is active; pure full-sweep runs
        // never pay for change detection.
        let changed_chunks;
        if track {
            let (x_ref, inv_ref) = (&x, &inv_deg);
            let tiles: Vec<_> =
                tiling.split(C, &mut y).into_iter().zip(tiling.split(1, &mut y_changed)).collect();
            tiling.for_each(tiles, |(t, f)| {
                let base = t.c0 * C;
                for (k, (slot, flag)) in t.data.chunks_mut(C).zip(f.data.iter_mut()).enumerate() {
                    let mut changed = 0u32;
                    for (lane, yv) in slot.iter_mut().enumerate() {
                        let v = base + k * C + lane;
                        let new = x_ref[v] * inv_ref[v];
                        if new.to_bits() != yv.to_bits() {
                            changed |= 1u32 << (lane & 31);
                        }
                        *yv = new;
                    }
                    *flag = changed;
                }
            });
            pending.clear();
            pending.extend(
                y_changed.iter().enumerate().filter(|(_, &f)| f != 0).map(|(i, &f)| (i as u32, f)),
            );
            changed_chunks = pending.len();
        } else {
            let (x_ref, inv_ref) = (&x, &inv_deg);
            let tiles = tiling.split(C, &mut y);
            tiling.for_each(tiles, |t| {
                let base = t.c0 * C;
                for (k, yv) in t.data.iter_mut().enumerate() {
                    *yv = x_ref[base + k] * inv_ref[base + k];
                }
            });
            changed_chunks = 0;
        }

        // SpMV pass under the sweep policy: recompute the accumulator
        // for every chunk (full) or for the dependents of changed `y`
        // chunks only (worklist) — elsewhere the cached values are
        // already bit-exact.
        // Short-circuit before touching `dep_graph()`: pure full-sweep
        // runs must not force the lazy dependency-graph build.
        let (exec, seeded) = match opts.config.sweep {
            SweepMode::Full => (ExecutedSweep::Full, None),
            _ => resolve_sweep(
                opts.config.sweep,
                &mut ctl,
                &mut act,
                s.dep_graph(),
                &mut pending,
                nc,
                None,
            ),
        };
        let y_ref = &y;
        let (col_steps, wl_len);
        match exec {
            ExecutedSweep::Full => {
                let tiles = tiling.split(C, &mut acc);
                col_steps = tiling.map_reduce(
                    tiles,
                    |t| {
                        let mut steps = 0u64;
                        for (k, slot) in t.data.chunks_mut(C).enumerate() {
                            let i = t.c0 + k;
                            spmv_chunk::<M, C>(matrix, y_ref, i).store(slot);
                            steps += s.cl()[i] as u64;
                        }
                        steps
                    },
                    || 0,
                    |a, b| a + b,
                );
                wl_len = nc;
            }
            ExecutedSweep::Worklist => {
                // Unlike SSSP, the per-entry changed flags are unused:
                // the next seed list comes from the pre-scale pass's
                // `y` compare, not from harvesting sweep outputs. The
                // slab is passed only to satisfy `split_slab`.
                let (ids, flags) = act.split();
                wl_len = ids.len();
                let wt = WorklistTiling::new(ids, opts.config.schedule);
                let slabs = wt.split_slab(C, &mut acc, flags);
                col_steps = wt.map_reduce(
                    slabs,
                    |slab| {
                        let base0 = slab.ids[0] as usize * C;
                        let mut steps = 0u64;
                        for &id in slab.ids {
                            let i = id as usize;
                            let off = i * C - base0;
                            spmv_chunk::<M, C>(matrix, y_ref, i)
                                .store(&mut slab.data[off..off + C]);
                            steps += s.cl()[i] as u64;
                        }
                        steps
                    },
                    || 0,
                    |a, b| a + b,
                );
            }
        }

        // Output + residual pass: each tile owns its slab of `nxt` and
        // the matching slab of per-chunk residual partials. The
        // personalized restart teleports (and routes dangling mass) to
        // the seed distribution instead of the uniform one.
        {
            let (x_ref, acc_ref) = (&x, &acc);
            let tele_ref = tele.as_deref();
            let tiles: Vec<_> = tiling
                .split(C, &mut nxt)
                .into_iter()
                .zip(tiling.split(1, &mut chunk_res))
                .collect();
            tiling.for_each(tiles, |(out, res)| {
                for (k, (slot, r)) in out.data.chunks_mut(C).zip(res.data.iter_mut()).enumerate() {
                    let i = out.c0 + k;
                    let mut partial = 0.0f32;
                    for (lane, o) in slot.iter_mut().enumerate() {
                        let v = i * C + lane;
                        *o = if v >= n {
                            0.0
                        } else {
                            match tele_ref {
                                None => base_mass + d * acc_ref[v],
                                Some(t) => (1.0 - d) * t[v] + d * (acc_ref[v] + dangling * t[v]),
                            }
                        };
                        partial += (*o - x_ref[v]).abs();
                    }
                    *r = partial;
                }
            });
        }
        residual = chunk_res.iter().sum();
        std::mem::swap(&mut x, &mut nxt);
        stats.iters.push(IterStats {
            elapsed: t0.elapsed(),
            sweep_mode: exec,
            chunks_processed: wl_len,
            chunks_skipped: 0,
            chunks_not_on_worklist: nc - wl_len,
            worklist_len: wl_len,
            activations: seeded.unwrap_or(0),
            changed_chunks,
            col_steps,
            cells: col_steps * C as u64,
            active_cells: 0, // lane utilization is measured by the BFS family only
            changed: residual > opts.tolerance,
            ..Default::default()
        });
    }

    let perm = s.perm();
    let scores = (0..n).map(|old| x[perm.to_new(old as VertexId) as usize]).collect();
    PageRankOutput { scores, iterations, residual, stats }
}

/// One chunk of `A ⊗_R y` starting from a zero accumulator (unlike the
/// BFS kernel, PageRank must not fold the old value in).
#[inline]
fn spmv_chunk<M, const C: usize>(matrix: &M, y: &[f32], i: usize) -> SimdF32<C>
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let col = s.col();
    let mut acc = SimdF32::<C>::zero();
    let mut index = s.cs()[i];
    for _ in 0..s.cl()[i] {
        let cols = SimdI32::<C>::load(&col[index..]);
        let vals = matrix.vals(index, cols, RealSemiring::PAD);
        let rhs = SimdF32::gather_or(y, cols, 0.0);
        acc = RealSemiring::combine(acc, vals, rhs);
        index += C;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SlimSellMatrix;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{CsrGraph, GraphBuilder};

    fn reference_pagerank(g: &CsrGraph, opts: &PageRankOptions) -> Vec<f32> {
        let n = g.num_vertices();
        let d = opts.damping;
        let mut x = vec![1.0 / n as f32; n];
        for _ in 0..opts.max_iterations {
            let dangling: f32 =
                (0..n as u32).filter(|&v| g.degree(v) == 0).map(|v| x[v as usize]).sum();
            let mut nxt = vec![(1.0 - d) / n as f32 + d * dangling / n as f32; n];
            for v in 0..n as u32 {
                let share = x[v as usize] / g.degree(v).max(1) as f32;
                for &w in g.neighbors(v) {
                    nxt[w as usize] += d * share;
                }
            }
            let res: f32 = nxt.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
            x = nxt;
            if res < opts.tolerance {
                break;
            }
        }
        x
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn ring_is_uniform() {
        let n = 12;
        let g = GraphBuilder::new(n).edges((0..n as u32).map(|v| (v, (v + 1) % n as u32))).build();
        let m = SlimSellMatrix::<4>::build(&g, n);
        let out = pagerank(&m, &PageRankOptions::default());
        let expect = 1.0 / n as f32;
        assert_close(&out.scores, &vec![expect; n], 1e-5);
    }

    #[test]
    fn star_center_ranks_highest() {
        let g = GraphBuilder::new(9).edges((1..9u32).map(|v| (0, v))).build();
        let m = SlimSellMatrix::<4>::build(&g, 9);
        let out = pagerank(&m, &PageRankOptions::default());
        assert!(out.scores[0] > 3.0 * out.scores[1]);
        let sum: f32 = out.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
    }

    #[test]
    fn matches_reference_on_kronecker() {
        let g = kronecker(8, 4.0, KroneckerParams::GRAPH500, 6);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let opts = PageRankOptions::default();
        let out = pagerank(&m, &opts);
        let reference = reference_pagerank(&g, &opts);
        assert_close(&out.scores, &reference, 1e-4);
        assert!(out.residual <= opts.tolerance);
    }

    #[test]
    fn all_sweep_modes_bit_identical() {
        // The SpMV worklist must be a pure work-avoidance
        // transformation: scores, residual, and iteration count equal
        // to the bit under every sweep mode — including the skipped
        // chunks whose cached accumulators stand in for a recompute.
        let g = kronecker(8, 4.0, KroneckerParams::GRAPH500, 9);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let full = pagerank(&m, &PageRankOptions::default().sweep(SweepMode::Full));
        assert!(full.iterations > 2, "trivial convergence makes this test vacuous");
        for sweep in [SweepMode::Worklist, SweepMode::Adaptive] {
            let out = pagerank(&m, &PageRankOptions::default().sweep(sweep));
            assert_eq!(
                out.scores.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                full.scores.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{sweep:?} scores diverged"
            );
            assert_eq!(out.residual.to_bits(), full.residual.to_bits(), "{sweep:?} residual");
            assert_eq!(out.iterations, full.iterations, "{sweep:?} iterations");
            assert!(
                out.stats.total_col_steps() <= full.stats.total_col_steps(),
                "{sweep:?} recomputed more than the full sweep"
            );
        }
    }

    #[test]
    fn worklist_skips_settled_chunks_in_the_convergence_tail() {
        // Two far-apart components settle at different speeds; once one
        // side's y stops moving bit-wise, its chunks must drop off the
        // SpMV worklist. The savings show up as strictly fewer total
        // column steps than iterations × full-sweep steps.
        let mut b = GraphBuilder::new(64);
        for v in 0..31u32 {
            b.edge(v, v + 1);
        }
        for v in 32..63u32 {
            b.edge(v, v + 1);
        }
        let g = b.build();
        let m = SlimSellMatrix::<4>::build(&g, 1);
        let opts = PageRankOptions::default().sweep(SweepMode::Worklist);
        let out = pagerank(&m, &opts);
        let full_steps_per_iter: u64 = {
            let s = m.structure();
            (0..s.num_chunks()).map(|i| s.cl()[i] as u64).sum()
        };
        assert!(
            out.stats.total_col_steps() < out.iterations as u64 * full_steps_per_iter,
            "worklist never skipped anything: {} vs {}",
            out.stats.total_col_steps(),
            out.iterations as u64 * full_steps_per_iter
        );
        assert!(out.stats.iters.iter().all(|i| i.sweep_mode == ExecutedSweep::Worklist));
    }

    fn reference_personalized(g: &CsrGraph, opts: &PageRankOptions, seeds: &[u32]) -> Vec<f32> {
        let n = g.num_vertices();
        let d = opts.damping;
        let w = 1.0 / seeds.len() as f32;
        let mut t = vec![0.0f32; n];
        for &v in seeds {
            t[v as usize] = w;
        }
        let mut x = t.clone();
        for _ in 0..opts.max_iterations {
            let dangling: f32 =
                (0..n as u32).filter(|&v| g.degree(v) == 0).map(|v| x[v as usize]).sum();
            let mut nxt: Vec<f32> =
                t.iter().map(|&tv| (1.0 - d) * tv + d * dangling * tv).collect();
            for v in 0..n as u32 {
                let share = x[v as usize] / g.degree(v).max(1) as f32;
                for &w2 in g.neighbors(v) {
                    nxt[w2 as usize] += d * share;
                }
            }
            let res: f32 = nxt.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
            x = nxt;
            if res < opts.tolerance {
                break;
            }
        }
        x
    }

    #[test]
    fn personalized_matches_dense_oracle() {
        let g = kronecker(8, 4.0, KroneckerParams::GRAPH500, 11);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let seeds = [3u32, 17, 42];
        let opts = PageRankOptions::default().personalize(seeds);
        let out = pagerank(&m, &opts);
        let reference = reference_personalized(&g, &opts, &seeds);
        assert_close(&out.scores, &reference, 1e-4);
        let sum: f32 = out.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "personalized mass not conserved: {sum}");
    }

    #[test]
    fn personalized_concentrates_mass_on_the_seed_component() {
        // Two disconnected paths; seeding the first component must
        // leave the second with zero score.
        let mut b = GraphBuilder::new(16);
        for v in 0..7u32 {
            b.edge(v, v + 1);
        }
        for v in 8..15u32 {
            b.edge(v, v + 1);
        }
        let g = b.build();
        let m = SlimSellMatrix::<4>::build(&g, 16);
        let out = pagerank(&m, &PageRankOptions::default().personalize([0u32, 3]));
        assert!(out.scores[..8].iter().sum::<f32>() > 0.999);
        assert!(out.scores[8..].iter().all(|&s| s == 0.0));
    }

    #[test]
    fn personalized_is_bit_identical_across_sweep_modes() {
        let g = kronecker(7, 4.0, KroneckerParams::GRAPH500, 5);
        let m = SlimSellMatrix::<4>::build(&g, g.num_vertices());
        let runs: Vec<Vec<u32>> = [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive]
            .into_iter()
            .map(|sweep| {
                pagerank(&m, &PageRankOptions::default().personalize([1u32, 9]).sweep(sweep))
                    .scores
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn personalized_seed_out_of_range_rejected() {
        let g = GraphBuilder::new(4).edges([(0, 1)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 4);
        pagerank(&m, &PageRankOptions::default().personalize([9u32]));
    }

    #[test]
    fn dangling_vertices_conserve_mass() {
        // Vertex 3 is isolated (dangling).
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 4);
        let out = pagerank(&m, &PageRankOptions::default());
        let sum: f32 = out.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        assert!(out.scores[3] > 0.0);
    }

    #[test]
    fn sorting_scope_does_not_change_scores() {
        let g = kronecker(7, 4.0, KroneckerParams::GRAPH500, 8);
        let a = pagerank(&SlimSellMatrix::<4>::build(&g, 1), &PageRankOptions::default());
        let b = pagerank(
            &SlimSellMatrix::<4>::build(&g, g.num_vertices()),
            &PageRankOptions::default(),
        );
        assert_close(&a.scores, &b.scores, 1e-5);
    }
}
