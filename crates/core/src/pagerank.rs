//! PageRank over the SlimSell structure — the paper's §VI observation
//! that "many algorithms (e.g., Pagerank) have identical communication
//! patterns in each superstep", making them *better* suited to the
//! SpMV-over-Sell approach than BFS (no SlimWork-style early-out is even
//! needed; every iteration touches the whole structure).
//!
//! The update is `x' = (1−d)/n + d · (Aᵀ D⁻¹ x + dangling/n)` with
//! `D` the degree matrix. Because the graph is undirected and the matrix
//! symmetric, `Aᵀ D⁻¹ x` is computed by pre-scaling (`y = x/deg`) and
//! one SpMV over the chunked structure — the same gather/accumulate
//! kernel as BFS with the real semiring's (+, ·) and implicit 1 values.
//!
//! Both the pre-scale and the SpMV run tile-parallel over
//! [`crate::tiling`] chunk tiles writing disjoint slabs. The L1
//! residual is made thread-count-independent by accumulating one
//! partial per chunk (fixed lane order) into a side slab and summing
//! that slab sequentially in chunk order — scores and residuals are
//! bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use slimsell_core::{pagerank, PageRankOptions, SlimSellMatrix};
//! use slimsell_graph::GraphBuilder;
//!
//! // On a ring every vertex is symmetric: scores are uniform.
//! let g = GraphBuilder::new(8).edges((0..8u32).map(|v| (v, (v + 1) % 8))).build();
//! let m = SlimSellMatrix::<4>::build(&g, 8);
//! let out = pagerank(&m, &PageRankOptions::default());
//! assert!(out.scores.iter().all(|&s| (s - 0.125).abs() < 1e-5));
//! ```

use slimsell_graph::VertexId;
use slimsell_simd::{SimdF32, SimdI32};

use crate::matrix::ChunkMatrix;
use crate::semiring::{RealSemiring, Semiring};
use crate::tiling::{ChunkTiling, Schedule};

/// PageRank options.
#[derive(Clone, Copy, Debug)]
pub struct PageRankOptions {
    /// Damping factor `d` (0.85 is the classic choice).
    pub damping: f32,
    /// L1 convergence tolerance.
    pub tolerance: f32,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        Self { damping: 0.85, tolerance: 1e-7, max_iterations: 200 }
    }
}

/// PageRank result.
#[derive(Clone, Debug)]
pub struct PageRankOutput {
    /// Scores in original vertex ids; sums to 1.
    pub scores: Vec<f32>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final L1 residual.
    pub residual: f32,
}

/// Runs PageRank on the chunked structure.
pub fn pagerank<M, const C: usize>(matrix: &M, opts: &PageRankOptions) -> PageRankOutput
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let n = s.n();
    let np = s.n_padded();
    assert!(n > 0);
    let d = opts.damping;

    // Degrees in permuted space (padding rows get degree 0).
    let deg: Vec<f32> = (0..np).map(|r| if r < n { s.row_len(r) as f32 } else { 0.0 }).collect();
    let inv_deg: Vec<f32> = deg.iter().map(|&x| if x > 0.0 { 1.0 / x } else { 0.0 }).collect();

    let mut x = vec![0.0f32; np];
    x[..n].fill(1.0 / n as f32);
    let mut y = vec![0.0f32; np]; // pre-scaled x/deg
    let mut nxt = vec![0.0f32; np];
    let nc = np / C;
    // Per-chunk residual partials; summed in chunk order so the L1
    // residual does not depend on tile boundaries (thread count).
    let mut chunk_res = vec![0.0f32; nc];

    let mut iterations = 0;
    let mut residual = f32::INFINITY;
    while iterations < opts.max_iterations && residual > opts.tolerance {
        iterations += 1;
        // Dangling vertices spread their mass uniformly (sequential
        // fixed-order sum: deterministic).
        let dangling: f32 = (0..n).filter(|&v| deg[v] == 0.0).map(|v| x[v]).sum();
        let base_mass = (1.0 - d) / n as f32 + d * dangling / n as f32;
        let tiling = ChunkTiling::new(nc, Schedule::Dynamic);
        // Pre-scale pass: y = x / deg, disjoint chunk tiles of y.
        {
            let (x_ref, inv_ref) = (&x, &inv_deg);
            let tiles = tiling.split(C, &mut y);
            tiling.for_each(tiles, |t| {
                let base = t.c0 * C;
                for (k, yv) in t.data.iter_mut().enumerate() {
                    *yv = x_ref[base + k] * inv_ref[base + k];
                }
            });
        }
        // SpMV + residual pass: each tile owns its slab of `nxt` and the
        // matching slab of per-chunk residual partials.
        {
            let (x_ref, y_ref) = (&x, &y);
            let tiles: Vec<_> = tiling
                .split(C, &mut nxt)
                .into_iter()
                .zip(tiling.split(1, &mut chunk_res))
                .collect();
            tiling.for_each(tiles, |(out, res)| {
                for (k, (slot, r)) in out.data.chunks_mut(C).zip(res.data.iter_mut()).enumerate() {
                    let i = out.c0 + k;
                    let acc = spmv_chunk::<M, C>(matrix, y_ref, i);
                    let mut partial = 0.0f32;
                    for (lane, o) in slot.iter_mut().enumerate() {
                        let v = i * C + lane;
                        *o = if v < n { base_mass + d * acc.0[lane] } else { 0.0 };
                        partial += (*o - x_ref[v]).abs();
                    }
                    *r = partial;
                }
            });
        }
        residual = chunk_res.iter().sum();
        std::mem::swap(&mut x, &mut nxt);
    }

    let perm = s.perm();
    let scores = (0..n).map(|old| x[perm.to_new(old as VertexId) as usize]).collect();
    PageRankOutput { scores, iterations, residual }
}

/// One chunk of `A ⊗_R y` starting from a zero accumulator (unlike the
/// BFS kernel, PageRank must not fold the old value in).
#[inline]
fn spmv_chunk<M, const C: usize>(matrix: &M, y: &[f32], i: usize) -> SimdF32<C>
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let col = s.col();
    let mut acc = SimdF32::<C>::zero();
    let mut index = s.cs()[i];
    for _ in 0..s.cl()[i] {
        let cols = SimdI32::<C>::load(&col[index..]);
        let vals = matrix.vals(index, cols, RealSemiring::PAD);
        let rhs = SimdF32::gather_or(y, cols, 0.0);
        acc = RealSemiring::combine(acc, vals, rhs);
        index += C;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SlimSellMatrix;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{CsrGraph, GraphBuilder};

    fn reference_pagerank(g: &CsrGraph, opts: &PageRankOptions) -> Vec<f32> {
        let n = g.num_vertices();
        let d = opts.damping;
        let mut x = vec![1.0 / n as f32; n];
        for _ in 0..opts.max_iterations {
            let dangling: f32 =
                (0..n as u32).filter(|&v| g.degree(v) == 0).map(|v| x[v as usize]).sum();
            let mut nxt = vec![(1.0 - d) / n as f32 + d * dangling / n as f32; n];
            for v in 0..n as u32 {
                let share = x[v as usize] / g.degree(v).max(1) as f32;
                for &w in g.neighbors(v) {
                    nxt[w as usize] += d * share;
                }
            }
            let res: f32 = nxt.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
            x = nxt;
            if res < opts.tolerance {
                break;
            }
        }
        x
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn ring_is_uniform() {
        let n = 12;
        let g = GraphBuilder::new(n).edges((0..n as u32).map(|v| (v, (v + 1) % n as u32))).build();
        let m = SlimSellMatrix::<4>::build(&g, n);
        let out = pagerank(&m, &PageRankOptions::default());
        let expect = 1.0 / n as f32;
        assert_close(&out.scores, &vec![expect; n], 1e-5);
    }

    #[test]
    fn star_center_ranks_highest() {
        let g = GraphBuilder::new(9).edges((1..9u32).map(|v| (0, v))).build();
        let m = SlimSellMatrix::<4>::build(&g, 9);
        let out = pagerank(&m, &PageRankOptions::default());
        assert!(out.scores[0] > 3.0 * out.scores[1]);
        let sum: f32 = out.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
    }

    #[test]
    fn matches_reference_on_kronecker() {
        let g = kronecker(8, 4.0, KroneckerParams::GRAPH500, 6);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let opts = PageRankOptions::default();
        let out = pagerank(&m, &opts);
        let reference = reference_pagerank(&g, &opts);
        assert_close(&out.scores, &reference, 1e-4);
        assert!(out.residual <= opts.tolerance);
    }

    #[test]
    fn dangling_vertices_conserve_mass() {
        // Vertex 3 is isolated (dangling).
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 4);
        let out = pagerank(&m, &PageRankOptions::default());
        let sum: f32 = out.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        assert!(out.scores[3] > 0.0);
    }

    #[test]
    fn sorting_scope_does_not_change_scores() {
        let g = kronecker(7, 4.0, KroneckerParams::GRAPH500, 8);
        let a = pagerank(&SlimSellMatrix::<4>::build(&g, 1), &PageRankOptions::default());
        let b = pagerank(
            &SlimSellMatrix::<4>::build(&g, g.num_vertices()),
            &PageRankOptions::default(),
        );
        assert_close(&a.scores, &b.scores, 1e-5);
    }
}
