//! BFS semirings (§III-A): tropical, real, boolean, sel-max.
//!
//! Each semiring `S = (X, op1, op2, el1, el2)` instantiates the same
//! chunked SpMV skeleton (`acc = op1(acc, op2(vals, rhs))`, Listing 5
//! lines 6–21) but differs in:
//!
//! * the padding value that neutralizes `op2` (`∞` for tropical, `0`
//!   otherwise),
//! * the per-chunk post-processing that derives the next frontier and
//!   updates distances/parents (Listing 5 lines 22–45),
//! * the SlimWork skip criterion (Listing 7),
//! * which outputs come for free (tropical: distances; sel-max: parents
//!   *and* distances; boolean/real: distances, parents via `DP`).
//!
//! The state layout is uniform across semirings so one generic driver
//! (`bfs.rs`) serves all four:
//!
//! * `x` — the vector the SpMV reads (gathers) and writes: distances for
//!   tropical, the 0/1 frontier for boolean, path counts for real, and
//!   1-based vertex indices for sel-max;
//! * `g` — the unvisited filter of the boolean/real semirings (1 =
//!   not yet visited);
//! * `p` — sel-max's parent vector (1-based permuted ids; 0 = none).

use std::ops::Range;

use slimsell_simd::SimdF32;

/// Dense per-vertex state vectors (length `n_padded`), double-buffered by
/// the driver.
#[derive(Clone, Debug, Default)]
pub struct StateVecs {
    /// The SpMV input/output vector (meaning depends on the semiring).
    pub x: Vec<f32>,
    /// Unvisited filter (boolean/real semirings).
    pub g: Vec<f32>,
    /// Parent vector (sel-max semiring), 1-based permuted ids.
    pub p: Vec<f32>,
}

impl StateVecs {
    /// Allocates all vectors at `n_padded` lanes, zero-filled.
    pub fn new(n_padded: usize) -> Self {
        Self { x: vec![0.0; n_padded], g: vec![0.0; n_padded], p: vec![0.0; n_padded] }
    }
}

/// Bit-exact slice inequality (`-0.0 != 0.0`, NaN-safe): the comparison
/// the worklist engine's change detection is built on, matching the
/// byte-equality contract of the determinism suite. Public so kernels
/// with non-[`StateVecs`] state (weighted SSSP labels, PageRank's
/// pre-scaled vector) run their change detection on the identical rule.
#[inline]
pub fn slice_bits_differ(a: &[f32], b: &[f32]) -> bool {
    a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits())
}

/// Per-lane form of [`slice_bits_differ`] over one chunk's `C` lanes:
/// bit `l` is set iff lane `l` differs bit-wise. Computed with the same
/// SIMD compare the backends implement explicitly
/// ([`SimdF32::ne_bits`]), so the mask is exactly the set of lanes a
/// bit-exact change detector would flag.
#[inline]
pub fn lanes_ne_bits<const C: usize>(a: &[f32], b: &[f32]) -> u32 {
    SimdF32::<C>::load(a).ne_bits(SimdF32::load(b))
}

/// A BFS semiring: the pluggable part of the BFS-SpMV engine.
pub trait Semiring: Copy + Send + Sync + 'static {
    /// Display name (matches the paper's legends).
    const NAME: &'static str;
    /// Padding value: the `op2` annihilator blended in for `-1` columns.
    const PAD: f32;
    /// `op1` identity: the starting accumulator for SlimChunk tiles.
    const OP1_IDENTITY: f32;
    /// Whether parents are produced directly (sel-max) or require the
    /// `DP` transformation.
    const COMPUTES_PARENTS: bool;

    /// Element-wise `op1` (used to merge SlimChunk partial results).
    fn op1<const C: usize>(a: SimdF32<C>, b: SimdF32<C>) -> SimdF32<C>;

    /// Inner-loop step: `op1(acc, op2(vals, rhs))`.
    fn combine<const C: usize>(acc: SimdF32<C>, vals: SimdF32<C>, rhs: SimdF32<C>) -> SimdF32<C>;

    /// Initializes state and distance vectors for a run rooted at the
    /// *permuted* vertex `root`. Rows in `n..n_padded` are virtual
    /// padding rows and are initialized to look "finished" so SlimWork
    /// can skip their chunk.
    fn init(state: &mut StateVecs, d: &mut [f32], n: usize, root: usize);

    /// Post-MV chunk processing (Listing 5 lines 22–45): derives the next
    /// frontier, updates distances/parents, reports whether anything in
    /// this chunk changed.
    #[allow(clippy::too_many_arguments)]
    fn post_chunk<const C: usize>(
        acc: SimdF32<C>,
        cur: &StateVecs,
        base: usize,
        nxt_x: &mut [f32],
        nxt_g: &mut [f32],
        nxt_p: &mut [f32],
        d: &mut [f32],
        depth: f32,
    ) -> bool;

    /// SlimWork skip criterion (Listing 7): true if the chunk's outputs
    /// can no longer change and its computation may be skipped.
    fn should_skip(cur: &StateVecs, rows: Range<usize>) -> bool;

    /// Carries a skipped chunk's state into the next iteration (Listing 7
    /// line 18: `store(&x_k[i*C], load(&x_{k-1}[i*C]))`). Only the vectors
    /// the semiring actually reads need copying; the default copies
    /// everything.
    #[inline]
    fn copy_forward(
        cur: &StateVecs,
        base: usize,
        nxt_x: &mut [f32],
        nxt_g: &mut [f32],
        nxt_p: &mut [f32],
    ) {
        let c = nxt_x.len();
        nxt_x.copy_from_slice(&cur.x[base..base + c]);
        nxt_g.copy_from_slice(&cur.g[base..base + c]);
        nxt_p.copy_from_slice(&cur.p[base..base + c]);
    }

    /// Establishes the worklist invariant once per run: copies the
    /// vectors this semiring maintains from `src` into `dst` so that
    /// outside the worklist the next-state buffer already equals the
    /// current state. Vectors the semiring never reads or writes stay
    /// untouched — both buffers start zeroed, so they are already
    /// equal — which makes this cheaper than a full clone on the
    /// single-vector semirings. The default copies everything.
    fn clone_state(src: &StateVecs, dst: &mut StateVecs) {
        dst.x.copy_from_slice(&src.x);
        dst.g.copy_from_slice(&src.g);
        dst.p.copy_from_slice(&src.p);
    }

    /// Exact output-change test for the worklist engine: whether the
    /// freshly written next-state of a chunk differs **bit-wise** from
    /// the previous state over the vectors this semiring maintains.
    ///
    /// This is deliberately stricter than the `post_chunk` return value
    /// (which reports "the frontier advanced here" and may be `false`
    /// while e.g. a boolean frontier bit clears): a chunk may safely
    /// drop off the worklist only when *nothing* another chunk could
    /// gather — or its own post-processing could read — has changed.
    /// Semirings override this to compare only the vectors they
    /// actually use.
    #[inline]
    fn state_changed(
        cur: &StateVecs,
        base: usize,
        nxt_x: &[f32],
        nxt_g: &[f32],
        nxt_p: &[f32],
    ) -> bool {
        let c = nxt_x.len();
        slice_bits_differ(&cur.x[base..base + c], nxt_x)
            || slice_bits_differ(&cur.g[base..base + c], nxt_g)
            || slice_bits_differ(&cur.p[base..base + c], nxt_p)
    }

    /// Lane-granular form of [`state_changed`](Self::state_changed): bit
    /// `l` of the result is set iff lane `l` (row `base + l`) of any
    /// vector this semiring maintains changed bit-wise. The worklist
    /// engine feeds these masks through [`ChunkDepGraph`]'s per-edge
    /// source-lane masks so a changed chunk only activates dependents
    /// that gather from its *changed rows*.
    ///
    /// Invariants (pinned by the lane-mask property suite):
    /// `state_changed_mask != 0` ⟺ [`state_changed`](Self::state_changed),
    /// and each bit equals a per-lane replay of `state_changed` on a
    /// one-lane window.
    ///
    /// [`ChunkDepGraph`]: crate::worklist::ChunkDepGraph
    #[inline]
    fn state_changed_mask<const C: usize>(
        cur: &StateVecs,
        base: usize,
        nxt_x: &[f32],
        nxt_g: &[f32],
        nxt_p: &[f32],
    ) -> u32 {
        lanes_ne_bits::<C>(&cur.x[base..], nxt_x)
            | lanes_ne_bits::<C>(&cur.g[base..], nxt_g)
            | lanes_ne_bits::<C>(&cur.p[base..], nxt_p)
    }

    /// Final distances in permuted space (`∞` = unreachable).
    fn distances<'a>(state: &'a StateVecs, d: &'a [f32]) -> &'a [f32];

    /// Final parents in permuted space (1-based; 0 = none), if computed.
    fn parents(state: &StateVecs) -> Option<&[f32]>;
}

/// Tropical semiring `T = (ℝ ∪ {∞}, min, +, ∞, 0)` (§III-A1): `x` holds
/// tentative distances; `d = x_D` directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct TropicalSemiring;

impl Semiring for TropicalSemiring {
    const NAME: &'static str = "tropical";
    const PAD: f32 = f32::INFINITY;
    const OP1_IDENTITY: f32 = f32::INFINITY;
    const COMPUTES_PARENTS: bool = false;

    #[inline(always)]
    fn op1<const C: usize>(a: SimdF32<C>, b: SimdF32<C>) -> SimdF32<C> {
        a.min(b)
    }

    #[inline(always)]
    fn combine<const C: usize>(acc: SimdF32<C>, vals: SimdF32<C>, rhs: SimdF32<C>) -> SimdF32<C> {
        // x = MIN(ADD(rhs, vals), x)
        rhs.add(vals).min(acc)
    }

    fn init(state: &mut StateVecs, _d: &mut [f32], n: usize, root: usize) {
        state.x[..n].fill(f32::INFINITY);
        state.x[n..].fill(0.0); // virtual padding rows look visited
        state.x[root] = 0.0;
    }

    #[inline(always)]
    fn post_chunk<const C: usize>(
        acc: SimdF32<C>,
        cur: &StateVecs,
        base: usize,
        nxt_x: &mut [f32],
        _nxt_g: &mut [f32],
        _nxt_p: &mut [f32],
        _d: &mut [f32],
        _depth: f32,
    ) -> bool {
        let old = SimdF32::<C>::load(&cur.x[base..]);
        acc.store(nxt_x);
        acc.any_ne(old)
    }

    #[inline]
    fn should_skip(cur: &StateVecs, rows: Range<usize>) -> bool {
        // Listing 7: go on if any distance is still ∞.
        cur.x[rows].iter().all(|&x| x != f32::INFINITY)
    }

    #[inline]
    fn copy_forward(
        cur: &StateVecs,
        base: usize,
        nxt_x: &mut [f32],
        _nxt_g: &mut [f32],
        _nxt_p: &mut [f32],
    ) {
        let c = nxt_x.len();
        nxt_x.copy_from_slice(&cur.x[base..base + c]);
    }

    #[inline]
    fn state_changed(
        cur: &StateVecs,
        base: usize,
        nxt_x: &[f32],
        _nxt_g: &[f32],
        _nxt_p: &[f32],
    ) -> bool {
        slice_bits_differ(&cur.x[base..base + nxt_x.len()], nxt_x)
    }

    #[inline]
    fn state_changed_mask<const C: usize>(
        cur: &StateVecs,
        base: usize,
        nxt_x: &[f32],
        _nxt_g: &[f32],
        _nxt_p: &[f32],
    ) -> u32 {
        lanes_ne_bits::<C>(&cur.x[base..], nxt_x)
    }

    fn clone_state(src: &StateVecs, dst: &mut StateVecs) {
        dst.x.copy_from_slice(&src.x);
    }

    fn distances<'a>(state: &'a StateVecs, _d: &'a [f32]) -> &'a [f32] {
        &state.x
    }

    fn parents(_state: &StateVecs) -> Option<&[f32]> {
        None
    }
}

/// Boolean semiring `B = ({0,1}, |, &, 0, 1)` (§III-A3): `x` is the 0/1
/// frontier, `g` the unvisited filter, distances recorded per iteration.
#[derive(Clone, Copy, Debug, Default)]
pub struct BooleanSemiring;

impl Semiring for BooleanSemiring {
    const NAME: &'static str = "boolean";
    const PAD: f32 = 0.0;
    const OP1_IDENTITY: f32 = 0.0;
    const COMPUTES_PARENTS: bool = false;

    #[inline(always)]
    fn op1<const C: usize>(a: SimdF32<C>, b: SimdF32<C>) -> SimdF32<C> {
        a.or_bits(b)
    }

    #[inline(always)]
    fn combine<const C: usize>(acc: SimdF32<C>, vals: SimdF32<C>, rhs: SimdF32<C>) -> SimdF32<C> {
        // x = OR(AND(rhs, vals), x); rhs and vals are {0,1} so the f32
        // bitwise ops act logically (see slimsell-simd docs).
        rhs.and_bits(vals).or_bits(acc)
    }

    fn init(state: &mut StateVecs, d: &mut [f32], n: usize, root: usize) {
        state.x.fill(0.0);
        state.g[..n].fill(1.0);
        state.g[n..].fill(0.0); // padding rows: already "visited"
        d.fill(f32::INFINITY);
        state.x[root] = 1.0;
        state.g[root] = 0.0;
        d[root] = 0.0;
    }

    #[inline(always)]
    fn post_chunk<const C: usize>(
        acc: SimdF32<C>,
        cur: &StateVecs,
        base: usize,
        nxt_x: &mut [f32],
        nxt_g: &mut [f32],
        _nxt_p: &mut [f32],
        d: &mut [f32],
        depth: f32,
    ) -> bool {
        let g = SimdF32::<C>::load(&cur.g[base..]);
        // x = CMP(AND(x, g), 0, NEQ) — the new frontier, filtered.
        let newf = acc.mask_and(g);
        newf.store(nxt_x);
        // d = BLEND(d, depth, x_mask)
        let dv = SimdF32::<C>::load(d);
        SimdF32::blend(dv, SimdF32::splat(depth), newf).store(d);
        // g = AND(NOT(x_mask), g)
        g.mask_and(newf.mask_not()).store(nxt_g);
        newf.any_nonzero()
    }

    #[inline]
    fn should_skip(cur: &StateVecs, rows: Range<usize>) -> bool {
        // Listing 7: go on if any filter entry is still non-zero.
        cur.g[rows].iter().all(|&g| g == 0.0)
    }

    #[inline]
    fn copy_forward(
        cur: &StateVecs,
        base: usize,
        nxt_x: &mut [f32],
        nxt_g: &mut [f32],
        _nxt_p: &mut [f32],
    ) {
        let c = nxt_x.len();
        nxt_x.copy_from_slice(&cur.x[base..base + c]);
        nxt_g.copy_from_slice(&cur.g[base..base + c]);
    }

    #[inline]
    fn state_changed(
        cur: &StateVecs,
        base: usize,
        nxt_x: &[f32],
        nxt_g: &[f32],
        _nxt_p: &[f32],
    ) -> bool {
        let c = nxt_x.len();
        slice_bits_differ(&cur.x[base..base + c], nxt_x)
            || slice_bits_differ(&cur.g[base..base + c], nxt_g)
    }

    #[inline]
    fn state_changed_mask<const C: usize>(
        cur: &StateVecs,
        base: usize,
        nxt_x: &[f32],
        nxt_g: &[f32],
        _nxt_p: &[f32],
    ) -> u32 {
        lanes_ne_bits::<C>(&cur.x[base..], nxt_x) | lanes_ne_bits::<C>(&cur.g[base..], nxt_g)
    }

    fn clone_state(src: &StateVecs, dst: &mut StateVecs) {
        dst.x.copy_from_slice(&src.x);
        dst.g.copy_from_slice(&src.g);
    }

    fn distances<'a>(_state: &'a StateVecs, d: &'a [f32]) -> &'a [f32] {
        d
    }

    fn parents(_state: &StateVecs) -> Option<&[f32]> {
        None
    }
}

/// Real semiring `R = (ℝ, +, ·, 0, 1)` (§III-A2): like boolean but `x`
/// carries walk counts; the frontier keeps the counts and the filter
/// masks visited vertices. Counts may saturate to `∞` on large dense
/// graphs, which stays non-zero and therefore semantically harmless for
/// BFS (masking is done with blends, never multiplications, to avoid
/// `∞ · 0 = NaN`).
#[derive(Clone, Copy, Debug, Default)]
pub struct RealSemiring;

impl Semiring for RealSemiring {
    const NAME: &'static str = "real";
    const PAD: f32 = 0.0;
    const OP1_IDENTITY: f32 = 0.0;
    const COMPUTES_PARENTS: bool = false;

    #[inline(always)]
    fn op1<const C: usize>(a: SimdF32<C>, b: SimdF32<C>) -> SimdF32<C> {
        a.add(b)
    }

    #[inline(always)]
    fn combine<const C: usize>(acc: SimdF32<C>, vals: SimdF32<C>, rhs: SimdF32<C>) -> SimdF32<C> {
        // x = ADD(MUL(rhs, vals), x)
        rhs.mul(vals).add(acc)
    }

    fn init(state: &mut StateVecs, d: &mut [f32], n: usize, root: usize) {
        state.x.fill(0.0);
        state.g[..n].fill(1.0);
        state.g[n..].fill(0.0);
        d.fill(f32::INFINITY);
        state.x[root] = 1.0;
        state.g[root] = 0.0;
        d[root] = 0.0;
    }

    #[inline(always)]
    fn post_chunk<const C: usize>(
        acc: SimdF32<C>,
        cur: &StateVecs,
        base: usize,
        nxt_x: &mut [f32],
        nxt_g: &mut [f32],
        _nxt_p: &mut [f32],
        d: &mut [f32],
        depth: f32,
    ) -> bool {
        let g = SimdF32::<C>::load(&cur.g[base..]);
        let newmask = acc.cmp_neq(SimdF32::zero()).mask_and(g);
        // Frontier keeps the walk counts of newly discovered vertices.
        SimdF32::blend(SimdF32::zero(), acc, newmask).store(nxt_x);
        let dv = SimdF32::<C>::load(d);
        SimdF32::blend(dv, SimdF32::splat(depth), newmask).store(d);
        g.mask_and(newmask.mask_not()).store(nxt_g);
        newmask.any_nonzero()
    }

    #[inline]
    fn should_skip(cur: &StateVecs, rows: Range<usize>) -> bool {
        cur.g[rows].iter().all(|&g| g == 0.0)
    }

    #[inline]
    fn copy_forward(
        cur: &StateVecs,
        base: usize,
        nxt_x: &mut [f32],
        nxt_g: &mut [f32],
        _nxt_p: &mut [f32],
    ) {
        let c = nxt_x.len();
        nxt_x.copy_from_slice(&cur.x[base..base + c]);
        nxt_g.copy_from_slice(&cur.g[base..base + c]);
    }

    #[inline]
    fn state_changed(
        cur: &StateVecs,
        base: usize,
        nxt_x: &[f32],
        nxt_g: &[f32],
        _nxt_p: &[f32],
    ) -> bool {
        let c = nxt_x.len();
        slice_bits_differ(&cur.x[base..base + c], nxt_x)
            || slice_bits_differ(&cur.g[base..base + c], nxt_g)
    }

    #[inline]
    fn state_changed_mask<const C: usize>(
        cur: &StateVecs,
        base: usize,
        nxt_x: &[f32],
        nxt_g: &[f32],
        _nxt_p: &[f32],
    ) -> u32 {
        lanes_ne_bits::<C>(&cur.x[base..], nxt_x) | lanes_ne_bits::<C>(&cur.g[base..], nxt_g)
    }

    fn clone_state(src: &StateVecs, dst: &mut StateVecs) {
        dst.x.copy_from_slice(&src.x);
        dst.g.copy_from_slice(&src.g);
    }

    fn distances<'a>(_state: &'a StateVecs, d: &'a [f32]) -> &'a [f32] {
        d
    }

    fn parents(_state: &StateVecs) -> Option<&[f32]> {
        None
    }
}

/// Sel-max semiring `(ℝ, max, ·, −∞, 1)` (§III-A4): `x` carries 1-based
/// vertex indices of visited vertices; the MV propagates the *maximum
/// visited neighbor index*, which becomes the parent of each newly
/// reached vertex — no `DP` transformation needed.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelMaxSemiring;

impl Semiring for SelMaxSemiring {
    const NAME: &'static str = "sel-max";
    const PAD: f32 = 0.0;
    /// `x` values are ≥ 0, so 0 is an effective `max` identity here (the
    /// true identity −∞ is unnecessary and 0 matches the paper's unused
    /// `x` lanes).
    const OP1_IDENTITY: f32 = 0.0;
    const COMPUTES_PARENTS: bool = true;

    #[inline(always)]
    fn op1<const C: usize>(a: SimdF32<C>, b: SimdF32<C>) -> SimdF32<C> {
        a.max(b)
    }

    #[inline(always)]
    fn combine<const C: usize>(acc: SimdF32<C>, vals: SimdF32<C>, rhs: SimdF32<C>) -> SimdF32<C> {
        // x = MAX(MUL(rhs, vals), x)
        rhs.mul(vals).max(acc)
    }

    fn init(state: &mut StateVecs, d: &mut [f32], n: usize, root: usize) {
        // f32 represents integers exactly only up to 2^24; indices are
        // 1-based so n must stay below that.
        assert!(n < (1 << 24), "sel-max indices exceed f32 exact-integer range (n = {n})");
        state.x.fill(0.0);
        state.p[..n].fill(0.0);
        state.p[n..].fill(1.0); // padding rows: pretend they have parents
        d.fill(f32::INFINITY);
        state.x[root] = (root + 1) as f32;
        state.p[root] = (root + 1) as f32;
        d[root] = 0.0;
    }

    #[inline(always)]
    fn post_chunk<const C: usize>(
        acc: SimdF32<C>,
        cur: &StateVecs,
        base: usize,
        nxt_x: &mut [f32],
        _nxt_g: &mut [f32],
        nxt_p: &mut [f32],
        d: &mut [f32],
        depth: f32,
    ) -> bool {
        let old_p = SimdF32::<C>::load(&cur.p[base..]);
        let nzx = acc.cmp_neq(SimdF32::zero());
        // Newly discovered: x became non-zero and no parent recorded yet.
        let newly = nzx.mask_and(old_p.cmp_eq(SimdF32::zero()));
        // p_k = p_{k-1} + p̄_{k-1} ⊙ x_k (blend form).
        SimdF32::blend(old_p, acc, newly).store(nxt_p);
        // x_k = ¬¬x_k ⊙ (1, 2, …, n): visited vertices broadcast their
        // own 1-based index.
        let idx = SimdF32::<C>::from_fn(|l| (base + l + 1) as f32);
        SimdF32::blend(SimdF32::zero(), idx, nzx).store(nxt_x);
        let dv = SimdF32::<C>::load(d);
        SimdF32::blend(dv, SimdF32::splat(depth), newly).store(d);
        newly.any_nonzero()
    }

    #[inline]
    fn should_skip(cur: &StateVecs, rows: Range<usize>) -> bool {
        // Listing 7: go on if any parent entry is still 0.
        cur.p[rows].iter().all(|&p| p != 0.0)
    }

    #[inline]
    fn copy_forward(
        cur: &StateVecs,
        base: usize,
        nxt_x: &mut [f32],
        _nxt_g: &mut [f32],
        nxt_p: &mut [f32],
    ) {
        let c = nxt_x.len();
        nxt_x.copy_from_slice(&cur.x[base..base + c]);
        nxt_p.copy_from_slice(&cur.p[base..base + c]);
    }

    #[inline]
    fn state_changed(
        cur: &StateVecs,
        base: usize,
        nxt_x: &[f32],
        _nxt_g: &[f32],
        nxt_p: &[f32],
    ) -> bool {
        let c = nxt_x.len();
        slice_bits_differ(&cur.x[base..base + c], nxt_x)
            || slice_bits_differ(&cur.p[base..base + c], nxt_p)
    }

    #[inline]
    fn state_changed_mask<const C: usize>(
        cur: &StateVecs,
        base: usize,
        nxt_x: &[f32],
        _nxt_g: &[f32],
        nxt_p: &[f32],
    ) -> u32 {
        lanes_ne_bits::<C>(&cur.x[base..], nxt_x) | lanes_ne_bits::<C>(&cur.p[base..], nxt_p)
    }

    fn clone_state(src: &StateVecs, dst: &mut StateVecs) {
        dst.x.copy_from_slice(&src.x);
        dst.p.copy_from_slice(&src.p);
    }

    fn distances<'a>(_state: &'a StateVecs, d: &'a [f32]) -> &'a [f32] {
        d
    }

    fn parents(state: &StateVecs) -> Option<&[f32]> {
        Some(&state.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: usize = 4;

    #[test]
    fn tropical_combine_is_min_plus() {
        let acc = SimdF32::<C>([5.0, f32::INFINITY, 2.0, 0.0]);
        let vals = SimdF32::<C>([1.0, 1.0, f32::INFINITY, 1.0]);
        let rhs = SimdF32::<C>([3.0, 0.0, 7.0, f32::INFINITY]);
        let out = TropicalSemiring::combine(acc, vals, rhs);
        assert_eq!(out.0, [4.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn boolean_combine_is_or_and() {
        let acc = SimdF32::<C>([0.0, 1.0, 0.0, 0.0]);
        let vals = SimdF32::<C>([1.0, 0.0, 1.0, 0.0]);
        let rhs = SimdF32::<C>([1.0, 1.0, 0.0, 1.0]);
        let out = BooleanSemiring::combine(acc, vals, rhs);
        assert_eq!(out.0, [1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn real_combine_counts_walks() {
        let acc = SimdF32::<C>([1.0, 0.0, 0.0, 2.0]);
        let vals = SimdF32::<C>([1.0, 1.0, 0.0, 1.0]);
        let rhs = SimdF32::<C>([2.0, 3.0, 5.0, 1.0]);
        let out = RealSemiring::combine(acc, vals, rhs);
        assert_eq!(out.0, [3.0, 3.0, 0.0, 3.0]);
    }

    #[test]
    fn selmax_combine_keeps_max_index() {
        let acc = SimdF32::<C>([0.0, 4.0, 0.0, 0.0]);
        let vals = SimdF32::<C>([1.0, 1.0, 0.0, 1.0]);
        let rhs = SimdF32::<C>([7.0, 2.0, 9.0, 0.0]);
        let out = SelMaxSemiring::combine(acc, vals, rhs);
        assert_eq!(out.0, [7.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn pads_annihilate() {
        // Padding must never affect the accumulator, whatever rhs is.
        let acc = SimdF32::<C>::splat(3.0);
        for rhs in [0.0f32, 1.0, 42.0] {
            let t = TropicalSemiring::combine(
                acc,
                SimdF32::splat(TropicalSemiring::PAD),
                SimdF32::splat(rhs),
            );
            assert_eq!(t.0, acc.0, "tropical pad leaked for rhs {rhs}");
            let b = BooleanSemiring::combine(
                SimdF32::<C>::splat(1.0),
                SimdF32::splat(BooleanSemiring::PAD),
                SimdF32::splat(if rhs != 0.0 { 1.0 } else { 0.0 }),
            );
            assert_eq!(b.0, [1.0; C]);
            let r =
                RealSemiring::combine(acc, SimdF32::splat(RealSemiring::PAD), SimdF32::splat(rhs));
            assert_eq!(r.0, acc.0, "real pad leaked");
            let s = SelMaxSemiring::combine(
                acc,
                SimdF32::splat(SelMaxSemiring::PAD),
                SimdF32::splat(rhs),
            );
            assert_eq!(s.0, acc.0, "sel-max pad leaked");
        }
    }

    #[test]
    fn tropical_init_and_skip() {
        let mut st = StateVecs::new(8);
        let mut d = vec![0.0; 8];
        TropicalSemiring::init(&mut st, &mut d, 6, 2);
        assert_eq!(st.x[2], 0.0);
        assert!(st.x[0].is_infinite());
        assert_eq!(st.x[7], 0.0); // padding row
        assert!(!TropicalSemiring::should_skip(&st, 0..4)); // has ∞
        st.x[..4].fill(3.0);
        assert!(TropicalSemiring::should_skip(&st, 0..4));
    }

    #[test]
    fn boolean_init_and_skip() {
        let mut st = StateVecs::new(8);
        let mut d = vec![0.0; 8];
        BooleanSemiring::init(&mut st, &mut d, 6, 1);
        assert_eq!(st.x[1], 1.0);
        assert_eq!(st.g[1], 0.0);
        assert_eq!(st.g[0], 1.0);
        assert_eq!(st.g[6], 0.0); // padding
        assert_eq!(d[1], 0.0);
        assert!(d[0].is_infinite());
        assert!(!BooleanSemiring::should_skip(&st, 0..4));
        st.g[..4].fill(0.0);
        assert!(BooleanSemiring::should_skip(&st, 0..4));
    }

    #[test]
    fn selmax_init_and_skip() {
        let mut st = StateVecs::new(8);
        let mut d = vec![0.0; 8];
        SelMaxSemiring::init(&mut st, &mut d, 6, 0);
        assert_eq!(st.x[0], 1.0);
        assert_eq!(st.p[0], 1.0);
        assert_eq!(st.p[7], 1.0); // padding
        assert!(!SelMaxSemiring::should_skip(&st, 0..4));
        st.p[..4].fill(2.0);
        assert!(SelMaxSemiring::should_skip(&st, 0..4));
    }

    #[test]
    fn boolean_post_chunk_updates_all_vectors() {
        let mut cur = StateVecs::new(C);
        cur.g = vec![1.0, 1.0, 0.0, 1.0]; // lane 2 already visited
        let acc = SimdF32::<C>([1.0, 0.0, 1.0, 1.0]); // MV says lanes 0,2,3 reached
        let (mut nx, mut ng, mut np) = (vec![0.0; C], vec![0.0; C], vec![0.0; C]);
        let mut d = vec![f32::INFINITY; C];
        let changed =
            BooleanSemiring::post_chunk(acc, &cur, 0, &mut nx, &mut ng, &mut np, &mut d, 3.0);
        assert!(changed);
        assert_eq!(nx, vec![1.0, 0.0, 0.0, 1.0]); // lane 2 filtered by g
        assert_eq!(ng, vec![0.0, 1.0, 0.0, 0.0]);
        assert_eq!(d[0], 3.0);
        assert!(d[1].is_infinite());
        assert!(d[2].is_infinite()); // visited earlier; not overwritten here
        assert_eq!(d[3], 3.0);
    }

    #[test]
    fn selmax_post_chunk_sets_parent_and_index() {
        let mut cur = StateVecs::new(8); // chunk at base 4
        cur.p[4..8].copy_from_slice(&[0.0, 5.0, 0.0, 0.0]); // lane 1 has a parent already
        let acc = SimdF32::<C>([7.0, 9.0, 0.0, 3.0]);
        let (mut nx, mut ng, mut np) = (vec![0.0; C], vec![0.0; C], vec![0.0; C]);
        let mut d = vec![f32::INFINITY; C];
        let changed =
            SelMaxSemiring::post_chunk(acc, &cur, 4, &mut nx, &mut ng, &mut np, &mut d, 2.0);
        assert!(changed);
        assert_eq!(np, vec![7.0, 5.0, 0.0, 3.0]); // lane 1 keeps old parent
                                                  // Base 4 → lanes are vertices 4..8, 1-based indices 5..9.
        assert_eq!(nx, vec![5.0, 6.0, 0.0, 8.0]);
        assert_eq!(d, vec![2.0, f32::INFINITY, f32::INFINITY, 2.0]);
    }

    #[test]
    fn state_changed_is_exact_where_post_chunk_flag_is_not() {
        // Boolean: an old frontier bit clearing is a real state change
        // (other chunks gather x) even though post_chunk reports no
        // newly discovered vertices. The worklist engine relies on
        // state_changed catching exactly this case.
        let mut cur = StateVecs::new(C);
        cur.x = vec![1.0, 0.0, 0.0, 0.0]; // old frontier
        cur.g = vec![0.0; C]; // everything visited
        let acc = SimdF32::<C>::splat(0.0);
        let (mut nx, mut ng, mut np) = (vec![0.0; C], vec![0.0; C], vec![0.0; C]);
        let mut d = vec![f32::INFINITY; C];
        let advanced =
            BooleanSemiring::post_chunk(acc, &cur, 0, &mut nx, &mut ng, &mut np, &mut d, 2.0);
        assert!(!advanced, "no new frontier");
        assert!(BooleanSemiring::state_changed(&cur, 0, &nx, &ng, &np), "x cleared 1 -> 0");
        // Once settled (all-zero frontier in, all-zero out), no change.
        cur.x.fill(0.0);
        let advanced =
            BooleanSemiring::post_chunk(acc, &cur, 0, &mut nx, &mut ng, &mut np, &mut d, 3.0);
        assert!(!advanced);
        assert!(!BooleanSemiring::state_changed(&cur, 0, &nx, &ng, &np));
        // Tropical ignores g/p garbage: only x counts.
        let mut tcur = StateVecs::new(C);
        tcur.x = vec![1.0, 2.0, 3.0, 4.0];
        tcur.g = vec![9.0; C];
        assert!(!TropicalSemiring::state_changed(&tcur, 0, &tcur.x.clone(), &nx, &np));
        assert!(TropicalSemiring::state_changed(&tcur, 0, &[1.0, 2.0, 3.0, 5.0], &nx, &np));
    }

    #[test]
    fn tropical_post_chunk_reports_change() {
        let mut cur = StateVecs::new(C);
        cur.x = vec![f32::INFINITY; C];
        let acc = SimdF32::<C>([1.0, f32::INFINITY, f32::INFINITY, f32::INFINITY]);
        let (mut nx, mut ng, mut np) = (vec![0.0; C], vec![0.0; C], vec![0.0; C]);
        let mut d = vec![0.0; C];
        assert!(TropicalSemiring::post_chunk(acc, &cur, 0, &mut nx, &mut ng, &mut np, &mut d, 1.0));
        assert_eq!(nx[0], 1.0);
        // No change → false.
        cur.x = nx.clone();
        assert!(!TropicalSemiring::post_chunk(
            SimdF32::<C>::load(&cur.x),
            &cur,
            0,
            &mut nx,
            &mut ng,
            &mut np,
            &mut d,
            2.0
        ));
    }
}
