//! The parallel BFS-SpMV driver.
//!
//! One generic engine serves all four semirings and both representations:
//! each iteration expands the frontier by one hop with a chunk-parallel
//! MV product (Listing 5/6), optionally skipping finished chunks
//! (SlimWork, §III-C) and optionally tiling chunks in two dimensions
//! (SlimChunk, §III-D). Chunks are distributed over threads with either
//! static or dynamic scheduling, modeling the paper's `omp-s`/`omp-d`
//! configurations (§IV-A1).
//!
//! Data-parallel safety: iteration `k` reads the previous iteration's
//! vectors (`cur`) and writes chunk-disjoint slices of the next vectors
//! (`nxt`) and of the persistent distance vector `d`, so the rayon loop
//! is race-free by construction.
//!
//! Parallel execution model: each iteration builds a [`ChunkTiling`]
//! that partitions the chunk range into contiguous per-worker tiles
//! ([`ChunkSpan`]) whose output slabs are carved out of the state
//! vectors with `split_at_mut` — disjoint `&mut [f32]` ownership, no
//! locks, no atomics on the frontier. Static scheduling makes exactly
//! one tile per thread (OpenMP static); dynamic scheduling
//! over-partitions so fast threads steal leftover tiles (OpenMP
//! dynamic). When the effective thread count is 1 the engine takes a
//! plain sequential loop over chunks — the reference oracle the
//! determinism tests compare parallel runs against. Outputs are
//! bit-identical across thread counts and schedules because every
//! chunk's math is independent and writes are positional. The same
//! machinery (shared via [`crate::tiling`]) drives SlimChunk, PageRank,
//! SSSP, multi-source BFS and the betweenness forward sweep.
//!
//! Worklist sweeps ([`SweepMode::Worklist`]) replace the full sweep
//! with frontier-proportional sweeps over an active-chunk worklist: the
//! once-per-graph chunk dependency graph ([`crate::worklist`]) says
//! which chunks can possibly produce a different output after a set of
//! chunks changed, and an epoch-stamped activation array turns each
//! iteration's exactly-detected changed chunks into the next sorted
//! worklist. The invariant making this sound with double buffering:
//! outside the worklist, `nxt` already equals `cur` bit-for-bit (a
//! chunk leaves the list only after an iteration in which its output
//! did not change), so untouched chunks need no copy-forward and the
//! buffer swap is safe. Distances, parents, iteration count and the
//! work each *processed* chunk does are bit-identical to the full
//! sweep; only the visit/skip accounting differs (see
//! [`IterStats::chunks_not_on_worklist`]).
//!
//! Which sweep runs is decided by the [`SweepMode`] policy layer
//! ([`crate::sweep`]): [`BfsOptions::config`] selects pure full sweeps,
//! pure worklist sweeps, or — the default — the adaptive controller
//! that picks per iteration at the calibrated `~nc/2` crossover with
//! hysteresis. Adaptive full sweeps are *tracked* (per-chunk bit-exact
//! change flags) so the worklist can be re-seeded correctly on every
//! full→worklist transition; see the `sweep` module docs for the
//! re-seeding invariant. The 1-thread full-sweep run remains the
//! oracle the equivalence suite compares every mode against.

use std::sync::Arc;
use std::time::Instant;

use slimsell_graph::{VertexId, UNREACHABLE};
use slimsell_simd::{SimdF32, SimdI32};

use crate::counters::{IterStats, RunStats};
use crate::mask::VertexMask;
use crate::matrix::ChunkMatrix;
use crate::semiring::{Semiring, StateVecs};
use crate::slimchunk;
use crate::sweep::{resolve_sweep, AdaptiveController, ExecutedSweep, SweepConfig, SweepMode};
use crate::tiling::{ChunkSpan, ChunkTiling, WorklistSpan, WorklistTiling};
use crate::worklist::{full_lane_mask, ActivationState};

pub use crate::tiling::Schedule;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct BfsOptions {
    /// Enable SlimWork chunk skipping (§III-C).
    pub slimwork: bool,
    /// Enable SlimChunk 2-D tiling with the given tile width in column
    /// steps (§III-D). `None` disables tiling.
    pub slimchunk: Option<usize>,
    /// Safety cap on iterations (defaults to `n + 1`).
    pub max_iterations: Option<usize>,
    /// Sweep strategy and tile schedule (shared by every kernel's
    /// options). The sweep modes: full-range sweeps,
    /// frontier-proportional worklist sweeps (per-iteration cost
    /// `O(|worklist|)` instead of `O(n_chunks)`, the big win on
    /// high-diameter graphs), or the default adaptive controller that
    /// switches between them per iteration. Outputs are bit-identical
    /// in every mode. Defaults to the `SLIMSELL_SWEEP` env var
    /// (adaptive when unset).
    pub config: SweepConfig,
    /// Restrict the sweep to a vertex subset: vertices outside the
    /// mask keep their initial (rest) state forever and the traversal
    /// behaves as if they were deleted from the graph. Fully masked
    /// chunks are skipped before the SlimWork probe and before any
    /// worklist activation probe; partially masked chunks blend the
    /// masked-out lanes back to their previous values after the MV, so
    /// a full mask is bit-for-bit identical to `None` — counters
    /// included. `None` sweeps the whole graph.
    pub mask: Option<Arc<VertexMask>>,
}

impl Default for BfsOptions {
    fn default() -> Self {
        Self {
            slimwork: true,
            slimchunk: None,
            max_iterations: None,
            config: SweepConfig::default(),
            mask: None,
        }
    }
}

impl BfsOptions {
    /// The paper's baseline configuration: SlimWork off, full sweeps,
    /// dynamic scheduling (corresponds to "No SlimWork" in Fig. 5d).
    pub fn plain() -> Self {
        Self { slimwork: false, ..Self::default() }.sweep(SweepMode::Full)
    }

    /// Returns the options with the sweep mode replaced.
    #[must_use]
    pub fn sweep(mut self, sweep: SweepMode) -> Self {
        self.config.sweep = sweep;
        self
    }

    /// Returns the options with the tile schedule replaced.
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Returns the options with the whole sweep config replaced.
    #[must_use]
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Returns the options with the vertex mask replaced.
    #[must_use]
    pub fn mask(mut self, mask: Option<Arc<VertexMask>>) -> Self {
        self.mask = mask;
        self
    }

    /// Migration shim for the pre-PR-10 `sweep` field.
    #[deprecated(note = "set `config.sweep` or use the `.sweep(..)` builder")]
    pub fn set_sweep(&mut self, sweep: SweepMode) {
        self.config.sweep = sweep;
    }

    /// Migration shim for the pre-PR-10 `schedule` field.
    #[deprecated(note = "set `config.schedule` or use the `.schedule(..)` builder")]
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.config.schedule = schedule;
    }
}

/// BFS output in original (un-permuted) vertex ids.
#[derive(Clone, Debug)]
pub struct BfsOutput {
    /// Hop distances; [`UNREACHABLE`] for vertices not reached.
    pub dist: Vec<u32>,
    /// BFS-tree parents if the semiring computes them (sel-max); the root
    /// is its own parent, unreachable vertices get [`UNREACHABLE`].
    pub parent: Option<Vec<VertexId>>,
    /// Per-iteration statistics.
    pub stats: RunStats,
}

/// Per-run reusable buffers, owned by [`BfsEngine::run`] (and the
/// direction-optimized driver) and threaded through every iteration so
/// the hot loop allocates nothing proportional to the graph: the cached
/// chunk tiling, the worklist activation machinery, and SlimChunk's
/// per-phase task/partial buffers all persist across hops.
#[derive(Default)]
pub(crate) struct EngineScratch {
    /// Cached full-range tiling, keyed by (chunk count, schedule).
    pub(crate) tiling: Option<(usize, Schedule, ChunkTiling)>,
    /// Worklist activation machinery (stamps, worklist, changed masks).
    pub(crate) act: ActivationState,
    /// Seeds for the next worklist: `(chunk, lane mask)` pairs for
    /// chunks whose state changed this iteration, with the mask naming
    /// the changed rows (the direction-optimized driver also pushes the
    /// lanes its top-down steps touched).
    pub(crate) pending: Vec<(u32, u32)>,
    /// Adaptive sweep controller (latched mode + hysteresis).
    pub(crate) ctl: AdaptiveController,
    /// Per-chunk changed lane masks of adaptive mode's *tracked* full
    /// sweeps (one mask per chunk over the whole range).
    pub(crate) full_changed: Vec<u32>,
    /// SlimChunk task list: (chunk id, first column step, last).
    pub(crate) tasks: Vec<(usize, usize, usize)>,
    /// SlimChunk per-chunk task-range offsets (one past each chunk).
    pub(crate) task_start: Vec<usize>,
    /// SlimChunk per-chunk SlimWork skip flags.
    pub(crate) skip: Vec<bool>,
    /// SlimChunk tile partial accumulators (`tasks.len() * C`).
    pub(crate) partials: Vec<f32>,
}

impl EngineScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// Field-splittable form of [`EngineScratch::full_tiling`], so callers
/// holding `&mut` borrows of other scratch fields can still reach the
/// cache.
pub(crate) fn cached_full_tiling(
    slot: &mut Option<(usize, Schedule, ChunkTiling)>,
    nc: usize,
    schedule: Schedule,
) -> &ChunkTiling {
    let rebuild = match slot {
        Some((c, s, _)) => *c != nc || *s != schedule,
        None => true,
    };
    if rebuild {
        *slot = Some((nc, schedule, ChunkTiling::new(nc, schedule)));
    }
    &slot.as_ref().expect("just built").2
}

/// The BFS-SpMV engine. Stateless; methods are entry points.
pub struct BfsEngine;

impl BfsEngine {
    /// Runs BFS from `root` (original vertex id) over `matrix` with
    /// semiring `S`. When [`BfsOptions::mask`] is set the traversal is
    /// confined to the masked subgraph: edges into or out of masked
    /// vertices are never taken and masked vertices come back
    /// unreached.
    ///
    /// # Panics
    /// Panics if `root` is out of range, if a mask was built for a
    /// different structure, or if `root` is outside the mask (a masked
    /// root's seeded state would leak distance 0 to its neighbors, so
    /// it is rejected loudly rather than answered wrongly).
    pub fn run<M, S, const C: usize>(matrix: &M, root: VertexId, opts: &BfsOptions) -> BfsOutput
    where
        M: ChunkMatrix<C>,
        S: Semiring,
    {
        let s = matrix.structure();
        let n = s.n();
        assert!((root as usize) < n, "root {root} out of range (n = {n})");
        let root_p = s.perm().to_new(root) as usize;
        let np = s.n_padded();
        if let Some(m) = opts.mask.as_deref() {
            m.check_layout(s);
            assert!(m.contains(root_p), "root {root} is not in the vertex mask");
        }

        let mut cur = StateVecs::new(np);
        let mut nxt = StateVecs::new(np);
        let mut d = vec![0.0f32; np];
        S::init(&mut cur, &mut d, n, root_p);

        let mut scratch = EngineScratch::new();
        if opts.config.sweep.uses_worklist() {
            // Establish the worklist invariant once: outside the
            // worklist the next-state buffer must already equal the
            // current state, so only listed chunks are ever written
            // (only the semiring-maintained vectors need copying).
            S::clone_state(&cur, &mut nxt);
            scratch.pending.push(((root_p / C) as u32, 1u32 << (root_p % C)));
        }

        let mut stats = RunStats::default();
        let max_iters = opts.max_iterations.unwrap_or(n + 1);
        let mut depth = 0u32;
        loop {
            depth += 1;
            let t0 = Instant::now();
            let mut it =
                step::<M, S, C>(matrix, &cur, &mut nxt, &mut d, depth as f32, opts, &mut scratch);
            it.elapsed = t0.elapsed();
            let changed = it.changed;
            stats.iters.push(it);
            std::mem::swap(&mut cur, &mut nxt);
            if !changed || depth as usize >= max_iters {
                break;
            }
        }

        let perm = s.perm();
        let dist_f = S::distances(&cur, &d);
        let dist: Vec<u32> = (0..n)
            .map(|old| {
                let v = dist_f[perm.to_new(old as VertexId) as usize];
                if v.is_finite() {
                    v as u32
                } else {
                    UNREACHABLE
                }
            })
            .collect();
        let parent = S::parents(&cur).map(|p| {
            (0..n)
                .map(|old| {
                    let pv = p[perm.to_new(old as VertexId) as usize];
                    if pv == 0.0 {
                        UNREACHABLE
                    } else {
                        perm.to_old(pv as VertexId - 1)
                    }
                })
                .collect()
        });
        BfsOutput { dist, parent, stats }
    }
}

/// The per-chunk MV kernel (Listing 5 lines 3–21 / Listing 6): starts the
/// accumulator from the chunk's previous values, then folds `cl[i]`
/// column steps. Public so alternative execution engines (e.g. the SIMT
/// simulator in `slimsell-simt`) run bit-identical chunk math.
#[inline]
pub fn chunk_mv<M, S, const C: usize>(matrix: &M, x: &[f32], i: usize) -> SimdF32<C>
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    let s = matrix.structure();
    let col = s.col();
    let mut acc = SimdF32::<C>::load(&x[i * C..]);
    let mut index = s.cs()[i];
    for _ in 0..s.cl()[i] {
        let cols = SimdI32::<C>::load(&col[index..]);
        let vals = matrix.vals(index, cols, S::PAD);
        let rhs = SimdF32::gather_or(x, cols, 0.0);
        acc = S::combine(acc, vals, rhs);
        index += C;
    }
    acc
}

/// One chunk of one iteration: mask/SlimWork skip tests, MV kernel,
/// per-lane mask blend, semiring post-processing. Returns (changed,
/// column steps, active cells, skipped) — active cells are the chunk's
/// non-padding cells (its stored arcs), the numerator of the measured
/// lane utilization.
///
/// Masking happens at two points. A chunk with no allowed real lane is
/// skipped outright (one `u32` test, before the SlimWork probe — same
/// copy-forward, same `chunks_skipped` accounting). A partially masked
/// chunk runs the full MV, then the masked-out lanes of the
/// accumulator are blended back to their *previous* values before the
/// semiring post-processing: with `acc[lane] == cur.x[lane]` every
/// shipped semiring's post-processing leaves that lane's entire state
/// (x, g, p, d) bit-identical and reports it unchanged — exactly "this
/// lane did not run", without any per-semiring masking hooks. A full
/// mask therefore reproduces the unmasked path bit-for-bit.
#[inline]
fn do_chunk<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    i: usize,
    out: (&mut [f32], &mut [f32], &mut [f32], &mut [f32]),
    depth: f32,
    slimwork: bool,
    mask: Option<&VertexMask>,
) -> (bool, u64, u64, usize)
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    let (nx, ng, np, dd) = out;
    let base = i * C;
    let allowed = mask.map_or_else(|| full_lane_mask(C), |m| m.allowed(i));
    if let Some(m) = mask {
        if m.allowed_real(i) == 0 {
            // Fully masked (no allowed real lane): forward verbatim.
            S::copy_forward(cur, base, nx, ng, np);
            return (false, 0, 0, 1);
        }
    }
    if slimwork && S::should_skip(cur, base..base + C) {
        S::copy_forward(cur, base, nx, ng, np);
        return (false, 0, 0, 1);
    }
    let mut acc = chunk_mv::<M, S, C>(matrix, &cur.x, i);
    if allowed != full_lane_mask(C) {
        let mut lanes = [0.0f32; C];
        acc.store(&mut lanes);
        for (l, slot) in lanes.iter_mut().enumerate() {
            if allowed & (1 << l) == 0 {
                *slot = cur.x[base + l];
            }
        }
        acc = SimdF32::load(&lanes);
    }
    let changed = S::post_chunk(acc, cur, base, nx, ng, np, dd, depth);
    let s = matrix.structure();
    (changed, s.cl()[i] as u64, s.chunk_arcs()[i], 0)
}

/// Runs the MV + post-processing over one tile's chunks, sequentially
/// within the tile. Also the engine's sequential fallback (one span
/// covering every chunk) — the C-lane correctness oracle.
fn mv_span<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    span: ChunkSpan<'_>,
    depth: f32,
    slimwork: bool,
    mask: Option<&VertexMask>,
) -> (bool, u64, u64, usize)
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    let mut acc = (false, 0u64, 0u64, 0usize);
    let per_chunk = span
        .x
        .chunks_mut(C)
        .zip(span.g.chunks_mut(C))
        .zip(span.p.chunks_mut(C))
        .zip(span.d.chunks_mut(C));
    for (k, (((nx, ng), np), dd)) in per_chunk.enumerate() {
        let (c, steps, arcs, skip) =
            do_chunk::<M, S, C>(matrix, cur, span.c0 + k, (nx, ng, np, dd), depth, slimwork, mask);
        acc.0 |= c;
        acc.1 += steps;
        acc.2 += arcs;
        acc.3 += skip;
    }
    acc
}

/// One frontier expansion: the sweep-policy decision (which dispatcher
/// runs, whether the worklist is seeded first) followed by the chosen
/// execution mode (full sweep / worklist × untiled / SlimChunk). The
/// shared entry point of the engine loop and the direction-optimized
/// driver.
///
/// In [`SweepMode::Adaptive`] the controller applies its hysteresis
/// rule to the pending seed count — the changed chunks of the previous
/// iteration — *before* any dependency expansion, so full-sweep
/// iterations never pay an activation probe. Adaptive full sweeps run
/// *tracked* so the pending list stays current for the next
/// full→worklist transition.
pub(crate) fn step<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    nxt: &mut StateVecs,
    d: &mut [f32],
    depth: f32,
    opts: &BfsOptions,
    scratch: &mut EngineScratch,
) -> IterStats
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    let s = matrix.structure();
    let nc = s.num_chunks();
    let EngineScratch { act, pending, ctl, .. } = &mut *scratch;
    let (exec, seeded) = match opts.config.sweep {
        // Short-circuit before touching `dep_graph()`: pure full-sweep
        // runs must not force the lazy dependency-graph build.
        SweepMode::Full => (ExecutedSweep::Full, None),
        _ => resolve_sweep(
            opts.config.sweep,
            ctl,
            act,
            s.dep_graph(),
            pending,
            nc,
            opts.mask.as_deref(),
        ),
    };
    // Only adaptive full sweeps pay for change tracking: pure full
    // sweeps never transition, pure worklist sweeps track via the
    // worklist flags.
    let track = opts.config.sweep == SweepMode::Adaptive;
    let mut it = match (exec, opts.slimchunk) {
        (ExecutedSweep::Full, None) => {
            iterate::<M, S, C>(matrix, cur, nxt, d, depth, opts, scratch, track)
        }
        (ExecutedSweep::Full, Some(w)) => slimchunk::iterate_tiled_full::<M, S, C>(
            matrix, cur, nxt, d, depth, opts, w, scratch, track,
        ),
        (ExecutedSweep::Worklist, None) => {
            iterate_worklist::<M, S, C>(matrix, cur, nxt, d, depth, opts, scratch)
        }
        (ExecutedSweep::Worklist, Some(w)) => slimchunk::iterate_tiled_worklist::<M, S, C>(
            matrix, cur, nxt, d, depth, opts, w, scratch,
        ),
    };
    it.sweep_mode = exec;
    if let Some(probes) = seeded {
        // Activation probes paid this iteration, whichever dispatcher
        // then ran (a seeded-but-full iteration still did the work).
        it.activations = probes;
    }
    it
}

/// Like [`mv_span`], but additionally records each chunk's exact
/// bit-wise changed *lane mask* into the parallel `flags` slab (one
/// mask per chunk of the span) — the tracked full sweep of adaptive
/// mode. A SlimWork-skipped chunk forwarded its state verbatim, so its
/// mask is cleared.
fn mv_span_tracked<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    span: ChunkSpan<'_>,
    flags: &mut [u32],
    depth: f32,
    slimwork: bool,
    mask: Option<&VertexMask>,
) -> (bool, u64, u64, usize)
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    let ChunkSpan { c0, x, g, p, d } = span;
    let mut acc = (false, 0u64, 0u64, 0usize);
    let per_chunk = x
        .chunks_mut(C)
        .zip(g.chunks_mut(C))
        .zip(p.chunks_mut(C))
        .zip(d.chunks_mut(C))
        .zip(flags.iter_mut());
    for (k, ((((nx, ng), np), dd), flag)) in per_chunk.enumerate() {
        let i = c0 + k;
        let (c, steps, arcs, skip) = do_chunk::<M, S, C>(
            matrix,
            cur,
            i,
            (&mut *nx, &mut *ng, &mut *np, &mut *dd),
            depth,
            slimwork,
            mask,
        );
        // The exact per-lane compare (mask != 0 ⟺ state_changed) names
        // the rows dependents must actually re-gather.
        *flag = if skip == 0 { S::state_changed_mask::<C>(cur, i * C, nx, ng, np) } else { 0 };
        acc.0 |= c;
        acc.1 += steps;
        acc.2 += arcs;
        acc.3 += skip;
    }
    acc
}

/// One frontier expansion over all chunks (full sweep, no tiling).
/// With `track`, each chunk's exact changed flag is recorded and the
/// pending seed list rebuilt from the flags (in chunk order —
/// deterministic at any thread count), maintaining the worklist
/// re-seeding invariant through adaptive mode's full iterations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn iterate<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    nxt: &mut StateVecs,
    d: &mut [f32],
    depth: f32,
    opts: &BfsOptions,
    scratch: &mut EngineScratch,
    track: bool,
) -> IterStats
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    let s = matrix.structure();
    let nc = s.num_chunks();
    let slimwork = opts.slimwork;
    let mask = opts.mask.as_deref();
    // At 1 effective thread the tiling is one span over everything, run
    // inline — the sequential oracle path.
    let EngineScratch { tiling: tiling_slot, full_changed, pending, .. } = scratch;
    let tiling = cached_full_tiling(tiling_slot, nc, opts.config.schedule);
    let (changed, col_steps, active_cells, skipped);
    let mut changed_chunks = 0;
    if track {
        full_changed.clear();
        full_changed.resize(nc, 0);
        let spans: Vec<_> = tiling
            .split_spans::<C>(nxt, d)
            .into_iter()
            .zip(tiling.split(1, full_changed))
            .collect();
        (changed, col_steps, active_cells, skipped) = tiling.map_reduce(
            spans,
            |(span, flags)| {
                mv_span_tracked::<M, S, C>(matrix, cur, span, flags.data, depth, slimwork, mask)
            },
            || (false, 0, 0, 0),
            |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3),
        );
        pending.clear();
        pending.extend(
            full_changed.iter().enumerate().filter(|(_, &f)| f != 0).map(|(i, &f)| (i as u32, f)),
        );
        changed_chunks = pending.len();
    } else {
        let spans = tiling.split_spans::<C>(nxt, d);
        (changed, col_steps, active_cells, skipped) = tiling.map_reduce(
            spans,
            |span| mv_span::<M, S, C>(matrix, cur, span, depth, slimwork, mask),
            || (false, 0, 0, 0),
            |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3),
        );
    }
    IterStats {
        elapsed: Default::default(),
        sweep_mode: ExecutedSweep::Full,
        chunks_processed: nc - skipped,
        chunks_skipped: skipped,
        chunks_not_on_worklist: 0,
        worklist_len: nc,
        activations: 0,
        changed_chunks,
        col_steps,
        cells: col_steps * C as u64,
        active_cells,
        changed,
        ..Default::default()
    }
}

/// Runs the MV + post-processing over one worklist tile, sequentially
/// within the tile, recording the exact per-chunk changed lane masks
/// the next worklist is seeded from. Returns (changed, column steps,
/// active cells, skipped).
fn wl_span<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    span: WorklistSpan<'_>,
    depth: f32,
    slimwork: bool,
    mask: Option<&VertexMask>,
) -> (bool, u64, u64, usize)
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    let WorklistSpan { first_pos: _, ids, x, g, p, d, changed } = span;
    let base0 = ids[0] as usize * C;
    let mut acc = (false, 0u64, 0u64, 0usize);
    for (k, &id) in ids.iter().enumerate() {
        let i = id as usize;
        let off = i * C - base0;
        // Same per-chunk body as the full sweep (do_chunk: mask and
        // SlimWork tests + copy_forward, or MV + post-processing) so
        // the two modes cannot drift apart.
        let (c, steps, arcs, skip) = do_chunk::<M, S, C>(
            matrix,
            cur,
            i,
            (
                &mut x[off..off + C],
                &mut g[off..off + C],
                &mut p[off..off + C],
                &mut d[off..off + C],
            ),
            depth,
            slimwork,
            mask,
        );
        // A skipped chunk forwarded its state verbatim — its mask
        // stays 0; otherwise record the exact per-lane change for
        // seeding (and lane-filtering) the next worklist.
        if skip == 0 {
            changed[k] = S::state_changed_mask::<C>(
                cur,
                i * C,
                &x[off..off + C],
                &g[off..off + C],
                &p[off..off + C],
            );
        }
        acc.0 |= c;
        acc.1 += steps;
        acc.2 += arcs;
        acc.3 += skip;
    }
    acc
}

/// One frontier expansion over the active worklist only: sweeps the
/// already-seeded worklist (seeding is the policy layer's job in
/// [`step`], so adaptive mode can inspect the worklist length before
/// committing) in disjoint tiles and harvests the exactly-changed
/// chunks as the next iteration's seeds. Cost is proportional to the
/// worklist, not the chunk range.
pub(crate) fn iterate_worklist<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    nxt: &mut StateVecs,
    d: &mut [f32],
    depth: f32,
    opts: &BfsOptions,
    scratch: &mut EngineScratch,
) -> IterStats
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    let s = matrix.structure();
    let nc = s.num_chunks();
    let slimwork = opts.slimwork;
    let mask = opts.mask.as_deref();
    let EngineScratch { act, pending, .. } = scratch;
    let (ids, flags) = act.split();
    let wl_len = ids.len();
    let tiling = WorklistTiling::new(ids, opts.config.schedule);
    let spans = tiling.split_spans::<C>(nxt, d, flags);
    let (changed, col_steps, active_cells, skipped) = tiling.map_reduce(
        spans,
        |span| wl_span::<M, S, C>(matrix, cur, span, depth, slimwork, mask),
        || (false, 0, 0, 0),
        |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3),
    );
    let changed_chunks = act.collect_changed_into(pending);
    IterStats {
        elapsed: Default::default(),
        sweep_mode: ExecutedSweep::Worklist,
        chunks_processed: wl_len - skipped,
        chunks_skipped: skipped,
        chunks_not_on_worklist: nc - wl_len,
        worklist_len: wl_len,
        activations: 0, // recorded by the policy layer that seeded
        changed_chunks,
        col_steps,
        cells: col_steps * C as u64,
        active_cells,
        changed,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{SellCSigma, SlimSellMatrix};
    use crate::semiring::{BooleanSemiring, RealSemiring, SelMaxSemiring, TropicalSemiring};
    use slimsell_graph::{serial_bfs, validate_parents, CsrGraph, GraphBuilder};

    fn sample() -> CsrGraph {
        // Two components; varied degrees.
        GraphBuilder::new(11)
            .edges([
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (3, 6),
                (8, 9),
                (9, 10),
            ])
            .build()
    }

    fn check_dist<S: Semiring>(g: &CsrGraph, sigma: usize, root: VertexId, opts: &BfsOptions) {
        let reference = serial_bfs(g, root);
        let slim = SlimSellMatrix::<4>::build(g, sigma);
        let out = BfsEngine::run::<_, S, 4>(&slim, root, opts);
        assert_eq!(out.dist, reference.dist, "{} sigma={sigma} slimsell", S::NAME);
        if let Some(p) = &out.parent {
            validate_parents(g, root, &out.dist, p).unwrap();
        }
        let sell = SellCSigma::<4>::build(g, sigma, S::PAD);
        let out2 = BfsEngine::run::<_, S, 4>(&sell, root, opts);
        assert_eq!(out2.dist, reference.dist, "{} sigma={sigma} sell-c-sigma", S::NAME);
    }

    #[test]
    fn all_semirings_match_reference() {
        let g = sample();
        for sigma in [1, 4, 11] {
            for root in [0u32, 6, 8] {
                check_dist::<TropicalSemiring>(&g, sigma, root, &BfsOptions::default());
                check_dist::<BooleanSemiring>(&g, sigma, root, &BfsOptions::default());
                check_dist::<RealSemiring>(&g, sigma, root, &BfsOptions::default());
                check_dist::<SelMaxSemiring>(&g, sigma, root, &BfsOptions::default());
            }
        }
    }

    #[test]
    fn slimwork_off_matches() {
        let g = sample();
        check_dist::<TropicalSemiring>(&g, 11, 0, &BfsOptions::plain());
        check_dist::<SelMaxSemiring>(&g, 11, 0, &BfsOptions::plain());
    }

    #[test]
    fn static_schedule_matches() {
        let g = sample();
        let opts = BfsOptions::default().schedule(Schedule::Static);
        check_dist::<BooleanSemiring>(&g, 4, 0, &opts);
    }

    #[test]
    fn slimchunk_matches() {
        let g = sample();
        let opts = BfsOptions { slimchunk: Some(2), ..Default::default() };
        check_dist::<TropicalSemiring>(&g, 11, 0, &opts);
        check_dist::<BooleanSemiring>(&g, 11, 0, &opts);
        check_dist::<RealSemiring>(&g, 11, 0, &opts);
        check_dist::<SelMaxSemiring>(&g, 11, 0, &opts);
    }

    #[test]
    fn unreachable_vertices_marked() {
        let g = sample();
        let slim = SlimSellMatrix::<4>::build(&g, 11);
        let out = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &BfsOptions::default());
        assert_eq!(out.dist[8], UNREACHABLE);
        assert_eq!(out.dist[7], UNREACHABLE); // isolated
    }

    #[test]
    fn selmax_root_is_own_parent() {
        let g = sample();
        let slim = SlimSellMatrix::<4>::build(&g, 11);
        let out = BfsEngine::run::<_, SelMaxSemiring, 4>(&slim, 3, &BfsOptions::default());
        let p = out.parent.unwrap();
        assert_eq!(p[3], 3);
        assert_eq!(p[7], UNREACHABLE);
    }

    #[test]
    fn slimwork_reduces_work() {
        // On a path graph most chunks finish early; SlimWork must skip.
        let n = 64u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let slim = SlimSellMatrix::<4>::build(&g, 1);
        let with = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &BfsOptions::default());
        let without = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &BfsOptions::plain());
        assert_eq!(with.dist, without.dist);
        assert!(with.stats.total_skipped() > 0, "no chunks skipped");
        assert!(with.stats.total_cells() < without.stats.total_cells());
    }

    #[test]
    fn worklist_matches_reference_all_semirings() {
        let g = sample();
        let opts = BfsOptions::default().sweep(SweepMode::Worklist);
        for sigma in [1, 4, 11] {
            for root in [0u32, 6, 8] {
                check_dist::<TropicalSemiring>(&g, sigma, root, &opts);
                check_dist::<BooleanSemiring>(&g, sigma, root, &opts);
                check_dist::<RealSemiring>(&g, sigma, root, &opts);
                check_dist::<SelMaxSemiring>(&g, sigma, root, &opts);
            }
        }
    }

    #[test]
    fn worklist_composes_with_slimwork_off_slimchunk_and_static() {
        let g = sample();
        for slimwork in [false, true] {
            for slimchunk in [None, Some(2)] {
                for schedule in [Schedule::Static, Schedule::Dynamic] {
                    let opts = BfsOptions { slimwork, slimchunk, ..Default::default() }
                        .sweep(SweepMode::Worklist)
                        .schedule(schedule);
                    check_dist::<TropicalSemiring>(&g, 11, 0, &opts);
                    check_dist::<BooleanSemiring>(&g, 11, 0, &opts);
                    check_dist::<SelMaxSemiring>(&g, 11, 0, &opts);
                }
            }
        }
    }

    #[test]
    fn worklist_reduces_column_steps_on_path() {
        // The wavefront case: a long path where a full sweep visits all
        // chunks every hop (unreached chunks fail the SlimWork test and
        // run their MV), but the worklist keeps only the chunks around
        // the frontier.
        let n = 256u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let slim = SlimSellMatrix::<4>::build(&g, 1);
        let full = BfsEngine::run::<_, TropicalSemiring, 4>(
            &slim,
            0,
            &BfsOptions::default().sweep(SweepMode::Full),
        );
        let wl = BfsEngine::run::<_, TropicalSemiring, 4>(
            &slim,
            0,
            &BfsOptions::default().sweep(SweepMode::Worklist),
        );
        assert_eq!(wl.dist, full.dist);
        assert_eq!(wl.stats.num_iterations(), full.stats.num_iterations());
        assert!(
            wl.stats.total_col_steps() < full.stats.total_col_steps(),
            "worklist {} !< full {}",
            wl.stats.total_col_steps(),
            full.stats.total_col_steps()
        );
        assert!(wl.stats.total_not_on_worklist() > 0);
        assert!(wl.stats.total_activations() > 0);
        let nc = slim.structure().num_chunks();
        for it in &wl.stats.iters {
            assert_eq!(it.chunks_processed + it.chunks_skipped, it.worklist_len);
            assert_eq!(it.chunks_not_on_worklist, nc - it.worklist_len);
        }
        for it in &full.stats.iters {
            assert_eq!(it.worklist_len, nc);
            assert_eq!(it.chunks_not_on_worklist, 0);
        }
    }

    #[test]
    fn worklist_iteration_counters_match_full_sweep_work_done() {
        // Processed chunks do identical math in both modes: per
        // iteration, the worklist's column steps can never exceed the
        // full sweep's, and the totals agree with the cells accounting.
        let g = sample();
        let slim = SlimSellMatrix::<4>::build(&g, 11);
        let full = BfsEngine::run::<_, BooleanSemiring, 4>(
            &slim,
            0,
            &BfsOptions::default().sweep(SweepMode::Full),
        );
        let wl = BfsEngine::run::<_, BooleanSemiring, 4>(
            &slim,
            0,
            &BfsOptions::default().sweep(SweepMode::Worklist),
        );
        assert_eq!(wl.stats.num_iterations(), full.stats.num_iterations());
        for (a, b) in wl.stats.iters.iter().zip(&full.stats.iters) {
            assert!(a.col_steps <= b.col_steps);
            assert_eq!(a.cells, a.col_steps * 4);
            assert_eq!(a.changed, b.changed);
        }
    }

    #[test]
    fn adaptive_matches_reference_all_semirings() {
        let g = sample();
        let opts = BfsOptions::default().sweep(SweepMode::Adaptive);
        for sigma in [1, 4, 11] {
            for root in [0u32, 6, 8] {
                check_dist::<TropicalSemiring>(&g, sigma, root, &opts);
                check_dist::<BooleanSemiring>(&g, sigma, root, &opts);
                check_dist::<RealSemiring>(&g, sigma, root, &opts);
                check_dist::<SelMaxSemiring>(&g, sigma, root, &opts);
            }
        }
    }

    #[test]
    fn adaptive_composes_with_slimwork_slimchunk_and_schedules() {
        let g = sample();
        for slimwork in [false, true] {
            for slimchunk in [None, Some(2)] {
                for schedule in [Schedule::Static, Schedule::Dynamic] {
                    let opts = BfsOptions { slimwork, slimchunk, ..Default::default() }
                        .sweep(SweepMode::Adaptive)
                        .schedule(schedule);
                    check_dist::<TropicalSemiring>(&g, 11, 0, &opts);
                    check_dist::<BooleanSemiring>(&g, 11, 0, &opts);
                    check_dist::<SelMaxSemiring>(&g, 11, 0, &opts);
                }
            }
        }
    }

    #[test]
    fn adaptive_switches_to_full_in_a_flood_and_tags_iterations() {
        // A broom: a path feeding a dense blow-up. The wavefront stays
        // on small worklists down the handle, then vertex 32's star
        // floods the dependent set past the exit threshold and the
        // controller must leave worklist mode; the per-iteration
        // sweep_mode tags record the trace and mode_switches counts it.
        let n = 256u32;
        let g = GraphBuilder::new(n as usize)
            .edges((0..32u32).map(|v| (v, v + 1)).chain((33..n).map(|w| (32, w))))
            .build();
        let slim = SlimSellMatrix::<4>::build(&g, 1);
        let opts = BfsOptions::default().sweep(SweepMode::Adaptive);
        let out = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &opts);
        let full = BfsEngine::run::<_, TropicalSemiring, 4>(
            &slim,
            0,
            &BfsOptions::default().sweep(SweepMode::Full),
        );
        assert_eq!(out.dist, full.dist);
        assert_eq!(out.stats.num_iterations(), full.stats.num_iterations());
        assert_eq!(
            out.stats.iters[0].sweep_mode,
            ExecutedSweep::Worklist,
            "adaptive must start in the worklist regime"
        );
        assert!(
            out.stats.full_sweep_iterations() > 0,
            "flood never drove the controller to full sweeps: {:?}",
            out.stats.iters.iter().map(|i| i.sweep_mode).collect::<Vec<_>>()
        );
        assert!(out.stats.mode_switches() >= 1);
        // Pure modes carry a constant tag and no switches.
        assert_eq!(full.stats.mode_switches(), 0);
        assert!(full.stats.iters.iter().all(|i| i.sweep_mode == ExecutedSweep::Full));
        let wl = BfsEngine::run::<_, TropicalSemiring, 4>(
            &slim,
            0,
            &BfsOptions::default().sweep(SweepMode::Worklist),
        );
        assert_eq!(wl.stats.mode_switches(), 0);
        assert!(wl.stats.iters.iter().all(|i| i.sweep_mode == ExecutedSweep::Worklist));
    }

    #[test]
    fn adaptive_stays_on_worklist_for_a_wavefront() {
        // The path graph never floods: every adaptive iteration should
        // run the worklist dispatcher and match the worklist engine's
        // column steps exactly.
        let n = 256u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let slim = SlimSellMatrix::<4>::build(&g, 1);
        let ad = BfsEngine::run::<_, TropicalSemiring, 4>(
            &slim,
            0,
            &BfsOptions::default().sweep(SweepMode::Adaptive),
        );
        let wl = BfsEngine::run::<_, TropicalSemiring, 4>(
            &slim,
            0,
            &BfsOptions::default().sweep(SweepMode::Worklist),
        );
        assert_eq!(ad.dist, wl.dist);
        assert_eq!(ad.stats.mode_switches(), 0);
        assert_eq!(ad.stats.full_sweep_iterations(), 0);
        assert_eq!(ad.stats.total_col_steps(), wl.stats.total_col_steps());
        assert_eq!(ad.stats.total_activations(), wl.stats.total_activations());
    }

    #[test]
    fn adaptive_column_steps_never_exceed_the_better_pure_mode() {
        // Per iteration the adaptive engine runs one of the two pure
        // dispatchers, so its total column steps are bounded by the
        // worse pure mode and should track the better one closely.
        let g = sample();
        let slim = SlimSellMatrix::<4>::build(&g, 11);
        for root in [0u32, 6, 8] {
            let run = |sweep| {
                BfsEngine::run::<_, BooleanSemiring, 4>(
                    &slim,
                    root,
                    &BfsOptions::default().sweep(sweep),
                )
                .stats
                .total_col_steps()
            };
            let (full, wl, ad) =
                (run(SweepMode::Full), run(SweepMode::Worklist), run(SweepMode::Adaptive));
            assert!(ad <= full.max(wl), "root {root}: adaptive {ad} > max(full {full}, wl {wl})");
        }
    }

    #[test]
    fn iteration_count_is_eccentricity_plus_one() {
        let g = GraphBuilder::new(6).edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).build();
        let slim = SlimSellMatrix::<4>::build(&g, 6);
        let out = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &BfsOptions::default());
        // Distances reach 5; one extra iteration detects convergence.
        assert_eq!(out.stats.num_iterations(), 6);
    }

    #[test]
    fn wider_lanes_match() {
        let g = sample();
        let reference = serial_bfs(&g, 0);
        let slim8 = SlimSellMatrix::<8>::build(&g, 11);
        let slim16 = SlimSellMatrix::<16>::build(&g, 11);
        let slim32 = SlimSellMatrix::<32>::build(&g, 11);
        assert_eq!(
            BfsEngine::run::<_, TropicalSemiring, 8>(&slim8, 0, &BfsOptions::default()).dist,
            reference.dist
        );
        assert_eq!(
            BfsEngine::run::<_, BooleanSemiring, 16>(&slim16, 0, &BfsOptions::default()).dist,
            reference.dist
        );
        assert_eq!(
            BfsEngine::run::<_, SelMaxSemiring, 32>(&slim32, 0, &BfsOptions::default()).dist,
            reference.dist
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_root_panics() {
        let g = sample();
        let slim = SlimSellMatrix::<4>::build(&g, 1);
        BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 99, &BfsOptions::default());
    }

    #[test]
    fn single_edge_graph() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let slim = SlimSellMatrix::<4>::build(&g, 2);
        let out = BfsEngine::run::<_, SelMaxSemiring, 4>(&slim, 0, &BfsOptions::default());
        assert_eq!(out.dist, vec![0, 1]);
        assert_eq!(out.parent.unwrap(), vec![0, 0]);
    }
}
