//! SlimChunk: two-dimensional chunk tiling (§III-D).
//!
//! With large sorting scopes the first chunks hold all the high-degree
//! rows, so a handful of chunks dominate the iteration ("the first chunk
//! contains all of the longest rows and consequently the corresponding
//! thread performs the majority of work, causing imbalance", §IV-A1).
//! SlimChunk splits each chunk *vertically* into tiles of at most
//! `tile_w` column steps; tiles are independent parallel tasks whose
//! partial accumulators are merged with the semiring's `op1` (which is
//! associative and commutative, making the split sound).
//!
//! The execution is two-phase: phase 1 computes every tile's partial
//! accumulator into a task-indexed buffer (parallel over tiles); phase 2
//! merges each chunk's partials, starting from the chunk's previous
//! values, and runs the semiring post-processing (parallel over chunks).
//!
//! Both phases follow the engine's tiled execution model
//! ([`crate::tiling`]): the task/chunk ranges are partitioned into
//! contiguous per-worker tiles whose output slabs are disjoint
//! `&mut [f32]` carved out with `split_at_mut`, with a sequential
//! fallback at one effective thread.
//!
//! # Example
//!
//! ```
//! use slimsell_core::{BfsEngine, BfsOptions, SlimSellMatrix, TropicalSemiring};
//! use slimsell_graph::GraphBuilder;
//!
//! // A star graph: one long row — the load-imbalance case SlimChunk
//! // attacks. Tile width 2 splits the hub row into parallel tasks.
//! let g = GraphBuilder::new(9).edges((1..9u32).map(|v| (0, v))).build();
//! let m = SlimSellMatrix::<4>::build(&g, 9);
//! let opts = BfsOptions { slimchunk: Some(2), ..Default::default() };
//! let out = BfsEngine::run::<_, TropicalSemiring, 4>(&m, 1, &opts);
//! assert_eq!(out.dist, vec![1, 0, 2, 2, 2, 2, 2, 2, 2]);
//! ```

use slimsell_simd::{SimdF32, SimdI32};

use crate::bfs::BfsOptions;
use crate::counters::IterStats;
use crate::matrix::ChunkMatrix;
use crate::semiring::{Semiring, StateVecs};
use crate::tiling::{ChunkSpan, ChunkTiling};

/// One frontier expansion with 2-D tiling.
pub(crate) fn iterate_tiled<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    nxt: &mut StateVecs,
    d: &mut [f32],
    depth: f32,
    opts: &BfsOptions,
    tile_w: usize,
) -> IterStats
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    assert!(tile_w >= 1, "tile width must be at least 1");
    let s = matrix.structure();
    let nc = s.num_chunks();

    // Task list: (chunk, first column step, last column step). SlimWork
    // is applied here so skipped chunks generate no tiles at all.
    let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
    let mut chunk_task_start = vec![0usize; nc + 1];
    let mut skip = vec![false; nc];
    let mut skipped = 0usize;
    for i in 0..nc {
        chunk_task_start[i] = tasks.len();
        if opts.slimwork && S::should_skip(cur, i * C..(i + 1) * C) {
            skip[i] = true;
            skipped += 1;
            continue;
        }
        let cl = s.cl()[i] as usize;
        let mut j = 0;
        while j < cl {
            tasks.push((i, j, (j + tile_w).min(cl)));
            j += tile_w;
        }
    }
    chunk_task_start[nc] = tasks.len();

    // Phase 1: tile partials, parallel over contiguous task ranges with
    // disjoint slabs of the partials buffer (the "chunks" of this
    // tiling are the vertical tile tasks).
    let mut partials = vec![S::OP1_IDENTITY; tasks.len() * C];
    {
        let task_tiling = ChunkTiling::new(tasks.len(), opts.schedule);
        let slabs = task_tiling.split(C, &mut partials);
        let tasks_ref = &tasks;
        task_tiling.for_each(slabs, |slab| {
            for (off, buf) in slab.data.chunks_mut(C).enumerate() {
                let (i, j0, j1) = tasks_ref[slab.c0 + off];
                tile_mv::<M, S, C>(matrix, &cur.x, i, j0, j1).store(buf);
            }
        });
    }

    // Phase 2: merge partials per chunk and post-process, parallel over
    // chunk-range tiles like the untiled engine.
    let merge_span = |span: ChunkSpan<'_>| -> (bool, u64) {
        let mut acc2 = (false, 0u64);
        let per_chunk = span
            .x
            .chunks_mut(C)
            .zip(span.g.chunks_mut(C))
            .zip(span.p.chunks_mut(C))
            .zip(span.d.chunks_mut(C));
        for (k, (((nx, ng), np), dd)) in per_chunk.enumerate() {
            let i = span.c0 + k;
            let base = i * C;
            if skip[i] {
                S::copy_forward(cur, base, nx, ng, np);
                continue;
            }
            let mut acc = SimdF32::<C>::load(&cur.x[base..]);
            for t in chunk_task_start[i]..chunk_task_start[i + 1] {
                acc = S::op1(acc, SimdF32::<C>::load(&partials[t * C..]));
            }
            acc2.0 |= S::post_chunk(acc, cur, base, nx, ng, np, dd, depth);
            acc2.1 += s.cl()[i] as u64;
        }
        acc2
    };
    let tiling = ChunkTiling::new(nc, opts.schedule);
    let spans = tiling.split_spans::<C>(nxt, d);
    let (changed, col_steps) =
        tiling.map_reduce(spans, merge_span, || (false, 0), |a, b| (a.0 | b.0, a.1 + b.1));

    IterStats {
        elapsed: Default::default(),
        chunks_processed: nc - skipped,
        chunks_skipped: skipped,
        col_steps,
        cells: col_steps * C as u64,
        changed,
    }
}

/// MV over one vertical tile of a chunk, starting from the `op1`
/// identity (the chunk's previous values are merged in phase 2).
#[inline]
fn tile_mv<M, S, const C: usize>(
    matrix: &M,
    x: &[f32],
    i: usize,
    j0: usize,
    j1: usize,
) -> SimdF32<C>
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    let s = matrix.structure();
    let col = s.col();
    let mut acc = SimdF32::<C>::splat(S::OP1_IDENTITY);
    let mut index = s.cs()[i] + j0 * C;
    for _ in j0..j1 {
        let cols = SimdI32::<C>::load(&col[index..]);
        let vals = matrix.vals(index, cols, S::PAD);
        let rhs = SimdF32::gather_or(x, cols, 0.0);
        acc = S::combine(acc, vals, rhs);
        index += C;
    }
    acc
}

/// Maximum number of column steps any single task executes — the measure
/// of load imbalance SlimChunk attacks. Exposed for the Fig. 6d/e
/// analyses.
pub fn max_task_height<const C: usize>(cl: &[u32], tile_w: Option<usize>) -> usize {
    match tile_w {
        None => cl.iter().copied().max().unwrap_or(0) as usize,
        Some(w) => cl.iter().map(|&c| (c as usize).min(w)).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsEngine;
    use crate::matrix::SlimSellMatrix;
    use crate::semiring::{BooleanSemiring, RealSemiring, SelMaxSemiring, TropicalSemiring};
    use slimsell_graph::{serial_bfs, GraphBuilder};

    #[test]
    fn tiled_matches_untiled_all_semirings() {
        // Star graph: one huge row, many tiny ones — the SlimChunk case.
        let n = 40u32;
        let mut b = GraphBuilder::new(n as usize);
        for v in 1..n {
            b.edge(0, v);
        }
        for v in 1..n - 1 {
            b.edge(v, v + 1);
        }
        let g = b.build();
        let slim = SlimSellMatrix::<4>::build(&g, n as usize);
        let reference = serial_bfs(&g, 5);
        for tile_w in [1, 3, 8, 100] {
            let opts = BfsOptions { slimchunk: Some(tile_w), ..Default::default() };
            macro_rules! check {
                ($sem:ty) => {
                    let out = BfsEngine::run::<_, $sem, 4>(&slim, 5, &opts);
                    assert_eq!(out.dist, reference.dist, "{} tile_w={tile_w}", <$sem>::NAME);
                };
            }
            check!(TropicalSemiring);
            check!(BooleanSemiring);
            check!(RealSemiring);
            check!(SelMaxSemiring);
        }
    }

    #[test]
    fn max_task_height_shrinks_with_tiling() {
        let cl = [100u32, 3, 2, 1];
        assert_eq!(max_task_height::<4>(&cl, None), 100);
        assert_eq!(max_task_height::<4>(&cl, Some(8)), 8);
        assert_eq!(max_task_height::<4>(&cl, Some(256)), 100);
    }

    #[test]
    fn slimwork_composes_with_slimchunk() {
        let n = 64u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let slim = SlimSellMatrix::<4>::build(&g, 1);
        let opts = BfsOptions { slimchunk: Some(2), slimwork: true, ..Default::default() };
        let out = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &opts);
        assert_eq!(out.dist, serial_bfs(&g, 0).dist);
        assert!(out.stats.total_skipped() > 0);
    }

    #[test]
    #[should_panic(expected = "tile width")]
    fn zero_tile_width_rejected() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let slim = SlimSellMatrix::<4>::build(&g, 1);
        let opts = BfsOptions { slimchunk: Some(0), ..Default::default() };
        BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &opts);
    }
}
