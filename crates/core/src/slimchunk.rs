//! SlimChunk: two-dimensional chunk tiling (§III-D).
//!
//! With large sorting scopes the first chunks hold all the high-degree
//! rows, so a handful of chunks dominate the iteration ("the first chunk
//! contains all of the longest rows and consequently the corresponding
//! thread performs the majority of work, causing imbalance", §IV-A1).
//! SlimChunk splits each chunk *vertically* into tiles of at most
//! `tile_w` column steps; tiles are independent parallel tasks whose
//! partial accumulators are merged with the semiring's `op1` (which is
//! associative and commutative, making the split sound).
//!
//! The execution is two-phase: phase 1 computes every tile's partial
//! accumulator into a task-indexed buffer (parallel over tiles); phase 2
//! merges each chunk's partials, starting from the chunk's previous
//! values, and runs the semiring post-processing (parallel over chunks).
//!
//! Both phases follow the engine's tiled execution model
//! ([`crate::tiling`]): the task/chunk ranges are partitioned into
//! contiguous per-worker tiles whose output slabs are disjoint
//! `&mut [f32]` carved out with `split_at_mut`, with a sequential
//! fallback at one effective thread.
//!
//! # Example
//!
//! ```
//! use slimsell_core::{BfsEngine, BfsOptions, SlimSellMatrix, TropicalSemiring};
//! use slimsell_graph::GraphBuilder;
//!
//! // A star graph: one long row — the load-imbalance case SlimChunk
//! // attacks. Tile width 2 splits the hub row into parallel tasks.
//! let g = GraphBuilder::new(9).edges((1..9u32).map(|v| (0, v))).build();
//! let m = SlimSellMatrix::<4>::build(&g, 9);
//! let opts = BfsOptions { slimchunk: Some(2), ..Default::default() };
//! let out = BfsEngine::run::<_, TropicalSemiring, 4>(&m, 1, &opts);
//! assert_eq!(out.dist, vec![1, 0, 2, 2, 2, 2, 2, 2, 2]);
//! ```

use slimsell_simd::{SimdF32, SimdI32};

use crate::bfs::{cached_full_tiling, BfsOptions, EngineScratch};
use crate::counters::IterStats;
use crate::mask::VertexMask;
use crate::matrix::ChunkMatrix;
use crate::semiring::{Semiring, StateVecs};
use crate::sweep::ExecutedSweep;
use crate::tiling::{ChunkSpan, ChunkTiling, WorklistSpan, WorklistTiling};
use crate::worklist::full_lane_mask;

/// Builds the vertical tile tasks for one chunk into `tasks`.
#[inline]
fn push_tasks(tasks: &mut Vec<(usize, usize, usize)>, i: usize, cl: usize, tile_w: usize) {
    let mut j = 0;
    while j < cl {
        tasks.push((i, j, (j + tile_w).min(cl)));
        j += tile_w;
    }
}

/// Phase 1: tile partials, parallel over contiguous task ranges with
/// disjoint slabs of the (reused) partials buffer — the "chunks" of
/// this tiling are the vertical tile tasks.
fn phase1<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    tasks: &[(usize, usize, usize)],
    partials: &mut Vec<f32>,
    opts: &BfsOptions,
) where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    partials.clear();
    partials.resize(tasks.len() * C, S::OP1_IDENTITY);
    let task_tiling = ChunkTiling::new(tasks.len(), opts.config.schedule);
    let slabs = task_tiling.split(C, partials);
    task_tiling.for_each(slabs, |slab| {
        for (off, buf) in slab.data.chunks_mut(C).enumerate() {
            let (i, j0, j1) = tasks[slab.c0 + off];
            tile_mv::<M, S, C>(matrix, &cur.x, i, j0, j1).store(buf);
        }
    });
}

/// Phase 2 for one chunk: SlimWork carry-forward if the chunk was
/// skipped, otherwise fold its tile partials (starting from the
/// chunk's previous values) with `op1` and run the semiring
/// post-processing. Under a partial vertex mask, masked-out lanes are
/// blended back to their previous state before post-processing, so
/// masked vertices stay exactly at rest (same contract as the untiled
/// engine). Returns (advanced, column steps). The shared body of the
/// full-sweep and worklist merge passes, so the two modes cannot drift
/// apart.
#[allow(clippy::too_many_arguments)]
#[inline]
fn merge_chunk<S, const C: usize>(
    cur: &StateVecs,
    i: usize,
    cl_i: u64,
    skipped: bool,
    tasks: std::ops::Range<usize>,
    partials: &[f32],
    out: (&mut [f32], &mut [f32], &mut [f32], &mut [f32]),
    depth: f32,
    allowed: u32,
) -> (bool, u64)
where
    S: Semiring,
{
    let (nx, ng, np, dd) = out;
    let base = i * C;
    if skipped {
        S::copy_forward(cur, base, nx, ng, np);
        return (false, 0);
    }
    let mut acc = SimdF32::<C>::load(&cur.x[base..]);
    for t in tasks {
        acc = S::op1(acc, SimdF32::<C>::load(&partials[t * C..]));
    }
    if allowed != full_lane_mask(C) {
        let mut lanes = [0.0f32; C];
        acc.store(&mut lanes);
        for (l, slot) in lanes.iter_mut().enumerate() {
            if allowed & (1 << l) == 0 {
                *slot = cur.x[base + l];
            }
        }
        acc = SimdF32::load(&lanes);
    }
    (S::post_chunk(acc, cur, base, nx, ng, np, dd, depth), cl_i)
}

/// The full-sweep 2-D tiled iteration. With `track`, phase 2
/// additionally records each chunk's exact bit-wise changed flag and
/// rebuilds the pending seed list from the flags in chunk order —
/// adaptive mode's tracked full sweep (see [`crate::sweep`]). One
/// frontier expansion; all per-phase buffers (task list, per-chunk
/// task offsets, skip flags, tile partials) live in the run-owned
/// [`EngineScratch`] and are reused across iterations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn iterate_tiled_full<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    nxt: &mut StateVecs,
    d: &mut [f32],
    depth: f32,
    opts: &BfsOptions,
    tile_w: usize,
    scratch: &mut EngineScratch,
    track: bool,
) -> IterStats
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    assert!(tile_w >= 1, "tile width must be at least 1");
    let s = matrix.structure();
    let nc = s.num_chunks();
    let mask = opts.mask.as_deref();
    let allowed_of =
        |m: Option<&VertexMask>, i: usize| m.map_or_else(|| full_lane_mask(C), |m| m.allowed(i));
    let EngineScratch { tiling, tasks, task_start, skip, partials, full_changed, pending, .. } =
        scratch;

    // Task list: (chunk, first column step, last column step). Fully
    // masked chunks and SlimWork skips are applied here so skipped
    // chunks generate no tiles at all.
    tasks.clear();
    task_start.clear();
    task_start.resize(nc + 1, 0);
    skip.clear();
    skip.resize(nc, false);
    let mut skipped = 0usize;
    for i in 0..nc {
        task_start[i] = tasks.len();
        if mask.is_some_and(|m| m.allowed_real(i) == 0)
            || (opts.slimwork && S::should_skip(cur, i * C..(i + 1) * C))
        {
            skip[i] = true;
            skipped += 1;
            continue;
        }
        push_tasks(tasks, i, s.cl()[i] as usize, tile_w);
    }
    task_start[nc] = tasks.len();

    phase1::<M, S, C>(matrix, cur, tasks, partials, opts);

    // Phase 2: merge partials per chunk and post-process, parallel over
    // chunk-range tiles like the untiled engine.
    let (task_start, skip, partials) = (&*task_start, &*skip, &*partials);
    let merge_one = |i: usize, out: (&mut [f32], &mut [f32], &mut [f32], &mut [f32])| {
        merge_chunk::<S, C>(
            cur,
            i,
            s.cl()[i] as u64,
            skip[i],
            task_start[i]..task_start[i + 1],
            partials,
            out,
            depth,
            allowed_of(mask, i),
        )
    };
    let tiling = cached_full_tiling(tiling, nc, opts.config.schedule);
    let (changed, col_steps, active_cells);
    let mut changed_chunks = 0;
    if track {
        full_changed.clear();
        full_changed.resize(nc, 0);
        let spans: Vec<_> = tiling
            .split_spans::<C>(nxt, d)
            .into_iter()
            .zip(tiling.split(1, full_changed))
            .collect();
        (changed, col_steps, active_cells) = tiling.map_reduce(
            spans,
            |(span, flags)| {
                let ChunkSpan { c0, x, g, p, d } = span;
                let mut acc2 = (false, 0u64, 0u64);
                let per_chunk = x
                    .chunks_mut(C)
                    .zip(g.chunks_mut(C))
                    .zip(p.chunks_mut(C))
                    .zip(d.chunks_mut(C))
                    .zip(flags.data.iter_mut());
                for (k, ((((nx, ng), np), dd), flag)) in per_chunk.enumerate() {
                    let i = c0 + k;
                    let (adv, steps) = merge_one(i, (&mut *nx, &mut *ng, &mut *np, &mut *dd));
                    // A skipped chunk forwarded its state verbatim;
                    // otherwise record the exact per-lane change mask
                    // (mask != 0 ⟺ the chunk's state changed).
                    *flag = if skip[i] {
                        0
                    } else {
                        acc2.2 += s.chunk_arcs()[i];
                        S::state_changed_mask::<C>(cur, i * C, nx, ng, np)
                    };
                    acc2.0 |= adv;
                    acc2.1 += steps;
                }
                acc2
            },
            || (false, 0, 0),
            |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2),
        );
        pending.clear();
        pending.extend(
            full_changed.iter().enumerate().filter(|(_, &f)| f != 0).map(|(i, &f)| (i as u32, f)),
        );
        changed_chunks = pending.len();
    } else {
        let merge_span = |span: ChunkSpan<'_>| -> (bool, u64, u64) {
            let mut acc2 = (false, 0u64, 0u64);
            let per_chunk = span
                .x
                .chunks_mut(C)
                .zip(span.g.chunks_mut(C))
                .zip(span.p.chunks_mut(C))
                .zip(span.d.chunks_mut(C));
            for (k, (((nx, ng), np), dd)) in per_chunk.enumerate() {
                let i = span.c0 + k;
                let (adv, steps) = merge_one(i, (nx, ng, np, dd));
                if !skip[i] {
                    acc2.2 += s.chunk_arcs()[i];
                }
                acc2.0 |= adv;
                acc2.1 += steps;
            }
            acc2
        };
        let spans = tiling.split_spans::<C>(nxt, d);
        (changed, col_steps, active_cells) = tiling.map_reduce(
            spans,
            merge_span,
            || (false, 0, 0),
            |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2),
        );
    }

    IterStats {
        elapsed: Default::default(),
        sweep_mode: ExecutedSweep::Full,
        chunks_processed: nc - skipped,
        chunks_skipped: skipped,
        chunks_not_on_worklist: 0,
        worklist_len: nc,
        activations: 0,
        changed_chunks,
        col_steps,
        cells: col_steps * C as u64,
        active_cells,
        changed,
        ..Default::default()
    }
}

/// The worklist 2-D tiled iteration: tasks are generated for worklist
/// chunks only, phase 2 runs over worklist tiles and records the exact
/// per-chunk changed flags, and the next pending seed list is
/// harvested from them. The worklist itself was already seeded by the
/// policy layer ([`crate::bfs::step`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn iterate_tiled_worklist<M, S, const C: usize>(
    matrix: &M,
    cur: &StateVecs,
    nxt: &mut StateVecs,
    d: &mut [f32],
    depth: f32,
    opts: &BfsOptions,
    tile_w: usize,
    scratch: &mut EngineScratch,
) -> IterStats
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    assert!(tile_w >= 1, "tile width must be at least 1");
    let s = matrix.structure();
    let nc = s.num_chunks();
    let mask = opts.mask.as_deref();
    let allowed_of =
        |m: Option<&VertexMask>, i: usize| m.map_or_else(|| full_lane_mask(C), |m| m.allowed(i));
    let EngineScratch { act, pending, tasks, task_start, skip, partials, .. } = scratch;

    let (ids, flags) = act.split();
    let wl_len = ids.len();

    // Task list over worklist positions (side tables are
    // position-indexed, parallel to the worklist).
    tasks.clear();
    task_start.clear();
    task_start.resize(wl_len + 1, 0);
    skip.clear();
    skip.resize(wl_len, false);
    let mut skipped = 0usize;
    for (k, &id) in ids.iter().enumerate() {
        let i = id as usize;
        task_start[k] = tasks.len();
        if mask.is_some_and(|m| m.allowed_real(i) == 0)
            || (opts.slimwork && S::should_skip(cur, i * C..(i + 1) * C))
        {
            skip[k] = true;
            skipped += 1;
            continue;
        }
        push_tasks(tasks, i, s.cl()[i] as usize, tile_w);
    }
    task_start[wl_len] = tasks.len();

    phase1::<M, S, C>(matrix, cur, tasks, partials, opts);

    // Phase 2 over worklist tiles.
    let (task_start, skip, partials) = (&*task_start, &*skip, &*partials);
    let merge_span = |span: WorklistSpan<'_>| -> (bool, u64, u64) {
        let WorklistSpan { first_pos, ids, x, g, p, d, changed } = span;
        let base0 = ids[0] as usize * C;
        let mut acc2 = (false, 0u64, 0u64);
        for (k, &id) in ids.iter().enumerate() {
            let pos = first_pos + k;
            let i = id as usize;
            let off = i * C - base0;
            let (adv, steps) = merge_chunk::<S, C>(
                cur,
                i,
                s.cl()[i] as u64,
                skip[pos],
                task_start[pos]..task_start[pos + 1],
                partials,
                (
                    &mut x[off..off + C],
                    &mut g[off..off + C],
                    &mut p[off..off + C],
                    &mut d[off..off + C],
                ),
                depth,
                allowed_of(mask, i),
            );
            // A skipped chunk's mask stays 0 (state forwarded
            // verbatim); otherwise record the exact per-lane change
            // mask for seeding (and lane-filtering) the next worklist.
            if !skip[pos] {
                acc2.2 += s.chunk_arcs()[i];
                changed[k] = S::state_changed_mask::<C>(
                    cur,
                    i * C,
                    &x[off..off + C],
                    &g[off..off + C],
                    &p[off..off + C],
                );
            }
            acc2.0 |= adv;
            acc2.1 += steps;
        }
        acc2
    };
    let tiling = WorklistTiling::new(ids, opts.config.schedule);
    let spans = tiling.split_spans::<C>(nxt, d, flags);
    let (changed, col_steps, active_cells) = tiling.map_reduce(
        spans,
        merge_span,
        || (false, 0, 0),
        |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2),
    );

    let changed_chunks = act.collect_changed_into(pending);
    IterStats {
        elapsed: Default::default(),
        sweep_mode: ExecutedSweep::Worklist,
        chunks_processed: wl_len - skipped,
        chunks_skipped: skipped,
        chunks_not_on_worklist: nc - wl_len,
        worklist_len: wl_len,
        activations: 0, // recorded by the policy layer that seeded
        changed_chunks,
        col_steps,
        cells: col_steps * C as u64,
        active_cells,
        changed,
        ..Default::default()
    }
}

/// MV over one vertical tile of a chunk, starting from the `op1`
/// identity (the chunk's previous values are merged in phase 2).
#[inline]
fn tile_mv<M, S, const C: usize>(
    matrix: &M,
    x: &[f32],
    i: usize,
    j0: usize,
    j1: usize,
) -> SimdF32<C>
where
    M: ChunkMatrix<C>,
    S: Semiring,
{
    let s = matrix.structure();
    let col = s.col();
    let mut acc = SimdF32::<C>::splat(S::OP1_IDENTITY);
    let mut index = s.cs()[i] + j0 * C;
    for _ in j0..j1 {
        let cols = SimdI32::<C>::load(&col[index..]);
        let vals = matrix.vals(index, cols, S::PAD);
        let rhs = SimdF32::gather_or(x, cols, 0.0);
        acc = S::combine(acc, vals, rhs);
        index += C;
    }
    acc
}

/// Maximum number of column steps any single task executes — the measure
/// of load imbalance SlimChunk attacks. Exposed for the Fig. 6d/e
/// analyses.
pub fn max_task_height<const C: usize>(cl: &[u32], tile_w: Option<usize>) -> usize {
    match tile_w {
        None => cl.iter().copied().max().unwrap_or(0) as usize,
        Some(w) => cl.iter().map(|&c| (c as usize).min(w)).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsEngine;
    use crate::matrix::SlimSellMatrix;
    use crate::semiring::{BooleanSemiring, RealSemiring, SelMaxSemiring, TropicalSemiring};
    use slimsell_graph::{serial_bfs, GraphBuilder};

    #[test]
    fn tiled_matches_untiled_all_semirings() {
        // Star graph: one huge row, many tiny ones — the SlimChunk case.
        let n = 40u32;
        let mut b = GraphBuilder::new(n as usize);
        for v in 1..n {
            b.edge(0, v);
        }
        for v in 1..n - 1 {
            b.edge(v, v + 1);
        }
        let g = b.build();
        let slim = SlimSellMatrix::<4>::build(&g, n as usize);
        let reference = serial_bfs(&g, 5);
        for tile_w in [1, 3, 8, 100] {
            let opts = BfsOptions { slimchunk: Some(tile_w), ..Default::default() };
            macro_rules! check {
                ($sem:ty) => {
                    let out = BfsEngine::run::<_, $sem, 4>(&slim, 5, &opts);
                    assert_eq!(out.dist, reference.dist, "{} tile_w={tile_w}", <$sem>::NAME);
                };
            }
            check!(TropicalSemiring);
            check!(BooleanSemiring);
            check!(RealSemiring);
            check!(SelMaxSemiring);
        }
    }

    #[test]
    fn max_task_height_shrinks_with_tiling() {
        let cl = [100u32, 3, 2, 1];
        assert_eq!(max_task_height::<4>(&cl, None), 100);
        assert_eq!(max_task_height::<4>(&cl, Some(8)), 8);
        assert_eq!(max_task_height::<4>(&cl, Some(256)), 100);
    }

    #[test]
    fn slimwork_composes_with_slimchunk() {
        let n = 64u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let slim = SlimSellMatrix::<4>::build(&g, 1);
        let opts = BfsOptions { slimchunk: Some(2), slimwork: true, ..Default::default() };
        let out = BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &opts);
        assert_eq!(out.dist, serial_bfs(&g, 0).dist);
        assert!(out.stats.total_skipped() > 0);
    }

    #[test]
    #[should_panic(expected = "tile width")]
    fn zero_tile_width_rejected() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let slim = SlimSellMatrix::<4>::build(&g, 1);
        let opts = BfsOptions { slimchunk: Some(0), ..Default::default() };
        BfsEngine::run::<_, TropicalSemiring, 4>(&slim, 0, &opts);
    }
}
