//! Storage accounting for Table III and the Figure 7 analyses.
//!
//! All representations are measured in 4-byte *cells*, the unit of the
//! paper's Table III:
//!
//! | representation | cells |
//! |---|---|
//! | Sell-C-σ  | `2(2m + P) + 2⌈n/C⌉` |
//! | CSR (matrix) | `4m + n` |
//! | AL | `2m + n` |
//! | SlimSell | `2m + P + 2⌈n/C⌉` |
//!
//! Note: the paper's table prints Sell-C-σ as `4m + 2n/C + P`, counting
//! the padding once even though padding occupies a cell in *both* `val`
//! and `col`; we report the actual cell counts (`2P`) and flag the
//! difference in EXPERIMENTS.md. The SlimSell < AL condition, Eq. (3),
//! is unaffected.

use slimsell_graph::CsrGraph;

use crate::structure::SellStructure;

/// Measured storage (in cells) of every representation for one graph at
/// one (C, σ) configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageComparison {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Chunk height used.
    pub c: usize,
    /// Sorting scope used.
    pub sigma: usize,
    /// Padding cells `P` of the Sell structure.
    pub padding: usize,
    /// Adjacency-list cells (`2m + n`).
    pub al: usize,
    /// CSR adjacency-matrix cells (`4m + n`).
    pub csr: usize,
    /// Sell-C-σ cells.
    pub sell_c_sigma: usize,
    /// SlimSell cells.
    pub slimsell: usize,
}

impl StorageComparison {
    /// Measures all representations for `g` at chunk height `C` and
    /// sorting scope `sigma`.
    pub fn measure<const C: usize>(g: &CsrGraph, sigma: usize) -> Self {
        let s = SellStructure::<C>::build(g, sigma);
        Self::from_structure(g, &s)
    }

    /// Measures using an already-built structure.
    pub fn from_structure<const C: usize>(g: &CsrGraph, s: &SellStructure<C>) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let nc = s.num_chunks();
        let p = s.padding_cells();
        Self {
            n,
            m,
            c: C,
            sigma: s.sigma(),
            padding: p,
            al: 2 * m + n,
            csr: 4 * m + n,
            sell_c_sigma: 2 * (2 * m + p) + 2 * nc,
            slimsell: 2 * m + p + 2 * nc,
        }
    }

    /// SlimSell size relative to Sell-C-σ (the ≈0.5 of §IV-E).
    pub fn slim_vs_sell(&self) -> f64 {
        self.slimsell as f64 / self.sell_c_sigma as f64
    }

    /// SlimSell size relative to AL (the ≈0.9–1.0 of Fig. 7).
    pub fn slim_vs_al(&self) -> f64 {
        self.slimsell as f64 / self.al as f64
    }

    /// Eq. (3): SlimSell beats AL iff `P < n(1 − 2/C)`.
    pub fn eq3_predicts_slim_smaller_than_al(&self) -> bool {
        // Compare in integer form to avoid float slop: P + 2n/C < n.
        (self.padding as f64) < self.n as f64 * (1.0 - 2.0 / self.c as f64)
    }

    /// Bytes (4 bytes per cell) for absolute-size plots.
    pub fn slimsell_bytes(&self) -> usize {
        self.slimsell * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::GraphBuilder;

    fn skewed() -> CsrGraph {
        let mut b = GraphBuilder::new(32);
        for v in 1..20u32 {
            b.edge(0, v);
        }
        for v in 20..31u32 {
            b.edge(v, v + 1);
        }
        b.build()
    }

    #[test]
    fn measured_matches_actual_structures() {
        use crate::matrix::ChunkMatrix;
        let g = skewed();
        for sigma in [1, 8, 32] {
            let cmp = StorageComparison::measure::<8>(&g, sigma);
            let slim = crate::matrix::SlimSellMatrix::<8>::build(&g, sigma);
            let sell = crate::matrix::SellCSigma::<8>::build(&g, sigma, 0.0);
            assert_eq!(cmp.slimsell, slim.storage_cells());
            assert_eq!(cmp.sell_c_sigma, sell.storage_cells());
        }
    }

    #[test]
    fn slimsell_roughly_halves_sell() {
        let g = skewed();
        let cmp = StorageComparison::measure::<8>(&g, 32);
        assert!(cmp.slim_vs_sell() < 0.6, "ratio {}", cmp.slim_vs_sell());
    }

    #[test]
    fn sorting_improves_slim_vs_al() {
        let g = skewed();
        let unsorted = StorageComparison::measure::<8>(&g, 1);
        let sorted = StorageComparison::measure::<8>(&g, 32);
        assert!(sorted.padding <= unsorted.padding);
        assert!(sorted.slim_vs_al() <= unsorted.slim_vs_al());
    }

    #[test]
    fn eq3_consistency() {
        let g = skewed();
        let cmp = StorageComparison::measure::<8>(&g, 32);
        // Eq. (3) prediction must agree with the direct comparison up to
        // the 2⌈n/C⌉ ≈ 2n/C approximation; verify the exact inequality.
        let exact = cmp.slimsell < cmp.al;
        let predicted = cmp.eq3_predicts_slim_smaller_than_al();
        // With n a multiple of C the two coincide exactly.
        assert_eq!(exact, predicted);
    }

    #[test]
    fn table3_formulas() {
        let g = skewed();
        let (n, m) = (g.num_vertices(), g.num_edges());
        let cmp = StorageComparison::measure::<8>(&g, 32);
        assert_eq!(cmp.al, 2 * m + n);
        assert_eq!(cmp.csr, 4 * m + n);
    }
}
