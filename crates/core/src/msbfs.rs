//! Multi-source BFS: `B` simultaneous traversals, vectorized over the
//! *source* dimension.
//!
//! The paper's conclusion suggests extending SlimSell to algorithms with
//! richer SIMD structure; multi-source BFS is the canonical one: instead
//! of `C` lanes covering `C` matrix rows, each vertex carries a `B`-lane
//! vector of tentative distances (one lane per source), and a single
//! sweep advances all `B` traversals at once (min-plus over the tropical
//! semiring, exactly Listing 6 with the lane axis transposed). This is
//! the algebraic analogue of MS-BFS and the building block for sampled
//! betweenness/closeness and diameter estimation.
//!
//! Work per iteration is `O(2m + P)` *regardless of B*, so batching
//! amortizes the structure traversal across sources.
//!
//! Each sweep runs tile-parallel over [`crate::tiling`] chunk tiles
//! (`C·B` values per chunk) writing disjoint slabs; outputs are
//! bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use slimsell_core::{multi_bfs, SlimSellMatrix};
//! use slimsell_graph::GraphBuilder;
//!
//! // Two simultaneous traversals of a path, one from each end.
//! let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
//! let m = SlimSellMatrix::<4>::build(&g, 4);
//! let out = multi_bfs::<_, 4, 2>(&m, &[0, 3]);
//! assert_eq!(out.dist[0], vec![0, 1, 2, 3]);
//! assert_eq!(out.dist[1], vec![3, 2, 1, 0]);
//! ```

use slimsell_graph::{VertexId, UNREACHABLE};
use slimsell_simd::SimdF32;

use crate::matrix::ChunkMatrix;
use crate::tiling::{ChunkTiling, Schedule};

/// Output of a multi-source run: one distance vector per source, in
/// original vertex ids.
#[derive(Clone, Debug)]
pub struct MultiBfsOutput<const B: usize> {
    /// `dist[b][v]` = hop distance from `roots[b]` to `v`.
    pub dist: Vec<Vec<u32>>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs `B` simultaneous BFS traversals over the Sell structure.
///
/// # Panics
/// Panics if any root is out of range.
pub fn multi_bfs<M, const C: usize, const B: usize>(
    matrix: &M,
    roots: &[VertexId; B],
) -> MultiBfsOutput<B>
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let n = s.n();
    let np = s.n_padded();
    // x[v*B + b] = tentative distance of v from source b.
    let mut cur = vec![f32::INFINITY; np * B];
    // Virtual padding rows look finished so their chunk can be skipped.
    for v in n..np {
        cur[v * B..(v + 1) * B].fill(0.0);
    }
    for (b, &r) in roots.iter().enumerate() {
        assert!((r as usize) < n, "root {r} out of range (n = {n})");
        let rp = s.perm().to_new(r) as usize;
        cur[rp * B + b] = 0.0;
    }
    let mut nxt = cur.clone();

    let nc = np / C;
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let cur_ref = &cur;
        let tiling = ChunkTiling::new(nc, Schedule::Dynamic);
        let tiles = tiling.split(C * B, &mut nxt);
        let changed = tiling.map_reduce(
            tiles,
            |t| {
                let mut tile_any = false;
                for (k, out) in t.data.chunks_mut(C * B).enumerate() {
                    let base = (t.c0 + k) * C;
                    // SlimWork analogue: all lanes of all rows finite.
                    if cur_ref[base * B..(base + C) * B].iter().all(|&x| x != f32::INFINITY) {
                        out.copy_from_slice(&cur_ref[base * B..(base + C) * B]);
                        continue;
                    }
                    let mut any = false;
                    for lane in 0..C {
                        let r = base + lane;
                        let mut acc = SimdF32::<B>::load(&cur_ref[r * B..]);
                        let before = acc;
                        for c in s.row_neighbors(r) {
                            let rhs = SimdF32::<B>::load(&cur_ref[c as usize * B..]);
                            acc = acc.min(rhs.add(SimdF32::one()));
                        }
                        any |= acc.any_ne(before);
                        acc.store(&mut out[lane * B..]);
                    }
                    tile_any |= any;
                }
                tile_any
            },
            || false,
            |a, b| a | b,
        );
        std::mem::swap(&mut cur, &mut nxt);
        if !changed || iterations > n {
            break;
        }
    }

    let perm = s.perm();
    let dist = (0..B)
        .map(|b| {
            (0..n)
                .map(|old| {
                    let v = cur[perm.to_new(old as VertexId) as usize * B + b];
                    if v.is_finite() {
                        v as u32
                    } else {
                        UNREACHABLE
                    }
                })
                .collect()
        })
        .collect();
    MultiBfsOutput { dist, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SlimSellMatrix;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{serial_bfs, GraphBuilder};

    #[test]
    fn matches_independent_bfs() {
        let g = kronecker(9, 6.0, KroneckerParams::GRAPH500, 4);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let roots: [u32; 4] = {
            let r = slimsell_graph::stats::sample_roots(&g, 4);
            [r[0], r[1 % r.len()], r[2 % r.len()], r[3 % r.len()]]
        };
        let out = multi_bfs::<_, 8, 4>(&m, &roots);
        for (b, &root) in roots.iter().enumerate() {
            assert_eq!(out.dist[b], serial_bfs(&g, root).dist, "source {b} (root {root})");
        }
    }

    #[test]
    fn duplicate_roots_allowed() {
        let g = GraphBuilder::new(6).edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 6);
        let out = multi_bfs::<_, 4, 2>(&m, &[0, 0]);
        assert_eq!(out.dist[0], out.dist[1]);
        assert_eq!(out.dist[0], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn iteration_count_is_max_eccentricity_plus_one() {
        let g = GraphBuilder::new(8).edges((0..7u32).map(|v| (v, v + 1))).build();
        let m = SlimSellMatrix::<4>::build(&g, 8);
        // Sources at both ends: eccentricities 7 and 7; middle source 4.
        let out = multi_bfs::<_, 4, 2>(&m, &[3, 4]);
        assert_eq!(out.iterations, 5); // max distance 4 (+1 convergence)
    }

    #[test]
    fn disconnected_sources() {
        let g = GraphBuilder::new(6).edges([(0, 1), (3, 4)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 6);
        let out = multi_bfs::<_, 4, 2>(&m, &[0, 3]);
        assert_eq!(out.dist[0][3], UNREACHABLE);
        assert_eq!(out.dist[1][0], UNREACHABLE);
        assert_eq!(out.dist[1][4], 1);
    }
}
