//! Multi-source BFS: `B` simultaneous traversals, vectorized over the
//! *source* dimension.
//!
//! The paper's conclusion suggests extending SlimSell to algorithms with
//! richer SIMD structure; multi-source BFS is the canonical one: instead
//! of `C` lanes covering `C` matrix rows, each vertex carries a `B`-lane
//! vector of tentative distances (one lane per source), and a single
//! sweep advances all `B` traversals at once (min-plus over the tropical
//! semiring, exactly Listing 6 with the lane axis transposed). This is
//! the algebraic analogue of MS-BFS and the building block for sampled
//! betweenness/closeness, diameter estimation — and batched query
//! serving ([`slimsell-serve`]'s admission queue coalesces concurrent
//! single-source requests into one `B`-lane sweep).
//!
//! Work per iteration is `O(2m + P)` *regardless of B* on a `B`-wide
//! SIMD unit, so batching amortizes the structure traversal across
//! sources.
//!
//! Like BFS/SSSP/PageRank, the sweeps ride the [`SweepMode`] substrate:
//! full-range sweeps, frontier-proportional worklist sweeps over the
//! chunk dependency graph of [`crate::worklist`], or (the default) the
//! adaptive controller of [`crate::sweep`]. The per-chunk change masks
//! are per *row* lane — bit `l` set iff any of row `l`'s `B` distance
//! lanes changed bit-wise — so the same lane-filtered dependency
//! expansion that gates single-source sweeps gates `B`-wide sweeps: a
//! dependent chunk re-runs only when it gathers a row whose lane group
//! changed, regardless of which of the `B` sources caused it. The
//! SlimWork analogue (skip a chunk when all `C·B` values are finite —
//! hop distances never improve once finite) applies in every mode.
//!
//! Each sweep runs tile-parallel over [`crate::tiling`] chunk tiles
//! (`C·B` values per chunk) or worklist slabs, writing disjoint slabs;
//! outputs are bit-identical at any thread count and in every sweep
//! mode.
//!
//! [`slimsell-serve`]: https://docs.rs/slimsell-serve
//!
//! # Example
//!
//! ```
//! use slimsell_core::{multi_bfs, SlimSellMatrix};
//! use slimsell_graph::GraphBuilder;
//!
//! // Two simultaneous traversals of a path, one from each end.
//! let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
//! let m = SlimSellMatrix::<4>::build(&g, 4);
//! let out = multi_bfs::<_, 4, 2>(&m, &[0, 3]);
//! assert_eq!(out.dist[0], vec![0, 1, 2, 3]);
//! assert_eq!(out.dist[1], vec![3, 2, 1, 0]);
//! assert!(out.completed);
//! ```

use std::sync::Arc;
use std::time::Instant;

use slimsell_graph::{VertexId, UNREACHABLE};
use slimsell_simd::prefetch_read;

use crate::counters::{IterStats, RunStats};
use crate::mask::VertexMask;
use crate::matrix::ChunkMatrix;
use crate::semiring::slice_bits_differ;
use crate::sweep::{resolve_sweep, AdaptiveController, ExecutedSweep, SweepConfig, SweepMode};
use crate::tiling::{ChunkTiling, Schedule, WorklistTiling};
use crate::worklist::{full_lane_mask, ActivationState};

/// Multi-source BFS options: sweep strategy, scheduling and an
/// optional vertex mask shared by all `B` traversals.
#[derive(Clone, Debug, Default)]
pub struct MsBfsOptions {
    /// Sweep strategy and chunk scheduling policy (defaults to the
    /// `SLIMSELL_SWEEP` env var; adaptive when unset). Distances are
    /// bit-identical in every mode.
    pub config: SweepConfig,
    /// Safety cap on iterations (defaults to `n + 1`, which min-plus
    /// hop relaxation can never exceed). A capped run reports
    /// [`MultiBfsOutput::completed`] `= false`.
    pub max_iterations: Option<usize>,
    /// Optional vertex mask applied to every source lane: all `B`
    /// traversals run in the induced subgraph (every root must be
    /// inside the mask; vertices outside stay [`UNREACHABLE`]).
    pub mask: Option<Arc<VertexMask>>,
}

impl MsBfsOptions {
    /// Sets the sweep mode, keeping the schedule (builder).
    #[must_use]
    pub fn sweep(mut self, sweep: SweepMode) -> Self {
        self.config.sweep = sweep;
        self
    }

    /// Sets the schedule, keeping the sweep mode (builder).
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Sets the full sweep configuration (builder).
    #[must_use]
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the vertex mask (builder).
    #[must_use]
    pub fn mask(mut self, mask: Option<Arc<VertexMask>>) -> Self {
        self.mask = mask;
        self
    }

    /// Migration shim for the pre-PR-10 `sweep` field.
    #[deprecated(note = "set `config.sweep` or use the `.sweep(..)` builder")]
    pub fn set_sweep(&mut self, sweep: SweepMode) {
        self.config.sweep = sweep;
    }

    /// Migration shim for the pre-PR-10 `schedule` field.
    #[deprecated(note = "set `config.schedule` or use the `.schedule(..)` builder")]
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.config.schedule = schedule;
    }
}

/// Output of a multi-source run: one distance vector per source, in
/// original vertex ids.
#[derive(Clone, Debug)]
pub struct MultiBfsOutput<const B: usize> {
    /// `dist[b][v]` = hop distance from `roots[b]` to `v`.
    pub dist: Vec<Vec<u32>>,
    /// Iterations executed (including the final no-change one).
    pub iterations: usize,
    /// Whether the fixpoint was reached. `false` only when the control
    /// callback of [`multi_bfs_while`] stopped the run early or the
    /// [`MsBfsOptions::max_iterations`] cap fired; distances of an
    /// incomplete run are the tentative state at the stopping point.
    pub completed: bool,
    /// Per-sweep statistics: sweep-mode trace, column steps, worklist
    /// sizes, activation probes, lane-slot utilization. Cells count
    /// `C·B` lane-slots per column step (each structure step feeds `C`
    /// rows × `B` sources); active cells count `B` slots per stored
    /// arc, so [`RunStats::lane_utilization`] measures the same
    /// padding-waste ratio as single-source BFS, per batch.
    pub stats: RunStats,
}

/// How many column steps ahead [`ms_chunk`] prefetches its gathers —
/// far enough to cover DRAM latency on the `B`-wide state, near enough
/// that the lines are still resident when the step arrives.
const MS_PREFETCH_STEPS: usize = 4;

/// One chunk of the `B`-wide min-plus sweep: per row lane, gather the
/// neighbors' `B`-lane distance vectors, fold `min(acc, rhs + 1)`,
/// store the chunk's `C·B` next values into `out`. Returns (changed
/// row-lane mask, column steps, active lane-slots, skipped).
///
/// The SlimWork analogue short-circuits a chunk whose `C·B` values are
/// all finite: hop distances never improve once finite (unlike
/// weighted SSSP labels), so the chunk is converged and its state is
/// forwarded verbatim — which also keeps the worklist invariant (`nxt
/// == cur` bit-for-bit off the worklist) intact when the chunk later
/// leaves the list.
#[inline]
fn ms_chunk<M, const C: usize, const B: usize>(
    matrix: &M,
    cur: &[f32],
    i: usize,
    out: &mut [f32],
    mask: Option<&VertexMask>,
) -> (u32, u64, u64, usize)
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let base = i * C;
    // A fully masked chunk is skipped exactly like a converged one:
    // its C·B state block is forwarded verbatim.
    if mask.is_some_and(|mk| mk.allowed_real(i) == 0)
        || cur[base * B..(base + C) * B].iter().all(|&x| x != f32::INFINITY)
    {
        out.copy_from_slice(&cur[base * B..(base + C) * B]);
        return (0, 0, 0, 1);
    }
    // Step-major walk: the column entries of step `k` are contiguous
    // (`col[cs[i] + k*C ..][..C]`), so the structure streams
    // sequentially and the gathers of a *future* step can be
    // prefetched while the current one computes — the `B`-wide state
    // is `B×` larger than single-source state, so these random reads
    // are the batch kernel's latency wall. Per row the neighbor fold
    // order is unchanged (ascending `k`), keeping outputs bit-identical
    // to the row-major walk.
    // The `B` source lanes of a row are contiguous, so the min-plus
    // fold is a plain fixed-trip lane loop the compiler autovectorizes
    // directly — deliberately NOT the `SimdF32` primitives here: their
    // per-op runtime backend dispatch is a non-inlinable call, and at
    // one dispatch per gathered operand it costs more than the vector
    // instructions it selects (the single-source engine solved the
    // same problem with whole-chunk backend kernels).
    let (cs, cl, col) = (s.cs(), s.cl(), s.col());
    let (start, steps) = (cs[i], cl[i] as usize);
    let mut acc = [[0.0f32; B]; C];
    for (lane, a) in acc.iter_mut().enumerate() {
        a.copy_from_slice(&cur[(base + lane) * B..(base + lane + 1) * B]);
    }
    for k in 0..steps {
        if k + MS_PREFETCH_STEPS < steps {
            for &c in &col[start + (k + MS_PREFETCH_STEPS) * C..][..C] {
                if c >= 0 {
                    prefetch_read(cur, c as usize * B);
                }
            }
        }
        let group = &col[start + k * C..][..C];
        for (lane, a) in acc.iter_mut().enumerate() {
            let c = group[lane];
            if c >= 0 {
                let rhs = &cur[c as usize * B..c as usize * B + B];
                for (av, &rv) in a.iter_mut().zip(rhs) {
                    *av = av.min(rv + 1.0);
                }
            }
        }
    }
    // Under a partial mask, patch each masked-out row's B-lane group
    // back to its previous state before the store/change test, so
    // masked rows stay exactly at rest in every source lane.
    if let Some(mk) = mask {
        let allowed = mk.allowed(i);
        if allowed != full_lane_mask(C) {
            for (lane, a) in acc.iter_mut().enumerate() {
                if allowed & (1 << lane) == 0 {
                    a.copy_from_slice(&cur[(base + lane) * B..(base + lane + 1) * B]);
                }
            }
        }
    }
    let mut changed_mask = 0u32;
    for (lane, a) in acc.iter().enumerate() {
        out[lane * B..(lane + 1) * B].copy_from_slice(a);
        let r = base + lane;
        // Exact bit-wise per-row change detection: the row's mask bit
        // feeds the lane-filtered dependency expansion, so it must
        // match the byte-equality contract of the determinism suite.
        if slice_bits_differ(&cur[r * B..(r + 1) * B], &out[lane * B..(lane + 1) * B]) {
            changed_mask |= 1 << lane;
        }
    }
    (changed_mask, steps as u64, s.chunk_arcs()[i] * B as u64, 0)
}

/// Runs `B` simultaneous BFS traversals over the Sell structure with
/// the default options (env-selected sweep mode, dynamic scheduling).
///
/// # Panics
/// Panics if any root is out of range.
pub fn multi_bfs<M, const C: usize, const B: usize>(
    matrix: &M,
    roots: &[VertexId; B],
) -> MultiBfsOutput<B>
where
    M: ChunkMatrix<C>,
{
    multi_bfs_with(matrix, roots, &MsBfsOptions::default())
}

/// Runs `B` simultaneous BFS traversals under the given sweep policy.
///
/// # Panics
/// Panics if any root is out of range.
pub fn multi_bfs_with<M, const C: usize, const B: usize>(
    matrix: &M,
    roots: &[VertexId; B],
    opts: &MsBfsOptions,
) -> MultiBfsOutput<B>
where
    M: ChunkMatrix<C>,
{
    multi_bfs_while(matrix, roots, opts, |_| true)
}

/// Runs `B` simultaneous BFS traversals with a per-iteration control
/// hook: before each sweep, `keep_going` is called with the 1-based
/// index of the sweep about to execute; returning `false` stops the
/// run gracefully before that sweep ([`MultiBfsOutput::completed`]
/// `= false`, distances reflect the state reached so far). This is the
/// abort point the serving layer uses for per-query iteration budgets
/// and batch-wide cancellation — the check is between sweeps, so a
/// stopped run never leaves a sweep half-executed.
///
/// # Panics
/// Panics if any root is out of range.
pub fn multi_bfs_while<M, const C: usize, const B: usize>(
    matrix: &M,
    roots: &[VertexId; B],
    opts: &MsBfsOptions,
    mut keep_going: impl FnMut(usize) -> bool,
) -> MultiBfsOutput<B>
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let n = s.n();
    let np = s.n_padded();
    let mask = opts.mask.as_deref();
    if let Some(mk) = mask {
        mk.check_layout(s);
    }
    // x[v*B + b] = tentative distance of v from source b.
    let mut cur = vec![f32::INFINITY; np * B];
    // Virtual padding rows look finished so their chunk can be skipped.
    for v in n..np {
        cur[v * B..(v + 1) * B].fill(0.0);
    }
    for (b, &r) in roots.iter().enumerate() {
        assert!((r as usize) < n, "root {r} out of range (n = {n})");
        let rp = s.perm().to_new(r) as usize;
        assert!(
            mask.is_none_or(|mk| mk.contains(rp)),
            "root {r} (source lane {b}) is not in the vertex mask"
        );
        cur[rp * B + b] = 0.0;
    }
    let mut nxt = cur.clone();

    let nc = np / C;
    let tiling = ChunkTiling::new(nc, opts.config.schedule);
    let mut act = ActivationState::new();
    let mut ctl = AdaptiveController::new();
    let mut pending: Vec<(u32, u32)> = Vec::new();
    let mut full_changed: Vec<u32> = Vec::new();
    if opts.config.sweep.uses_worklist() {
        // Only the root rows differ from the all-∞ rest state, so only
        // chunks gathering a root's row lane can produce a different
        // output. Duplicate root chunks merge their lane masks in
        // `ActivationState::seed`.
        for &r in roots.iter() {
            let rp = s.perm().to_new(r) as usize;
            pending.push(((rp / C) as u32, 1u32 << (rp % C)));
        }
    }
    // Adaptive full sweeps must track changes to re-seed the worklist.
    let track = opts.config.sweep == SweepMode::Adaptive;

    let mut stats = RunStats::default();
    let max_iters = opts.max_iterations.unwrap_or(n + 1);
    let mut iterations = 0usize;
    let mut completed = false;
    loop {
        if !keep_going(iterations + 1) {
            break;
        }
        iterations += 1;
        let t0 = Instant::now();
        // Short-circuit before touching `dep_graph()`: pure full-sweep
        // runs must not force the lazy dependency-graph build.
        let (exec, seeded) = match opts.config.sweep {
            SweepMode::Full => (ExecutedSweep::Full, None),
            _ => resolve_sweep(
                opts.config.sweep,
                &mut ctl,
                &mut act,
                s.dep_graph(),
                &mut pending,
                nc,
                mask,
            ),
        };
        let cur_ref = &cur;
        let (changed, col_steps, active_cells, skipped, wl_len, changed_chunks);
        match exec {
            ExecutedSweep::Full if track => {
                full_changed.clear();
                full_changed.resize(nc, 0);
                let tiles: Vec<_> = tiling
                    .split(C * B, &mut nxt)
                    .into_iter()
                    .zip(tiling.split(1, &mut full_changed))
                    .collect();
                (changed, col_steps, active_cells, skipped) = tiling.map_reduce(
                    tiles,
                    |(t, f)| {
                        let mut acc = (false, 0u64, 0u64, 0usize);
                        for (k, (out, flag)) in
                            t.data.chunks_mut(C * B).zip(f.data.iter_mut()).enumerate()
                        {
                            let (mask, steps, arcs, skip) =
                                ms_chunk::<M, C, B>(matrix, cur_ref, t.c0 + k, out, mask);
                            *flag = mask;
                            acc.0 |= mask != 0;
                            acc.1 += steps;
                            acc.2 += arcs;
                            acc.3 += skip;
                        }
                        acc
                    },
                    || (false, 0, 0, 0),
                    |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3),
                );
                pending.clear();
                pending.extend(
                    full_changed
                        .iter()
                        .enumerate()
                        .filter(|(_, &f)| f != 0)
                        .map(|(i, &f)| (i as u32, f)),
                );
                wl_len = nc;
                changed_chunks = pending.len();
            }
            ExecutedSweep::Full => {
                let tiles = tiling.split(C * B, &mut nxt);
                (changed, col_steps, active_cells, skipped) = tiling.map_reduce(
                    tiles,
                    |t| {
                        let mut acc = (false, 0u64, 0u64, 0usize);
                        for (k, out) in t.data.chunks_mut(C * B).enumerate() {
                            let (mask, steps, arcs, skip) =
                                ms_chunk::<M, C, B>(matrix, cur_ref, t.c0 + k, out, mask);
                            acc.0 |= mask != 0;
                            acc.1 += steps;
                            acc.2 += arcs;
                            acc.3 += skip;
                        }
                        acc
                    },
                    || (false, 0, 0, 0),
                    |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3),
                );
                wl_len = nc;
                changed_chunks = 0;
            }
            ExecutedSweep::Worklist => {
                let (ids, flags) = act.split();
                wl_len = ids.len();
                let wt = WorklistTiling::new(ids, opts.config.schedule);
                let slabs = wt.split_slab(C * B, &mut nxt, flags);
                (changed, col_steps, active_cells, skipped) = wt.map_reduce(
                    slabs,
                    |sl| {
                        let base0 = sl.ids[0] as usize * (C * B);
                        let mut acc = (false, 0u64, 0u64, 0usize);
                        for (k, &id) in sl.ids.iter().enumerate() {
                            let i = id as usize;
                            let off = i * (C * B) - base0;
                            let out = &mut sl.data[off..off + C * B];
                            let (mask, steps, arcs, skip) =
                                ms_chunk::<M, C, B>(matrix, cur_ref, i, out, mask);
                            sl.changed[k] = mask;
                            acc.0 |= mask != 0;
                            acc.1 += steps;
                            acc.2 += arcs;
                            acc.3 += skip;
                        }
                        acc
                    },
                    || (false, 0, 0, 0),
                    |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3),
                );
                changed_chunks = act.collect_changed_into(&mut pending);
            }
        }
        stats.iters.push(IterStats {
            elapsed: t0.elapsed(),
            sweep_mode: exec,
            chunks_processed: wl_len - skipped,
            chunks_skipped: skipped,
            chunks_not_on_worklist: nc - wl_len,
            worklist_len: wl_len,
            activations: seeded.unwrap_or(0),
            changed_chunks,
            col_steps,
            cells: col_steps * (C * B) as u64,
            active_cells,
            changed,
            ..Default::default()
        });
        std::mem::swap(&mut cur, &mut nxt);
        if !changed {
            completed = true;
            break;
        }
        if iterations >= max_iters {
            break;
        }
    }

    let perm = s.perm();
    let dist = (0..B)
        .map(|b| {
            (0..n)
                .map(|old| {
                    let v = cur[perm.to_new(old as VertexId) as usize * B + b];
                    if v.is_finite() {
                        v as u32
                    } else {
                        UNREACHABLE
                    }
                })
                .collect()
        })
        .collect();
    MultiBfsOutput { dist, iterations, completed, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SlimSellMatrix;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{serial_bfs, GraphBuilder};

    fn opts(sweep: SweepMode) -> MsBfsOptions {
        MsBfsOptions::default().sweep(sweep)
    }

    #[test]
    fn matches_independent_bfs() {
        let g = kronecker(9, 6.0, KroneckerParams::GRAPH500, 4);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let roots: [u32; 4] = {
            let r = slimsell_graph::stats::sample_roots(&g, 4);
            [r[0], r[1 % r.len()], r[2 % r.len()], r[3 % r.len()]]
        };
        for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
            let out = multi_bfs_with::<_, 8, 4>(&m, &roots, &opts(sweep));
            assert!(out.completed, "{sweep:?}");
            for (b, &root) in roots.iter().enumerate() {
                assert_eq!(
                    out.dist[b],
                    serial_bfs(&g, root).dist,
                    "{sweep:?} source {b} (root {root})"
                );
            }
        }
    }

    #[test]
    fn duplicate_roots_allowed() {
        let g = GraphBuilder::new(6).edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 6);
        let out = multi_bfs::<_, 4, 2>(&m, &[0, 0]);
        assert_eq!(out.dist[0], out.dist[1]);
        assert_eq!(out.dist[0], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn iteration_count_is_max_eccentricity_plus_one() {
        let g = GraphBuilder::new(8).edges((0..7u32).map(|v| (v, v + 1))).build();
        let m = SlimSellMatrix::<4>::build(&g, 8);
        for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
            // Sources at positions 3 and 4: max distance 4 (+1 convergence).
            let out = multi_bfs_with::<_, 4, 2>(&m, &[3, 4], &opts(sweep));
            assert_eq!(out.iterations, 5, "{sweep:?}");
            assert_eq!(out.stats.num_iterations(), 5, "{sweep:?}");
        }
    }

    #[test]
    fn disconnected_sources() {
        let g = GraphBuilder::new(6).edges([(0, 1), (3, 4)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 6);
        let out = multi_bfs::<_, 4, 2>(&m, &[0, 3]);
        assert_eq!(out.dist[0][3], UNREACHABLE);
        assert_eq!(out.dist[1][0], UNREACHABLE);
        assert_eq!(out.dist[1][4], 1);
    }

    #[test]
    fn all_sweep_modes_bit_identical() {
        // The worklist/adaptive sweeps must be pure work-avoidance
        // transformations: same distances, same sweep count, never more
        // column steps than the full sweep.
        let g = kronecker(8, 5.0, KroneckerParams::GRAPH500, 11);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let roots: [u32; 8] = core::array::from_fn(|i| (i * 17 % g.num_vertices()) as u32);
        let full = multi_bfs_with::<_, 8, 8>(&m, &roots, &opts(SweepMode::Full));
        for sweep in [SweepMode::Worklist, SweepMode::Adaptive] {
            let out = multi_bfs_with::<_, 8, 8>(&m, &roots, &opts(sweep));
            assert_eq!(out.dist, full.dist, "{sweep:?} distances diverged");
            assert_eq!(out.iterations, full.iterations, "{sweep:?} sweep count diverged");
            assert!(
                out.stats.total_col_steps() <= full.stats.total_col_steps(),
                "{sweep:?} did more work than the full sweep"
            );
        }
    }

    #[test]
    fn worklist_reduces_work_on_a_path() {
        // A long path with both sources near one end: the B-wide
        // frontier is a thin wavefront, so worklist sweeps must execute
        // far fewer column steps while agreeing bit-for-bit.
        let n = 512u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let m = SlimSellMatrix::<4>::build(&g, 1);
        let full = multi_bfs_with::<_, 4, 2>(&m, &[0, 1], &opts(SweepMode::Full));
        let wl = multi_bfs_with::<_, 4, 2>(&m, &[0, 1], &opts(SweepMode::Worklist));
        assert_eq!(wl.dist, full.dist);
        assert_eq!(wl.iterations, full.iterations);
        assert!(
            wl.stats.total_col_steps() < full.stats.total_col_steps() / 4,
            "worklist {} not ≪ full {}",
            wl.stats.total_col_steps(),
            full.stats.total_col_steps()
        );
        assert!(wl.stats.total_not_on_worklist() > 0);
        assert!(wl.stats.total_activations() > 0);
        // Counter coherence per sweep: C·B lane-slots per column step.
        let nc = m.structure().num_chunks();
        for it in &wl.stats.iters {
            assert_eq!(it.chunks_processed + it.chunks_skipped, it.worklist_len);
            assert_eq!(it.chunks_not_on_worklist, nc - it.worklist_len);
            assert_eq!(it.cells, it.col_steps * 8);
            assert_eq!(it.sweep_mode, ExecutedSweep::Worklist);
        }
        // Adaptive stays in the worklist regime on a wavefront.
        let ad = multi_bfs_with::<_, 4, 2>(&m, &[0, 1], &opts(SweepMode::Adaptive));
        assert_eq!(ad.stats.mode_switches(), 0);
        assert_eq!(ad.stats.total_col_steps(), wl.stats.total_col_steps());
    }

    #[test]
    fn stats_measure_lane_utilization() {
        let g = kronecker(8, 6.0, KroneckerParams::GRAPH500, 5);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let out = multi_bfs::<_, 8, 4>(&m, &[0, 1, 2, 3]);
        assert!(out.completed);
        assert!(out.stats.total_cells() > 0);
        let u = out.stats.lane_utilization();
        assert!(u > 0.0 && u <= 1.0, "lane utilization {u} out of range");
        assert_eq!(out.stats.total_cells(), out.stats.total_col_steps() * 32);
    }

    #[test]
    fn control_hook_stops_runs_gracefully() {
        let g = GraphBuilder::new(64).edges((0..63u32).map(|v| (v, v + 1))).build();
        let m = SlimSellMatrix::<4>::build(&g, 1);
        for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
            // Budget of 2 sweeps: exactly 2 execute, run is incomplete.
            let out = multi_bfs_while::<_, 4, 2>(&m, &[0, 0], &opts(sweep), |it| it <= 2);
            assert_eq!(out.iterations, 2, "{sweep:?}");
            assert!(!out.completed, "{sweep:?}");
            assert_eq!(out.stats.num_iterations(), 2, "{sweep:?}");
            // Two sweeps reach hop distance 2; the rest is tentative ∞.
            assert_eq!(out.dist[0][..3], [0, 1, 2]);
            assert_eq!(out.dist[0][3], UNREACHABLE);

            // Stopping before the first sweep leaves only the roots.
            let out = multi_bfs_while::<_, 4, 2>(&m, &[5, 9], &opts(sweep), |_| false);
            assert_eq!(out.iterations, 0, "{sweep:?}");
            assert!(!out.completed, "{sweep:?}");
            assert_eq!(out.dist[0][5], 0);
            assert_eq!(out.dist[1][9], 0);
            assert_eq!(out.dist[0][6], UNREACHABLE);
        }
    }
}
