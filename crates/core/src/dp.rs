//! The `DP` transformation: distances → parents (§II-C).
//!
//! "For each vertex v, the neighbor w of v with the distance
//! d_w = d_v − 1 must be found" — `O(m + n)` work, `O(1)` depth
//! (embarrassingly parallel over vertices). Needed by the tropical,
//! real and boolean semirings, whose BFS produces only distances; the
//! paper's `DP` / `No-DP` experiment axis (§IV) measures exactly this
//! post-pass.

use rayon::prelude::*;
use slimsell_graph::{CsrGraph, VertexId, UNREACHABLE};

/// Derives a valid parent array from hop distances.
///
/// `dist` must be BFS distances from `root` on `g` (hop metric); any
/// neighbor one hop closer is a valid parent, and the lowest-id such
/// neighbor is chosen for determinism.
///
/// # Panics
/// Panics if `dist.len() != g.num_vertices()`.
pub fn dp_transform(g: &CsrGraph, dist: &[u32], root: VertexId) -> Vec<VertexId> {
    assert_eq!(dist.len(), g.num_vertices(), "distance vector length mismatch");
    (0..g.num_vertices() as VertexId)
        .into_par_iter()
        .map(|v| {
            let dv = dist[v as usize];
            if dv == UNREACHABLE {
                UNREACHABLE
            } else if dv == 0 {
                debug_assert_eq!(v, root, "non-root vertex at distance 0");
                v
            } else {
                g.neighbors(v)
                    .iter()
                    .copied()
                    .find(|&w| dist[w as usize] == dv - 1)
                    .unwrap_or_else(|| panic!("no parent for vertex {v} at distance {dv}: dist is not a BFS distance vector"))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::{serial_bfs, validate_parents, GraphBuilder};

    #[test]
    fn parents_valid_on_sample() {
        let g = GraphBuilder::new(8)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (6, 7)])
            .build();
        let r = serial_bfs(&g, 0);
        let p = dp_transform(&g, &r.dist, 0);
        validate_parents(&g, 0, &r.dist, &p).unwrap();
        assert_eq!(p[6], UNREACHABLE);
        assert_eq!(p[0], 0);
    }

    #[test]
    fn deterministic_lowest_id_parent() {
        // Vertex 3 has two valid parents (1 and 2); expect 1.
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build();
        let r = serial_bfs(&g, 0);
        let p = dp_transform(&g, &r.dist, 0);
        assert_eq!(p[3], 1);
    }

    #[test]
    #[should_panic(expected = "not a BFS distance vector")]
    fn rejects_invalid_distances() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        dp_transform(&g, &[0, 5, 1], 0);
    }
}
