//! Per-iteration and per-run statistics.
//!
//! Every experiment in §IV is either a per-iteration curve (Figs. 1, 5d,
//! 6c/e, 8, 9, 10) or an aggregate over iterations (Figs. 5a-c, 6a/b/d,
//! Table V), so the engine records both wall time and the work measures
//! the complexity analysis of §III uses (processed cells = `C · cl`
//! summed over non-skipped chunks).

use std::time::Duration;

use crate::sweep::ExecutedSweep;

/// Statistics for one BFS iteration (one frontier expansion).
///
/// Chunk accounting distinguishes three disjoint fates so the analysis
/// layer can attribute savings correctly: `chunks_processed` (MV
/// executed) + `chunks_skipped` (visited, then skipped by the SlimWork
/// test) = `worklist_len` (chunks visited at all), and
/// `chunks_not_on_worklist` counts the rest — excluded by the worklist
/// engine without even a skip test (always 0 in full-sweep iterations,
/// where `worklist_len` is the whole chunk range).
///
/// Every counter is `Option`-free: the [`sweep_mode`](Self::sweep_mode)
/// tag says which dispatcher ran, so "full sweep" (`worklist_len ==
/// n_chunks` *because everything was visited*) can no longer be
/// confused with a worklist iteration whose list happened to span the
/// chunk range — previously the two were indistinguishable in logs.
#[derive(Clone, Copy, Debug, Default)]
pub struct IterStats {
    /// Wall time of the iteration.
    pub elapsed: Duration,
    /// Which dispatcher executed this iteration (full-range sweep or
    /// active-worklist sweep). In pure [`SweepMode::Full`]/
    /// [`SweepMode::Worklist`](crate::SweepMode::Worklist) runs the tag
    /// is constant; [`SweepMode::Adaptive`](crate::SweepMode::Adaptive)
    /// runs interleave both — the per-iteration decision trace.
    ///
    /// Direction-optimized top-down iterations are not SpMV sweeps at
    /// all: they carry the default `Full` tag with `worklist_len == 0`,
    /// which distinguishes them from real full sweeps (whose
    /// `worklist_len` is the whole chunk range) when aggregating the
    /// trace over a [`run_diropt`](crate::dirop::run_diropt) run.
    ///
    /// [`SweepMode::Full`]: crate::SweepMode::Full
    pub sweep_mode: ExecutedSweep,
    /// Chunks processed (MV executed).
    pub chunks_processed: usize,
    /// Chunks visited but skipped by the SlimWork test (§III-C).
    pub chunks_skipped: usize,
    /// Chunks excluded without any visit because they were not on the
    /// active worklist (0 in full-sweep mode).
    pub chunks_not_on_worklist: usize,
    /// Chunks visited this iteration — the worklist size, or the whole
    /// chunk range in full-sweep mode.
    pub worklist_len: usize,
    /// Dependent-expansion probes performed while building the *next*
    /// worklist — the dependency fan-out actually paid, after per-lane
    /// filtering (a dependency edge only counts when the seed's changed
    /// lane mask intersects the edge's lane mask, so this is ≤ the
    /// chunk-granular `Σ |dependents(j)|`); 0 in full-sweep mode.
    pub activations: u64,
    /// Chunks whose output state changed this iteration under the exact
    /// bit-wise test (tracked in worklist iterations and in adaptive
    /// mode's tracked full sweeps; 0 in pure full-sweep runs, which
    /// never pay for change detection).
    pub changed_chunks: usize,
    /// Column steps executed (Σ `cl[i]` over processed chunks).
    pub col_steps: u64,
    /// Matrix cells touched (= `C ·` col_steps): the work measure `W` of
    /// §III-A.
    pub cells: u64,
    /// Non-padding cells (stored arcs) among the processed chunks — the
    /// numerator of lane utilization: `active_cells / cells` is the
    /// fraction of SIMD lane-slots that carried a real arc rather than
    /// `-1` padding. Measured by the BFS family (BFS, SlimChunk,
    /// bottom-up dir-opt steps); 0 where not measured (SSSP and
    /// PageRank sweeps, top-down steps).
    pub active_cells: u64,
    /// Lane probes paid by the direction-optimized drivers to recover
    /// the sparse frontier after a bottom-up step. After a worklist
    /// sweep the recovery walks only the set bits of the harvested
    /// `(chunk, changed-lane mask)` pairs (one probe per discovered
    /// vertex), where it used to rescan every lane of every worklist
    /// chunk (`worklist_len · C` probes); full-sweep recovery still
    /// scans the padded range. 0 outside direction-optimized bottom-up
    /// iterations.
    pub frontier_probes: u64,
    /// Whether any output changed (frontier non-empty).
    pub changed: bool,
}

/// Statistics for a whole BFS run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// One entry per iteration, in order.
    pub iters: Vec<IterStats>,
}

impl RunStats {
    /// Number of iterations executed (including the final no-change one).
    pub fn num_iterations(&self) -> usize {
        self.iters.len()
    }

    /// Total wall time across iterations.
    pub fn total_time(&self) -> Duration {
        self.iters.iter().map(|i| i.elapsed).sum()
    }

    /// Total cells processed — the measured work `W` compared against the
    /// §III-A bounds.
    pub fn total_cells(&self) -> u64 {
        self.iters.iter().map(|i| i.cells).sum()
    }

    /// Total non-padding cells among processed chunks (lane-utilization
    /// numerator; see [`IterStats::active_cells`]).
    pub fn total_active_cells(&self) -> u64 {
        self.iters.iter().map(|i| i.active_cells).sum()
    }

    /// Measured SIMD lane utilization: the fraction of touched cells
    /// that held a stored arc rather than `-1` padding
    /// (`total_active_cells / total_cells`). Returns 1.0 for runs that
    /// touched no cells, so a degenerate run never reads as wasted
    /// lanes. Comparable to the simt cost model's `simd_efficiency`.
    pub fn lane_utilization(&self) -> f64 {
        let cells = self.total_cells();
        if cells == 0 {
            1.0
        } else {
            self.total_active_cells() as f64 / cells as f64
        }
    }

    /// Total chunks skipped by SlimWork.
    pub fn total_skipped(&self) -> usize {
        self.iters.iter().map(|i| i.chunks_skipped).sum()
    }

    /// Total column steps executed (`total_cells / C`).
    pub fn total_col_steps(&self) -> u64 {
        self.iters.iter().map(|i| i.col_steps).sum()
    }

    /// Total chunks visited across iterations (worklist sizes summed;
    /// `iterations × n_chunks` in full-sweep mode).
    pub fn total_visited(&self) -> u64 {
        self.iters.iter().map(|i| i.worklist_len as u64).sum()
    }

    /// Total chunks excluded by the worklist engine without a visit.
    pub fn total_not_on_worklist(&self) -> u64 {
        self.iters.iter().map(|i| i.chunks_not_on_worklist as u64).sum()
    }

    /// Total activation probes paid building worklists.
    pub fn total_activations(&self) -> u64 {
        self.iters.iter().map(|i| i.activations).sum()
    }

    /// Total lane probes paid recovering sparse frontiers after
    /// bottom-up steps (see [`IterStats::frontier_probes`]).
    pub fn total_frontier_probes(&self) -> u64 {
        self.iters.iter().map(|i| i.frontier_probes).sum()
    }

    /// Per-iteration wall times in seconds (figure series).
    pub fn iter_seconds(&self) -> Vec<f64> {
        self.iters.iter().map(|i| i.elapsed.as_secs_f64()).collect()
    }

    /// How many times consecutive iterations ran under different sweep
    /// dispatchers — the adaptive controller's switching trace (0 in
    /// pure full/worklist runs, and in adaptive runs that never left
    /// their initial regime).
    pub fn mode_switches(&self) -> usize {
        self.iters.windows(2).filter(|w| w[0].sweep_mode != w[1].sweep_mode).count()
    }

    /// Iterations executed as full-range sweeps.
    pub fn full_sweep_iterations(&self) -> usize {
        self.iters.iter().filter(|i| i.sweep_mode == ExecutedSweep::Full).count()
    }

    /// Iterations executed as worklist sweeps.
    pub fn worklist_sweep_iterations(&self) -> usize {
        self.iters.iter().filter(|i| i.sweep_mode == ExecutedSweep::Worklist).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut s = RunStats::default();
        s.iters.push(IterStats {
            elapsed: Duration::from_millis(2),
            sweep_mode: ExecutedSweep::Worklist,
            chunks_processed: 4,
            chunks_skipped: 1,
            chunks_not_on_worklist: 3,
            worklist_len: 5,
            activations: 12,
            changed_chunks: 2,
            col_steps: 10,
            cells: 80,
            active_cells: 60,
            frontier_probes: 7,
            changed: true,
        });
        s.iters.push(IterStats {
            elapsed: Duration::from_millis(3),
            sweep_mode: ExecutedSweep::Full,
            chunks_processed: 2,
            chunks_skipped: 3,
            chunks_not_on_worklist: 3,
            worklist_len: 5,
            activations: 4,
            changed_chunks: 0,
            col_steps: 4,
            cells: 32,
            active_cells: 24,
            frontier_probes: 5,
            changed: false,
        });
        assert_eq!(s.num_iterations(), 2);
        assert_eq!(s.total_time(), Duration::from_millis(5));
        assert_eq!(s.total_cells(), 112);
        assert_eq!(s.total_skipped(), 4);
        assert_eq!(s.total_col_steps(), 14);
        assert_eq!(s.total_visited(), 10);
        assert_eq!(s.total_not_on_worklist(), 6);
        assert_eq!(s.total_activations(), 16);
        assert_eq!(s.total_frontier_probes(), 12);
        assert_eq!(s.total_active_cells(), 84);
        assert!((s.lane_utilization() - 84.0 / 112.0).abs() < 1e-12);
        assert_eq!(RunStats::default().lane_utilization(), 1.0);
        assert_eq!(s.iter_seconds().len(), 2);
        assert_eq!(s.mode_switches(), 1);
        assert_eq!(s.full_sweep_iterations(), 1);
        assert_eq!(s.worklist_sweep_iterations(), 1);
    }

    #[test]
    fn mode_switches_counts_transitions_not_iterations() {
        let mut s = RunStats::default();
        assert_eq!(s.mode_switches(), 0);
        let iter = |m| IterStats { sweep_mode: m, ..Default::default() };
        for m in [
            ExecutedSweep::Worklist,
            ExecutedSweep::Worklist,
            ExecutedSweep::Full,
            ExecutedSweep::Full,
            ExecutedSweep::Worklist,
        ] {
            s.iters.push(iter(m));
        }
        assert_eq!(s.mode_switches(), 2);
        assert_eq!(s.full_sweep_iterations(), 2);
        assert_eq!(s.worklist_sweep_iterations(), 3);
    }
}
