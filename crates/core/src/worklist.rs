//! Chunk dependency graph and epoch-stamped activation worklists — the
//! substrate of frontier-proportional BFS sweeps.
//!
//! SlimWork (§III-C) skips *finished* chunks, but a full sweep still
//! visits every chunk every iteration just to run the skip test, so a
//! high-diameter graph pays `O(n_chunks × D)` even when the frontier is
//! a thin wavefront. The worklist engine makes the per-iteration cost
//! proportional to the active frontier instead:
//!
//! 1. [`ChunkDepGraph`] is computed **once per graph** at structure
//!    build time: a CSR at chunk granularity where `dependents(j)` lists
//!    every chunk whose column indices fall in chunk `j`'s row range —
//!    i.e. the chunks that must re-run when `j`'s vertices change —
//!    plus `j` itself (a chunk whose own state changed must re-run its
//!    post-processing, and its double-buffered slots are stale). Each
//!    dependency edge carries a **source-lane mask**: bit `l` is set iff
//!    the dependent actually gathers from row `j·C + l`, so a change
//!    confined to other lanes need not activate it.
//! 2. [`ActivationState`] turns "which chunks changed last iteration,
//!    and in which lanes" into the next iteration's sorted,
//!    duplicate-free worklist with an epoch-stamped activation array:
//!    no hashing, no atomics, `O(Σ |dependents(changed)|)` per
//!    iteration, deterministic at any thread count. An edge whose lane
//!    mask misses the changed-lane mask is filtered out — the
//!    lane-granular precision lever on top of chunk-granular seeds.
//!
//! Correctness rests on one invariant the engine maintains: outside the
//! worklist, the next-state buffer already equals the current state
//! bit-for-bit (a chunk leaves the worklist only after an iteration in
//! which its output did not change), so untouched chunks need no
//! copy-forward and the swap at the end of the iteration is sound. The
//! lane filter preserves it: a dependent that gathers none of the
//! changed rows would recompute bit-identical output, so skipping its
//! activation changes nothing observable.
//!
//! # Example
//!
//! ```
//! use slimsell_core::worklist::{full_lane_mask, ActivationState};
//! use slimsell_core::SellStructure;
//! use slimsell_graph::GraphBuilder;
//!
//! // A path 0-1-…-7 with C = 4: chunk 0 holds rows 0..4, chunk 1 rows
//! // 4..8. Each chunk reads one row of the other, so each depends on
//! // both (self edges included).
//! let g = GraphBuilder::new(8).edges((0..7u32).map(|v| (v, v + 1))).build();
//! let s = SellStructure::<4>::build(&g, 1);
//! let dep = s.dep_graph();
//! assert_eq!(dep.dependents(0), &[0, 1]);
//! assert_eq!(dep.dependents(1), &[0, 1]);
//!
//! // Seeding all lanes of chunk 0 activates both; duplicate seeds are
//! // folded up front, duplicate dependents by the epoch stamps.
//! let mut act = ActivationState::new();
//! let full = full_lane_mask(4);
//! act.seed(dep, &mut vec![(0, full), (0, full)], None);
//! assert_eq!(act.worklist(), &[0, 1]);
//!
//! // Chunk 1 gathers only row 3 of chunk 0 (the 0-4 path edge is row
//! // 4's column 3 … row 3's column 4): a change confined to lane 0
//! // re-activates chunk 0 (self edge, all lanes) but not chunk 1.
//! act.seed(dep, &mut vec![(0, 0b0001)], None);
//! assert_eq!(act.worklist(), &[0]);
//! ```

/// All-lanes mask for chunk height `lanes` (`lanes ≤ 32`; the engine's
/// `SUPPORTED_LANES` max out at 32, matching the `u32` mask width).
#[inline]
pub fn full_lane_mask(lanes: usize) -> u32 {
    if lanes >= 32 {
        u32::MAX
    } else {
        (1u32 << lanes) - 1
    }
}

/// Chunk-granularity dependency graph in CSR form: for each chunk `j`,
/// the sorted list of chunks that gather from `j`'s row range (its
/// *dependents*, the chunks that must re-run when `j`'s vertices
/// change), always including `j` itself. Each edge carries the mask of
/// `j`'s lanes the dependent actually reads (the self edge is all
/// lanes: any local change requires re-running post-processing).
///
/// Built once per [`crate::SellStructure`]; see the module docs for the
/// role it plays in the worklist engine.
#[derive(Clone, Debug)]
pub struct ChunkDepGraph {
    /// CSR offsets, length `nc + 1`.
    offsets: Vec<usize>,
    /// Dependent chunk ids, ascending within each chunk's slice.
    targets: Vec<u32>,
    /// Per-edge source-lane masks, parallel to `targets`: bit `l` of
    /// `masks[e]` means "edge `e`'s dependent gathers from source lane
    /// `l`".
    masks: Vec<u32>,
}

impl ChunkDepGraph {
    /// Builds the dependency graph from the raw chunk-structure arrays
    /// (`cs`/`cl` chunk offsets and lengths, `col` column indices with
    /// `-1` padding markers, `lanes` = the chunk height `C`).
    ///
    /// Work is `O(2m + P + nc)`: every cell is visited once per pass
    /// (two passes) and per-reader duplicate targets are folded with a
    /// marker array, so the CSR holds each (reader, target) pair once —
    /// repeat encounters OR their lane bit into the existing edge mask.
    pub fn build(nc: usize, cs: &[usize], cl: &[u32], col: &[i32], lanes: usize) -> Self {
        assert!(nc < (u32::MAX / 2) as usize, "chunk count {nc} exceeds dependency-graph range");
        assert!(lanes <= 32, "chunk height {lanes} exceeds the 32-bit lane-mask width");
        // Pass 1: count dependents per target chunk. `stamp[j] == marker
        // of reader i` means "already counted for i"; markers are unique
        // per reader and per pass, so the array never needs clearing.
        let mut stamp = vec![u32::MAX; nc];
        let mut counts = vec![1usize; nc]; // the self edge
        for i in 0..nc {
            let marker = i as u32;
            stamp[i] = marker;
            for &c in &col[cs[i]..cs[i] + cl[i] as usize * lanes] {
                if c < 0 {
                    continue;
                }
                let j = c as usize / lanes;
                if stamp[j] != marker {
                    stamp[j] = marker;
                    counts[j] += 1;
                }
            }
        }
        let mut offsets = vec![0usize; nc + 1];
        for j in 0..nc {
            offsets[j + 1] = offsets[j] + counts[j];
        }
        // Pass 2: fill. Readers are visited in ascending order and each
        // appends itself to its targets' slices, so every slice comes
        // out sorted. Markers are offset by `nc` to stay distinct from
        // pass 1's leftovers; `entry[j]` remembers where reader i's edge
        // from `j` landed so repeat cells OR in further lane bits.
        let mut cursor: Vec<usize> = offsets[..nc].to_vec();
        let mut entry = vec![0usize; nc];
        let mut targets = vec![0u32; offsets[nc]];
        let mut masks = vec![0u32; offsets[nc]];
        for i in 0..nc {
            let marker = (nc + i) as u32;
            stamp[i] = marker;
            entry[i] = cursor[i];
            targets[cursor[i]] = i as u32;
            masks[cursor[i]] = full_lane_mask(lanes); // self edge: all lanes
            cursor[i] += 1;
            for &c in &col[cs[i]..cs[i] + cl[i] as usize * lanes] {
                if c < 0 {
                    continue;
                }
                let j = c as usize / lanes;
                let bit = 1u32 << (c as usize % lanes);
                if stamp[j] != marker {
                    stamp[j] = marker;
                    entry[j] = cursor[j];
                    targets[cursor[j]] = i as u32;
                    masks[cursor[j]] = bit;
                    cursor[j] += 1;
                } else {
                    masks[entry[j]] |= bit;
                }
            }
        }
        Self { offsets, targets, masks }
    }

    /// Number of chunks the graph covers.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sorted dependents of chunk `j` (always contains `j`).
    #[inline]
    pub fn dependents(&self, j: usize) -> &[u32] {
        &self.targets[self.offsets[j]..self.offsets[j + 1]]
    }

    /// Source-lane masks parallel to [`dependents`](Self::dependents):
    /// `edge_masks(j)[e]` is the set of `j`'s lanes that
    /// `dependents(j)[e]` gathers from (the self edge is all lanes).
    #[inline]
    pub fn edge_masks(&self, j: usize) -> &[u32] {
        &self.masks[self.offsets[j]..self.offsets[j + 1]]
    }

    /// Total number of dependency edges (including the `nc` self edges).
    #[inline]
    pub fn num_deps(&self) -> usize {
        self.targets.len()
    }

    /// Largest dependent list (worst-case activation fan-out of a
    /// single changed chunk).
    pub fn max_fanout(&self) -> usize {
        (0..self.num_chunks()).map(|j| self.dependents(j).len()).max().unwrap_or(0)
    }

    /// Mean dependents per chunk — the expected activation cost of one
    /// changed chunk.
    pub fn avg_fanout(&self) -> f64 {
        if self.num_chunks() == 0 {
            return 0.0;
        }
        self.num_deps() as f64 / self.num_chunks() as f64
    }
}

/// Epoch-stamped worklist builder: turns a set of changed chunks (with
/// their changed-lane masks) into the next iteration's sorted,
/// deduplicated active-chunk list.
///
/// [`seed`](Self::seed) expands the dependents of every seed chunk
/// through a stamp array (`stamp[t] == epoch` means "already on the
/// next list"), filtering each dependency edge against the seed's
/// changed-lane mask, so the union is built without hashing or atomics;
/// the result is sorted once, keeping tile partitions and merges
/// deterministic at any thread count. The per-position
/// [`changed-lane masks`](Self::split) are written by the sweep workers
/// into disjoint tile slices and harvested in worklist order by
/// [`collect_changed_into`](Self::collect_changed_into).
#[derive(Clone, Debug, Default)]
pub struct ActivationState {
    stamp: Vec<u32>,
    epoch: u32,
    worklist: Vec<u32>,
    changed: Vec<u32>,
    activations: u64,
}

impl ActivationState {
    /// Creates an empty state; storage is sized lazily on first
    /// [`seed`](Self::seed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the worklist as the sorted, deduplicated union of
    /// `dependents(j)` over the seed chunks `j`, keeping only dependents
    /// whose edge mask intersects the seed's changed-lane mask. The seed
    /// list is sorted and its masks merged (OR) per chunk first, so
    /// callers may push duplicates freely (the direction-optimized
    /// driver pushes one entry per discovered *vertex*) without
    /// multiplying the dependent walks. Returns the number of
    /// activations performed (dependency edges whose lane filter
    /// passed) — the work measure reported as
    /// [`IterStats::activations`](crate::counters::IterStats::activations).
    /// Seeding every chunk with [`full_lane_mask`] reproduces the
    /// chunk-granular behavior exactly.
    ///
    /// A [`VertexMask`](crate::mask::VertexMask) restricts the
    /// expansion: dependents with no
    /// allowed real lane are dropped *before* their probe is counted
    /// (a fully masked chunk can never change state, so listing it
    /// would only waste skip tests). Partially masked dependents are
    /// kept — their allowed lanes still need the sweep. The seed's
    /// *self edge* is exempt from the filter: a chunk that changed
    /// last iteration has a stale double-buffered slot that must be
    /// rewritten (via copy-forward if nothing else) before the next
    /// buffer swap, even when a *shrinking* mask — the descriptor
    /// driver's visited complement — has since masked it out entirely.
    pub fn seed(
        &mut self,
        dep: &ChunkDepGraph,
        seeds: &mut Vec<(u32, u32)>,
        mask: Option<&crate::mask::VertexMask>,
    ) -> u64 {
        seeds.sort_unstable_by_key(|&(j, _)| j);
        // Merge duplicate chunks by OR-ing their lane masks.
        seeds.dedup_by(|next, prev| {
            if next.0 == prev.0 {
                prev.1 |= next.1;
                true
            } else {
                false
            }
        });
        let nc = dep.num_chunks();
        if self.stamp.len() < nc {
            self.stamp.resize(nc, 0);
        }
        // Advance the epoch; on wrap, clear the stamps so stale epochs
        // can never collide (once every 2^32 - 2 iterations).
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.worklist.clear();
        let mut activations = 0u64;
        for &(j, seed_mask) in seeds.iter() {
            if seed_mask == 0 {
                continue;
            }
            let deps = dep.dependents(j as usize);
            let masks = dep.edge_masks(j as usize);
            for (&t, &edge_mask) in deps.iter().zip(masks) {
                if seed_mask & edge_mask == 0 {
                    continue; // dependent gathers none of the changed rows
                }
                if let Some(m) = mask {
                    if t != j && m.allowed_real(t as usize) == 0 {
                        continue; // fully masked: skipped before the probe
                    }
                }
                activations += 1;
                let slot = &mut self.stamp[t as usize];
                if *slot != epoch {
                    *slot = epoch;
                    self.worklist.push(t);
                }
            }
        }
        self.worklist.sort_unstable();
        self.activations = activations;
        activations
    }

    /// The current worklist (sorted, duplicate-free chunk ids).
    #[inline]
    pub fn worklist(&self) -> &[u32] {
        &self.worklist
    }

    /// Lane-filtered activations performed by the last
    /// [`seed`](Self::seed).
    #[inline]
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Borrows the worklist together with a zeroed per-position
    /// changed-lane-mask slab (one `u32` per worklist entry) for the
    /// sweep workers to fill; the two borrows are disjoint so the masks
    /// can be carved into `&mut` tile slices alongside the state
    /// vectors.
    pub fn split(&mut self) -> (&[u32], &mut [u32]) {
        self.changed.clear();
        self.changed.resize(self.worklist.len(), 0);
        (&self.worklist, &mut self.changed)
    }

    /// Appends `(chunk id, changed-lane mask)` for every worklist entry
    /// whose mask is non-zero to `out` (in worklist order, i.e.
    /// ascending) and returns how many there were.
    pub fn collect_changed_into(&self, out: &mut Vec<(u32, u32)>) -> usize {
        let before = out.len();
        for (&id, &mask) in self.worklist.iter().zip(&self.changed) {
            if mask != 0 {
                out.push((id, mask));
            }
        }
        out.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::SellStructure;
    use slimsell_graph::GraphBuilder;

    const FULL4: u32 = 0b1111;

    fn dep_of(n: usize, edges: &[(u32, u32)]) -> ChunkDepGraph {
        let g = GraphBuilder::new(n).edges(edges.iter().copied()).build();
        let s = SellStructure::<4>::build(&g, 1);
        s.dep_graph().clone()
    }

    #[test]
    fn isolated_chunks_have_only_self_edges() {
        let dep = dep_of(8, &[]);
        assert_eq!(dep.num_chunks(), 2);
        assert_eq!(dep.dependents(0), &[0]);
        assert_eq!(dep.dependents(1), &[1]);
        assert_eq!(dep.edge_masks(0), &[FULL4]);
        assert_eq!(dep.num_deps(), 2);
    }

    #[test]
    fn cross_chunk_edge_creates_mutual_dependency() {
        // 0-7 edge: chunk 1 gathers row 0 (chunk 0) and vice versa.
        let dep = dep_of(8, &[(0, 7)]);
        assert_eq!(dep.dependents(0), &[0, 1]);
        assert_eq!(dep.dependents(1), &[0, 1]);
        // Chunk 1 reads exactly row 0 of chunk 0 (lane 0); chunk 0 reads
        // exactly row 7 of chunk 1 (lane 3).
        assert_eq!(dep.edge_masks(0), &[FULL4, 0b0001]);
        assert_eq!(dep.edge_masks(1), &[0b1000, FULL4]);
    }

    #[test]
    fn intra_chunk_edges_stay_self_only() {
        let dep = dep_of(8, &[(0, 1), (2, 3), (4, 5)]);
        assert_eq!(dep.dependents(0), &[0]);
        assert_eq!(dep.dependents(1), &[1]);
        assert_eq!(dep.edge_masks(0), &[FULL4]);
    }

    #[test]
    fn duplicate_cells_deduplicated() {
        // A hub in chunk 0 with many neighbors in chunk 1: chunk 0 reads
        // chunk 1 through several cells but appears once.
        let dep = dep_of(12, &[(0, 4), (0, 5), (0, 6), (0, 7), (0, 8)]);
        assert_eq!(dep.dependents(1), &[0, 1]);
        assert_eq!(dep.dependents(2), &[0, 2]);
        // Chunk 0 gathers all four rows of chunk 1 (vertices 4..8) and
        // only row 8 (lane 0) of chunk 2.
        assert_eq!(dep.edge_masks(1)[0], FULL4);
        assert_eq!(dep.edge_masks(2)[0], 0b0001);
        assert!(dep.max_fanout() >= 3); // chunk 0: itself + chunks 1, 2
        assert!(dep.avg_fanout() >= 1.0);
    }

    #[test]
    fn dependents_are_sorted_and_contain_self() {
        let g = GraphBuilder::new(40)
            .edges((0..39u32).map(|v| (v, v + 1)).chain([(0, 39), (3, 21), (10, 30)]))
            .build();
        let s = SellStructure::<4>::build(&g, 40);
        let dep = s.dep_graph();
        for j in 0..dep.num_chunks() {
            let d = dep.dependents(j);
            assert!(d.windows(2).all(|w| w[0] < w[1]), "unsorted/dup deps of {j}: {d:?}");
            assert!(d.contains(&(j as u32)), "missing self edge of {j}");
            assert!(dep.edge_masks(j).iter().all(|&m| m != 0), "empty edge mask at {j}");
        }
    }

    #[test]
    fn dep_graph_matches_brute_force() {
        let g = GraphBuilder::new(30)
            .edges([(0, 29), (1, 15), (2, 14), (7, 8), (12, 13), (20, 25), (3, 27), (9, 22)])
            .build();
        for sigma in [1, 8, 30] {
            let s = SellStructure::<4>::build(&g, sigma);
            let dep = s.dep_graph();
            let nc = s.num_chunks();
            // Brute force: chunk i reads chunk j iff any of i's cells
            // names a column in j's row range; the edge mask is the OR
            // of those columns' lane bits (self edge: all lanes).
            for j in 0..nc {
                let mut expect: Vec<(u32, u32)> = (0..nc)
                    .filter_map(|i| {
                        let mut mask = if i == j { FULL4 } else { 0 };
                        for &c in &s.col()[s.cs()[i]..s.cs()[i] + s.cl()[i] as usize * 4] {
                            if c >= 0 && c as usize / 4 == j {
                                mask |= 1 << (c as usize % 4);
                            }
                        }
                        (mask != 0).then_some((i as u32, mask))
                    })
                    .collect();
                expect.sort_unstable();
                let got: Vec<(u32, u32)> = dep
                    .dependents(j)
                    .iter()
                    .zip(dep.edge_masks(j))
                    .map(|(&t, &m)| (t, m))
                    .collect();
                assert_eq!(got, expect, "sigma={sigma} chunk {j}");
            }
        }
    }

    #[test]
    fn seed_dedups_and_merges_masks() {
        let dep = dep_of(16, &[(0, 15), (4, 8)]);
        let mut act = ActivationState::new();
        // Duplicate seeds are folded before expansion: chunk 3's
        // dependents are walked once, not twice; full masks pass every
        // edge filter, reproducing chunk-granular probe counts.
        let probes = act.seed(&dep, &mut vec![(3, FULL4), (0, FULL4), (3, 0b0010)], None);
        assert_eq!(probes as usize, dep.dependents(3).len() + dep.dependents(0).len());
        let wl = act.worklist().to_vec();
        assert!(wl.windows(2).all(|w| w[0] < w[1]), "worklist not sorted/dedup: {wl:?}");
        assert!(wl.contains(&0) && wl.contains(&3));
    }

    #[test]
    fn lane_filter_prunes_unread_dependents() {
        // 0-7 edge: chunk 1 gathers only row 0 (lane 0) of chunk 0.
        let dep = dep_of(8, &[(0, 7)]);
        let mut act = ActivationState::new();
        // A change confined to lane 2 of chunk 0: the self edge fires,
        // the cross edge (lane 0) is filtered out.
        act.seed(&dep, &mut vec![(0, 0b0100)], None);
        assert_eq!(act.worklist(), &[0]);
        assert_eq!(act.activations(), 1);
        // A change on lane 0 activates both.
        act.seed(&dep, &mut vec![(0, 0b0001)], None);
        assert_eq!(act.worklist(), &[0, 1]);
        assert_eq!(act.activations(), 2);
        // Zero masks seed nothing.
        act.seed(&dep, &mut vec![(0, 0)], None);
        assert!(act.worklist().is_empty());
        assert_eq!(act.activations(), 0);
    }

    #[test]
    fn changed_masks_round_trip() {
        let dep = dep_of(16, &[(0, 15)]);
        let mut act = ActivationState::new();
        act.seed(&dep, &mut vec![(0, FULL4), (1, FULL4), (2, FULL4), (3, FULL4)], None);
        let (ids, masks) = act.split();
        assert_eq!(ids, &[0, 1, 2, 3]);
        assert!(masks.iter().all(|&m| m == 0));
        masks[1] = 0b0010;
        masks[3] = FULL4;
        let mut changed = Vec::new();
        assert_eq!(act.collect_changed_into(&mut changed), 2);
        assert_eq!(changed, vec![(1, 0b0010), (3, FULL4)]);
    }

    #[test]
    fn reseeding_clears_previous_worklist() {
        let dep = dep_of(16, &[]);
        let mut act = ActivationState::new();
        act.seed(&dep, &mut vec![(0, FULL4), (1, FULL4), (2, FULL4)], None);
        assert_eq!(act.worklist(), &[0, 1, 2]);
        act.seed(&dep, &mut vec![(3, FULL4)], None);
        assert_eq!(act.worklist(), &[3]);
        act.seed(&dep, &mut Vec::new(), None);
        assert!(act.worklist().is_empty());
        assert_eq!(act.activations(), 0);
    }

    #[test]
    fn full_lane_mask_widths() {
        assert_eq!(full_lane_mask(4), 0b1111);
        assert_eq!(full_lane_mask(8), 0xff);
        assert_eq!(full_lane_mask(16), 0xffff);
        assert_eq!(full_lane_mask(32), u32::MAX);
    }
}
