//! Sweep-mode policy: runtime selection between full sweeps and
//! frontier-proportional worklist sweeps, including the adaptive
//! controller that switches per iteration.
//!
//! PR 4 made the worklist engine a user-visible knob: worklist sweeps
//! win decisively on high-diameter graphs (thin wavefront frontiers)
//! but pay ~1.4× wall overhead in the Kronecker flood regime, where
//! nearly every chunk is active every iteration and the activation
//! machinery is pure cost. That is the same regime split that motivates
//! push–pull direction heuristics in GraphBLAS-style engines and the
//! paper's own SlimWork/SlimChunk adaptivity (§V): the right sweep
//! strategy is a property of the *iteration*, not the run.
//!
//! [`SweepMode`] is the policy knob
//! ([`SweepConfig::sweep`], embedded in every kernel's options; the
//! `SLIMSELL_SWEEP` env var):
//!
//! * [`SweepMode::Full`] — every iteration sweeps the whole chunk range
//!   (the PR-3 behavior; per-chunk SlimWork skip tests still apply).
//! * [`SweepMode::Worklist`] — every iteration sweeps the active-chunk
//!   worklist only (the PR-4 engine).
//! * [`SweepMode::Adaptive`] — the default: the controller below picks
//!   per iteration, tracking exact per-chunk changes through full
//!   sweeps so it can re-seed the worklist on every full→worklist
//!   transition without ever touching outputs.
//!
//! # The adaptive controller
//!
//! The decision variable is the **seed count** — how many chunks
//! changed bit-wise last iteration, i.e. the worklist members that are
//! guaranteed to be listed before any dependency expansion — compared
//! against a crossover calibrated at `nc / 2` (`nc` = chunk count).
//! Two properties make seeds the right variable:
//!
//! * `seeds` lower-bounds the next worklist length (every seed is on
//!   its own worklist via the self edge), so a flooded seed set proves
//!   a flooded worklist without computing it;
//! * the worklist engine's entire per-iteration overhead — dependency
//!   expansion (`Σ |dependents(seed)|` probes), flag harvest, tile
//!   setup — is proportional to the seed set, so seeds directly
//!   measure what a full sweep would *save*. (Column-step-wise the
//!   worklist never loses — processed chunks do identical math and the
//!   full sweep processes a superset — so wall time in the flood
//!   regime is exactly where the policy earns its keep.)
//!
//! Measured on the `repro frontier` generators at scale 12, the two
//! regimes separate by more than 4× around `nc/2`: Kronecker's flood
//! iterations run at 0.67–0.72 `nc` seeds, while the geometric and
//! small-world wavefronts never exceed 0.15 `nc` — even when their
//! *worklists* transiently span 0.8 `nc` and still win, which is why
//! the worklist length itself would be the wrong gate.
//!
//! **Hysteresis.** The controller leaves worklist sweeps only when
//! `seeds ≥ ⌈9·nc/16⌉` and re-enters only when `seeds ≤ ⌊7·nc/16⌋`, so
//! a seed set oscillating around `nc/2` cannot thrash between modes
//! (each transition has a small fixed cost). Deciding on full
//! iterations means the changed-chunk list must stay current through
//! them: adaptive full sweeps are *tracked* (below). Crucially, the
//! decision needs **no activation probes ever** on the full-sweep
//! side — mid-flood the controller reads one length and runs the full
//! dispatcher, which is what keeps adaptive at ≈ 1.0× full-sweep wall
//! time on Kronecker.
//!
//! Correctness of switching (the **re-seeding invariant**): the
//! worklist engine requires that outside the worklist the next-state
//! buffer already equals the current state bit-for-bit. Adaptive full
//! sweeps therefore run *tracked*: each chunk's freshly written output
//! is compared bit-wise against its previous state
//! ([`Semiring::state_changed`](crate::Semiring::state_changed)), and
//! the changed chunks become the seed set. A chunk whose flag is clear
//! wrote back exactly its previous state, so after the buffer swap it
//! satisfies the invariant; a chunk whose flag is set is a seed, hence
//! on the next worklist (self edge) and rewritten before anyone reads
//! its stale double-buffered slot. Outputs are bit-identical to both
//! pure modes at any thread count — asserted by
//! `tests/parallel_determinism.rs` and proven on arbitrary graphs by
//! the `adaptive_equals_full_sweep` side of
//! `tests/proptest_invariants.rs`.

use std::sync::OnceLock;

use crate::mask::VertexMask;
use crate::tiling::Schedule;
use crate::worklist::{ActivationState, ChunkDepGraph};

/// Sweep strategy for the iterative kernels (BFS, SSSP, PageRank's
/// SpMV pass).
///
/// The default is read from the `SLIMSELL_SWEEP` env var (once per
/// process): `full`, `worklist`, or `adaptive`. Unset means
/// [`SweepMode::Adaptive`]. The pre-PR-5 `SLIMSELL_WORKLIST` var is
/// still honored as a deprecated alias (`1` ⇒ worklist, `0`/empty ⇒
/// full) when `SLIMSELL_SWEEP` is absent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// Sweep the whole chunk range every iteration.
    Full,
    /// Sweep the active-chunk worklist every iteration.
    Worklist,
    /// Switch per iteration at the calibrated `~nc/2` crossover with
    /// hysteresis (see the module docs).
    #[default]
    Adaptive,
}

impl SweepMode {
    /// Parses the two env knobs into a mode. `sweep` is
    /// `SLIMSELL_SWEEP` and wins when set; `worklist` is the deprecated
    /// `SLIMSELL_WORKLIST` alias with its historical semantics (any
    /// non-empty value but `0` ⇒ worklist sweeps, `0`/empty ⇒ full
    /// sweeps). Both absent ⇒ [`SweepMode::Adaptive`].
    ///
    /// # Panics
    /// Panics on an unrecognized `SLIMSELL_SWEEP` value — a misspelled
    /// CI matrix leg must fail loudly, not silently test the default.
    pub fn parse_env(sweep: Option<&str>, worklist: Option<&str>) -> Self {
        if let Some(s) = sweep {
            return match s.to_ascii_lowercase().as_str() {
                "full" => SweepMode::Full,
                "worklist" => SweepMode::Worklist,
                "adaptive" => SweepMode::Adaptive,
                other => panic!(
                    "unrecognized SLIMSELL_SWEEP value {other:?} (use full, worklist, or adaptive)"
                ),
            };
        }
        match worklist {
            Some(w) => {
                if !w.is_empty() && w != "0" {
                    SweepMode::Worklist
                } else {
                    SweepMode::Full
                }
            }
            None => SweepMode::Adaptive,
        }
    }

    /// The process-wide default: `SLIMSELL_SWEEP` (with the deprecated
    /// `SLIMSELL_WORKLIST` fallback), read once and cached. Explicit
    /// `sweep:` fields in options override this everywhere it matters;
    /// CI runs the whole suite under all three settings.
    pub fn env_default() -> Self {
        static DEFAULT: OnceLock<SweepMode> = OnceLock::new();
        *DEFAULT.get_or_init(|| {
            Self::parse_env(
                std::env::var("SLIMSELL_SWEEP").ok().as_deref(),
                std::env::var("SLIMSELL_WORKLIST").ok().as_deref(),
            )
        })
    }

    /// Whether this mode ever runs worklist sweeps — i.e. whether the
    /// engine must establish the worklist invariant (`nxt == cur`
    /// outside the worklist) up front and maintain the pending
    /// changed-chunk list across iterations.
    #[inline]
    pub fn uses_worklist(self) -> bool {
        !matches!(self, SweepMode::Full)
    }

    /// Display name (matches the `SLIMSELL_SWEEP` spelling and the
    /// bench artifacts' `sweep` field).
    pub fn name(self) -> &'static str {
        match self {
            SweepMode::Full => "full",
            SweepMode::Worklist => "worklist",
            SweepMode::Adaptive => "adaptive",
        }
    }
}

/// Which dispatcher one iteration actually executed — the per-iteration
/// trace of the policy, recorded as
/// [`IterStats::sweep_mode`](crate::IterStats::sweep_mode). In pure
/// [`SweepMode::Full`]/[`SweepMode::Worklist`] runs every iteration
/// carries the corresponding tag; adaptive runs interleave them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecutedSweep {
    /// The iteration swept the whole chunk range.
    #[default]
    Full,
    /// The iteration swept the active worklist only.
    Worklist,
}

impl ExecutedSweep {
    /// Display name used in analysis tables.
    pub fn name(self) -> &'static str {
        match self {
            ExecutedSweep::Full => "full",
            ExecutedSweep::Worklist => "worklist",
        }
    }
}

/// The sweep-policy pair shared by every kernel's options struct: which
/// [`SweepMode`] drives the iteration loop and which tile [`Schedule`]
/// distributes chunks over threads. PR 10 extracted it from the six
/// per-kernel `*Options` structs (`BfsOptions`, `DirOptOptions`,
/// `SsspOptions`, `PageRankOptions`, `MsBfsOptions`,
/// `BetweennessOptions`), which had grown identical `sweep`/`schedule`
/// field pairs independently; embedding one `SweepConfig` keeps the
/// env-var default logic and the builder surface in exactly one place.
///
/// Construct with [`SweepConfig::default`] (reads `SLIMSELL_SWEEP`,
/// dynamic scheduling) and refine with the consuming builders:
///
/// ```
/// use slimsell_core::{Schedule, SweepConfig, SweepMode};
/// let cfg = SweepConfig::default().sweep(SweepMode::Worklist).schedule(Schedule::Static);
/// assert_eq!(cfg.sweep, SweepMode::Worklist);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepConfig {
    /// Sweep strategy for the iteration loop.
    pub sweep: SweepMode,
    /// Tile schedule for distributing chunk ranges over threads.
    pub schedule: Schedule,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { sweep: SweepMode::env_default(), schedule: Schedule::Dynamic }
    }
}

impl SweepConfig {
    /// A config with both knobs pinned explicitly (no env lookup).
    pub fn new(sweep: SweepMode, schedule: Schedule) -> Self {
        Self { sweep, schedule }
    }

    /// Returns the config with the sweep mode replaced.
    #[must_use]
    pub fn sweep(mut self, sweep: SweepMode) -> Self {
        self.sweep = sweep;
        self
    }

    /// Returns the config with the tile schedule replaced.
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }
}

/// Hysteresis band numerators over [`CROSSOVER_DEN`]: worklist sweeps
/// are entered at `seeds ≤ 7/16 · nc` and left at `seeds ≥ 9/16 · nc`,
/// bracketing the `nc/2` crossover.
pub const ENTER_WORKLIST_NUM: usize = 7;
/// See [`ENTER_WORKLIST_NUM`].
pub const EXIT_WORKLIST_NUM: usize = 9;
/// Denominator of the hysteresis fractions.
pub const CROSSOVER_DEN: usize = 16;

/// The per-run adaptive switching state: the currently latched mode
/// plus the hysteresis decision rule. One controller lives in the
/// engine scratch of each run; it is deliberately dumb state — the
/// decision is pure in (seed count, chunk count) so the trace is
/// bit-reproducible at any thread count.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveController {
    mode: ExecutedSweep,
}

impl Default for AdaptiveController {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveController {
    /// A fresh controller, latched to worklist sweeps: the iterative
    /// kernels start from a near-empty frontier (BFS/SSSP: one chunk),
    /// exactly the worklist regime.
    pub fn new() -> Self {
        Self { mode: ExecutedSweep::Worklist }
    }

    /// The currently latched mode.
    #[inline]
    pub fn mode(&self) -> ExecutedSweep {
        self.mode
    }

    /// Largest seed count at which the controller switches *into*
    /// worklist sweeps (`⌊7·nc/16⌋`, clamped to at least 1 so trivial
    /// chunk ranges still take the worklist path).
    #[inline]
    pub fn enter_max(nc: usize) -> usize {
        (nc * ENTER_WORKLIST_NUM / CROSSOVER_DEN).max(1)
    }

    /// Smallest seed count at which the controller switches *back* to
    /// full sweeps (`⌈9·nc/16⌉`, at least `enter_max + 1` so the
    /// hysteresis band never inverts).
    #[inline]
    pub fn exit_min(nc: usize) -> usize {
        (nc * EXIT_WORKLIST_NUM).div_ceil(CROSSOVER_DEN).max(Self::enter_max(nc) + 1)
    }

    /// The hysteresis decision, called with the seed count (chunks
    /// whose state changed last iteration) *before* any dependency
    /// expansion. Returns (and latches) the mode this iteration runs
    /// in; when it answers [`ExecutedSweep::Full`] the caller skips
    /// seeding entirely — no activation probes are ever paid on the
    /// full-sweep side.
    pub fn decide(&mut self, seeds: usize, nc: usize) -> ExecutedSweep {
        self.mode = match self.mode {
            ExecutedSweep::Full if seeds <= Self::enter_max(nc) => ExecutedSweep::Worklist,
            ExecutedSweep::Worklist if seeds >= Self::exit_min(nc) => ExecutedSweep::Full,
            latched => latched,
        };
        self.mode
    }
}

/// Resolves the sweep policy for one iteration — the single shared
/// entry point of the BFS engine, SSSP, and PageRank drivers, so the
/// controller's contract cannot drift between kernels. Decides which
/// dispatcher runs, seeds the activation state from the pending
/// `(chunk, changed-lane mask)` list when a worklist sweep is due
/// (clearing `pending` afterwards), and returns the executed mode plus
/// the lane-filtered activations paid (`None` when no seeding
/// happened).
///
/// When a [`VertexMask`] is supplied, dependent chunks with no allowed
/// real lane are dropped *before* the activation probe is paid — a
/// fully masked chunk can never change state, so it never belongs on a
/// worklist and its probes would be pure waste.
///
/// In [`SweepMode::Adaptive`] the pending seed list is deduplicated
/// *before* the decision (duplicate chunks merge their lane masks):
/// callers like the direction-optimized driver push one entry per
/// discovered vertex (up to `C` duplicates per chunk), and the
/// controller's crossover is calibrated on distinct changed chunks.
/// [`ActivationState::seed`] would merge anyway, so this costs nothing
/// extra on the worklist path.
pub fn resolve_sweep(
    mode: SweepMode,
    ctl: &mut AdaptiveController,
    act: &mut ActivationState,
    dep: &ChunkDepGraph,
    pending: &mut Vec<(u32, u32)>,
    nc: usize,
    mask: Option<&VertexMask>,
) -> (ExecutedSweep, Option<u64>) {
    let seed = |act: &mut ActivationState, pending: &mut Vec<(u32, u32)>| {
        let probes = act.seed(dep, pending, mask);
        pending.clear();
        (ExecutedSweep::Worklist, Some(probes))
    };
    match mode {
        SweepMode::Full => (ExecutedSweep::Full, None),
        SweepMode::Worklist => seed(act, pending),
        SweepMode::Adaptive => {
            pending.sort_unstable_by_key(|&(j, _)| j);
            pending.dedup_by(|next, prev| {
                if next.0 == prev.0 {
                    prev.1 |= next.1;
                    true
                } else {
                    false
                }
            });
            match ctl.decide(pending.len(), nc) {
                // The tracked full sweep rebuilds `pending` itself, so
                // the stale seeds are left for it to overwrite.
                ExecutedSweep::Full => (ExecutedSweep::Full, None),
                ExecutedSweep::Worklist => seed(act, pending),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parse_sweep_values() {
        assert_eq!(SweepMode::parse_env(Some("full"), None), SweepMode::Full);
        assert_eq!(SweepMode::parse_env(Some("worklist"), None), SweepMode::Worklist);
        assert_eq!(SweepMode::parse_env(Some("adaptive"), None), SweepMode::Adaptive);
        assert_eq!(SweepMode::parse_env(Some("Adaptive"), None), SweepMode::Adaptive);
        // SLIMSELL_SWEEP wins over the alias.
        assert_eq!(SweepMode::parse_env(Some("full"), Some("1")), SweepMode::Full);
    }

    #[test]
    fn env_parse_unset_defaults_to_adaptive() {
        assert_eq!(SweepMode::parse_env(None, None), SweepMode::Adaptive);
    }

    #[test]
    fn deprecated_worklist_alias_keeps_its_historical_semantics() {
        // SLIMSELL_WORKLIST=1 (and any other non-empty non-zero value)
        // meant "worklist sweeps"; 0/empty meant the full-sweep
        // default. The alias must keep selecting the *pure* modes, not
        // the new adaptive default, so pre-PR-5 reproduction scripts
        // measure what they always measured.
        assert_eq!(SweepMode::parse_env(None, Some("1")), SweepMode::Worklist);
        assert_eq!(SweepMode::parse_env(None, Some("yes")), SweepMode::Worklist);
        assert_eq!(SweepMode::parse_env(None, Some("0")), SweepMode::Full);
        assert_eq!(SweepMode::parse_env(None, Some("")), SweepMode::Full);
    }

    #[test]
    #[should_panic(expected = "unrecognized SLIMSELL_SWEEP")]
    fn env_parse_rejects_typos() {
        SweepMode::parse_env(Some("worklists"), None);
    }

    #[test]
    fn names_round_trip() {
        for m in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
            assert_eq!(SweepMode::parse_env(Some(m.name()), None), m);
        }
        assert_eq!(ExecutedSweep::Full.name(), "full");
        assert_eq!(ExecutedSweep::Worklist.name(), "worklist");
    }

    #[test]
    fn uses_worklist_partition() {
        assert!(!SweepMode::Full.uses_worklist());
        assert!(SweepMode::Worklist.uses_worklist());
        assert!(SweepMode::Adaptive.uses_worklist());
    }

    #[test]
    fn sweep_config_default_and_builders() {
        let cfg = SweepConfig::default();
        assert_eq!(cfg.sweep, SweepMode::env_default());
        assert_eq!(cfg.schedule, Schedule::Dynamic);
        let cfg = SweepConfig::new(SweepMode::Full, Schedule::Static)
            .sweep(SweepMode::Worklist)
            .schedule(Schedule::Dynamic);
        assert_eq!(cfg, SweepConfig { sweep: SweepMode::Worklist, schedule: Schedule::Dynamic });
    }

    #[test]
    fn thresholds_bracket_the_crossover() {
        for nc in [1usize, 2, 3, 16, 17, 100, 1 << 14] {
            let enter = AdaptiveController::enter_max(nc);
            let exit = AdaptiveController::exit_min(nc);
            assert!(enter < exit, "band inverted at nc={nc}: enter {enter} exit {exit}");
            assert!(enter >= 1);
            if nc >= 16 {
                assert!(enter < nc / 2, "enter {enter} not below crossover at nc={nc}");
                assert!(exit > nc / 2, "exit {exit} not above crossover at nc={nc}");
            }
        }
    }

    #[test]
    fn controller_hysteresis_does_not_thrash() {
        let nc = 160; // enter_max = 70, exit_min = 90
        let mut ctl = AdaptiveController::new();
        assert_eq!(ctl.mode(), ExecutedSweep::Worklist);
        // Inside the band nothing changes, from either latched mode.
        assert_eq!(ctl.decide(80, nc), ExecutedSweep::Worklist);
        assert_eq!(ctl.decide(89, nc), ExecutedSweep::Worklist);
        // Crossing the exit threshold flips to full...
        assert_eq!(ctl.decide(90, nc), ExecutedSweep::Full);
        // ...and the band again holds.
        assert_eq!(ctl.decide(80, nc), ExecutedSweep::Full);
        assert_eq!(ctl.decide(71, nc), ExecutedSweep::Full);
        // Crossing the enter threshold flips back.
        assert_eq!(ctl.decide(70, nc), ExecutedSweep::Worklist);
    }

    #[test]
    fn tiny_chunk_ranges_still_take_the_worklist_path() {
        // nc = 1: enter_max clamps to 1, exit_min to 2, and the seed
        // count can never reach 2 on one chunk — so a 1-chunk graph
        // runs worklist sweeps instead of degenerating to full sweeps
        // through a 0-width band.
        let mut ctl = AdaptiveController::new();
        assert_eq!(ctl.decide(1, 1), ExecutedSweep::Worklist);
        assert_eq!(ctl.decide(0, 1), ExecutedSweep::Worklist);
    }
}
