//! Vertex masks over the C-lane chunk layout — the set type behind
//! masked semiring sweeps and descriptors.
//!
//! GraphBLAS-style engines express every traversal as a matrix–vector
//! product under a (possibly complemented) mask; SlimSell's chunked
//! layout makes the natural mask granularity one `u32` of lane bits
//! per chunk, the same currency as the PR-4/PR-7 worklist machinery
//! (changed-lane masks, per-edge source-lane masks). A [`VertexMask`]
//! is exactly that: a dense bitset with one word per chunk, indexed by
//! *permuted* vertex id, so the kernels can
//!
//! * skip a fully masked chunk with a single `u32` test — before the
//!   SlimWork probe, and (via
//!   [`ActivationState::seed`](crate::worklist::ActivationState::seed))
//!   before any activation probe is paid;
//! * intersect the mask with a chunk's changed-lane or dependency
//!   [`edge_masks`](crate::worklist::ChunkDepGraph::edge_masks) word
//!   with one AND ([`VertexMask::and_lanes`]);
//! * blend a partially masked chunk's freshly computed lanes back to
//!   their previous values, which for every shipped semiring is
//!   bit-for-bit "this lane did not run" (see the masked-sweep notes
//!   in ARCHITECTURE.md).
//!
//! Two invariants keep the hot-path tests branch-free:
//!
//! * **Padding lanes are always set.** The virtual rows `n..n_padded`
//!   exist only to square off the last chunk; their semiring state is
//!   initialized "finished" and never changes, so allowing them costs
//!   nothing — and `allowed == full_lane_mask(C)` then means "this
//!   chunk runs the exact unmasked path".
//! * **The selected-vertex count is popcount-tracked.** Every update
//!   maintains [`VertexMask::len`] incrementally, so the push↔pull
//!   style size heuristics read it in O(1).
//!
//! Masks address the permuted id space (the space the dense state
//! vectors live in). Build them from original graph ids with
//! [`VertexMask::from_original`], which routes through the structure's
//! σ-sort [`Permutation`](slimsell_graph::Permutation).

use crate::structure::SellStructure;
use crate::worklist::full_lane_mask;
use slimsell_graph::VertexId;

/// A set of vertices in the permuted id space, stored as one
/// allowed-lane `u32` per chunk (bit `l` of word `i` ⇔ permuted vertex
/// `i·C + l` is in the set). Padding lanes (`n..n_padded`) are always
/// set — see the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexMask {
    /// Real vertices covered (the structure's `n`).
    n: usize,
    /// Chunk height `C` (≤ 32, matching the lane-mask width).
    lanes: usize,
    /// Allowed-lane word per chunk, padding bits set.
    allowed: Vec<u32>,
    /// Number of selected *real* vertices, maintained incrementally.
    ones: usize,
}

impl VertexMask {
    fn layout(n: usize, lanes: usize) -> usize {
        assert!(n > 0, "mask over an empty vertex set");
        assert!(
            (1..=32).contains(&lanes),
            "chunk height {lanes} outside the 32-bit lane-mask width"
        );
        n.div_ceil(lanes)
    }

    /// Lane bits of chunk `i` that are real rows (not padding).
    #[inline]
    fn real(&self, i: usize) -> u32 {
        let lo = i * self.lanes;
        let hi = self.n.min(lo + self.lanes);
        if hi <= lo {
            0
        } else {
            full_lane_mask(hi - lo)
        }
    }

    /// Padding lane bits of chunk `i` (complement of [`Self::real`]
    /// within the chunk height).
    #[inline]
    fn pad(&self, i: usize) -> u32 {
        full_lane_mask(self.lanes) & !self.real(i)
    }

    /// The empty set: no real vertex selected (padding lanes set, per
    /// the invariant). `n` is the real vertex count, `lanes` the chunk
    /// height `C`.
    pub fn empty(n: usize, lanes: usize) -> Self {
        let nc = Self::layout(n, lanes);
        let mut m = Self { n, lanes, allowed: vec![0; nc], ones: 0 };
        for i in 0..nc {
            m.allowed[i] = m.pad(i);
        }
        m
    }

    /// The full set: every real vertex selected. A full mask makes
    /// every kernel take its exact unmasked path (each chunk's word is
    /// all-ones), so "full mask ≡ no mask" holds bit-for-bit including
    /// counters.
    pub fn full(n: usize, lanes: usize) -> Self {
        let nc = Self::layout(n, lanes);
        Self { n, lanes, allowed: vec![full_lane_mask(lanes); nc], ones: n }
    }

    /// The structural view of `s`: every real vertex of the structure,
    /// sized to its chunk layout ([`Self::full`] with `s`'s
    /// dimensions).
    pub fn structural<const C: usize>(s: &SellStructure<C>) -> Self {
        Self::full(s.n(), C)
    }

    /// Builds a mask sized for `s` from *original* graph ids, mapping
    /// each through the σ-sort permutation. Out-of-range ids panic;
    /// duplicates are fine.
    pub fn from_original<const C: usize>(
        s: &SellStructure<C>,
        ids: impl IntoIterator<Item = VertexId>,
    ) -> Self {
        let mut m = Self::empty(s.n(), C);
        for v in ids {
            m.insert(s.perm().to_new(v) as usize);
        }
        m
    }

    /// Builds a mask from *permuted* ids. Out-of-range ids panic.
    pub fn from_permuted(n: usize, lanes: usize, ids: impl IntoIterator<Item = usize>) -> Self {
        let mut m = Self::empty(n, lanes);
        for v in ids {
            m.insert(v);
        }
        m
    }

    /// Real vertices covered (dimension, not cardinality).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Chunk height the mask is laid out for.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of chunks (`⌈n / lanes⌉`).
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.allowed.len()
    }

    /// Number of selected real vertices — popcount-tracked, O(1).
    #[inline]
    pub fn len(&self) -> usize {
        self.ones
    }

    /// Whether no real vertex is selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Whether every real vertex is selected (the kernels' "behave
    /// exactly unmasked" predicate).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.ones == self.n
    }

    /// Allowed-lane word of chunk `i` — padding bits always set, so
    /// `allowed(i) == full_lane_mask(C)` ⇔ the chunk runs unmasked.
    #[inline]
    pub fn allowed(&self, i: usize) -> u32 {
        self.allowed[i]
    }

    /// Allowed *real* lanes of chunk `i`; `0` ⇔ the chunk is fully
    /// masked and a kernel may skip it outright.
    #[inline]
    pub fn allowed_real(&self, i: usize) -> u32 {
        self.allowed[i] & self.real(i)
    }

    /// Intersects chunk `i`'s allowed word with an arbitrary lane mask
    /// — a changed-lane mask from the worklist harvest or a dependency
    /// edge's source-lane mask. The surviving bits are the lanes that
    /// are both interesting to the caller and inside the mask.
    #[inline]
    pub fn and_lanes(&self, i: usize, lane_mask: u32) -> u32 {
        self.allowed[i] & lane_mask
    }

    /// Membership test for a permuted vertex id.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        assert!(v < self.n, "vertex {v} out of mask range {}", self.n);
        self.allowed[v / self.lanes] & (1 << (v % self.lanes)) != 0
    }

    /// Inserts a permuted vertex id; returns whether it was newly
    /// inserted. O(1), count-maintaining.
    pub fn insert(&mut self, v: usize) -> bool {
        assert!(v < self.n, "vertex {v} out of mask range {}", self.n);
        let word = &mut self.allowed[v / self.lanes];
        let bit = 1u32 << (v % self.lanes);
        let fresh = *word & bit == 0;
        *word |= bit;
        self.ones += fresh as usize;
        fresh
    }

    /// Removes a permuted vertex id; returns whether it was present.
    /// O(1), count-maintaining.
    pub fn remove(&mut self, v: usize) -> bool {
        assert!(v < self.n, "vertex {v} out of mask range {}", self.n);
        let word = &mut self.allowed[v / self.lanes];
        let bit = 1u32 << (v % self.lanes);
        let present = *word & bit != 0;
        *word &= !bit;
        self.ones -= present as usize;
        present
    }

    /// Inserts every set lane of `lane_mask` in chunk `i` (real lanes
    /// only) and returns how many were newly inserted — the bulk form
    /// the descriptor driver feeds with the worklist's changed-lane
    /// harvest, one popcount per chunk instead of per-vertex updates.
    pub fn insert_lanes(&mut self, i: usize, lane_mask: u32) -> u32 {
        let add = lane_mask & self.real(i) & !self.allowed[i];
        self.allowed[i] |= add;
        let fresh = add.count_ones();
        self.ones += fresh as usize;
        fresh
    }

    /// The complemented set over the real vertices (padding lanes stay
    /// set). Involutive: `m.complement().complement() == m`.
    #[must_use]
    pub fn complement(&self) -> Self {
        let mut out = self.clone();
        out.complement_in_place();
        out
    }

    /// In-place [`Self::complement`], for per-iteration reuse without
    /// reallocating.
    pub fn complement_in_place(&mut self) {
        for i in 0..self.allowed.len() {
            self.allowed[i] = (!self.allowed[i] & self.real(i)) | self.pad(i);
        }
        self.ones = self.n - self.ones;
    }

    /// Intersection with `other` (same dimensions required).
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// In-place intersection with `other`.
    pub fn and_assign(&mut self, other: &Self) {
        assert_eq!(
            (self.n, self.lanes),
            (other.n, other.lanes),
            "mask dimension mismatch in intersection"
        );
        let mut ones = 0usize;
        for i in 0..self.allowed.len() {
            self.allowed[i] &= other.allowed[i] | self.pad(i);
            ones += (self.allowed[i] & self.real(i)).count_ones() as usize;
        }
        self.ones = ones;
    }

    /// Difference `self \ other` (same dimensions required) — the
    /// descriptor driver's per-iteration `user ∩ ¬visited` pull mask,
    /// computed without materializing the complement.
    #[must_use]
    pub fn and_not(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.and_not_assign(other);
        out
    }

    /// In-place [`Self::and_not`].
    pub fn and_not_assign(&mut self, other: &Self) {
        assert_eq!(
            (self.n, self.lanes),
            (other.n, other.lanes),
            "mask dimension mismatch in difference"
        );
        let mut ones = 0usize;
        for i in 0..self.allowed.len() {
            self.allowed[i] = (self.allowed[i] & !other.allowed[i] & self.real(i)) | self.pad(i);
            ones += (self.allowed[i] & self.real(i)).count_ones() as usize;
        }
        self.ones = ones;
    }

    /// Union with `other` (same dimensions required).
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(
            (self.n, self.lanes),
            (other.n, other.lanes),
            "mask dimension mismatch in union"
        );
        let mut out = self.clone();
        let mut ones = 0usize;
        for i in 0..out.allowed.len() {
            out.allowed[i] |= other.allowed[i];
            ones += (out.allowed[i] & out.real(i)).count_ones() as usize;
        }
        out.ones = ones;
        out
    }

    /// Iterates the selected permuted vertex ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.allowed.len()).flat_map(move |i| {
            let mut word = self.allowed_real(i);
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let lane = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(i * self.lanes + lane)
            })
        })
    }

    /// Asserts the mask matches a structure's dimensions — every
    /// masked kernel entry point calls this once up front so a mask
    /// built for a different graph (or chunk height) fails loudly, not
    /// with silently wrong lane math.
    pub fn check_layout<const C: usize>(&self, s: &SellStructure<C>) {
        assert_eq!(
            (self.n, self.lanes),
            (s.n(), C),
            "mask built for n={} C={} used with a structure of n={} C={C}",
            self.n,
            self.lanes,
            s.n(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::GraphBuilder;

    #[test]
    fn empty_and_full_counts() {
        let e = VertexMask::empty(10, 4);
        assert_eq!((e.len(), e.num_chunks()), (0, 3));
        assert!(e.is_empty() && !e.is_full());
        let f = VertexMask::full(10, 4);
        assert_eq!(f.len(), 10);
        assert!(f.is_full() && !f.is_empty());
        // Full mask: every chunk word is all-ones — the unmasked path.
        for i in 0..3 {
            assert_eq!(f.allowed(i), full_lane_mask(4));
        }
    }

    #[test]
    fn padding_lanes_always_set() {
        // n = 10, C = 4: chunk 2 has real lanes {0, 1}, padding {2, 3}.
        let e = VertexMask::empty(10, 4);
        assert_eq!(e.allowed(2), 0b1100);
        assert_eq!(e.allowed_real(2), 0);
        let f = VertexMask::full(10, 4);
        assert_eq!(f.allowed_real(2), 0b0011);
        // Complement flips real lanes only.
        assert_eq!(e.complement().allowed(2), 0b1111);
        assert_eq!(f.complement().allowed(2), 0b1100);
    }

    #[test]
    fn insert_remove_track_popcount() {
        let mut m = VertexMask::empty(10, 4);
        assert!(m.insert(3));
        assert!(!m.insert(3));
        assert!(m.insert(9));
        assert_eq!(m.len(), 2);
        assert!(m.contains(3) && m.contains(9) && !m.contains(4));
        assert!(m.remove(3));
        assert!(!m.remove(3));
        assert_eq!(m.len(), 1);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn insert_lanes_bulk_counts_and_clips_padding() {
        let mut m = VertexMask::empty(10, 4);
        assert_eq!(m.insert_lanes(0, 0b1010), 2);
        assert_eq!(m.insert_lanes(0, 0b1011), 1); // lanes 1,3 already in
                                                  // Chunk 2: only lanes 0,1 are real; padding bits are ignored.
        assert_eq!(m.insert_lanes(2, 0b1111), 2);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn complement_is_involutive() {
        let m = VertexMask::from_permuted(13, 8, [0, 5, 7, 12]);
        assert_eq!(m.complement().complement(), m);
        assert_eq!(m.complement().len(), 13 - m.len());
        // Complement partitions: m ∩ ¬m = ∅, m ∪ ¬m = full.
        assert!(m.and(&m.complement()).is_empty());
        assert!(m.or(&m.complement()).is_full());
    }

    #[test]
    fn set_algebra() {
        let a = VertexMask::from_permuted(10, 4, [0, 1, 2, 8]);
        let b = VertexMask::from_permuted(10, 4, [1, 2, 3, 9]);
        assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(a.and_not(&b).iter().collect::<Vec<_>>(), vec![0, 8]);
        assert_eq!(a.or(&b).len(), 6);
        // and_not agrees with and-of-complement.
        assert_eq!(a.and_not(&b), a.and(&b.complement()));
    }

    #[test]
    fn and_lanes_intersects_arbitrary_masks() {
        let m = VertexMask::from_permuted(8, 4, [0, 2, 5]);
        assert_eq!(m.and_lanes(0, 0b0111), 0b0101);
        assert_eq!(m.and_lanes(1, 0b1111), 0b0010);
    }

    #[test]
    fn from_original_routes_through_permutation() {
        // Full σ-sort moves the degree-5 hub (vertex 4) to row 0.
        let g =
            GraphBuilder::new(8).edges([(4, 0), (4, 1), (4, 2), (4, 3), (4, 5), (6, 7)]).build();
        let s = crate::structure::SellStructure::<4>::build(&g, 8);
        let m = VertexMask::from_original(&s, [4u32]);
        assert_eq!(m.len(), 1);
        assert!(m.contains(s.perm().to_new(4) as usize));
        VertexMask::structural(&s).check_layout(&s);
    }

    #[test]
    #[should_panic(expected = "mask built for")]
    fn layout_mismatch_fails_loudly() {
        let g = GraphBuilder::new(8).edges([(0, 1)]).build();
        let s = crate::structure::SellStructure::<4>::build(&g, 1);
        VertexMask::full(9, 4).check_layout(&s);
    }

    #[test]
    #[should_panic(expected = "out of mask range")]
    fn out_of_range_insert_panics() {
        VertexMask::empty(10, 4).insert(10);
    }

    #[test]
    fn lanes_32_masks_do_not_overflow() {
        let mut m = VertexMask::full(64, 32);
        assert_eq!(m.allowed(0), u32::MAX);
        assert!(m.remove(31));
        assert_eq!(m.allowed(0), !(1 << 31));
        assert_eq!(m.len(), 63);
    }
}
