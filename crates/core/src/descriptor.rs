//! GraphBLAS-style descriptors: one sweep API for masked push–pull BFS.
//!
//! A [`Descriptor`] bundles everything that modulates a semiring sweep
//! without changing its algebra: an optional vertex mask (§III of the
//! GraphBLAS spec's descriptor concept, transplanted onto the SlimSell
//! chunk layout), a complement flag, a push/pull [`DirectionPolicy`],
//! and the [`SweepConfig`] policy the engine already understood. The
//! descriptor-driven BFS in [`run_descriptor`] generalizes the
//! hand-rolled direction optimization of [`crate::dirop`]:
//!
//! * **push** (top-down) steps expand an explicit frontier list through
//!   the structure's strided rows, filtering targets by the user mask;
//! * **pull** (bottom-up) steps run the chunk-parallel SpMV of
//!   [`crate::bfs`] under the *effective* mask `user ∩ ¬visited` — the
//!   visited complement is exactly what the classic bottom-up step
//!   computes implicitly, so chunks whose vertices are all settled are
//!   dropped before activation probing even happens (see
//!   [`crate::worklist::ActivationState::seed`]).
//!
//! With no user mask and the [`DirectionPolicy::Auto`] heuristic, the
//! run is bit-identical to [`crate::dirop::run_diropt`] in distances,
//! mode sequence and per-iteration work counters (`col_steps`, `cells`)
//! — the hand-rolled path stays in-tree as the oracle for this module.
//! The only counters allowed to differ are worklist bookkeeping
//! (`worklist_len`, `activations`, `chunks_skipped`), which *drop*
//! because the visited-complement mask filters settled chunks out of
//! the worklist instead of skipping them one by one.

use std::sync::Arc;
use std::time::Instant;

use slimsell_graph::{VertexId, UNREACHABLE};

use crate::bfs::{step, BfsOptions, BfsOutput, EngineScratch, Schedule};
use crate::counters::{IterStats, RunStats};
use crate::dirop::{DirOptOutput, StepMode};
use crate::mask::VertexMask;
use crate::matrix::ChunkMatrix;
use crate::semiring::{Semiring, StateVecs, TropicalSemiring};
use crate::sweep::{ExecutedSweep, SweepConfig, SweepMode};
use crate::tiling::ChunkTiling;

/// Per-iteration push↔pull decision rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DirectionPolicy {
    /// Beamer's α/β heuristic: pull when the frontier's out-edge count
    /// exceeds `m/α`, push again when the frontier shrinks below `n/β`.
    /// The defaults (α = 14, β = 24) match [`crate::dirop`].
    Auto {
        /// Pull when frontier out-edges > `m / alpha`.
        alpha: f64,
        /// Push again when frontier size < `n / beta`.
        beta: f64,
    },
    /// Always push (sparse top-down expansion).
    Push,
    /// Always pull (chunk-parallel SpMV from the first iteration).
    Pull,
}

impl Default for DirectionPolicy {
    fn default() -> Self {
        Self::Auto { alpha: 14.0, beta: 24.0 }
    }
}

/// A sweep descriptor: (complemented) vertex mask + direction policy +
/// sweep configuration.
///
/// ```
/// use std::sync::Arc;
/// use slimsell_core::{Descriptor, DirectionPolicy, SweepMode};
///
/// let desc = Descriptor::default()
///     .direction(DirectionPolicy::Pull)
///     .sweep(SweepMode::Worklist);
/// assert!(desc.mask.is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Descriptor {
    /// Optional vertex mask: the sweep only updates vertices inside it
    /// and never reads productive contributions out of vertices
    /// outside it (they stay at their initial state, so gathers from
    /// them contribute the semiring identity — "as-if-deleted").
    pub mask: Option<Arc<VertexMask>>,
    /// Complement the mask before use (GraphBLAS `GrB_COMP`). With no
    /// mask set, complementing is a no-op (the implicit mask is full).
    pub complement: bool,
    /// Push↔pull decision rule applied each iteration.
    pub direction: DirectionPolicy,
    /// Sweep configuration for the pull (SpMV) iterations.
    pub config: SweepConfig,
}

impl Descriptor {
    /// Sets the vertex mask (builder).
    #[must_use]
    pub fn mask(mut self, mask: Arc<VertexMask>) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Sets the complement flag (builder).
    #[must_use]
    pub fn complement(mut self, complement: bool) -> Self {
        self.complement = complement;
        self
    }

    /// Sets the direction policy (builder).
    #[must_use]
    pub fn direction(mut self, direction: DirectionPolicy) -> Self {
        self.direction = direction;
        self
    }

    /// Sets the sweep configuration (builder).
    #[must_use]
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the sweep mode, keeping the schedule (builder).
    #[must_use]
    pub fn sweep(mut self, sweep: SweepMode) -> Self {
        self.config.sweep = sweep;
        self
    }

    /// Sets the schedule, keeping the sweep mode (builder).
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// The mask the sweep actually applies: the user mask with the
    /// complement flag resolved. `None` means "all vertices allowed"
    /// (also the result of complementing an absent mask).
    pub fn resolved_mask(&self) -> Option<Arc<VertexMask>> {
        match (&self.mask, self.complement) {
            (None, _) => None,
            (Some(m), false) => Some(Arc::clone(m)),
            (Some(m), true) => Some(Arc::new(m.complement())),
        }
    }
}

/// Runs descriptor-driven BFS (tropical semiring) from `root`.
///
/// The generalized form of [`crate::dirop::run_diropt`]: push steps
/// expand the frontier through the structure's rows (targets outside
/// the resolved mask are never labeled), pull steps run the masked
/// SpMV engine under the effective mask `user ∩ ¬visited`, so settled
/// chunks fall out of the sweep before activation probing. Vertices
/// outside the mask keep [`UNREACHABLE`] distances.
///
/// Panics if `root` is out of range or outside the resolved mask.
pub fn run_descriptor<M, const C: usize>(
    matrix: &M,
    root: VertexId,
    desc: &Descriptor,
) -> DirOptOutput
where
    M: ChunkMatrix<C>,
{
    type S = TropicalSemiring;
    let s = matrix.structure();
    let n = s.n();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let user = desc.resolved_mask();
    if let Some(u) = user.as_deref() {
        u.check_layout(s);
    }
    let root_p = s.perm().to_new(root) as usize;
    assert!(
        user.as_deref().is_none_or(|u| u.contains(root_p)),
        "root {root} is not in the descriptor's resolved vertex mask"
    );
    let np = s.n_padded();
    let m2 = s.arcs(); // 2m

    let mut cur = StateVecs::new(np);
    let mut nxt = StateVecs::new(np);
    let mut d = vec![0.0f32; np];
    S::init(&mut cur, &mut d, n, root_p);

    // Effective pull mask, maintained incrementally: user ∩ ¬visited.
    // Newly labeled vertices are removed after every step, so pull
    // iterations skip fully settled chunks at seed time instead of
    // probing and SlimWork-skipping them.
    let mut eff: Arc<VertexMask> = match user.as_deref() {
        Some(u) => Arc::new(u.clone()),
        None => Arc::new(VertexMask::full(n, C)),
    };
    Arc::make_mut(&mut eff).remove(root_p);

    let base_opts = BfsOptions::default().config(desc.config);
    let mut scratch = EngineScratch::new();
    let track_wl = desc.config.sweep.uses_worklist();
    if track_wl {
        // Worklist invariant for the pull steps (see crate::bfs):
        // outside the worklist, nxt already equals cur. Push steps
        // write cur in place, so every chunk they touch goes on the
        // pending list and the next pull sweep rewrites it.
        S::clone_state(&cur, &mut nxt);
        scratch.pending.push(((root_p / C) as u32, 1u32 << (root_p % C)));
    }

    let mut frontier: Vec<u32> = vec![root_p as u32];
    let mut frontier_edges: u64 = s.row_len(root_p) as u64;
    let mut stats = RunStats::default();
    let mut modes = Vec::new();
    let mut depth = 0u32;
    let mut mode = match desc.direction {
        DirectionPolicy::Pull => StepMode::BottomUp,
        _ => StepMode::TopDown,
    };

    while !frontier.is_empty() {
        depth += 1;
        if let DirectionPolicy::Auto { alpha, beta } = desc.direction {
            mode = match mode {
                StepMode::TopDown if frontier_edges as f64 > m2 as f64 / alpha => {
                    StepMode::BottomUp
                }
                StepMode::BottomUp if (frontier.len() as f64) < n as f64 / beta => {
                    StepMode::TopDown
                }
                m => m,
            };
        }
        modes.push(mode);
        let t0 = Instant::now();
        match mode {
            StepMode::TopDown => {
                let mut next = Vec::new();
                let mut scanned = 0u64;
                for &v in &frontier {
                    for w in s.row_neighbors(v as usize) {
                        scanned += 1;
                        // The effective mask combines "allowed by the
                        // user" and "not yet labeled" in one bit test.
                        if cur.x[w as usize] == f32::INFINITY && eff.contains(w as usize) {
                            cur.x[w as usize] = depth as f32;
                            if track_wl {
                                scratch.pending.push((w / C as u32, 1u32 << (w as usize % C)));
                            }
                            next.push(w);
                        }
                    }
                }
                frontier_edges = next.iter().map(|&w| s.row_len(w as usize) as u64).sum();
                frontier = next;
                stats.iters.push(IterStats {
                    elapsed: t0.elapsed(),
                    col_steps: scanned,
                    cells: scanned,
                    changed: !frontier.is_empty(),
                    ..Default::default()
                });
            }
            StepMode::BottomUp => {
                let opts = base_opts.clone().mask(Some(Arc::clone(&eff)));
                let mut it = step::<M, S, C>(
                    matrix,
                    &cur,
                    &mut nxt,
                    &mut d,
                    depth as f32,
                    &opts,
                    &mut scratch,
                );
                drop(opts); // release the Arc so the mask update below stays in place
                let next: Vec<u32> = if it.sweep_mode == ExecutedSweep::Worklist {
                    // Harvested pending = changed chunks with per-lane
                    // change masks, ascending; walk the set bits (see
                    // crate::dirop for the oracle form of this
                    // recovery).
                    let mut out = Vec::new();
                    for &(id, lanes) in &scratch.pending {
                        it.frontier_probes += u64::from(lanes.count_ones());
                        let lo = id as usize * C;
                        let mut rest = lanes;
                        while rest != 0 {
                            let l = rest.trailing_zeros() as usize;
                            rest &= rest - 1;
                            let v = lo + l;
                            debug_assert!(v < n && nxt.x[v] != cur.x[v]);
                            out.push(v as u32);
                        }
                    }
                    out
                } else {
                    it.frontier_probes += n as u64;
                    let (nxt_x, cur_x) = (&nxt.x, &cur.x);
                    let tiling = ChunkTiling::new(n, Schedule::Dynamic);
                    tiling.map_reduce(
                        tiling.ranges().to_vec(),
                        |(v0, v1)| {
                            (v0..v1)
                                .filter(|&v| nxt_x[v] != cur_x[v])
                                .map(|v| v as u32)
                                .collect::<Vec<_>>()
                        },
                        Vec::new,
                        |mut a, mut b| {
                            a.append(&mut b);
                            a
                        },
                    )
                };
                std::mem::swap(&mut cur, &mut nxt);
                frontier_edges = next.iter().map(|&w| s.row_len(w as usize) as u64).sum();
                frontier = next;
                it.elapsed = t0.elapsed();
                it.changed = !frontier.is_empty();
                stats.iters.push(it);
            }
        }
        // Settle the newly labeled vertices out of the effective mask.
        let eff_mut = Arc::make_mut(&mut eff);
        for &w in &frontier {
            eff_mut.remove(w as usize);
        }
    }

    let perm = s.perm();
    let dist: Vec<u32> = (0..n)
        .map(|old| {
            let v = cur.x[perm.to_new(old as VertexId) as usize];
            if v.is_finite() {
                v as u32
            } else {
                UNREACHABLE
            }
        })
        .collect();
    DirOptOutput { bfs: BfsOutput { dist, parent: None, stats }, modes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SlimSellMatrix;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{serial_bfs, GraphBuilder};

    #[test]
    fn unmasked_matches_reference() {
        let g = kronecker(9, 12.0, KroneckerParams::GRAPH500, 7);
        let root = (0..512u32).find(|&v| g.degree(v) > 0).unwrap();
        let slim = SlimSellMatrix::<8>::build(&g, 64);
        for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
            let out = run_descriptor(&slim, root, &Descriptor::default().sweep(sweep));
            assert_eq!(out.bfs.dist, serial_bfs(&g, root).dist, "{sweep:?}");
        }
    }

    #[test]
    fn push_pull_and_auto_agree() {
        let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 3);
        let root = (0..512u32).find(|&v| g.degree(v) > 0).unwrap();
        let slim = SlimSellMatrix::<4>::build(&g, 64);
        let push =
            run_descriptor(&slim, root, &Descriptor::default().direction(DirectionPolicy::Push));
        let pull =
            run_descriptor(&slim, root, &Descriptor::default().direction(DirectionPolicy::Pull));
        let auto = run_descriptor(&slim, root, &Descriptor::default());
        assert_eq!(push.bfs.dist, pull.bfs.dist);
        assert_eq!(push.bfs.dist, auto.bfs.dist);
        assert!(push.modes.iter().all(|&m| m == StepMode::TopDown));
        assert!(pull.modes.iter().all(|&m| m == StepMode::BottomUp));
    }

    #[test]
    fn masked_run_matches_filtered_subgraph() {
        // Path 0-1-…-19 with the upper half masked out: BFS must stop
        // at the mask boundary exactly as if vertices 10.. were deleted.
        let n = 20u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let slim = SlimSellMatrix::<4>::build(&g, n as usize);
        let mask = Arc::new(VertexMask::from_original(slim.structure(), 0..10u32));
        for dir in [DirectionPolicy::Push, DirectionPolicy::Pull] {
            let desc = Descriptor::default().mask(Arc::clone(&mask)).direction(dir);
            let out = run_descriptor(&slim, 0, &desc);
            for v in 0..10 {
                assert_eq!(out.bfs.dist[v], v as u32, "{dir:?}");
            }
            for v in 10..20 {
                assert_eq!(out.bfs.dist[v], UNREACHABLE, "{dir:?}");
            }
        }
    }

    #[test]
    fn complement_flag_inverts_the_mask() {
        let n = 8u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let slim = SlimSellMatrix::<4>::build(&g, n as usize);
        // Masking OUT {5, 6, 7} via complement: reachable set is 0..=4.
        let blocked = Arc::new(VertexMask::from_original(slim.structure(), 5..8u32));
        let desc = Descriptor::default().mask(blocked).complement(true);
        let out = run_descriptor(&slim, 0, &desc);
        assert_eq!(out.bfs.dist[..5], [0, 1, 2, 3, 4]);
        assert!(out.bfs.dist[5..].iter().all(|&d| d == UNREACHABLE));
    }

    #[test]
    #[should_panic(expected = "resolved vertex mask")]
    fn root_outside_mask_rejected() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let slim = SlimSellMatrix::<4>::build(&g, 4);
        let mask = Arc::new(VertexMask::from_original(slim.structure(), [1u32, 2]));
        run_descriptor(&slim, 0, &Descriptor::default().mask(mask));
    }
}
