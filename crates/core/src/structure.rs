//! The chunked Sell layout shared by Sell-C-σ and SlimSell.
//!
//! Construction (§II-D2): rows are sorted by length in descending order
//! inside windows of σ consecutive rows ("σ ∈ [1, n] controls the sorting
//! scope; a larger σ entails more sorting"), grouped into chunks of `C`
//! rows, and each chunk is stored column-major so that `C` consecutive
//! SIMD lanes process `C` consecutive matrix rows. Rows are padded to the
//! longest row of their chunk; padding entries carry the marker `-1` in
//! `col` (§III-B).
//!
//! The whole matrix is permuted *symmetrically*: the σ-sort relabels
//! rows, and column indices are rewritten into the same permuted id
//! space, so the dense BFS vectors need no per-access translation. The
//! permutation is retained for mapping results back.

use rayon::prelude::*;
use slimsell_graph::{CsrGraph, Permutation, VertexId};

use crate::worklist::ChunkDepGraph;

/// Chunked storage structure: everything except the `val` array.
#[derive(Clone, Debug)]
pub struct SellStructure<const C: usize> {
    n: usize,
    n_padded: usize,
    nc: usize,
    /// Chunk start offsets into `col` (the `cs` array), length `nc`.
    cs: Vec<usize>,
    /// Chunk lengths: the longest row of each chunk (the `cl` array).
    cl: Vec<u32>,
    /// Column indices in chunk-column-major order; `-1` marks padding.
    col: Vec<i32>,
    /// Row permutation produced by the σ-scoped sort.
    perm: Permutation,
    sigma: usize,
    /// Number of padding cells `P` in `col` (Table III).
    padding_cells: usize,
    /// Number of stored arcs (`2m`).
    arcs: usize,
    /// Stored arcs per chunk (non-padding cells), length `nc`; the
    /// per-chunk numerator of measured SIMD lane utilization.
    chunk_arcs: Vec<u64>,
    /// Chunk-granularity dependency graph (who must re-run when a
    /// chunk's vertices change), computed once per structure on first
    /// use by the worklist engine. Lazy so that non-worklist paths —
    /// including the §IV-D preprocessing-amortization measurements —
    /// pay nothing for it.
    dep: std::sync::OnceLock<ChunkDepGraph>,
}

impl<const C: usize> SellStructure<C> {
    /// Builds the structure from an undirected graph with sorting scope
    /// `sigma ∈ [1, n]` (clamped; `sigma ≤ 1` means no sorting, `sigma ≥
    /// n` is the full sort of §IV's "σ = n").
    ///
    /// # Panics
    /// Panics if `C` is not one of the supported lane counts or the graph
    /// is empty.
    pub fn build(g: &CsrGraph, sigma: usize) -> Self {
        assert!(C.is_power_of_two() && (4..=64).contains(&C), "unsupported chunk height C={C}");
        let n = g.num_vertices();
        assert!(n > 0, "cannot build a Sell structure for an empty graph");
        let sigma = sigma.clamp(1, n);

        // σ-scoped sort: descending degree inside windows of σ original
        // rows; ties broken by original id for determinism.
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        if sigma > 1 {
            for window in order.chunks_mut(sigma) {
                window.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
            }
        }
        let perm = Permutation::from_new_to_old(order);
        let pg = perm.apply_to_graph(g);

        let nc = n.div_ceil(C);
        let n_padded = nc * C;
        let mut cl = vec![0u32; nc];
        let mut chunk_arcs = vec![0u64; nc];
        for (i, (c, a)) in cl.iter_mut().zip(chunk_arcs.iter_mut()).enumerate() {
            let hi = ((i + 1) * C).min(n);
            *c = (i * C..hi).map(|r| pg.degree(r as VertexId) as u32).max().unwrap_or(0);
            *a = (i * C..hi).map(|r| pg.degree(r as VertexId) as u64).sum();
        }
        let mut cs = vec![0usize; nc];
        let mut total = 0usize;
        for (s, &l) in cs.iter_mut().zip(&cl) {
            *s = total;
            total += l as usize * C;
        }
        // Fill chunks in parallel: carve `col` into the per-chunk
        // (unequal-length) sub-slices so rayon can own them disjointly.
        // Build time matters (§IV-D amortization), so this pass is
        // parallel like the SpMV itself.
        let mut col = vec![-1i32; total];
        let mut chunk_slices: Vec<&mut [i32]> = Vec::with_capacity(nc);
        let mut rest: &mut [i32] = &mut col;
        for &len in cl.iter() {
            let (head, tail) = rest.split_at_mut(len as usize * C);
            chunk_slices.push(head);
            rest = tail;
        }
        chunk_slices.into_par_iter().enumerate().for_each(|(i, chunk)| {
            for lane in 0..C {
                let r = i * C + lane;
                if r >= n {
                    continue; // virtual padding row of the last chunk
                }
                for (j, &w) in pg.neighbors(r as VertexId).iter().enumerate() {
                    chunk[j * C + lane] = w as i32;
                }
            }
        });
        let arcs = pg.num_arcs();
        let padding_cells = total - arcs;
        let dep = std::sync::OnceLock::new();
        Self { n, n_padded, nc, cs, cl, col, perm, sigma, padding_cells, arcs, chunk_arcs, dep }
    }

    /// Number of (real) rows = vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rows rounded up to a multiple of `C` (dense-vector length).
    #[inline]
    pub fn n_padded(&self) -> usize {
        self.n_padded
    }

    /// Number of chunks.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.nc
    }

    /// Chunk start offsets (`cs`).
    #[inline]
    pub fn cs(&self) -> &[usize] {
        &self.cs
    }

    /// Chunk lengths (`cl`).
    #[inline]
    pub fn cl(&self) -> &[u32] {
        &self.cl
    }

    /// Column array with `-1` padding markers.
    #[inline]
    pub fn col(&self) -> &[i32] {
        &self.col
    }

    /// The row permutation (new = permuted/sorted ids, old = original).
    #[inline]
    pub fn perm(&self) -> &Permutation {
        &self.perm
    }

    /// The sorting scope this structure was built with.
    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of padding cells `P` (Table III).
    #[inline]
    pub fn padding_cells(&self) -> usize {
        self.padding_cells
    }

    /// Number of stored arcs (`2m`).
    #[inline]
    pub fn arcs(&self) -> usize {
        self.arcs
    }

    /// Stored arcs (non-padding cells) per chunk; sums to [`arcs`].
    /// Feeds the engines' `active_cells` counter — processing chunk `i`
    /// touches `C · cl[i]` cells of which `chunk_arcs[i]` are real.
    ///
    /// [`arcs`]: Self::arcs
    #[inline]
    pub fn chunk_arcs(&self) -> &[u64] {
        &self.chunk_arcs
    }

    /// The chunk dependency graph: for each chunk `j`, the chunks that
    /// gather from `j`'s row range (plus `j` itself) — the set that
    /// must re-run when `j`'s vertices change. Computed once per
    /// structure on first call (a pure function of the structure, so
    /// laziness is observation-free); drives the worklist engine (see
    /// [`crate::worklist`]).
    #[inline]
    pub fn dep_graph(&self) -> &ChunkDepGraph {
        self.dep.get_or_init(|| ChunkDepGraph::build(self.nc, &self.cs, &self.cl, &self.col, C))
    }

    /// Total `col` cells (`2m + P`) — also the per-SpMV work in cells
    /// (§III-B: "the size of val in SlimSell and Sell-C-σ (= 2m + P) is
    /// equal to the amount of work W of a single SpMV product").
    #[inline]
    pub fn total_cells(&self) -> usize {
        self.col.len()
    }

    /// Iterates the stored neighbors of permuted row `r` (strided access
    /// across the chunk; stops at the first padding marker, which is
    /// always at the row's tail). Used by the sparse top-down steps of
    /// the direction-optimized BFS.
    #[inline]
    pub fn row_neighbors(&self, r: usize) -> impl Iterator<Item = u32> + '_ {
        let i = r / C;
        let lane = r % C;
        let base = self.cs[i] + lane;
        (0..self.cl[i] as usize)
            .map(move |j| self.col[base + j * C])
            .take_while(|&c| c >= 0)
            .map(|c| c as u32)
    }

    /// Length (degree) of permuted row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.row_neighbors(r).count()
    }

    /// Cross-checks the structure against its source graph; used by
    /// property tests.
    pub fn verify_against(&self, g: &CsrGraph) -> Result<(), String> {
        if g.num_vertices() != self.n {
            return Err("vertex count mismatch".into());
        }
        for old in 0..self.n {
            let new = self.perm.to_new(old as VertexId) as usize;
            let mut stored: Vec<VertexId> =
                self.row_neighbors(new).map(|w| self.perm.to_old(w)).collect();
            stored.sort_unstable();
            if stored != g.neighbors(old as VertexId) {
                return Err(format!(
                    "row {old}: stored {stored:?} != graph {:?}",
                    g.neighbors(old as VertexId)
                ));
            }
        }
        if self.col.len() != self.arcs + self.padding_cells {
            return Err("padding accounting broken".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_graph::GraphBuilder;

    fn star_plus_path() -> CsrGraph {
        // vertex 0 has degree 5; 6-7-8 path; 9 isolated
        GraphBuilder::new(10)
            .edges([(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (6, 7), (7, 8)])
            .build()
    }

    #[test]
    fn build_basic_counts() {
        let g = star_plus_path();
        let s = SellStructure::<4>::build(&g, 1);
        assert_eq!(s.n(), 10);
        assert_eq!(s.num_chunks(), 3);
        assert_eq!(s.n_padded(), 12);
        assert_eq!(s.arcs(), 2 * g.num_edges());
        s.verify_against(&g).unwrap();
    }

    #[test]
    fn full_sort_puts_high_degree_first() {
        let g = star_plus_path();
        let s = SellStructure::<4>::build(&g, 10);
        // Row 0 after full sort must be the max-degree vertex (vertex 0).
        assert_eq!(s.perm().to_old(0), 0);
        assert_eq!(s.row_len(0), 5);
        s.verify_against(&g).unwrap();
    }

    #[test]
    fn sorting_reduces_padding() {
        // Degrees alternate high/low: sorting groups them, cutting padding.
        let mut b = GraphBuilder::new(64);
        for v in 0..32u32 {
            // even vertices get high degree
            for k in 1..=8u32 {
                b.edge(2 * v, (2 * v + k) % 64);
            }
        }
        let g = b.build();
        let unsorted = SellStructure::<8>::build(&g, 1);
        let sorted = SellStructure::<8>::build(&g, 64);
        assert!(
            sorted.padding_cells() < unsorted.padding_cells(),
            "sorted P {} !< unsorted P {}",
            sorted.padding_cells(),
            unsorted.padding_cells()
        );
        sorted.verify_against(&g).unwrap();
        unsorted.verify_against(&g).unwrap();
    }

    #[test]
    fn sigma_one_is_identity_permutation() {
        let g = star_plus_path();
        let s = SellStructure::<4>::build(&g, 1);
        assert!(s.perm().is_identity());
    }

    #[test]
    fn cl_is_max_row_in_chunk() {
        let g = star_plus_path();
        let s = SellStructure::<4>::build(&g, 1);
        // chunk 0 holds rows 0..4 (degrees 5,1,1,1) -> cl = 5
        assert_eq!(s.cl()[0], 5);
    }

    #[test]
    fn row_neighbors_match_graph() {
        let g = star_plus_path();
        for sigma in [1, 4, 10] {
            let s = SellStructure::<4>::build(&g, sigma);
            for old in 0..10u32 {
                let new = s.perm().to_new(old) as usize;
                let mut got: Vec<u32> = s.row_neighbors(new).map(|w| s.perm().to_old(w)).collect();
                got.sort_unstable();
                assert_eq!(got, g.neighbors(old), "sigma {sigma} vertex {old}");
            }
        }
    }

    #[test]
    fn n_not_multiple_of_c() {
        let g = GraphBuilder::new(5).edges([(0, 1), (2, 3), (3, 4)]).build();
        let s = SellStructure::<4>::build(&g, 5);
        assert_eq!(s.num_chunks(), 2);
        assert_eq!(s.n_padded(), 8);
        s.verify_against(&g).unwrap();
    }

    #[test]
    fn chunk_arcs_count_non_padding_cells() {
        let g = star_plus_path();
        for sigma in [1, 10] {
            let s = SellStructure::<4>::build(&g, sigma);
            assert_eq!(s.chunk_arcs().iter().sum::<u64>(), s.arcs() as u64);
            for i in 0..s.num_chunks() {
                let lo = s.cs()[i];
                let hi = lo + s.cl()[i] as usize * 4;
                let stored = s.col()[lo..hi].iter().filter(|&&c| c >= 0).count() as u64;
                assert_eq!(s.chunk_arcs()[i], stored, "chunk {i} sigma {sigma}");
            }
        }
    }

    #[test]
    fn total_cells_is_arcs_plus_padding() {
        let g = star_plus_path();
        let s = SellStructure::<8>::build(&g, 10);
        assert_eq!(s.total_cells(), s.arcs() + s.padding_cells());
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_rejected() {
        let g = GraphBuilder::new(0).build();
        SellStructure::<4>::build(&g, 1);
    }

    #[test]
    fn isolated_vertices_have_empty_rows() {
        let g = GraphBuilder::new(8).edges([(0, 1)]).build();
        let s = SellStructure::<4>::build(&g, 1);
        assert_eq!(s.row_len(s.perm().to_new(5) as usize), 0);
    }
}
